// Parallel trial-execution tests: the thread pool, thread-count
// resolution, and — the core contract — bit-identical determinism of
// parallel_run_trials against serial run_trials, for randomized and
// deterministic protocols, with and without fault models, across thread
// counts, graphs and seed ranges. scripts/ci.sh additionally runs this
// suite under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/runner.h"
#include "exec/parallel_trials.h"
#include "exec/thread_pool.h"
#include "fault/churn.h"
#include "fault/crash.h"
#include "fault/fault_model.h"
#include "fault/jammer.h"
#include "fault/loss.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace radiocast {
namespace {

// ---------------------------------------------------------------------------
// thread_pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  exec::thread_pool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, IsReusableAcrossWaitRounds) {
  exec::thread_pool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  exec::thread_pool pool(1);
  pool.wait_idle();  // nothing submitted; must not hang
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    exec::thread_pool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(done.load(), 50);
}

// ---------------------------------------------------------------------------
// thread-count resolution
// ---------------------------------------------------------------------------

// RAII guard restoring RADIOCAST_THREADS afterwards, so this test cannot
// leak environment state into other tests.
class env_guard {
 public:
  explicit env_guard(const char* value) {
    const char* old = std::getenv("RADIOCAST_THREADS");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv("RADIOCAST_THREADS", value, 1);
    } else {
      ::unsetenv("RADIOCAST_THREADS");
    }
  }
  ~env_guard() {
    if (had_) {
      ::setenv("RADIOCAST_THREADS", saved_.c_str(), 1);
    } else {
      ::unsetenv("RADIOCAST_THREADS");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(ResolveThreadsTest, ExplicitRequestWins) {
  env_guard guard("7");
  EXPECT_EQ(exec::resolve_threads(3), 3);
  EXPECT_EQ(exec::resolve_threads(1), 1);
}

TEST(ResolveThreadsTest, ZeroDefersToEnvironment) {
  {
    env_guard guard("5");
    EXPECT_EQ(exec::resolve_threads(0), 5);
  }
  {
    env_guard guard(nullptr);
    EXPECT_EQ(exec::resolve_threads(0), 1);  // unset ⇒ serial
  }
  {
    env_guard guard("nonsense");
    EXPECT_EQ(exec::resolve_threads(0), 1);  // unparsable ⇒ serial
  }
  {
    env_guard guard("auto");
    EXPECT_EQ(exec::resolve_threads(0), exec::hardware_threads());
  }
  {
    env_guard guard("0");
    EXPECT_EQ(exec::resolve_threads(0), exec::hardware_threads());
  }
}

TEST(ResolveThreadsTest, NegativeRequestIsRejected) {
  EXPECT_THROW(exec::resolve_threads(-1), precondition_error);
}

TEST(ResolveThreadsTest, HardwareThreadsIsPositive) {
  EXPECT_GE(exec::hardware_threads(), 1);
}

// ---------------------------------------------------------------------------
// determinism: parallel ≡ serial, bit for bit
// ---------------------------------------------------------------------------

// Everything except wall_ms (the one legitimately nondeterministic field)
// must match bit for bit.
void expect_same_records(const trial_set& serial, const trial_set& parallel,
                         const std::string& what) {
  ASSERT_EQ(serial.trials.size(), parallel.trials.size()) << what;
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    const trial_record& a = serial.trials[i];
    const trial_record& b = parallel.trials[i];
    const std::string where = what + ", trial " + std::to_string(i);
    EXPECT_EQ(a.seed, b.seed) << where;
    EXPECT_EQ(a.completed, b.completed) << where;
    EXPECT_EQ(a.steps, b.steps) << where;
    EXPECT_EQ(a.informed_step, b.informed_step) << where;
    EXPECT_EQ(a.transmissions, b.transmissions) << where;
    EXPECT_EQ(a.collisions, b.collisions) << where;
    EXPECT_EQ(a.deliveries, b.deliveries) << where;
    EXPECT_EQ(a.crashed_nodes, b.crashed_nodes) << where;
    EXPECT_EQ(a.suppressed_deliveries, b.suppressed_deliveries) << where;
    EXPECT_EQ(a.churned_edges, b.churned_edges) << where;
  }
}

struct fault_setup {
  std::string tag;
  // Fresh instances per invocation so the serial and parallel batches each
  // get an unshared model (the parallel path additionally clones per
  // worker internally).
  std::unique_ptr<fault::fault_model> model;
  std::vector<std::unique_ptr<fault::fault_model>> parts;  // composite kids
};

fault_setup make_fault_setup(const std::string& kind) {
  fault_setup out;
  out.tag = kind;
  if (kind == "none") return out;
  if (kind == "loss") {
    out.model = std::make_unique<fault::loss_model>(fault::loss_options{0.25});
    return out;
  }
  if (kind == "jam") {
    out.model = std::make_unique<fault::jammer_model>(
        fault::jammer_options{1, fault::jam_strategy::oblivious_random});
    return out;
  }
  // composite: crash + churn + loss stacked (undirected graphs only).
  fault::crash_options copts;
  copts.crash_probability = 0.001;
  copts.spare_source = true;
  out.parts.push_back(std::make_unique<fault::crash_model>(copts));
  out.parts.push_back(
      std::make_unique<fault::churn_model>(fault::churn_options{0.05}));
  out.parts.push_back(
      std::make_unique<fault::loss_model>(fault::loss_options{0.1}));
  std::vector<fault::fault_model*> raw;
  for (const auto& m : out.parts) raw.push_back(m.get());
  out.model = std::make_unique<fault::composite_fault_model>(std::move(raw));
  return out;
}

trial_set run_batch(const graph& g, const protocol& proto, int trials,
                    std::uint64_t base_seed, int threads,
                    const std::string& fault_kind,
                    obs::metrics_registry* metrics) {
  fault_setup faults = make_fault_setup(fault_kind);
  trial_options topts;
  topts.trials = trials;
  topts.base_seed = base_seed;
  topts.max_steps = 200'000;
  topts.metrics = metrics;
  topts.faults = faults.model.get();
  topts.threads = threads;
  return threads == 1 ? run_trials(g, proto, topts)
                      : parallel_run_trials(g, proto, topts);
}

// The matrix of the determinism regression: protocols × graphs × fault
// mixes × thread counts × seed ranges, records AND merged metrics compared
// against the serial baseline.
TEST(ParallelTrialsTest, BitIdenticalToSerialAcrossMatrix) {
  rng topo_gen(2024);
  struct named_graph {
    std::string tag;
    graph g;
  };
  std::vector<named_graph> graphs;
  graphs.push_back({"gnp36", make_gnp_connected(36, 0.15, topo_gen)});
  graphs.push_back({"layered48", make_complete_layered_uniform(48, 4)});
  graphs.push_back({"tree40", make_random_tree(40, topo_gen)});

  const std::vector<std::string> protocols = {"decay", "kp",
                                              "select-and-send"};
  const std::vector<std::string> fault_kinds = {"none", "loss", "composite"};
  const std::vector<int> thread_counts = {2, 8};
  const int trials = 10;

  for (const named_graph& ng : graphs) {
    const int d = radius_from(ng.g);
    for (const std::string& proto_name : protocols) {
      const auto proto =
          make_protocol(proto_name, ng.g.node_count() - 1, d);
      for (const std::string& fault_kind : fault_kinds) {
        for (const std::uint64_t base_seed : {std::uint64_t{1},
                                              std::uint64_t{977}}) {
          obs::metrics_registry serial_metrics;
          const trial_set serial = run_batch(ng.g, *proto, trials, base_seed,
                                             1, fault_kind, &serial_metrics);
          const std::string serial_dump =
              serial_metrics.to_json().dump();
          for (const int threads : thread_counts) {
            const std::string what = ng.tag + "/" + proto_name + "/" +
                                     fault_kind + "/t" +
                                     std::to_string(threads) + "/s" +
                                     std::to_string(base_seed);
            obs::metrics_registry parallel_metrics;
            const trial_set parallel =
                run_batch(ng.g, *proto, trials, base_seed, threads,
                          fault_kind, &parallel_metrics);
            expect_same_records(serial, parallel, what);
            EXPECT_EQ(serial_dump, parallel_metrics.to_json().dump())
                << "merged metrics diverged: " << what;
          }
        }
      }
    }
  }
}

TEST(ParallelTrialsTest, JammerModelAlsoBitIdentical) {
  rng topo_gen(5);
  const graph g = make_gnp_connected(32, 0.18, topo_gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  const trial_set serial = run_batch(g, *proto, 12, 3, 1, "jam", nullptr);
  const trial_set parallel = run_batch(g, *proto, 12, 3, 4, "jam", nullptr);
  expect_same_records(serial, parallel, "gnp32/decay/jam");
}

TEST(ParallelTrialsTest, MoreThreadsThanTrialsCoversExactSeedRange) {
  const graph g = make_complete_layered_uniform(30, 3);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  trial_options topts;
  topts.trials = 7;
  topts.base_seed = 42;
  topts.threads = 16;
  const trial_set batch = parallel_run_trials(g, *proto, topts);
  ASSERT_EQ(batch.trials.size(), 7u);
  for (std::size_t t = 0; t < batch.trials.size(); ++t) {
    EXPECT_EQ(batch.trials[t].seed, 42u + t);
  }
}

TEST(ParallelTrialsTest, SingleTrialTakesSerialPath) {
  const graph g = make_complete_layered_uniform(20, 2);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  trial_options topts;
  topts.trials = 1;
  topts.threads = 8;
  const trial_set batch = parallel_run_trials(g, *proto, topts);
  ASSERT_EQ(batch.trials.size(), 1u);
  EXPECT_TRUE(batch.trials[0].completed);
}

TEST(ParallelTrialsTest, ThreadsFieldZeroHonorsEnvDefault) {
  const graph g = make_complete_layered_uniform(24, 3);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  trial_options topts;
  topts.trials = 6;
  topts.base_seed = 9;
  topts.threads = 1;
  const trial_set serial = run_trials(g, *proto, topts);

  env_guard guard("3");
  topts.threads = 0;  // → RADIOCAST_THREADS = 3
  const trial_set parallel = parallel_run_trials(g, *proto, topts);
  expect_same_records(serial, parallel, "env-default threads");
}

TEST(ParallelTrialsTest, AllHaltedStopConditionSupported) {
  // Token-termination protocols exercise stop_condition::all_halted.
  const graph g = make_complete_layered_uniform(24, 3);
  const auto proto = make_protocol("select-and-send", g.node_count() - 1);
  trial_options topts;
  topts.trials = 4;
  topts.stop = stop_condition::all_halted;
  topts.max_steps = 500'000;
  topts.threads = 1;
  const trial_set serial = run_trials(g, *proto, topts);
  topts.threads = 2;
  const trial_set parallel = parallel_run_trials(g, *proto, topts);
  expect_same_records(serial, parallel, "all_halted");
}

TEST(ParallelTrialsTest, TimeoutsStayDataInParallel) {
  // A cap far below completion: every trial must time out identically.
  const graph g = make_complete_layered_uniform(40, 8);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  trial_options topts;
  topts.trials = 6;
  topts.max_steps = 3;
  topts.threads = 4;
  const trial_set batch = parallel_run_trials(g, *proto, topts);
  EXPECT_EQ(batch.completed_count(), 0u);
  EXPECT_DOUBLE_EQ(batch.timeout_rate(), 1.0);
  for (const trial_record& t : batch.trials) {
    EXPECT_EQ(t.steps, 3);
    EXPECT_EQ(t.informed_step, -1);
  }
}

// A model that keeps the base class's null clone(): the parallel path must
// refuse it loudly rather than silently sharing state across workers.
class uncloneable_model final : public fault::fault_model {
 public:
  std::string name() const override { return "uncloneable"; }
  void begin_run(const fault::run_view& view) override { (void)view; }
};

TEST(ParallelTrialsTest, NonCloneableFaultModelIsACheckedError) {
  const graph g = make_complete_layered_uniform(20, 2);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  uncloneable_model model;
  trial_options topts;
  topts.trials = 4;
  topts.faults = &model;
  topts.threads = 2;
  EXPECT_THROW(parallel_run_trials(g, *proto, topts), invariant_error);
  // Serial still works: no cloning needed.
  topts.threads = 1;
  const trial_set batch = parallel_run_trials(g, *proto, topts);
  EXPECT_EQ(batch.trials.size(), 4u);
}

TEST(ParallelTrialsTest, WorkerSpansFoldIntoCallerProfiler) {
  const graph g = make_complete_layered_uniform(24, 3);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  obs::span_profiler profiler;
  trial_options topts;
  topts.trials = 8;
  topts.threads = 2;
  topts.profiler = &profiler;
  parallel_run_trials(g, *proto, topts);
  const obs::span_stats* batch = profiler.find("parallel_run_trials");
  ASSERT_NE(batch, nullptr);
  const obs::span_stats* runs = profiler.find("run_broadcast");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->count, 8);  // every trial's span survived the merge
}

// ---------------------------------------------------------------------------
// metrics_registry::merge semantics (unit level)
// ---------------------------------------------------------------------------

TEST(MetricsMergeTest, CountersAndHistogramsAdd) {
  obs::metrics_registry a, b;
  a.get_counter("x").add(3);
  b.get_counter("x").add(4);
  b.get_counter("y").add(1);
  a.get_histogram("h").observe(2);
  b.get_histogram("h").observe(100);
  a.merge(b);
  EXPECT_EQ(a.get_counter("x").value(), 7);
  EXPECT_EQ(a.get_counter("y").value(), 1);
  EXPECT_EQ(a.get_histogram("h").count(), 2);
  EXPECT_EQ(a.get_histogram("h").sum(), 102);
  EXPECT_EQ(a.get_histogram("h").min(), 2);
  EXPECT_EQ(a.get_histogram("h").max(), 100);
}

TEST(MetricsMergeTest, GaugeKeepsLastWrittenValueInMergeOrder) {
  obs::metrics_registry a, b, c;
  a.get_gauge("g").set(1);
  b.get_gauge("g").set(2);
  // c never writes "g".
  c.get_gauge("other").set(9);
  a.merge(b);
  a.merge(c);  // an unwritten gauge must NOT clobber the value
  EXPECT_EQ(a.get_gauge("g").value(), 2);
  EXPECT_EQ(a.get_gauge("g").writes(), 2);
}

TEST(MetricsMergeTest, SeriesConcatenateInMergeOrder) {
  obs::metrics_registry a, b;
  a.get_series("s").push(1);
  a.get_series("s").push(2);
  b.get_series("s").push(3);
  a.merge(b);
  const std::vector<std::int64_t> want{1, 2, 3};
  EXPECT_EQ(a.get_series("s").values(), want);
}

TEST(MetricsMergeTest, MergeIntoEmptyReproducesSource) {
  obs::metrics_registry src, dst;
  src.get_counter("c", "lbl").add(5);
  src.get_gauge("g").set(-3);
  src.get_histogram("h").observe(17);
  src.get_series("s").push(11);
  dst.merge(src);
  EXPECT_EQ(dst.to_json().dump(), src.to_json().dump());
}

}  // namespace
}  // namespace radiocast
