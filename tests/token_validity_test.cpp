// Structural validation of the token algorithms via trace analysis:
// Select-and-Send's token walk must be a genuine DFS of the network, and
// Complete-Layered's leadership chain must pick exactly one head per layer.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stack>

#include "core/complete_layered.h"
#include "core/select_and_send.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace radiocast {
namespace {

// Message kinds replicated from the protocol implementations (they are
// internal constants; the trace exposes them as integers).
constexpr message_kind kSasStopToken = 3;
constexpr message_kind kSasToken = 6;
constexpr message_kind kClStopSelect = 3;
constexpr message_kind kClSelect = 6;

/// Extracts the token's walk (holder sequence) from a Select-and-Send
/// trace: the initial handoff (kStopToken) plus every kToken transmission.
std::vector<node_id> token_walk(const trace& t) {
  std::vector<node_id> walk;
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    if (e.msg.kind == kSasStopToken || e.msg.kind == kSasToken) {
      if (walk.empty()) walk.push_back(e.node);  // the first holder
      walk.push_back(static_cast<node_id>(e.msg.a));
    }
  }
  return walk;
}

/// Checks that `walk` is a depth-first traversal of g starting at 0:
/// consecutive holders are adjacent, a new node is entered from the top of
/// the stack, and a handback pops exactly one stack level.
void expect_valid_dfs(const graph& g, const std::vector<node_id>& walk) {
  ASSERT_FALSE(walk.empty());
  ASSERT_EQ(walk.front(), 0);
  std::set<node_id> visited{0};
  std::stack<node_id> stack;
  stack.push(0);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    const node_id from = walk[i - 1];
    const node_id to = walk[i];
    ASSERT_TRUE(g.has_edge(from, to))
        << "token jumped a non-edge " << from << "→" << to;
    ASSERT_EQ(stack.top(), from) << "token moved from a non-holder";
    if (!visited.count(to)) {
      visited.insert(to);
      stack.push(to);  // descend
    } else {
      stack.pop();  // backtrack: `to` must be the new top (the parent)
      ASSERT_FALSE(stack.empty());
      ASSERT_EQ(stack.top(), to)
          << "backtrack did not return to the DFS parent";
    }
  }
  EXPECT_EQ(visited.size(), static_cast<std::size_t>(g.node_count()))
      << "DFS must visit every node";
  EXPECT_EQ(stack.size(), 1u) << "traversal must end back at the source";
  EXPECT_EQ(stack.top(), 0);
}

class SasDfsValidity : public ::testing::TestWithParam<int> {};

TEST_P(SasDfsValidity, TokenWalkIsADfs) {
  const int variant = GetParam();
  rng gen(static_cast<std::uint64_t>(variant) * 31 + 5);
  graph g = [&]() -> graph {
    switch (variant % 5) {
      case 0: return make_random_tree(40, gen);
      case 1: return make_gnp_connected(40, 0.12, gen);
      case 2: return make_grid(5, 8);
      case 3: return permute_labels(make_complete_layered_uniform(40, 5),
                                    gen);
      default: return make_random_geometric(40, 0.3, gen);
    }
  }();
  const select_and_send_protocol proto;
  trace t;
  run_options opts;
  opts.max_steps = 5'000'000;
  opts.stop = stop_condition::all_halted;
  opts.sink = &t;
  const run_result res = run_broadcast(g, proto, opts);
  ASSERT_TRUE(res.completed);
  expect_valid_dfs(g, token_walk(t));
}

INSTANTIATE_TEST_SUITE_P(Graphs, SasDfsValidity,
                         ::testing::Range(0, 10));

TEST(ClChainValidityTest, OneHeadPerLayerInOrder) {
  graph g = make_complete_layered_uniform(120, 10);
  const complete_layered_protocol proto;
  trace t;
  run_options opts;
  // The last selections happen after everyone is already informed (the
  // wake order that informs layer D precedes choosing its head), so run a
  // fixed budget past completion instead of stopping at all-informed.
  opts.max_steps = 5000;
  opts.stop = stop_condition::all_halted;
  opts.sink = &t;
  const run_result res = run_broadcast(g, proto, opts);
  std::int64_t informed = 0;
  for (std::int64_t at : res.informed_at) informed += at >= 0 ? 1 : 0;
  ASSERT_EQ(informed, g.node_count());

  const auto dist = bfs_distances(g, 0);
  std::vector<node_id> chain{0};
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    if (e.msg.kind == kClStopSelect || e.msg.kind == kClSelect) {
      chain.push_back(static_cast<node_id>(e.msg.a));
    }
  }
  // The chain must step through layers 1, 2, …, D, one head per layer.
  ASSERT_EQ(chain.size(), 11u);
  for (std::size_t k = 0; k < chain.size(); ++k) {
    EXPECT_EQ(dist[static_cast<std::size_t>(chain[k])],
              static_cast<int>(k))
        << "head " << k << " is not in layer " << k;
  }
  // Consecutive heads are adjacent (the select order must be received).
  for (std::size_t k = 1; k < chain.size(); ++k) {
    EXPECT_TRUE(g.has_edge(chain[k - 1], chain[k]));
  }
}

TEST(ClChainValidityTest, StopsArriveBottomUp) {
  // Stop-layer orders target layers k−1 in increasing k, so lower layers
  // halt before upper ones (invariant: after phase k, layers ≤ k−2 have
  // stopped).
  graph g = make_complete_layered_uniform(60, 6);
  const complete_layered_protocol proto;
  trace t;
  run_options opts;
  opts.max_steps = 1'000'000;
  opts.sink = &t;
  ASSERT_TRUE(run_broadcast(g, proto, opts).completed);
  constexpr message_kind kClStopLayer = 7;
  std::int64_t prev_target = -1;
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    if (e.msg.kind != kClStopLayer) continue;
    EXPECT_GT(e.msg.b, prev_target) << "stop orders must go bottom-up";
    prev_target = e.msg.b;
  }
  EXPECT_GE(prev_target, 0) << "at least one stop order must be issued";
}

}  // namespace
}  // namespace radiocast
