// Tests of the campaign subsystem (src/campaign/): manifest parsing and
// validation, the deterministic shard plan, the exec-layer shard lifecycle
// hooks, shard artifact round-trips including torn files, the
// interrupt/resume/merge bit-identity contract, and the perf-regression
// gate driven by radiocast_inspect regress.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "campaign/artifact.h"
#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/manifest.h"
#include "campaign/regress.h"
#include "core/runner.h"
#include "exec/parallel_trials.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "sim/simulator.h"

namespace radiocast {
namespace {

namespace fs = std::filesystem;
using campaign::manifest;

/// Fresh per-test scratch directory (deterministic path, no clocks).
fs::path test_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / "radiocast_campaign_test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

obs::json_value parse(const std::string& text) {
  std::string error;
  std::optional<obs::json_value> doc = obs::json_parse(text, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc.has_value() ? *doc : obs::json_value::object();
}

const char* kManifestText = R"({
  "schema": "radiocast.campaign.v1",
  "name": "test-sweep",
  "base_seed": 7,
  "trials_per_point": 4,
  "shard_size": 2,
  "threads": 2,
  "max_steps": 100000,
  "grid": [
    {"family": "complete-layered", "n": 48, "d": 6, "protocol": "decay"},
    {"family": "path", "n": 24, "protocol": "round-robin"}
  ]
})";

manifest test_manifest() {
  std::string error;
  std::optional<manifest> m =
      campaign::parse_manifest(parse(kManifestText), &error);
  EXPECT_TRUE(m.has_value()) << error;
  return *m;
}

/// Trial records must agree on every deterministic field (wall_ms is host
/// noise by contract).
void expect_same_records(const std::vector<trial_record>& a,
                         const std::vector<trial_record>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed) << i;
    EXPECT_EQ(a[i].completed, b[i].completed) << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << i;
    EXPECT_EQ(a[i].informed_step, b[i].informed_step) << i;
    EXPECT_EQ(a[i].transmissions, b[i].transmissions) << i;
    EXPECT_EQ(a[i].collisions, b[i].collisions) << i;
    EXPECT_EQ(a[i].deliveries, b[i].deliveries) << i;
    EXPECT_EQ(a[i].crashed_nodes, b[i].crashed_nodes) << i;
    EXPECT_EQ(a[i].suppressed_deliveries, b[i].suppressed_deliveries) << i;
    EXPECT_EQ(a[i].churned_edges, b[i].churned_edges) << i;
  }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST(ManifestTest, ParsesAndRoundTripsThroughToJson) {
  const manifest m = test_manifest();
  EXPECT_EQ(m.name, "test-sweep");
  EXPECT_EQ(m.base_seed, 7u);
  EXPECT_EQ(m.trials_per_point, 4);
  EXPECT_EQ(m.shard_size, 2);
  EXPECT_EQ(m.threads, 2);
  ASSERT_EQ(m.grid.size(), 2u);
  EXPECT_EQ(m.grid[0].case_name(), "complete-layered/n=48/d=6/decay");
  EXPECT_EQ(m.grid[1].case_name(), "path/n=24/round-robin");

  std::string error;
  std::optional<manifest> again =
      campaign::parse_manifest(m.to_json(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->fingerprint(), m.fingerprint());
  EXPECT_EQ(again->to_json().dump(), m.to_json().dump());
}

TEST(ManifestTest, RejectsSchemaViolations) {
  auto rejects = [](const std::string& mutation, const std::string& why) {
    obs::json_value doc = parse(kManifestText);
    obs::json_value patch = parse(mutation);
    for (const auto& [key, v] : patch.members()) doc.set(key, v);
    std::string error;
    EXPECT_FALSE(campaign::parse_manifest(doc, &error).has_value()) << why;
    EXPECT_FALSE(error.empty()) << why;
  };
  rejects(R"({"schema": "radiocast.campaign.v2"})", "wrong schema tag");
  rejects(R"({"name": ""})", "empty name");
  rejects(R"({"trials_per_point": 0})", "no trials");
  rejects(R"({"max_steps": 0})", "no step budget");
  rejects(R"({"grid": []})", "empty grid");
  rejects(R"({"grid": [{"family": "torus", "n": 8, "protocol": "decay"}]})",
          "unknown family");
  rejects(R"({"grid": [{"family": "path", "n": 8, "protocol": "warp"}]})",
          "unknown protocol");
  rejects(R"({"grid": [{"family": "path", "n": 1, "protocol": "decay"}]})",
          "n too small");
  rejects(
      R"({"grid": [{"family": "complete-layered", "n": 8, "d": 9,
                    "protocol": "decay"}]})",
      "d out of range");
  rejects(R"({"grid": [{"family": "gnp", "n": 8, "p": 0.0,
                        "protocol": "decay"}]})",
          "gnp needs p in (0,1]");
  rejects(R"({"grid": [{"family": "path", "n": 8, "protocol": "kp"}]})",
          "kp needs known_d");
}

TEST(ManifestTest, FingerprintChangesWithContent) {
  const manifest m = test_manifest();
  manifest edited = m;
  edited.trials_per_point = 5;
  EXPECT_NE(edited.fingerprint(), m.fingerprint());
}

// ---------------------------------------------------------------------------
// Shard plan
// ---------------------------------------------------------------------------

TEST(PlanTest, CutsEveryPointIntoSeedOrderedSlices) {
  manifest m = test_manifest();
  m.trials_per_point = 5;  // 2 is not a divisor: last shard is smaller
  const std::vector<campaign::shard_plan> plan = campaign::plan_shards(m);
  ASSERT_EQ(plan.size(), 6u);  // ceil(5/2) = 3 shards per point
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].shard, static_cast<int>(i));
  }
  EXPECT_EQ(plan[0].point, 0);
  EXPECT_EQ(plan[2].point, 0);
  EXPECT_EQ(plan[3].point, 1);
  EXPECT_EQ(plan[2].first_trial, 4);
  EXPECT_EQ(plan[2].count, 1);
  EXPECT_EQ(plan[2].base_seed, 7u + 4u);
  // Every point reuses the same seed range — points differ by topology and
  // protocol, not by seeds.
  EXPECT_EQ(plan[3].first_trial, 0);
  EXPECT_EQ(plan[3].base_seed, 7u);
}

TEST(PlanTest, ShardSizeZeroMeansOneShardPerPoint) {
  manifest m = test_manifest();
  m.shard_size = 0;
  const std::vector<campaign::shard_plan> plan = campaign::plan_shards(m);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].count, m.trials_per_point);
  EXPECT_EQ(plan[1].count, m.trials_per_point);
}

// ---------------------------------------------------------------------------
// Exec shard lifecycle hooks
// ---------------------------------------------------------------------------

TEST(ShardHooksTest, OnDoneStreamsShardsInSeedOrder) {
  graph g = make_path(16);
  const auto proto = make_protocol("round-robin", 15);

  trial_options serial;
  serial.trials = 10;
  serial.base_seed = 3;
  const trial_set expected = run_trials(g, *proto, serial);

  std::mutex started_mu;
  int started = 0;
  std::vector<shard_info> done_order;
  std::vector<trial_record> streamed;

  trial_options opts = serial;
  opts.threads = 4;
  opts.shard_size = 3;  // 10 trials → shards of 3,3,3,1
  opts.hooks.on_start = [&](const shard_info&) {
    const std::lock_guard<std::mutex> lock(started_mu);
    ++started;
  };
  opts.hooks.on_done = [&](const shard_info& info, const trial_set& batch) {
    done_order.push_back(info);
    streamed.insert(streamed.end(), batch.trials.begin(),
                    batch.trials.end());
  };
  const trial_set folded = parallel_run_trials(g, *proto, opts);

  EXPECT_EQ(started, 4);
  ASSERT_EQ(done_order.size(), 4u);
  for (std::size_t i = 0; i < done_order.size(); ++i) {
    EXPECT_EQ(done_order[i].index, static_cast<int>(i));
  }
  EXPECT_EQ(done_order[3].first, 9);
  EXPECT_EQ(done_order[3].count, 1);
  EXPECT_EQ(done_order[3].base_seed, 3u + 9u);
  // The streamed concatenation AND the folded result both equal serial.
  expect_same_records(streamed, expected.trials);
  expect_same_records(folded.trials, expected.trials);
}

TEST(ShardHooksTest, DiscardRecordsReturnsAnEmptySet) {
  graph g = make_path(12);
  const auto proto = make_protocol("round-robin", 11);
  trial_options opts;
  opts.trials = 6;
  opts.base_seed = 1;
  opts.threads = 2;
  opts.shard_size = 2;
  opts.hooks.discard_records = true;
  int streamed = 0;
  opts.hooks.on_done = [&](const shard_info&, const trial_set& batch) {
    streamed += static_cast<int>(batch.trials.size());
  };
  const trial_set out = parallel_run_trials(g, *proto, opts);
  EXPECT_TRUE(out.trials.empty());
  EXPECT_EQ(streamed, 6);
}

TEST(ShardHooksTest, HooksForceShardPathEvenSingleThreaded) {
  graph g = make_path(12);
  const auto proto = make_protocol("round-robin", 11);
  trial_options opts;
  opts.trials = 4;
  opts.base_seed = 2;
  opts.threads = 1;
  opts.shard_size = 2;
  std::vector<int> firsts;
  opts.hooks.on_done = [&](const shard_info& info, const trial_set&) {
    firsts.push_back(info.first);
  };
  parallel_run_trials(g, *proto, opts);
  EXPECT_EQ(firsts, (std::vector<int>{0, 2}));
}

// ---------------------------------------------------------------------------
// Shard artifacts
// ---------------------------------------------------------------------------

TEST(ArtifactTest, TornFileYieldsCompletePrefixNotAnError) {
  const fs::path dir = test_dir("torn");
  const fs::path path = dir / "shard_0000.ndjson";
  campaign::shard_header h;
  h.campaign = "torn";
  h.shard = 0;
  h.point = 0;
  h.case_name = "path/n=8/decay";
  h.params = obs::json_value::object();
  h.first_trial = 0;
  h.trials = 4;
  h.base_seed = 1;
  trial_record t;
  t.completed = true;
  {
    std::ofstream out(path, std::ios::binary);
    campaign::header_record(h).write(out);
    out << '\n';
    t.seed = 1;
    campaign::trial_record_json(t).write(out);
    out << '\n';
    t.seed = 2;
    campaign::trial_record_json(t).write(out);
    out << '\n';
    out << "{\"record\":\"trial\",\"seed\":3,\"comp";  // torn mid-record
  }
  std::string error;
  const auto art = campaign::read_shard_file(path.string(), &error);
  ASSERT_TRUE(art.has_value()) << error;
  EXPECT_FALSE(art->complete);
  ASSERT_EQ(art->trials.size(), 2u);
  EXPECT_EQ(art->trials[1].seed, 2u);
}

TEST(ArtifactTest, OutOfOrderSeedsAreCorruption) {
  const fs::path dir = test_dir("out-of-order");
  const fs::path path = dir / "shard_0000.ndjson";
  campaign::shard_header h;
  h.campaign = "x";
  h.case_name = "c";
  h.params = obs::json_value::object();
  h.shard = 0;
  h.point = 0;
  h.first_trial = 0;
  h.trials = 2;
  h.base_seed = 1;
  trial_record t;
  {
    std::ofstream out(path, std::ios::binary);
    campaign::header_record(h).write(out);
    out << '\n';
    t.seed = 2;  // expected seed 1 first
    campaign::trial_record_json(t).write(out);
    out << '\n';
  }
  std::string error;
  EXPECT_FALSE(campaign::read_shard_file(path.string(), &error).has_value());
  EXPECT_NE(error.find("out of order"), std::string::npos) << error;
}

TEST(ArtifactTest, PreRecoveryTrialRecordsStillParse) {
  // Shards written before the recovery/partition fields existed carry no
  // recoveries/reachable_nodes/informed_reachable/outcome keys; they must
  // parse with defaults (outcome inferred from the completed flag) so
  // resumed campaigns keep their old shards.
  trial_record t;
  t.seed = 7;
  t.completed = false;
  t.steps = 64;
  const obs::json_value full = campaign::trial_record_json(t);
  obs::json_value old = obs::json_value::object();
  for (const auto& [key, member] : full.members()) {
    if (key == "recoveries" || key == "reachable_nodes" ||
        key == "informed_reachable" || key == "outcome") {
      continue;
    }
    old.set(key, member);
  }
  std::string error;
  const auto parsed = campaign::parse_trial(old, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->recoveries, 0);
  EXPECT_EQ(parsed->reachable_nodes, 0);
  EXPECT_EQ(parsed->informed_reachable, 0);
  EXPECT_EQ(parsed->outcome, run_outcome::stuck);

  // New-format records round-trip the outcome tag exactly…
  t.completed = true;
  t.outcome = run_outcome::source_lost;
  t.recoveries = 3;
  t.reachable_nodes = 5;
  t.informed_reachable = 5;
  const auto fresh = campaign::parse_trial(campaign::trial_record_json(t));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->outcome, run_outcome::source_lost);
  EXPECT_EQ(fresh->recoveries, 3);
  EXPECT_EQ(fresh->reachable_nodes, 5);
  EXPECT_EQ(fresh->informed_reachable, 5);

  // …and a present-but-bogus tag is corruption, not a default.
  obs::json_value bogus = campaign::trial_record_json(t);
  bogus.set("outcome", "exploded");
  EXPECT_FALSE(campaign::parse_trial(bogus, &error).has_value());
  EXPECT_NE(error.find("outcome"), std::string::npos) << error;
}

TEST(ArtifactTest, WallClockKeyClassifier) {
  EXPECT_TRUE(campaign::is_wall_clock_key("wall_ms"));
  EXPECT_TRUE(campaign::is_wall_clock_key("batch_wall_ms"));
  EXPECT_TRUE(campaign::is_wall_clock_key("reference_min_ms"));
  EXPECT_TRUE(campaign::is_wall_clock_key("speedup"));
  EXPECT_TRUE(campaign::is_wall_clock_key("soa_speedup"));
  EXPECT_TRUE(campaign::is_wall_clock_key("det_soa_speedup"));
  EXPECT_TRUE(campaign::is_wall_clock_key("off_over_on"));
  EXPECT_TRUE(campaign::is_wall_clock_key("steps_per_sec_frontier"));
  EXPECT_FALSE(campaign::is_wall_clock_key("steps"));
  EXPECT_FALSE(campaign::is_wall_clock_key("timeout_rate"));
  EXPECT_FALSE(campaign::is_wall_clock_key("transmissions"));

  obs::json_value doc = parse(
      R"({"steps": 3, "wall_ms": 1.5,
          "nested": {"speedup": 2.0, "seed": 4},
          "list": [{"batch_wall_ms": 9, "ok": true}]})");
  const std::string stripped = campaign::strip_wall_clock_keys(doc).dump();
  EXPECT_EQ(stripped,
            R"({"steps":3,"nested":{"seed":4},"list":[{"ok":true}]})");
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

TEST(CheckpointTest, MarksAndPersistsAtomically) {
  const fs::path dir = test_dir("checkpoint");
  const std::string path = (dir / "checkpoint.json").string();
  campaign::checkpoint cp;
  cp.campaign = "cp";
  cp.manifest_fingerprint = 99;
  cp.total_shards = 5;
  cp.mark_completed(3);
  cp.mark_completed(0);
  cp.mark_completed(3);  // idempotent
  EXPECT_EQ(cp.completed, (std::vector<int>{0, 3}));
  EXPECT_TRUE(cp.is_completed(0));
  EXPECT_FALSE(cp.is_completed(1));
  campaign::save_checkpoint(cp, path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  std::string error;
  const auto loaded = campaign::load_checkpoint(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->campaign, "cp");
  EXPECT_EQ(loaded->manifest_fingerprint, 99u);
  EXPECT_EQ(loaded->total_shards, 5);
  EXPECT_EQ(loaded->completed, (std::vector<int>{0, 3}));
  EXPECT_GT(loaded->updated_unix_ms, 0);

  // Missing file: empty error (a fresh campaign, not a failure).
  error = "sentinel";
  EXPECT_FALSE(
      campaign::load_checkpoint((dir / "nope.json").string(), &error)
          .has_value());
  EXPECT_TRUE(error.empty());
}

// ---------------------------------------------------------------------------
// Run / resume / merge
// ---------------------------------------------------------------------------

TEST(CampaignTest, InterruptedResumeMergesBitIdenticallyToUninterrupted) {
  const manifest m = test_manifest();
  const fs::path dir_a = test_dir("resume-a");
  const fs::path dir_b = test_dir("resume-b");

  // A: stop after two shards, then resume to completion.
  campaign::campaign_options opts_a;
  opts_a.out_dir = dir_a.string();
  opts_a.stop_after = 2;
  campaign::campaign_result first = campaign::run_campaign(m, opts_a);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.executed, 2);
  EXPECT_FALSE(first.finished);
  // The merge must refuse a half-done campaign.
  std::string error;
  EXPECT_FALSE(
      campaign::merge_campaign(m, dir_a.string(), &error).has_value());
  EXPECT_FALSE(error.empty());

  opts_a.stop_after = -1;
  campaign::campaign_result second = campaign::run_campaign(m, opts_a);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.skipped, 2);
  EXPECT_EQ(second.executed, 2);
  EXPECT_TRUE(second.finished);

  // B: one uninterrupted pass, serial this time (threads must not matter).
  manifest serial = m;
  serial.threads = 1;
  campaign::campaign_options opts_b;
  opts_b.out_dir = dir_b.string();
  campaign::campaign_result only = campaign::run_campaign(serial, opts_b);
  ASSERT_TRUE(only.ok) << only.error;
  EXPECT_TRUE(only.finished);

  const auto merged_a = campaign::merge_campaign(m, dir_a.string(), &error);
  ASSERT_TRUE(merged_a.has_value()) << error;
  const auto merged_b =
      campaign::merge_campaign(serial, dir_b.string(), &error);
  ASSERT_TRUE(merged_b.has_value()) << error;
  // The config block echoes the manifest (including its thread count), so
  // compare the measurement payload: every case, trial, and statistic must
  // be byte-identical once wall-clock keys are stripped.
  EXPECT_EQ(campaign::strip_wall_clock_keys(*merged_a->find("cases")).dump(),
            campaign::strip_wall_clock_keys(*merged_b->find("cases")).dump());
}

TEST(CampaignTest, MergedTrialsMatchAMonolithicBatch) {
  const manifest m = test_manifest();
  const fs::path dir = test_dir("monolithic");
  campaign::campaign_options opts;
  opts.out_dir = dir.string();
  ASSERT_TRUE(campaign::run_campaign(m, opts).ok);
  std::string error;
  const auto merged = campaign::merge_campaign(m, dir.string(), &error);
  ASSERT_TRUE(merged.has_value()) << error;

  for (std::size_t point = 0; point < m.grid.size(); ++point) {
    graph g = campaign::build_graph(m.grid[point]);
    const auto proto = campaign::build_protocol(m.grid[point]);
    trial_options topts;
    topts.trials = m.trials_per_point;
    topts.base_seed = m.base_seed;
    topts.max_steps = m.max_steps;
    const trial_set expected = run_trials(g, *proto, topts);

    const obs::json_value& c = merged->find("cases")->items()[point];
    EXPECT_EQ(c.find("name")->as_string(),
              m.grid[point].case_name());
    const obs::json_value* trials = c.find("trials");
    ASSERT_EQ(trials->items().size(), expected.trials.size());
    for (std::size_t i = 0; i < expected.trials.size(); ++i) {
      const obs::json_value& t = trials->items()[i];
      EXPECT_EQ(t.find("seed")->as_int(),
                static_cast<std::int64_t>(expected.trials[i].seed));
      EXPECT_EQ(t.find("steps")->as_int(), expected.trials[i].steps);
      EXPECT_EQ(t.find("transmissions")->as_int(),
                expected.trials[i].transmissions);
    }
  }
}

TEST(CampaignTest, EditedManifestIsRejectedUntilFresh) {
  const manifest m = test_manifest();
  const fs::path dir = test_dir("fingerprint");
  campaign::campaign_options opts;
  opts.out_dir = dir.string();
  opts.stop_after = 1;
  ASSERT_TRUE(campaign::run_campaign(m, opts).ok);

  manifest edited = m;
  edited.trials_per_point = 6;
  opts.stop_after = -1;
  const campaign::campaign_result rejected =
      campaign::run_campaign(edited, opts);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("fingerprint"), std::string::npos)
      << rejected.error;

  opts.fresh = true;
  const campaign::campaign_result restarted =
      campaign::run_campaign(edited, opts);
  ASSERT_TRUE(restarted.ok) << restarted.error;
  EXPECT_TRUE(restarted.finished);
  EXPECT_EQ(restarted.skipped, 0);
}

TEST(CampaignTest, DeletedShardArtifactIsReExecuted) {
  const manifest m = test_manifest();
  const fs::path dir = test_dir("deleted-shard");
  campaign::campaign_options opts;
  opts.out_dir = dir.string();
  ASSERT_TRUE(campaign::run_campaign(m, opts).ok);

  fs::remove(dir / "shards" / campaign::shard_file_name(1));
  const campaign::campaign_result again = campaign::run_campaign(m, opts);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.executed, 1);
  EXPECT_EQ(again.skipped, 3);
  EXPECT_TRUE(again.finished);
  std::string error;
  EXPECT_TRUE(campaign::merge_campaign(m, dir.string(), &error).has_value())
      << error;
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

struct bench_shape {
  double mean = 120.0;
  double timeout_rate = 0.0;
  double speedup = 4.0;
  std::int64_t steps = 100;
  std::string name = "c1";
  double frontier_ms = 3.0;
};

obs::json_value bench_doc(const bench_shape& s) {
  std::ostringstream ss;
  ss << R"({"schema":"radiocast.bench.v1","bench":"b","config":{},)"
     << R"("cases":[{"name":")" << s.name << R"(","params":{},"trials":[],)"
     << R"("timeout_rate":)" << s.timeout_rate << R"(,"wall_ms":1.0,)"
     << R"("steps":{"mean":)" << s.mean << R"(},)"
     << R"("values":{"steps":)" << s.steps << R"(,"speedup":)" << s.speedup
     << R"(,"frontier_min_ms":)" << s.frontier_ms << R"(}}],"spans":[]})";
  std::string error;
  const auto doc = obs::json_parse(ss.str(), &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return *doc;
}

std::string first_problem(const campaign::regress_report& report) {
  return report.problems.empty() ? std::string{} : report.problems.front();
}

TEST(RegressTest, IdenticalRunsPass) {
  const auto base = bench_doc({});
  const auto report = campaign::run_regress(base, base, {});
  EXPECT_TRUE(report.ok) << first_problem(report);
  EXPECT_EQ(report.comparisons, 4);  // mean, timeout_rate, steps, speedup
}

TEST(RegressTest, StepsMeanIsExactByDefault) {
  const auto base = bench_doc({});
  const auto fresh = bench_doc({.mean = 121.0});
  const auto report = campaign::run_regress(base, fresh, {});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.problems.size(), 1u);
  EXPECT_NE(report.problems[0].find("steps.mean"), std::string::npos);

  campaign::regress_options loose;
  loose.tolerances.emplace_back("steps.mean", 5.0);
  EXPECT_TRUE(campaign::run_regress(base, fresh, loose).ok);
  // Improvement (lower mean) always passes.
  EXPECT_TRUE(campaign::run_regress(base, bench_doc({.mean = 90.0}), {}).ok);
}

TEST(RegressTest, ThroughputKeysGetWideTolerance) {
  const auto base = bench_doc({});
  // 40% drop: inside the 50% default.
  EXPECT_TRUE(campaign::run_regress(base, bench_doc({.speedup = 2.4}), {}).ok);
  // 55% drop: regression.
  const auto report =
      campaign::run_regress(base, bench_doc({.speedup = 1.8}), {});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.problems.size(), 1u);
  EXPECT_NE(report.problems[0].find("speedup"), std::string::npos);
  // Tightening via override.
  campaign::regress_options tight;
  tight.tolerances.emplace_back("speedup", 5.0);
  EXPECT_FALSE(
      campaign::run_regress(base, bench_doc({.speedup = 3.5}), tight).ok);
}

TEST(RegressTest, ExactAndStructuralChecks) {
  const auto base = bench_doc({});
  // values.steps must match exactly.
  EXPECT_FALSE(campaign::run_regress(base, bench_doc({.steps = 101}), {}).ok);
  // A timeout appearing where the baseline had none is a regression.
  EXPECT_FALSE(
      campaign::run_regress(base, bench_doc({.timeout_rate = 0.25}), {}).ok);
  // A baseline case missing from the fresh run is a regression.
  const auto report =
      campaign::run_regress(base, bench_doc({.name = "other"}), {});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.problems.size(), 1u);
  EXPECT_NE(report.problems[0].find("missing"), std::string::npos);
  // Raw wall-clock values never participate.
  EXPECT_TRUE(
      campaign::run_regress(base, bench_doc({.frontier_ms = 999.0}), {}).ok);
}

}  // namespace
}  // namespace radiocast
