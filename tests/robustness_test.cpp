// Robustness and failure-injection tests: misbehaving protocols, degenerate
// parameters, and defensive checks across the library's contract surface.
#include <gtest/gtest.h>

#include "adversary/lower_bound_builder.h"
#include "adversary/selective_family.h"
#include "core/echo.h"
#include "core/runner.h"
#include "core/universal_sequence.h"
#include "fault/churn.h"
#include "fault/crash.h"
#include "fault/jammer.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"

namespace radiocast {
namespace {

// A protocol whose source never transmits: a broken broadcaster. Legal as
// an object, useless as an algorithm — used to exercise stuck-handling.
class silent_protocol final : public protocol {
 public:
  std::string name() const override { return "silent"; }
  bool deterministic() const override { return true; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params&) const override {
    class node final : public protocol_node {
     public:
      explicit node(node_id label) : informed_(label == 0) {}
      std::optional<message> on_step(const node_context&) override {
        return std::nullopt;
      }
      void on_receive(const node_context&, const message&) override {
        informed_ = true;
      }
      bool informed() const override { return informed_; }

     private:
      bool informed_;
    };
    return std::make_unique<node>(label);
  }
};

// A protocol that breaks the source-starts-informed contract.
class uninformed_source_protocol final : public protocol {
 public:
  std::string name() const override { return "broken-source"; }
  bool deterministic() const override { return true; }
  std::unique_ptr<protocol_node> make_node(
      node_id, const protocol_params&) const override {
    class node final : public protocol_node {
     public:
      std::optional<message> on_step(const node_context&) override {
        return std::nullopt;
      }
      void on_receive(const node_context&, const message&) override {}
      bool informed() const override { return false; }  // even the source
    };
    return std::make_unique<node>();
  }
};

TEST(RobustnessTest, SilentProtocolNeverCompletes) {
  graph g = make_path(4);
  const silent_protocol proto;
  run_options opts;
  opts.max_steps = 200;
  const run_result res = run_broadcast(g, proto, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.steps, 200);
  EXPECT_EQ(res.transmissions, 0);
}

TEST(RobustnessTest, BrokenSourceContractIsCaught) {
  graph g = make_path(3);
  const uninformed_source_protocol proto;
  EXPECT_THROW(run_broadcast(g, proto, {}), invariant_error);
}

TEST(RobustnessTest, AdversaryMarksStuckConstruction) {
  // Against a silent algorithm the builder waits for the source's first
  // transmission forever; with a small cap it must flag the result stuck
  // and still deliver a well-formed radius-D topology.
  const silent_protocol proto;
  adversary_options opts;
  opts.stage_wait_cap = 500;
  const adversarial_network net =
      build_adversarial_network(proto, 512, 8, opts);
  EXPECT_TRUE(net.stuck);
  EXPECT_EQ(net.g.node_count(), 512);
  EXPECT_TRUE(is_connected(net.g));
  EXPECT_EQ(radius_from(net.g), 8);
}

TEST(RobustnessTest, SelectionDriverRejectsUseAfterFinish) {
  selection_driver driver({1, 2}, /*helper=*/5, /*bound=*/7);
  // Drive one full echo with an "empty" outcome: order, silence, helper.
  (void)driver.on_step(0);
  (void)driver.on_step(1);
  (void)driver.on_step(2);
  driver.on_receive(message{2, 5, 0, 0, 0, 0});  // helper reply (step 2)
  (void)driver.on_step(3);                       // evaluate → empty_set
  ASSERT_TRUE(driver.finished());
  EXPECT_EQ(driver.result(), selection_driver::status::empty_set);
  EXPECT_THROW(driver.on_step(4), precondition_error);
  EXPECT_THROW(driver.selected(), precondition_error);
}

TEST(RobustnessTest, SelectionDriverIgnoresForeignKinds) {
  selection_driver driver({1, 2}, 5, 7);
  (void)driver.on_step(0);
  (void)driver.on_step(1);
  driver.on_receive(message{99, 3, 0, 0, 0, 0});  // not a reply: ignored
  (void)driver.on_step(2);
  driver.on_receive(message{2, 5, 0, 0, 0, 0});
  (void)driver.on_step(3);
  EXPECT_EQ(driver.result(), selection_driver::status::empty_set);
}

TEST(RobustnessTest, ModularFamilyWithTooFewPrimesFails) {
  // One prime cannot separate pairs that collide modulo it: negative test
  // for the verifier + the construction's prime requirement.
  const set_family family = modular_selective_family(16, 2, 1);  // q = 2
  EXPECT_FALSE(is_selective(family, 16, 2));
}

TEST(RobustnessTest, UniversalSequenceDeterministic) {
  const universal_sequence a(14, 12);
  const universal_sequence b(14, 12);
  ASSERT_EQ(a.period(), b.period());
  for (std::int64_t i = 1; i <= a.period(); ++i) {
    ASSERT_EQ(a.exponent_at(i), b.exponent_at(i));
  }
}

TEST(RobustnessTest, UniversalSequenceAbsentExponentGap) {
  const universal_sequence seq(10, 8);
  // Exponent 0 (probability 1) never appears in the sequence.
  EXPECT_EQ(seq.max_cyclic_gap(0), seq.period() + 1);
  EXPECT_THROW(seq.exponent_at(0), precondition_error);  // 1-based index
}

TEST(RobustnessTest, RunnerValidatesLabelBound) {
  // kp protocols are built for a fixed r; running them with a larger label
  // space must be rejected, a smaller one is fine.
  graph small = make_path(8);
  const auto proto = make_protocol("kp", 7, 2);
  EXPECT_NO_THROW(run_broadcast(small, *proto, {}));
  graph big = make_path(32);
  run_options opts;
  opts.max_steps = 100;
  EXPECT_THROW(run_broadcast(big, *proto, opts), precondition_error);
}

TEST(RobustnessTest, EmptyGraphAndTinyGraphEdges) {
  EXPECT_THROW(graph::undirected(0), precondition_error);
  graph one = graph::undirected(1);
  EXPECT_EQ(one.node_count(), 1);
  EXPECT_EQ(radius_from(one), 0);
  EXPECT_TRUE(is_connected(one));
}

TEST(RobustnessTest, RunOptionsCapValidation) {
  graph g = make_path(2);
  const auto proto = make_protocol("round-robin", 1);
  run_options opts;
  opts.max_steps = 0;
  EXPECT_THROW(run_broadcast(g, *proto, opts), precondition_error);
}

TEST(RobustnessTest, CrashedSourceNeverCompletes) {
  // With the source crash-stopped at step 0 nobody ever transmits; the
  // run must time out (not complete vacuously) because uninformed live
  // nodes remain.
  rng gen(4);
  graph g = make_gnp_connected(24, 0.2, gen);
  const auto proto = make_protocol("decay", 23);
  fault::crash_options copts;
  copts.schedule = {{0, 0}};
  fault::crash_model crash(copts);
  run_options opts;
  opts.max_steps = 2'000;
  opts.faults = &crash;
  const run_result res = run_broadcast(g, *proto, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.crashed_nodes, 1);
  EXPECT_EQ(res.transmissions, 0);
  EXPECT_EQ(res.deliveries, 0);
}

TEST(RobustnessTest, JammerZeroBudgetIsNoOp) {
  // Budget 0 must be bit-identical to the fault-free run for both
  // strategies: every run_result field, including the per-node vectors.
  rng gen(12);
  graph g = make_gnp_connected(40, 0.15, gen);
  const auto proto = make_protocol("decay", 39);
  run_options opts;
  opts.seed = 77;
  opts.max_steps = 20'000;
  const run_result base = run_broadcast(g, *proto, opts);
  for (const auto strategy : {fault::jam_strategy::oblivious_random,
                              fault::jam_strategy::greedy_frontier}) {
    fault::jammer_model jam(fault::jammer_options{0, strategy});
    opts.faults = &jam;
    const run_result res = run_broadcast(g, *proto, opts);
    EXPECT_EQ(res.completed, base.completed);
    EXPECT_EQ(res.steps, base.steps);
    EXPECT_EQ(res.informed_step, base.informed_step);
    EXPECT_EQ(res.transmissions, base.transmissions);
    EXPECT_EQ(res.collisions, base.collisions);
    EXPECT_EQ(res.deliveries, base.deliveries);
    EXPECT_EQ(res.informed_at, base.informed_at);
    EXPECT_EQ(res.transmissions_per_node, base.transmissions_per_node);
    EXPECT_EQ(res.suppressed_deliveries, 0);
    EXPECT_EQ(jam.jammed_count(), 0);
  }
}

TEST(RobustnessTest, ChurnPreservingConnectivityStillCompletes) {
  // Aggressive flapping of every non-tree edge: the churn-exempt spanning
  // tree keeps the broadcast solvable, so decay must still finish.
  rng gen(9);
  graph g = make_gnp_connected(32, 0.25, gen);
  const auto proto = make_protocol("decay", 31);
  fault::churn_model churn(fault::churn_options{0.3});
  run_options opts;
  opts.seed = 5;
  opts.max_steps = 100'000;
  opts.faults = &churn;
  const run_result res = run_broadcast(g, *proto, opts);
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.churned_edges, 0);
  EXPECT_GT(churn.eligible_edge_count(), 0u);
}

}  // namespace
}  // namespace radiocast
