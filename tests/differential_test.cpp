// Differential tests: every protocol vs an independent replay of the radio
// model.
//
// Each run records a full event trace (the ring buffer from sim/trace.h,
// sized so nothing is evicted) and this suite replays it against the
// paper's §1 communication rules, reimplemented here from the graph alone:
//
//   * a node hears a message in step s iff EXACTLY ONE of its in-neighbors
//     transmits in s and it does not transmit itself;
//   * ≥ 2 transmitting in-neighbors ⇒ a collision, indistinguishable from
//     silence;
//   * no spontaneous transmissions: every transmitter except the source
//     must have received some message in an earlier step;
//   * under fault injection, a would-be delivery may instead surface as a
//     `drop` event (loss/jamming) and crashed nodes fall silent until a
//     `recover` event (if any) brings them back. This oracle replays
//     retain-mode recoveries; amnesia traces (which re-inform nodes, so
//     informed events are not once-per-node) are covered by the chaos
//     harness oracle (src/fault/chaos.cpp) instead.
//
// The simulator's aggregate counters (transmissions, deliveries,
// collisions, suppressed_deliveries, informed_at) must equal what the
// replay derives, and on completion every surviving node must be informed.
// Any divergence between the step loop and the model definition —
// miscounted arrivals, deliveries through the wrong phase, events at the
// wrong step — fails here even if the protocol still happens to complete.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "exec/parallel_trials.h"
#include "fault/churn.h"
#include "fault/crash.h"
#include "fault/fault_model.h"
#include "fault/loss.h"
#include "fault/partition.h"
#include "fault/recovery.h"
#include "obs/metrics.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/assert.h"
#include "util/rng.h"

namespace radiocast {
namespace {

// Events of one step, bucketed by type for the replay.
struct step_events {
  std::set<node_id> transmit;
  std::map<node_id, message> receive;  // listener → delivered frame
  std::set<node_id> collision;
  std::set<node_id> informed;
  std::set<node_id> crash;
  std::set<node_id> recover;
  std::set<node_id> amnesia;  // recoveries with the state-loss flag set
  std::set<node_id> drop;
  bool edge_churn = false;  // any edge_down/edge_up (unsupported here)
};

std::map<std::int64_t, step_events> bucket_by_step(const trace& tr) {
  std::map<std::int64_t, step_events> steps;
  for (const trace_event& e : tr.events()) {
    step_events& s = steps[e.step];
    switch (e.what) {
      case trace_event::type::transmit:
        EXPECT_TRUE(s.transmit.insert(e.node).second)
            << "node " << e.node << " transmitted twice in step " << e.step;
        break;
      case trace_event::type::receive:
        EXPECT_TRUE(s.receive.emplace(e.node, e.msg).second)
            << "node " << e.node << " received twice in step " << e.step;
        break;
      case trace_event::type::collision:
        EXPECT_TRUE(s.collision.insert(e.node).second);
        break;
      case trace_event::type::informed:
        EXPECT_TRUE(s.informed.insert(e.node).second);
        break;
      case trace_event::type::crash:
        EXPECT_TRUE(s.crash.insert(e.node).second);
        break;
      case trace_event::type::recover:
        EXPECT_TRUE(s.recover.insert(e.node).second);
        if (e.msg.a == 1) s.amnesia.insert(e.node);
        break;
      case trace_event::type::drop:
        // Exactly-one-transmitter ⇒ at most one candidate per listener,
        // so drops cannot repeat within a step either.
        EXPECT_TRUE(s.drop.insert(e.node).second);
        break;
      case trace_event::type::edge_down:
      case trace_event::type::edge_up:
        s.edge_churn = true;
        break;
    }
  }
  return steps;
}

// Replays the trace against the radio rule and cross-checks run_result.
// `faults_allowed` admits crash and drop events (still no churn: a down
// edge changes the effective topology and this oracle reads the static
// graph).
void verify_against_radio_rule(const graph& g, const trace& tr,
                               const run_result& r, bool faults_allowed,
                               const std::string& what) {
  ASSERT_EQ(tr.dropped(), 0u)
      << what << ": ring evicted events; grow the capacity";
  const node_id n = g.node_count();
  const auto steps = bucket_by_step(tr);

  std::set<node_id> crashed;
  std::vector<bool> has_received(static_cast<std::size_t>(n), false);
  std::vector<std::int64_t> first_informed(static_cast<std::size_t>(n), -1);
  std::int64_t transmissions = 0, deliveries = 0, collisions = 0, drops = 0;
  std::int64_t crashes = 0, recoveries = 0;

  for (const auto& [step, ev] : steps) {
    const std::string where = what + ", step " + std::to_string(step);
    EXPECT_FALSE(ev.edge_churn) << where << ": unexpected churn event";
    if (!faults_allowed) {
      EXPECT_TRUE(ev.crash.empty() && ev.drop.empty() && ev.recover.empty())
          << where << ": fault events in a fault-free run";
    }
    // Amnesia recoveries re-inform nodes, breaking the informed-once
    // bookkeeping below; those traces belong to the chaos oracle.
    EXPECT_TRUE(ev.amnesia.empty())
        << where << ": amnesia traces are not supported by this oracle";
    // Crashes land at the top of the step, before transmit decisions;
    // recoveries follow, so a retain-mode node is live again in the same
    // step its rejoin event appears.
    crashed.insert(ev.crash.begin(), ev.crash.end());
    crashes += static_cast<std::int64_t>(ev.crash.size());
    for (node_id v : ev.recover) {
      EXPECT_EQ(crashed.erase(v), 1u)
          << where << ": recovery of a node that was not down: " << v;
    }
    recoveries += static_cast<std::int64_t>(ev.recover.size());

    transmissions += static_cast<std::int64_t>(ev.transmit.size());
    deliveries += static_cast<std::int64_t>(ev.receive.size());
    collisions += static_cast<std::int64_t>(ev.collision.size());
    drops += static_cast<std::int64_t>(ev.drop.size());

    for (node_id t : ev.transmit) {
      EXPECT_EQ(crashed.count(t), 0u) << where << ": crashed " << t
                                      << " transmitted";
      EXPECT_TRUE(t == 0 || has_received[static_cast<std::size_t>(t)])
          << where << ": spontaneous transmission by " << t;
    }

    // The radio rule, node by node, from the graph and the transmitter set.
    for (node_id v = 0; v < n; ++v) {
      const bool is_tx = ev.transmit.count(v) != 0;
      const bool is_crashed = crashed.count(v) != 0;
      int arriving = 0;
      node_id lone_sender = -1;
      for (node_id u : g.in_neighbors(v)) {
        if (ev.transmit.count(u) != 0) {
          ++arriving;
          lone_sender = u;
        }
      }
      const bool got = ev.receive.count(v) != 0;
      const bool collided = ev.collision.count(v) != 0;
      const bool dropped = ev.drop.count(v) != 0;
      if (is_tx || is_crashed) {
        // Busy transmitting (or gone): hears nothing, collides with
        // nothing, loses nothing.
        EXPECT_FALSE(got || collided || dropped)
            << where << ": events at " << (is_tx ? "transmitter " : "crashed ")
            << v;
        continue;
      }
      if (arriving >= 2) {
        EXPECT_TRUE(collided) << where << ": missing collision at " << v;
        EXPECT_FALSE(got || dropped) << where << ": delivery through a "
                                     << arriving << "-collision at " << v;
      } else if (arriving == 1) {
        EXPECT_FALSE(collided) << where << ": phantom collision at " << v;
        if (faults_allowed) {
          EXPECT_TRUE(got != dropped)
              << where << ": lone transmission to " << v
              << " must surface as exactly one of receive/drop";
        } else {
          EXPECT_TRUE(got) << where << ": missing delivery to " << v;
          EXPECT_FALSE(dropped) << where;
        }
        if (got) {
          // The frame must come from the unique transmitting in-neighbor
          // (labels are the identity here).
          EXPECT_EQ(ev.receive.at(v).from, lone_sender) << where;
        }
      } else {
        EXPECT_FALSE(got || collided || dropped)
            << where << ": silence violated at " << v;
      }
      if (got) has_received[static_cast<std::size_t>(v)] = true;
    }

    for (node_id v : ev.informed) {
      EXPECT_NE(v, 0) << where << ": source re-informed";
      EXPECT_NE(ev.receive.count(v), 0u)
          << where << ": informed event without a delivery at " << v;
      EXPECT_EQ(first_informed[static_cast<std::size_t>(v)], -1)
          << where << ": node " << v << " informed twice";
      first_informed[static_cast<std::size_t>(v)] = step;
    }
  }

  // Aggregate counters must match the replay exactly.
  EXPECT_EQ(r.transmissions, transmissions) << what;
  EXPECT_EQ(r.deliveries, deliveries) << what;
  EXPECT_EQ(r.collisions, collisions) << what;
  EXPECT_EQ(r.suppressed_deliveries, drops) << what;
  // crashed_nodes counts crash EVENTS (a recovered node may crash again),
  // not the population currently down.
  EXPECT_EQ(r.crashed_nodes, crashes) << what;
  EXPECT_EQ(r.recoveries, recoveries) << what;

  // informed_at agrees with the informed events (source is step 0 by
  // definition and never gets an event).
  ASSERT_EQ(r.informed_at.size(), static_cast<std::size_t>(n)) << what;
  EXPECT_EQ(r.informed_at[0], 0) << what;
  for (node_id v = 1; v < n; ++v) {
    EXPECT_EQ(r.informed_at[static_cast<std::size_t>(v)],
              first_informed[static_cast<std::size_t>(v)])
        << what << ": informed_at mismatch at " << v;
  }

  // Completion means every surviving node is informed.
  if (r.completed) {
    for (node_id v = 0; v < n; ++v) {
      if (crashed.count(v) != 0) continue;
      EXPECT_NE(r.informed_at[static_cast<std::size_t>(v)], -1)
          << what << ": completed with uninformed survivor " << v;
    }
  }
}

run_result run_traced(const graph& g, const protocol& proto,
                      std::uint64_t seed, trace* tr,
                      fault::fault_model* faults = nullptr) {
  run_options opts;
  opts.seed = seed;
  opts.max_steps = 1'000'000;
  opts.sink = tr;
  opts.faults = faults;
  return run_broadcast(g, proto, opts);
}

// Protocols applicable to arbitrary connected undirected graphs, with the
// knowledge parameter each one needs.
std::vector<std::pair<std::string, int>> general_protocols(const graph& g) {
  const int d = radius_from(g);
  return {{"decay", -1},
          {"kp", d},
          {"kp-doubling", -1},
          {"round-robin", -1},
          {"select-and-send", -1},
          {"interleaved", -1},
          {"selective", max_degree(g) + 1}};
}

TEST(DifferentialTest, AllProtocolsObeyRadioRuleOnRandomGraphs) {
  rng topo_gen(71);
  std::vector<std::pair<std::string, graph>> graphs;
  graphs.emplace_back("gnp20", make_gnp_connected(20, 0.2, topo_gen));
  graphs.emplace_back("gnp28", make_gnp_connected(28, 0.12, topo_gen));
  graphs.emplace_back("tree24", make_random_tree(24, topo_gen));
  graphs.emplace_back("layered27", make_complete_layered_uniform(27, 4));

  for (const auto& [gtag, g] : graphs) {
    for (const auto& [proto_name, known_d] : general_protocols(g)) {
      const auto proto =
          make_protocol(proto_name, g.node_count() - 1, known_d);
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        const std::string what =
            gtag + "/" + proto_name + "/seed" + std::to_string(seed);
        trace tr(2'000'000);
        const run_result r = run_traced(g, *proto, seed, &tr);
        EXPECT_TRUE(r.completed) << what;
        verify_against_radio_rule(g, tr, r, /*faults_allowed=*/false, what);
      }
    }
  }
}

TEST(DifferentialTest, CompleteLayeredProtocolOnItsOwnFamily) {
  // The structure-aware baseline only runs on its own topology family.
  for (int d : {2, 5}) {
    const graph g = make_complete_layered_uniform(25, d);
    const auto proto = make_protocol("complete-layered", g.node_count() - 1);
    const std::string what = "layered25/d" + std::to_string(d);
    trace tr(2'000'000);
    const run_result r = run_traced(g, *proto, 1, &tr);
    EXPECT_TRUE(r.completed) << what;
    verify_against_radio_rule(g, tr, r, /*faults_allowed=*/false, what);
  }
}

TEST(DifferentialTest, SparseLabelsDoNotBendTheRule) {
  // Under a sparse labeling the schedules stretch, but the per-step radio
  // rule is label-independent — the oracle only needs `from` remapped.
  rng gen(101);
  const graph g = make_gnp_connected(18, 0.22, gen);
  const node_id r_bound = 3 * g.node_count();
  const std::vector<node_id> labels =
      sparse_labels(g.node_count(), r_bound, gen);
  for (const std::string proto_name : {"decay", "round-robin"}) {
    const auto proto = make_protocol(proto_name, r_bound, -1);
    run_options opts;
    opts.seed = 4;
    opts.max_steps = 1'000'000;
    opts.labels = labels;
    trace tr(2'000'000);
    opts.sink = &tr;
    const run_result r = run_broadcast_with_r(g, *proto, r_bound, opts);
    const std::string what = "sparse/" + proto_name;
    EXPECT_TRUE(r.completed) << what;
    ASSERT_EQ(tr.dropped(), 0u) << what;
    // Labeled variant of the delivery check: frames carry labels[sender].
    const auto steps = bucket_by_step(tr);
    for (const auto& [step, ev] : steps) {
      for (const auto& [v, msg] : ev.receive) {
        int arriving = 0;
        node_id lone_sender = -1;
        for (node_id u : g.in_neighbors(v)) {
          if (ev.transmit.count(u) != 0) {
            ++arriving;
            lone_sender = u;
          }
        }
        ASSERT_EQ(arriving, 1) << what << ", step " << step;
        EXPECT_EQ(msg.from,
                  labels[static_cast<std::size_t>(lone_sender)])
            << what << ", step " << step;
      }
    }
  }
}

TEST(DifferentialTest, FaultedRunsStayConsistent) {
  rng topo_gen(83);
  std::vector<std::pair<std::string, graph>> graphs;
  graphs.emplace_back("gnp22", make_gnp_connected(22, 0.25, topo_gen));
  graphs.emplace_back("layered24", make_complete_layered_uniform(24, 3));

  for (const auto& [gtag, g] : graphs) {
    for (const std::string proto_name : {"decay", "kp-doubling"}) {
      const auto proto = make_protocol(proto_name, g.node_count() - 1);
      for (std::uint64_t seed : {5u, 6u, 7u}) {
        const std::string what =
            gtag + "/" + proto_name + "/faulted/seed" + std::to_string(seed);
        fault::crash_options copts;
        copts.crash_probability = 0.0005;
        copts.spare_source = true;
        fault::crash_model crash(copts);
        fault::loss_model loss(fault::loss_options{0.2});
        std::vector<fault::fault_model*> parts{&crash, &loss};
        fault::composite_fault_model faults(parts);
        trace tr(2'000'000);
        const run_result r = run_traced(g, *proto, seed, &tr, &faults);
        // Completion under faults is data, not a guarantee; consistency
        // of whatever happened is the invariant.
        verify_against_radio_rule(g, tr, r, /*faults_allowed=*/true, what);
      }
    }
  }
}

TEST(DifferentialTest, RetainRecoveryRunsObeyRadioRule) {
  // Retain-mode crash-recovery: nodes cycle down and back with their state
  // intact, so the informed-once oracle still applies — recoveries just
  // reshape the crashed set mid-replay and must balance against
  // run_result::recoveries.
  rng topo_gen(89);
  std::vector<std::pair<std::string, graph>> graphs;
  graphs.emplace_back("gnp24", make_gnp_connected(24, 0.2, topo_gen));
  graphs.emplace_back("tree20", make_random_tree(20, topo_gen));

  for (const auto& [gtag, g] : graphs) {
    for (const std::string proto_name : {"decay", "round-robin"}) {
      const auto proto = make_protocol(proto_name, g.node_count() - 1);
      for (std::uint64_t seed : {9u, 10u, 11u}) {
        const std::string what =
            gtag + "/" + proto_name + "/recovery/seed" + std::to_string(seed);
        fault::recovery_options ropts;
        ropts.crash_probability = 0.003;
        ropts.mode = fault::recovery_mode::retain;
        ropts.downtime = 5;
        ropts.recovery_probability = 0.05;
        fault::recovery_model faults(ropts);
        trace tr(2'000'000);
        const run_result r = run_traced(g, *proto, seed, &tr, &faults);
        verify_against_radio_rule(g, tr, r, /*faults_allowed=*/true, what);
        EXPECT_EQ(r.recoveries, faults.recovered_count()) << what;
      }
    }
  }
}

TEST(DifferentialTest, TrialRecordsMatchTracedReruns) {
  // run_trials must be exactly "run_broadcast per seed": re-running any
  // trial's seed with a trace reproduces its record, and the trace totals
  // equal the record's counters.
  rng topo_gen(91);
  const graph g = make_gnp_connected(20, 0.2, topo_gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  trial_options topts;
  topts.trials = 5;
  topts.base_seed = 11;
  const trial_set batch = run_trials(g, *proto, topts);
  ASSERT_EQ(batch.trials.size(), 5u);
  for (const trial_record& t : batch.trials) {
    const std::string what = "trial seed " + std::to_string(t.seed);
    trace tr(2'000'000);
    const run_result r = run_traced(g, *proto, t.seed, &tr);
    EXPECT_EQ(r.completed, t.completed) << what;
    EXPECT_EQ(r.steps, t.steps) << what;
    EXPECT_EQ(r.informed_step, t.informed_step) << what;
    EXPECT_EQ(r.transmissions, t.transmissions) << what;
    EXPECT_EQ(r.collisions, t.collisions) << what;
    EXPECT_EQ(r.deliveries, t.deliveries) << what;
    verify_against_radio_rule(g, tr, r, /*faults_allowed=*/false, what);
  }
}

// ---------------------------------------------------------------------------
// Engine differential: soa vs frontier vs reference.
//
// The frontier engine (docs/PERFORMANCE.md) skips dormant nodes in phase 1
// and hoists the fault branches out of phase 2; the soa engine additionally
// devirtualizes the protocol step and shards both phases of a single step
// across threads with an ordered merge. The contract for BOTH is BIT
// IDENTITY with the retained reference engine — not statistical agreement:
// trial records, full metrics dumps, and event-for-event trace NDJSON must
// all be byte-equal, across protocols, graph families, fault models, the
// serial/parallel executors, and every intra-step thread count.
// verify_sleepers rides along on every frontier run, so the dormant-node
// contract is checked live, not assumed.
// ---------------------------------------------------------------------------

/// Everything observable from one run under a given engine.
struct engine_observation {
  trial_set records;
  std::string metrics_dump;
  std::string trace_ndjson;
};

/// Factory so each engine gets a fresh, identically-configured model.
using fault_factory = std::function<std::unique_ptr<fault::fault_model>()>;

engine_observation observe(const graph& g, const protocol& proto,
                           step_engine engine, const fault_factory& faults,
                           int threads, int step_threads = 0) {
  engine_observation out;

  // Trial batch with metrics, through the requested executor. Grain 1
  // forces intra-step sharding even on these tiny graphs whenever
  // step_threads > 1.
  obs::metrics_registry metrics;
  std::unique_ptr<fault::fault_model> model =
      faults ? faults() : nullptr;
  trial_options topts;
  topts.trials = 4;
  topts.base_seed = 101;
  topts.max_steps = 200'000;
  topts.metrics = &metrics;
  topts.faults = model.get();
  topts.engine = engine;
  topts.verify_sleepers = engine != step_engine::reference;
  topts.threads = threads;
  topts.step_threads = step_threads;
  topts.step_shard_grain = step_threads > 1 ? 1 : 0;
  out.records = threads == 0 ? run_trials(g, proto, topts)
                             : parallel_run_trials(g, proto, topts);
  out.metrics_dump = metrics.to_json().dump();

  // One traced single run (separate from the batch so the trace covers a
  // known seed regardless of executor sharding). No metrics registry here,
  // so a sharded soa run exercises the phase-1 split as well.
  trace tr(2'000'000);
  run_options ropts;
  ropts.seed = 101;
  ropts.max_steps = 200'000;
  ropts.sink = &tr;
  std::unique_ptr<fault::fault_model> trace_model =
      faults ? faults() : nullptr;
  ropts.faults = trace_model.get();
  ropts.engine = engine;
  ropts.verify_sleepers = engine != step_engine::reference;
  ropts.step_threads = step_threads;
  ropts.step_shard_grain = step_threads > 1 ? 1 : 0;
  run_broadcast(g, proto, ropts);
  std::ostringstream os;
  tr.to_ndjson(os);
  out.trace_ndjson = os.str();
  return out;
}

void expect_observations_equal(const engine_observation& ref,
                               const engine_observation& alt,
                               const std::string& what) {
  ASSERT_EQ(ref.records.trials.size(), alt.records.trials.size()) << what;
  for (std::size_t i = 0; i < ref.records.trials.size(); ++i) {
    const trial_record& a = ref.records.trials[i];
    const trial_record& b = alt.records.trials[i];
    const std::string tag = what + " trial " + std::to_string(i);
    EXPECT_EQ(a.seed, b.seed) << tag;
    EXPECT_EQ(a.completed, b.completed) << tag;
    EXPECT_EQ(a.steps, b.steps) << tag;
    EXPECT_EQ(a.informed_step, b.informed_step) << tag;
    EXPECT_EQ(a.transmissions, b.transmissions) << tag;
    EXPECT_EQ(a.collisions, b.collisions) << tag;
    EXPECT_EQ(a.deliveries, b.deliveries) << tag;
    EXPECT_EQ(a.crashed_nodes, b.crashed_nodes) << tag;
    EXPECT_EQ(a.suppressed_deliveries, b.suppressed_deliveries) << tag;
    EXPECT_EQ(a.churned_edges, b.churned_edges) << tag;
    EXPECT_EQ(a.recoveries, b.recoveries) << tag;
    EXPECT_EQ(a.reachable_nodes, b.reachable_nodes) << tag;
    EXPECT_EQ(a.informed_reachable, b.informed_reachable) << tag;
    EXPECT_EQ(a.outcome, b.outcome) << tag;
    // wall_ms is reporting-only and excluded from the contract.
  }
  EXPECT_EQ(ref.metrics_dump, alt.metrics_dump) << what << ": metrics dump";
  EXPECT_EQ(ref.trace_ndjson, alt.trace_ndjson) << what << ": trace";
}

void expect_engines_agree(const graph& g, const protocol& proto,
                          const fault_factory& faults, int threads,
                          const std::string& what) {
  const engine_observation ref =
      observe(g, proto, step_engine::reference, faults, threads);
  const engine_observation fro =
      observe(g, proto, step_engine::frontier, faults, threads);
  expect_observations_equal(ref, fro, what + "/frontier");

  // Third engine, when the protocol has an SoA step form: serial, and
  // intra-step sharded at 2 and 8 threads (grain 1). Every variant must
  // match the reference byte-for-byte.
  if (proto.soa_runner() != nullptr) {
    for (int st : {1, 2, 8}) {
      const engine_observation soa =
          observe(g, proto, step_engine::soa, faults, threads, st);
      expect_observations_equal(
          ref, soa, what + "/soa@st" + std::to_string(st));
    }
  }
}

TEST(EngineDifferentialTest, AllProtocolsAllGraphFamilies) {
  rng topo_gen(303);
  std::vector<std::pair<std::string, graph>> graphs;
  graphs.emplace_back("gnp24", make_gnp_connected(24, 0.15, topo_gen));
  graphs.emplace_back("tree20", make_random_tree(20, topo_gen));
  graphs.emplace_back("layered30", make_complete_layered_uniform(30, 5));
  graphs.emplace_back("grid", make_grid(5, 5));

  for (const auto& [gtag, g] : graphs) {
    for (const auto& [proto_name, known_d] : general_protocols(g)) {
      const auto proto =
          make_protocol(proto_name, g.node_count() - 1, known_d);
      expect_engines_agree(g, *proto, nullptr, 0, gtag + "/" + proto_name);
    }
  }
}

TEST(EngineDifferentialTest, CompleteLayeredOnItsOwnFamily) {
  // The structure-aware baseline never appears in general_protocols (it
  // requires its own topology family), so its SoA traits get a dedicated
  // three-way leg here: fault-free on two layer shapes, then crash and
  // loss models — completion under faults is data, byte-equality of
  // whatever happened is the contract.
  const fault_factory crash = [] {
    fault::crash_options o;
    o.crash_probability = 0.002;
    return std::make_unique<fault::crash_model>(o);
  };
  const fault_factory loss = [] {
    return std::make_unique<fault::loss_model>(fault::loss_options{0.15});
  };
  for (int d : {2, 5}) {
    const graph g = make_complete_layered_uniform(25, d);
    const auto proto = make_protocol("complete-layered", g.node_count() - 1);
    const std::string what = "layered25/d" + std::to_string(d);
    expect_engines_agree(g, *proto, nullptr, 0, what + "/faultfree");
    expect_engines_agree(g, *proto, crash, 0, what + "/crash");
    expect_engines_agree(g, *proto, loss, 0, what + "/loss");
  }
}

TEST(EngineDifferentialTest, DirectedGraphs) {
  rng topo_gen(307);
  const graph g = make_directed_layered({1, 5, 5, 5, 4}, 0.5, topo_gen);
  for (const std::string proto_name : {"decay", "kp-doubling"}) {
    const auto proto = make_protocol(proto_name, g.node_count() - 1);
    expect_engines_agree(g, *proto, nullptr, 0, "directed/" + proto_name);
  }
}

TEST(EngineDifferentialTest, UnderEveryFaultModel) {
  rng topo_gen(311);
  const graph g = make_gnp_connected(26, 0.15, topo_gen);
  const std::vector<std::pair<std::string, fault_factory>> models = {
      {"crash",
       [] {
         fault::crash_options o;
         o.crash_probability = 0.002;
         return std::make_unique<fault::crash_model>(o);
       }},
      {"loss",
       [] {
         return std::make_unique<fault::loss_model>(
             fault::loss_options{0.15});
       }},
      {"churn",
       [] {
         return std::make_unique<fault::churn_model>(
             fault::churn_options{0.02});
       }},
      {"recovery_retain",
       [] {
         fault::recovery_options o;
         o.crash_probability = 0.004;
         o.mode = fault::recovery_mode::retain;
         o.downtime = 6;
         return std::make_unique<fault::recovery_model>(o);
       }},
      {"recovery_amnesia",
       [] {
         fault::recovery_options o;
         o.crash_probability = 0.004;
         o.mode = fault::recovery_mode::amnesia;
         o.downtime = 4;
         o.recovery_probability = 0.1;
         return std::make_unique<fault::recovery_model>(o);
       }},
      {"partition",
       [] {
         fault::partition_options o;
         o.toggle_probability = 0.01;
         o.period = 24;
         o.duration = 8;
         o.island_fraction = 0.3;
         return std::make_unique<fault::partition_model>(o);
       }},
      {"frontier_cut",
       [] {
         fault::frontier_cut_options o;
         o.budget_per_step = 1;
         o.total_budget = 4;
         return std::make_unique<fault::frontier_cut_model>(o);
       }},
  };
  for (const auto& [ftag, factory] : models) {
    // Memoryless protocols plus the token-carrying SoA-traits protocols
    // (select-and-send's DFS token, interleaved's odd-step stream) run
    // under every model, amnesia included: a token protocol may stall
    // after a state-wiping restart — completion is data, not a guarantee
    // — but whatever happens must be byte-equal across engines. The
    // rejection side of that contract (an RC_CHECK escaping identically
    // from every engine, should a restart ever land mid-invariant) is
    // covered by TokenProtocolsUnderAmnesiaStayEngineIdentical below.
    for (const std::string proto_name :
         {"decay", "round-robin", "select-and-send", "interleaved"}) {
      const auto proto = make_protocol(proto_name, g.node_count() - 1);
      expect_engines_agree(g, *proto, factory, 0, ftag + "/" + proto_name);
    }
  }
}

TEST(EngineDifferentialTest, TokenProtocolsUnderAmnesiaStayEngineIdentical) {
  // A token protocol that loses its state mid-traversal is in a world its
  // invariants do not fully describe: a structural message arriving after
  // the wipe may legitimately fire an RC_CHECK (the chaos sampler excludes
  // token protocols for exactly this reason). That rejection is part of
  // the engine contract too — for every seed, all three engines must agree
  // on WHETHER the run is rejected, and when it is not, on every record
  // field. (Empirically the protocols ride out every amnesia schedule
  // tried so far — restarted nodes re-join as fresh listeners — so the
  // rejection branch below is armed but not required to fire.)
  rng topo_gen(317);
  const graph g = make_gnp_connected(22, 0.2, topo_gen);
  const auto run_one = [&](const protocol& proto, step_engine engine,
                           std::uint64_t seed, run_result* out) {
    fault::recovery_options o;
    o.crash_probability = 0.02;
    o.mode = fault::recovery_mode::amnesia;
    o.downtime = 3;
    o.recovery_probability = 0.3;
    fault::recovery_model faults(o);
    run_options opts;
    opts.seed = seed;
    opts.max_steps = 5'000;
    opts.faults = &faults;
    opts.engine = engine;
    try {
      *out = run_broadcast(g, proto, opts);
    } catch (const invariant_error&) {
      return true;  // rejected
    }
    return false;
  };
  for (const std::string proto_name : {"select-and-send", "interleaved"}) {
    const auto proto = make_protocol(proto_name, g.node_count() - 1);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const std::string what =
          proto_name + "/amnesia/seed" + std::to_string(seed);
      run_result ref, fro, soa;
      const bool ref_rejected =
          run_one(*proto, step_engine::reference, seed, &ref);
      const bool fro_rejected =
          run_one(*proto, step_engine::frontier, seed, &fro);
      const bool soa_rejected = run_one(*proto, step_engine::soa, seed, &soa);
      EXPECT_EQ(ref_rejected, fro_rejected) << what;
      EXPECT_EQ(ref_rejected, soa_rejected) << what;
      if (ref_rejected) continue;
      EXPECT_EQ(ref.steps, fro.steps) << what;
      EXPECT_EQ(ref.steps, soa.steps) << what;
      EXPECT_EQ(ref.transmissions, soa.transmissions) << what;
      EXPECT_EQ(ref.collisions, soa.collisions) << what;
      EXPECT_EQ(ref.deliveries, soa.deliveries) << what;
      EXPECT_EQ(ref.informed_at, soa.informed_at) << what;
      EXPECT_EQ(ref.outcome, soa.outcome) << what;
    }
  }
}

TEST(EngineDifferentialTest, AcrossParallelExecutor) {
  // The engine choice must thread through parallel_run_trials' shard
  // workers: 4-thread frontier == 4-thread reference == serial reference.
  rng topo_gen(313);
  const graph g = make_gnp_connected(24, 0.15, topo_gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  const fault_factory crash = [] {
    fault::crash_options o;
    o.crash_probability = 0.002;
    return std::make_unique<fault::crash_model>(o);
  };
  expect_engines_agree(g, *proto, nullptr, 4, "parallel4/faultfree");
  expect_engines_agree(g, *proto, crash, 4, "parallel4/crash");
}

}  // namespace
}  // namespace radiocast
