// Fault-injection subsystem tests: determinism (same seed ⇒ identical
// crash/loss/churn schedule and identical run_result), the zero-intensity
// identity guarantee, per-model semantics, composition, and the trial-batch
// fault accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/runner.h"
#include "fault/churn.h"
#include "fault/crash.h"
#include "fault/fault_model.h"
#include "fault/jammer.h"
#include "fault/loss.h"
#include "fault/partition.h"
#include "fault/recovery.h"
#include "graph/analysis.h"
#include "obs/metrics.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace radiocast {
namespace {

run_result run_with(const graph& g, const protocol& proto,
                    fault::fault_model* faults, std::uint64_t seed = 11,
                    std::int64_t max_steps = 50'000) {
  run_options opts;
  opts.seed = seed;
  opts.max_steps = max_steps;
  opts.faults = faults;
  return run_broadcast(g, proto, opts);
}

void expect_identical(const run_result& a, const run_result& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.informed_step, b.informed_step);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.informed_at, b.informed_at);
  EXPECT_EQ(a.transmissions_per_node, b.transmissions_per_node);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.suppressed_deliveries, b.suppressed_deliveries);
  EXPECT_EQ(a.churned_edges, b.churned_edges);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.reachable_nodes, b.reachable_nodes);
  EXPECT_EQ(a.informed_reachable, b.informed_reachable);
  EXPECT_EQ(a.outcome, b.outcome);
}

graph test_graph() {
  rng gen(17);
  return make_gnp_connected(48, 0.12, gen);
}

// ---------- zero-intensity identity ----------

TEST(FaultTest, NoOpModelsAreBitIdenticalToFaultFree) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  const run_result base = run_with(g, *proto, nullptr);

  fault::loss_model loss(fault::loss_options{0.0});
  expect_identical(base, run_with(g, *proto, &loss));

  fault::jammer_model jam_o(
      fault::jammer_options{0, fault::jam_strategy::oblivious_random});
  expect_identical(base, run_with(g, *proto, &jam_o));

  fault::jammer_model jam_g(
      fault::jammer_options{0, fault::jam_strategy::greedy_frontier});
  expect_identical(base, run_with(g, *proto, &jam_g));

  fault::crash_model crash(fault::crash_options{});
  expect_identical(base, run_with(g, *proto, &crash));

  fault::churn_model churn(fault::churn_options{0.0});
  expect_identical(base, run_with(g, *proto, &churn));

  fault::recovery_model rec_retain(fault::recovery_options{});
  expect_identical(base, run_with(g, *proto, &rec_retain));

  fault::recovery_options amnesia_opts;
  amnesia_opts.mode = fault::recovery_mode::amnesia;
  amnesia_opts.downtime = 4;  // rejoin configured, but nobody ever crashes
  fault::recovery_model rec_amnesia(amnesia_opts);
  expect_identical(base, run_with(g, *proto, &rec_amnesia));

  fault::partition_model partition(fault::partition_options{});
  expect_identical(base, run_with(g, *proto, &partition));

  fault::frontier_cut_model frontier_cut(fault::frontier_cut_options{});
  expect_identical(base, run_with(g, *proto, &frontier_cut));

  std::vector<fault::fault_model*> all{&loss,       &jam_o,       &crash,
                                       &churn,      &rec_retain,  &rec_amnesia,
                                       &partition,  &frontier_cut};
  fault::composite_fault_model composite(all);
  expect_identical(base, run_with(g, *proto, &composite));
}

// ---------- determinism: same seed ⇒ same schedule and result ----------

TEST(FaultTest, CrashScheduleIsSeedDeterministic) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::crash_options copts;
  copts.crash_probability = 0.002;
  copts.spare_source = true;
  fault::crash_model crash(copts);
  const run_result a = run_with(g, *proto, &crash, 5);
  const run_result b = run_with(g, *proto, &crash, 5);
  expect_identical(a, b);
  // A different seed draws a different schedule (equality of every field
  // would require an astronomically unlikely coincidence of crash draws
  // AND protocol coin flips).
  const run_result c = run_with(g, *proto, &crash, 6);
  EXPECT_FALSE(a.steps == c.steps && a.deliveries == c.deliveries &&
               a.informed_at == c.informed_at &&
               a.crashed_nodes == c.crashed_nodes);
}

TEST(FaultTest, LossScheduleIsSeedDeterministic) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::loss_model loss(fault::loss_options{0.3});
  const run_result a = run_with(g, *proto, &loss, 9);
  const run_result b = run_with(g, *proto, &loss, 9);
  expect_identical(a, b);
  EXPECT_GT(a.suppressed_deliveries, 0);
}

TEST(FaultTest, ChurnScheduleIsSeedDeterministic) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::churn_model churn(fault::churn_options{0.05});
  const run_result a = run_with(g, *proto, &churn, 21);
  const run_result b = run_with(g, *proto, &churn, 21);
  expect_identical(a, b);
  EXPECT_GT(a.churned_edges, 0);
}

TEST(FaultTest, CompositeIsSeedDeterministic) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::crash_options copts;
  copts.crash_probability = 0.001;
  copts.spare_source = true;
  fault::crash_model crash(copts);
  fault::loss_model loss(fault::loss_options{0.15});
  fault::jammer_model jam(
      fault::jammer_options{2, fault::jam_strategy::oblivious_random});
  std::vector<fault::fault_model*> models{&crash, &loss, &jam};
  fault::composite_fault_model composite(models);
  const run_result a = run_with(g, *proto, &composite, 31);
  const run_result b = run_with(g, *proto, &composite, 31);
  expect_identical(a, b);
}

// ---------- crash semantics ----------

TEST(FaultTest, ScheduledCrashSilencesNodeAndExemptsCompletion) {
  // Star: source informs every leaf at once. Crash one leaf before the
  // first step: the run completes over the survivors and the crashed leaf
  // is never informed.
  graph g = make_star(6);
  const auto proto = make_protocol("decay", 5);
  fault::crash_options copts;
  copts.schedule = {{3, 0}};
  fault::crash_model crash(copts);
  const run_result res = run_with(g, *proto, &crash);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.crashed_nodes, 1);
  EXPECT_EQ(res.informed_at[3], -1);
  EXPECT_EQ(res.transmissions_per_node[3], 0);
  for (const node_id v : {1, 2, 4, 5}) {
    EXPECT_GE(res.informed_at[static_cast<std::size_t>(v)], 0);
  }
}

TEST(FaultTest, LateCrashAfterInformingStillCompletes) {
  graph g = make_path(4);
  const auto proto = make_protocol("decay", 3);
  // Crash node 1 far in the future — after it has relayed the message.
  fault::crash_options copts;
  copts.schedule = {{1, 40'000}};
  fault::crash_model crash(copts);
  const run_result res = run_with(g, *proto, &crash);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.crashed_nodes, 0);  // completed before the scheduled step
}

TEST(FaultTest, CrashTraceEventsRecorded) {
  graph g = make_star(5);
  const auto proto = make_protocol("decay", 4);
  fault::crash_options copts;
  copts.schedule = {{2, 0}};
  fault::crash_model crash(copts);
  trace tr;
  run_options opts;
  opts.max_steps = 1'000;
  opts.faults = &crash;
  opts.sink = &tr;
  const run_result res = run_broadcast(g, *proto, opts);
  EXPECT_EQ(res.crashed_nodes, 1);
  const auto crashes = tr.filter(trace_event::type::crash);
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_EQ(crashes[0].node, 2);
  EXPECT_EQ(crashes[0].step, 0);
}

TEST(FaultTest, CrashOptionsValidated) {
  EXPECT_THROW(fault::crash_model({{{0, -1}}, 0.0, false}),
               precondition_error);
  EXPECT_THROW(fault::crash_model({{}, 1.5, false}), precondition_error);
  graph g = make_path(3);
  const auto proto = make_protocol("decay", 2);
  fault::crash_options out_of_range;
  out_of_range.schedule = {{99, 0}};
  fault::crash_model crash(out_of_range);
  EXPECT_THROW(run_with(g, *proto, &crash), precondition_error);
}

// ---------- loss semantics ----------

TEST(FaultTest, TotalLossSuppressesEveryDelivery) {
  graph g = make_path(4);
  const auto proto = make_protocol("decay", 3);
  fault::loss_model loss(fault::loss_options{1.0});
  const run_result res = run_with(g, *proto, &loss, 11, 2'000);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.deliveries, 0);
  EXPECT_GT(res.suppressed_deliveries, 0);
  EXPECT_GT(res.transmissions, 0);
}

TEST(FaultTest, LossOptionsValidated) {
  EXPECT_THROW(fault::loss_model(fault::loss_options{-0.1}),
               precondition_error);
  EXPECT_THROW(fault::loss_model(fault::loss_options{1.01}),
               precondition_error);
}

// ---------- jammer semantics ----------

TEST(FaultTest, GreedyJammerWithHugeBudgetStallsBroadcast) {
  graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::jammer_model jam(fault::jammer_options{
      g.node_count(), fault::jam_strategy::greedy_frontier});
  const run_result res = run_with(g, *proto, &jam, 13, 2'000);
  // Budget ≥ n silences every reception: nobody beyond the source ever
  // gets informed.
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.deliveries, 0);
  EXPECT_GT(res.suppressed_deliveries, 0);
}

TEST(FaultTest, ObliviousJammerSlowdownIsBudgetMonotone) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  trial_options topts;
  topts.trials = 10;
  topts.base_seed = 3;
  topts.max_steps = 50'000;
  double previous = 0.0;
  for (const int budget : {0, 16}) {
    fault::jammer_model jam(fault::jammer_options{
        budget, fault::jam_strategy::oblivious_random});
    topts.faults = &jam;
    const trial_set batch = run_trials(g, *proto, topts);
    EXPECT_TRUE(batch.all_completed());
    const std::vector<double> steps = batch.completion_steps();
    double mean = 0.0;
    for (const double s : steps) mean += s;
    mean /= static_cast<double>(steps.size());
    EXPECT_GT(mean, previous);
    previous = mean;
  }
}

TEST(FaultTest, JammerDeterministicPerSeed) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  for (const auto strategy : {fault::jam_strategy::oblivious_random,
                              fault::jam_strategy::greedy_frontier}) {
    fault::jammer_model jam(fault::jammer_options{3, strategy});
    const run_result a = run_with(g, *proto, &jam, 41);
    const run_result b = run_with(g, *proto, &jam, 41);
    expect_identical(a, b);
  }
}

// ---------- churn semantics ----------

TEST(FaultTest, ChurnRequiresUndirectedConnectedGraph) {
  fault::churn_model churn(fault::churn_options{0.1});
  rng gen(3);
  graph directed = make_directed_layered({1, 2, 2}, 0.5, gen);
  const auto proto = make_protocol("decay", 4);
  EXPECT_THROW(run_with(directed, *proto, &churn), precondition_error);
}

TEST(FaultTest, ChurnNeverTouchesTreeEdgesOnATree) {
  // On a tree every edge is a spanning-tree edge: churn has nothing to
  // flap and the run is identical to fault-free.
  rng gen(8);
  graph tree = make_random_tree(32, gen);
  const auto proto = make_protocol("decay", 31);
  const run_result base = run_with(tree, *proto, nullptr);
  fault::churn_model churn(fault::churn_options{0.9});
  EXPECT_EQ(churn.eligible_edge_count(), 0u);  // before any run: empty
  const run_result res = run_with(tree, *proto, &churn);
  EXPECT_EQ(churn.eligible_edge_count(), 0u);
  expect_identical(base, res);
}

TEST(FaultTest, ChurnTraceRecordsEdgeEvents) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::churn_model churn(fault::churn_options{0.08});
  trace tr;
  run_options opts;
  opts.seed = 23;
  opts.max_steps = 50'000;
  opts.faults = &churn;
  opts.sink = &tr;
  const run_result res = run_broadcast(g, *proto, opts);
  EXPECT_TRUE(res.completed);
  const auto downs = tr.filter(trace_event::type::edge_down);
  const auto ups = tr.filter(trace_event::type::edge_up);
  EXPECT_EQ(res.churned_edges,
            static_cast<std::int64_t>(downs.size() + ups.size()));
  EXPECT_GT(downs.size(), 0u);
}

// ---------- clone(): configuration survives, run state does not ----------

/// One non-trivial instance of every fault model type. The roster must
/// grow with the subsystem: a model missing here escapes the clone
/// property checks below.
std::vector<std::unique_ptr<fault::fault_model>> one_of_each_model() {
  std::vector<std::unique_ptr<fault::fault_model>> out;
  fault::crash_options crash;
  crash.crash_probability = 0.002;
  crash.spare_source = true;
  out.push_back(std::make_unique<fault::crash_model>(crash));
  out.push_back(
      std::make_unique<fault::loss_model>(fault::loss_options{0.2}));
  out.push_back(std::make_unique<fault::jammer_model>(
      fault::jammer_options{2, fault::jam_strategy::oblivious_random}));
  out.push_back(std::make_unique<fault::jammer_model>(
      fault::jammer_options{1, fault::jam_strategy::greedy_frontier}));
  out.push_back(
      std::make_unique<fault::churn_model>(fault::churn_options{0.05}));
  fault::recovery_options retain;
  retain.crash_probability = 0.004;
  retain.mode = fault::recovery_mode::retain;
  retain.downtime = 6;
  out.push_back(std::make_unique<fault::recovery_model>(retain));
  fault::recovery_options amnesia;
  amnesia.crash_probability = 0.004;
  amnesia.mode = fault::recovery_mode::amnesia;
  amnesia.downtime = 4;
  amnesia.recovery_probability = 0.1;
  out.push_back(std::make_unique<fault::recovery_model>(amnesia));
  fault::partition_options part;
  part.toggle_probability = 0.01;
  part.period = 24;
  part.duration = 8;
  out.push_back(std::make_unique<fault::partition_model>(part));
  fault::frontier_cut_options cut;
  cut.budget_per_step = 1;
  cut.total_budget = 3;
  out.push_back(std::make_unique<fault::frontier_cut_model>(cut));
  return out;
}

TEST(FaultTest, CloneOfEveryModelTypeReplaysTheSameRun) {
  // clone() copies configuration only, so a clone taken at ANY point —
  // fresh, or after the original has accumulated a full run of state —
  // must reproduce the original's runs exactly.
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  for (const auto& m : one_of_each_model()) {
    const run_result a = run_with(g, *proto, m.get(), 77, 2'000);
    const auto fresh_after_run = m->clone();
    EXPECT_EQ(fresh_after_run->name(), m->name());
    expect_identical(a, run_with(g, *proto, fresh_after_run.get(), 77, 2'000));
    // And a clone of the clone, which never ran at all.
    expect_identical(
        a, run_with(g, *proto, fresh_after_run->clone().get(), 77, 2'000));
  }
}

TEST(FaultTest, CompositeCloneDeepClonesEveryChild) {
  // composite::clone() must clone the children, not alias them: after the
  // original composite runs (mutating every child's run state), its clone
  // still reproduces the identical run, and running the CLONE does not
  // perturb the original either.
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  const auto owned = one_of_each_model();
  std::vector<fault::fault_model*> raw;
  raw.reserve(owned.size());
  for (const auto& m : owned) raw.push_back(m.get());
  fault::composite_fault_model composite(raw);

  const auto before_any_run = composite.clone();
  const run_result a = run_with(g, *proto, &composite, 131, 2'000);
  const auto after_a_run = composite.clone();
  expect_identical(a, run_with(g, *proto, before_any_run.get(), 131, 2'000));
  expect_identical(a, run_with(g, *proto, after_a_run.get(), 131, 2'000));
  expect_identical(a, run_with(g, *proto, &composite, 131, 2'000));
}

// ---------- trial batches as resilience curves ----------

TEST(FaultTest, RunTrialsAccountsFaultsPerTrial) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::loss_model loss(fault::loss_options{0.25});
  trial_options topts;
  topts.trials = 4;
  topts.base_seed = 100;
  topts.max_steps = 50'000;
  topts.faults = &loss;
  const trial_set batch = run_trials(g, *proto, topts);
  ASSERT_EQ(batch.trials.size(), 4u);
  for (const trial_record& t : batch.trials) {
    EXPECT_GT(t.suppressed_deliveries, 0);
    EXPECT_EQ(t.crashed_nodes, 0);
    EXPECT_EQ(t.churned_edges, 0);
  }
  // Different trial seeds draw different loss schedules.
  EXPECT_FALSE(batch.trials[0].suppressed_deliveries ==
                   batch.trials[1].suppressed_deliveries &&
               batch.trials[1].suppressed_deliveries ==
                   batch.trials[2].suppressed_deliveries &&
               batch.trials[2].suppressed_deliveries ==
                   batch.trials[3].suppressed_deliveries &&
               batch.trials[0].steps == batch.trials[1].steps &&
               batch.trials[1].steps == batch.trials[2].steps &&
               batch.trials[2].steps == batch.trials[3].steps);
}

TEST(FaultTest, FaultMetricsSeriesAlignWithSteps) {
  const graph g = test_graph();
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::loss_model loss(fault::loss_options{0.2});
  obs::metrics_registry metrics;
  run_options opts;
  opts.seed = 2;
  opts.max_steps = 50'000;
  opts.metrics = &metrics;
  opts.faults = &loss;
  const run_result res = run_broadcast(g, *proto, opts);
  const obs::series* suppressed =
      metrics.find_series("sim.fault.suppressed");
  ASSERT_NE(suppressed, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(suppressed->size()), res.steps);
  std::int64_t total = 0;
  for (const std::int64_t v : suppressed->values()) total += v;
  EXPECT_EQ(total, res.suppressed_deliveries);
}

}  // namespace
}  // namespace radiocast