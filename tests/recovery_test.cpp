// Crash-recovery and partition-tolerance semantics (fault/recovery.h,
// fault/partition.h, and the simulator plumbing behind them):
//
//   * retain rejoin — a node comes back with its state intact, re-enters
//     completion accounting, and an uninformed rejoiner must still be
//     informed before the run can complete;
//   * amnesia rejoin — the simulator calls on_restart, evicts the node
//     from the informed set, and the node's final informed_at reflects the
//     RE-delivery, not the original one;
//   * completion waits for pending recoveries (a down-but-returning node
//     blocks "everyone informed");
//   * partition-tolerant accounting — run_result::{reachable_nodes,
//     informed_reachable} and run_outcome split timeouts into "stuck" vs
//     "unreachable", and a crashed source is its own terminal outcome
//     (informed_reachable == 0: the source's own copy of the message died
//     with it);
//   * determinism: same seed ⇒ identical schedules and results, and both
//     step engines agree.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/runner.h"
#include "fault/crash.h"
#include "fault/fault_model.h"
#include "fault/loss.h"
#include "fault/partition.h"
#include "fault/recovery.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/assert.h"
#include "util/rng.h"

namespace radiocast {
namespace {

run_result run_with(const graph& g, const protocol& proto,
                    fault::fault_model* faults, std::uint64_t seed = 11,
                    std::int64_t max_steps = 50'000,
                    step_engine engine = step_engine::frontier) {
  run_options opts;
  opts.seed = seed;
  opts.max_steps = max_steps;
  opts.faults = faults;
  opts.engine = engine;
  return run_broadcast(g, proto, opts);
}

void expect_identical(const run_result& a, const run_result& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.informed_step, b.informed_step);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.informed_at, b.informed_at);
  EXPECT_EQ(a.transmissions_per_node, b.transmissions_per_node);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.suppressed_deliveries, b.suppressed_deliveries);
  EXPECT_EQ(a.churned_edges, b.churned_edges);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.reachable_nodes, b.reachable_nodes);
  EXPECT_EQ(a.informed_reachable, b.informed_reachable);
  EXPECT_EQ(a.outcome, b.outcome);
}

// ---------- retain-mode rejoin ----------

TEST(RecoveryTest, RetainRejoinerIsInformedBeforeCompletion) {
  // Crash a star leaf before the first step with a deterministic rejoin:
  // the run may only complete after the leaf is back AND informed.
  graph g = make_star(6);
  const auto proto = make_protocol("decay", 5);
  fault::recovery_options opts;
  opts.schedule = {{3, 0}};
  opts.mode = fault::recovery_mode::retain;
  opts.downtime = 7;
  fault::recovery_model faults(opts);
  const run_result res = run_with(g, *proto, &faults);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.outcome, run_outcome::completed);
  EXPECT_EQ(res.crashed_nodes, 1);
  EXPECT_EQ(res.recoveries, 1);
  // Down from step 0 through step 6: the first informing delivery can land
  // at step 7 at the earliest.
  EXPECT_GE(res.informed_at[3], 7);
  EXPECT_EQ(res.reachable_nodes, 6);
  EXPECT_EQ(res.informed_reachable, 6);
}

TEST(RecoveryTest, CompletionWaitsForPendingRecoveries) {
  // All surviving leaves are informed long before step 40, but one leaf is
  // down with a scheduled return — the run must not complete before it
  // rejoins (and is then informed).
  graph g = make_star(6);
  const auto proto = make_protocol("decay", 5);
  fault::recovery_options opts;
  opts.schedule = {{4, 0}};
  opts.mode = fault::recovery_mode::retain;
  opts.downtime = 40;
  fault::recovery_model faults(opts);
  const run_result res = run_with(g, *proto, &faults);
  EXPECT_TRUE(res.completed);
  EXPECT_GE(res.steps, 40);
  EXPECT_GE(res.informed_at[4], 40);
}

TEST(RecoveryTest, PermanentCrashDegeneratesToCrashStop) {
  // Neither downtime nor recovery probability: nobody returns, and the
  // semantics collapse to crash_model's (completion over the survivors).
  graph g = make_star(6);
  const auto proto = make_protocol("decay", 5);
  fault::recovery_options opts;
  opts.schedule = {{3, 0}};
  fault::recovery_model faults(opts);
  const run_result res = run_with(g, *proto, &faults);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.recoveries, 0);
  EXPECT_EQ(res.informed_at[3], -1);
  // The crashed leaf is not reachable over live nodes, and completion
  // still reports a full sweep of what WAS reachable.
  EXPECT_EQ(res.reachable_nodes, 5);
  EXPECT_EQ(res.informed_reachable, 5);
}

// ---------- amnesia-mode rejoin ----------

TEST(RecoveryTest, AmnesiaRejoinerIsReinformed) {
  // Let a path relay get informed first, then crash it with state loss
  // while the broadcast is still working down the path: its final
  // informed_at must move to a later (re-delivery) step.
  graph g = make_path(5);
  const auto proto = make_protocol("decay", 4);
  const run_result base = run_with(g, *proto, nullptr);
  ASSERT_TRUE(base.completed);
  const std::int64_t informed_step = base.informed_at[1];
  ASSERT_GE(informed_step, 0);
  ASSERT_GT(base.informed_at[4], informed_step + 1);  // run outlives the crash

  fault::recovery_options opts;
  opts.schedule = {{1, informed_step + 1}};
  opts.mode = fault::recovery_mode::amnesia;
  opts.downtime = 3;
  fault::recovery_model faults(opts);
  const run_result res = run_with(g, *proto, &faults);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.outcome, run_outcome::completed);
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_GT(res.informed_at[1], informed_step);
  EXPECT_EQ(res.informed_reachable, 5);
}

TEST(RecoveryTest, AmnesiaTraceCarriesTheStateLossFlag) {
  graph g = make_star(6);
  const auto proto = make_protocol("decay", 5);
  fault::recovery_options opts;
  opts.schedule = {{2, 0}};
  opts.mode = fault::recovery_mode::amnesia;
  opts.downtime = 5;
  fault::recovery_model faults(opts);
  trace tr;
  run_options ropts;
  ropts.seed = 11;
  ropts.max_steps = 50'000;
  ropts.faults = &faults;
  ropts.sink = &tr;
  const run_result res = run_broadcast(g, *proto, ropts);
  EXPECT_TRUE(res.completed);
  const auto recs = tr.filter(trace_event::type::recover);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].node, 2);
  EXPECT_EQ(recs[0].step, 5);
  EXPECT_EQ(recs[0].msg.a, 1);  // amnesia flag

  // Retain-mode rejoins carry a zero flag.
  opts.mode = fault::recovery_mode::retain;
  fault::recovery_model retain(opts);
  trace tr2;
  ropts.faults = &retain;
  ropts.sink = &tr2;
  run_broadcast(g, *proto, ropts);
  const auto recs2 = tr2.filter(trace_event::type::recover);
  ASSERT_EQ(recs2.size(), 1u);
  EXPECT_EQ(recs2[0].msg.a, 0);
}

TEST(RecoveryTest, GeometricRecoveryEventuallyRejoinsEveryone) {
  // Probability-only rejoin under repeated probabilistic crashes: the run
  // still completes (recoveries outpace permanent loss), and crash events
  // balance against rejoin events plus the population still down.
  rng gen(29);
  const graph g = make_gnp_connected(32, 0.15, gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::recovery_options opts;
  opts.crash_probability = 0.003;
  opts.mode = fault::recovery_mode::amnesia;
  opts.recovery_probability = 0.2;
  fault::recovery_model faults(opts);
  const run_result res = run_with(g, *proto, &faults, 17);
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.crashed_nodes, 0);
  EXPECT_GE(res.crashed_nodes, res.recoveries);
  // Completion requires a settled roster: nobody still pending.
  EXPECT_EQ(faults.pending_recoveries(), 0);
}

// ---------- crashed-source accounting (regression) ----------

TEST(RecoveryTest, CrashedSourceIsSourceLostWithNothingReachable) {
  // The source dies before informing anyone. The broadcast is over — and
  // the accounting must say so distinctly: outcome source_lost, with
  // informed_reachable == 0 (the message itself is gone, so not even the
  // source counts as an informed survivor).
  graph g = make_path(4);
  const auto proto = make_protocol("decay", 3);
  fault::crash_options opts;
  opts.schedule = {{0, 0}};
  fault::crash_model faults(opts);
  const run_result res = run_with(g, *proto, &faults, 11, 2'000);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.outcome, run_outcome::source_lost);
  EXPECT_EQ(res.reachable_nodes, 0);
  EXPECT_EQ(res.informed_reachable, 0);
  EXPECT_EQ(res.deliveries, 0);
  // Message extinction: the simulator notices no live node holds the
  // message and stops early instead of burning the full step budget.
  EXPECT_LT(res.steps, 2'000);
}

TEST(RecoveryTest, SourceCrashAfterHandoffStillCompletes) {
  // Once a relay holds the message the source is expendable: the run
  // completes and reports `completed`, not `source_lost`.
  graph g = make_path(3);
  const auto proto = make_protocol("decay", 2);
  const run_result base = run_with(g, *proto, nullptr);
  ASSERT_TRUE(base.completed);
  ASSERT_GE(base.informed_at[1], 0);

  fault::crash_options opts;
  opts.schedule = {{0, base.informed_at[1] + 1}};
  fault::crash_model faults(opts);
  const run_result res = run_with(g, *proto, &faults);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.outcome, run_outcome::completed);
  EXPECT_EQ(res.informed_at[2], base.informed_at[2]);
}

// ---------- partition-tolerant outcomes ----------

TEST(RecoveryTest, FrontierCutAdversaryDrivesUnreachable) {
  // Budget 1 on a path beheads the frontier every step: the informed
  // prefix dies, the uninformed suffix is cut off, and the timeout is
  // classified "unreachable" — every reachable survivor IS informed.
  graph g = make_path(6);
  const auto proto = make_protocol("decay", 5);
  fault::frontier_cut_options opts;
  opts.budget_per_step = 1;
  fault::frontier_cut_model faults(opts);
  const run_result res = run_with(g, *proto, &faults, 11, 500);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.outcome, run_outcome::unreachable);
  EXPECT_GT(res.crashed_nodes, 0);
  EXPECT_LT(res.reachable_nodes, 6);
  EXPECT_EQ(res.informed_reachable, res.reachable_nodes);
}

TEST(RecoveryTest, PlainTimeoutIsStuckNotUnreachable) {
  // A run that times out with the graph fully intact still has reachable
  // uninformed nodes: "stuck", and reachable_nodes covers everyone.
  graph g = make_path(16);
  const auto proto = make_protocol("decay", 15);
  fault::loss_options lopts{1.0};
  fault::loss_model faults(lopts);
  const run_result res = run_with(g, *proto, &faults, 11, 64);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.outcome, run_outcome::stuck);
  EXPECT_EQ(res.reachable_nodes, 16);
  EXPECT_EQ(res.informed_reachable, 1);  // just the source
}

TEST(RecoveryTest, PartitionWindowsCloseAndBroadcastCompletes) {
  rng gen(31);
  const graph g = make_gnp_connected(30, 0.15, gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::partition_options opts;
  opts.period = 20;
  opts.duration = 6;
  opts.island_fraction = 0.3;
  fault::partition_model faults(opts);
  const run_result res = run_with(g, *proto, &faults, 13);
  EXPECT_TRUE(res.completed);
  EXPECT_GT(faults.windows_opened(), 0);
  EXPECT_GT(res.churned_edges, 0);
  EXPECT_EQ(res.outcome, run_outcome::completed);
}

TEST(RecoveryTest, RunOutcomeNamesAreStable) {
  EXPECT_STREQ(run_outcome_name(run_outcome::completed), "completed");
  EXPECT_STREQ(run_outcome_name(run_outcome::stuck), "stuck");
  EXPECT_STREQ(run_outcome_name(run_outcome::unreachable), "unreachable");
  EXPECT_STREQ(run_outcome_name(run_outcome::source_lost), "source_lost");
}

// ---------- determinism and engine agreement ----------

TEST(RecoveryTest, RecoveryScheduleIsSeedDeterministic) {
  rng gen(37);
  const graph g = make_gnp_connected(28, 0.15, gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  for (const auto mode :
       {fault::recovery_mode::retain, fault::recovery_mode::amnesia}) {
    fault::recovery_options opts;
    opts.crash_probability = 0.004;
    opts.mode = mode;
    opts.downtime = 5;
    opts.recovery_probability = 0.05;
    fault::recovery_model faults(opts);
    const run_result a = run_with(g, *proto, &faults, 23);
    const run_result b = run_with(g, *proto, &faults, 23);
    expect_identical(a, b);
  }
}

TEST(RecoveryTest, EnginesAgreeUnderRecoveryAndPartition) {
  rng gen(41);
  const graph g = make_gnp_connected(26, 0.15, gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);

  fault::recovery_options ropts;
  ropts.crash_probability = 0.005;
  ropts.mode = fault::recovery_mode::amnesia;
  ropts.downtime = 4;
  fault::recovery_model recovery(ropts);
  expect_identical(
      run_with(g, *proto, &recovery, 7, 50'000, step_engine::frontier),
      run_with(g, *proto, &recovery, 7, 50'000, step_engine::reference));

  fault::partition_options popts;
  popts.toggle_probability = 0.02;
  popts.period = 24;
  popts.duration = 8;
  fault::partition_model partition(popts);
  expect_identical(
      run_with(g, *proto, &partition, 7, 50'000, step_engine::frontier),
      run_with(g, *proto, &partition, 7, 50'000, step_engine::reference));
}

// ---------- option validation ----------

TEST(RecoveryTest, OptionsValidated) {
  {
    fault::recovery_options o;
    o.crash_probability = 1.5;
    EXPECT_THROW(fault::recovery_model{o}, precondition_error);
  }
  {
    fault::recovery_options o;
    o.recovery_probability = -0.1;
    EXPECT_THROW(fault::recovery_model{o}, precondition_error);
  }
  {
    fault::recovery_options o;
    o.downtime = -1;
    EXPECT_THROW(fault::recovery_model{o}, precondition_error);
  }
  {
    fault::partition_options o;
    o.period = 10;
    o.duration = 10;  // must be < period
    EXPECT_THROW(fault::partition_model{o}, precondition_error);
  }
  {
    fault::frontier_cut_options o;
    o.budget_per_step = -1;
    EXPECT_THROW(fault::frontier_cut_model{o}, precondition_error);
  }
}

}  // namespace
}  // namespace radiocast
