// Tests for the randomized broadcasting stack: universal sequences
// (Lemma 1's U1/U2 window properties), the Stage schedule, BGI Decay, and
// the Kowalski–Pelc optimal algorithm (correctness + time-bound sanity).
#include <gtest/gtest.h>

#include <cmath>

#include "core/decay.h"
#include "core/kp_randomized.h"
#include "core/universal_sequence.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/math.h"
#include "util/stats.h"

namespace radiocast {
namespace {

// ---------- universal sequence ----------

TEST(UniversalSequenceTest, PeriodBoundedByLemma1Count) {
  // Lemma 1's counting argument: the number of distributed reals is at most
  // 2D + 32·log²r, which is < 3D exactly when D > 32·log²r. Check the
  // universal count bound everywhere and the 3D form in its regime.
  for (int log_r = 10; log_r <= 18; ++log_r) {
    for (int log_d = (2 * log_r) / 3 + 1; log_d <= log_r; ++log_d) {
      universal_sequence seq(log_r, log_d);
      const std::int64_t d = std::int64_t{1} << log_d;
      // Exact form of the geometric sums (the paper's "32 log²r" uses
      // approximations that hold asymptotically): 2D + 64·log²r.
      EXPECT_LE(seq.period(),
                2 * d + 64 * static_cast<std::int64_t>(log_r) * log_r)
          << "log_r=" << log_r << " log_d=" << log_d;
      if (d > 64 * log_r * log_r) {
        EXPECT_LE(seq.period(), 3 * d)
            << "log_r=" << log_r << " log_d=" << log_d;
      }
      EXPECT_GE(seq.period(), 1);
    }
  }
}

TEST(UniversalSequenceTest, ExponentsAreInRange) {
  universal_sequence seq(12, 10);
  for (std::int64_t i = 1; i <= seq.period(); ++i) {
    const int j = seq.exponent_at(i);
    EXPECT_GE(j, seq.u1_lo());
    EXPECT_LE(j, 12);
    EXPECT_DOUBLE_EQ(seq.probability_at(i), std::ldexp(1.0, -j));
  }
}

TEST(UniversalSequenceTest, SequenceIsPeriodic) {
  universal_sequence seq(11, 9);
  for (std::int64_t i = 1; i <= 50; ++i) {
    EXPECT_EQ(seq.exponent_at(i), seq.exponent_at(i + seq.period()));
  }
}

// The heart of Lemma 1: the U1/U2 window properties, verified exactly in
// the paper's asymptotic regime D > 32·r^(2/3) (here: log D well above
// (2/3)·log r so all placement levels fit the tree).
class UniversalWindow
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(UniversalWindow, U1GapsRespectBound) {
  const auto [log_r, log_d] = GetParam();
  universal_sequence seq(log_r, log_d);
  for (int j = seq.u1_lo(); j <= seq.u1_hi(); ++j) {
    EXPECT_LE(seq.max_cyclic_gap(j), seq.u1_gap_bound(j))
        << "j=" << j << " (log_r=" << log_r << ", log_d=" << log_d << ")";
  }
}

TEST_P(UniversalWindow, U2GapsRespectBound) {
  const auto [log_r, log_d] = GetParam();
  universal_sequence seq(log_r, log_d);
  for (int j = seq.u2_lo(); j <= seq.u2_hi(); ++j) {
    EXPECT_LE(seq.max_cyclic_gap(j), seq.u2_gap_bound(j)) << "j=" << j;
  }
}

TEST_P(UniversalWindow, EveryCoveredExponentOccurs) {
  const auto [log_r, log_d] = GetParam();
  universal_sequence seq(log_r, log_d);
  for (int j = seq.u1_lo(); j <= seq.u2_hi(); ++j) {
    EXPECT_LE(seq.max_cyclic_gap(j), seq.period()) << "j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regime, UniversalWindow,
    ::testing::Values(std::pair<int, int>{12, 11}, std::pair<int, int>{12, 12},
                      std::pair<int, int>{14, 12}, std::pair<int, int>{14, 13},
                      std::pair<int, int>{16, 13}, std::pair<int, int>{16, 15},
                      std::pair<int, int>{18, 15},
                      std::pair<int, int>{18, 17}));

TEST(UniversalSequenceTest, DegenerateParametersStillTotal) {
  // Outside the paper's regime the construction must not crash.
  for (int log_r = 1; log_r <= 8; ++log_r) {
    for (int log_d = 0; log_d <= log_r; ++log_d) {
      universal_sequence seq(log_r, log_d);
      EXPECT_GE(seq.period(), 1);
      EXPECT_NO_THROW(seq.exponent_at(1));
    }
  }
}

TEST(UniversalSequenceTest, RejectsBadParameters) {
  EXPECT_THROW(universal_sequence(0, 0), precondition_error);
  EXPECT_THROW(universal_sequence(5, 6), precondition_error);
  EXPECT_THROW(universal_sequence(5, -1), precondition_error);
}

// ---------- broadcast correctness ----------

run_options seeded(std::uint64_t seed, std::int64_t cap = 2'000'000) {
  run_options o;
  o.seed = seed;
  o.max_steps = cap;
  return o;
}

TEST(DecayTest, CompletesOnVariedTopologies) {
  rng gen(5);
  const decay_protocol proto;
  const std::vector<graph> graphs = {
      make_path(33), make_star(64), make_complete(40),
      make_complete_layered_uniform(128, 8), make_grid(6, 7),
      make_gnp_connected(80, 0.08, gen)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const run_result r = run_broadcast(graphs[i], proto, seeded(seed));
      EXPECT_TRUE(r.completed) << "graph " << i << " seed " << seed;
    }
  }
}

TEST(DecayTest, TimeScalesLikeDLogN) {
  // On a path (D = n−1), expected time is Θ(D log n); sanity-bound the
  // constant from above with slack.
  const node_id n = 128;
  graph g = make_path(n);
  const decay_protocol proto;
  const std::vector<double> times = completion_times(g, proto, 10, 77);
  const double mean = summarize(times).mean;
  const double bound = 2.0 * 2.0 * (n - 1) * std::log2(n);  // 2·phaseLen·D
  EXPECT_LT(mean, bound);
  EXPECT_GT(mean, static_cast<double>(n - 1));  // at least one step per hop
}

TEST(KpRandomizedTest, KnownDCompletesOnLayeredNetworks) {
  for (const int d : {2, 4, 8, 16}) {
    graph g = make_complete_layered_uniform(256, d);
    kp_options opts;
    opts.known_d = d;
    const kp_randomized_protocol proto(255, opts);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const run_result r = run_broadcast(g, proto, seeded(seed));
      EXPECT_TRUE(r.completed) << "d=" << d << " seed=" << seed;
    }
  }
}

TEST(KpRandomizedTest, KnownDCompletesOnIrregularGraphs) {
  rng gen(9);
  const std::vector<graph> graphs = {
      make_grid(8, 8), make_random_tree(100, gen),
      make_gnp_connected(100, 0.06, gen), make_caterpillar(20, 3)};
  for (const graph& g : graphs) {
    const int d = radius_from(g);
    kp_options opts;
    opts.known_d = std::max(1, d);
    const kp_randomized_protocol proto(g.node_count() - 1, opts);
    const run_result r = run_broadcast(g, proto, seeded(11));
    EXPECT_TRUE(r.completed);
  }
}

TEST(KpRandomizedTest, DoublingWrapperCompletes) {
  graph g = make_complete_layered_uniform(128, 8);
  kp_options opts;
  opts.known_d = -1;       // doubling
  opts.stage_budget = 16;  // keep early blocks short for the test
  const kp_randomized_protocol proto(127, opts);
  const run_result r = run_broadcast(g, proto, seeded(3));
  EXPECT_TRUE(r.completed);
}

TEST(KpRandomizedTest, SchedulePeriodMatchesBlocks) {
  kp_options opts;
  opts.known_d = 8;
  opts.stage_budget = 10;
  const kp_randomized_protocol proto(127, opts);  // log r = 7, log D = 3
  // one block: 1 + stages·stage_len = 1 + (10·8)·((7−3)+2).
  EXPECT_EQ(proto.schedule_period(), 1 + 80 * 6);
}

TEST(KpRandomizedTest, WorksOnDirectedGraphs) {
  // Section 2 analyzes directed networks; simulate one directly.
  graph und = make_complete_layered_uniform(128, 8);
  graph dir = und.as_directed();
  kp_options opts;
  opts.known_d = 8;
  const kp_randomized_protocol proto(127, opts);
  const run_result r = run_broadcast(dir, proto, seeded(21));
  EXPECT_TRUE(r.completed);
}

TEST(KpRandomizedTest, WorksOnGenuinelyDirectedNetworks) {
  // Forward-arcs-only layered DAGs: no feedback path exists at all.
  rng gen(3);
  std::vector<node_id> sizes{1};
  const auto rest = even_split(127, 8);
  sizes.insert(sizes.end(), rest.begin(), rest.end());
  graph dag = make_directed_layered(sizes, 0.3, gen);
  kp_options opts;
  opts.known_d = 8;
  const kp_randomized_protocol kp(127, opts);
  const decay_protocol decay;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EXPECT_TRUE(run_broadcast(dag, kp, seeded(seed)).completed);
    EXPECT_TRUE(run_broadcast(dag, decay, seeded(seed)).completed);
  }
}

TEST(KpRandomizedTest, TimeBoundSanityOnWorstCaseFamily) {
  // Complete layered networks are the extremal family for randomized
  // broadcast; check mean time ≤ c·(D·log(n/D) + log²n) with generous c.
  const node_id n = 512;
  const int d = 32;
  graph g = make_complete_layered_uniform(n, d);
  kp_options opts;
  opts.known_d = d;
  const kp_randomized_protocol proto(n - 1, opts);
  const std::vector<double> times = completion_times(g, proto, 10, 31);
  const double mean = summarize(times).mean;
  const double theory =
      d * std::log2(static_cast<double>(n) / d) +
      std::log2(static_cast<double>(n)) * std::log2(static_cast<double>(n));
  EXPECT_LT(mean, 40.0 * theory);
}

TEST(KpRandomizedTest, AblatedVariantStallsOnFatLayer) {
  // Drop the universal-sequence step: a node whose in-neighborhood is much
  // larger than r/D sees only probabilities ≥ D/r per stage, so its
  // informing probability per stage is ≈ d·(D/r)·(1−D/r)^(d−1) ≈ 0. The
  // full algorithm handles the same topology easily. This is the paper's
  // §2 design argument, ablated.
  const node_id n = 512;
  const int d = 16;
  graph g = make_complete_layered_fat(n, d, /*fat_index=*/d - 1);
  kp_options full_opts;
  full_opts.known_d = d;
  const kp_randomized_protocol full(n - 1, full_opts);
  kp_options ablated_opts = full_opts;
  ablated_opts.ablate_universal_step = true;
  const kp_randomized_protocol ablated(n - 1, ablated_opts);

  const double t_full =
      summarize(completion_times(g, full, 5, 41)).mean;
  double t_ablated_sum = 0;
  for (std::uint64_t seed = 41; seed < 46; ++seed) {
    const run_result r = run_broadcast(g, ablated, seeded(seed, 200'000));
    // Either it failed to finish within a generous cap, or it took much
    // longer than the full algorithm.
    t_ablated_sum += r.completed ? static_cast<double>(r.informed_step)
                                 : 200'000.0;
  }
  const double t_ablated = t_ablated_sum / 5;
  EXPECT_GT(t_ablated, 4.0 * t_full);
}

TEST(KpRandomizedTest, PaperThresholdFallsBackToDecay) {
  kp_options opts;
  opts.known_d = 4;  // far below 32·r^(2/3) for r = 255
  opts.paper_bgi_threshold = true;
  const kp_randomized_protocol proto(255, opts);
  EXPECT_NE(proto.name().find("bgi-fallback"), std::string::npos);
  graph g = make_complete_layered_uniform(64, 4);
  const run_result r = run_broadcast(g, proto, seeded(2));
  EXPECT_TRUE(r.completed);
}

TEST(KpRandomizedTest, RejectsBadConstruction) {
  EXPECT_THROW(kp_randomized_protocol(0, kp_options{}), precondition_error);
  kp_options opts;
  opts.stage_budget = 0;
  EXPECT_THROW(kp_randomized_protocol(63, opts), precondition_error);
}

TEST(KpRandomizedTest, ReproducibleForSameSeed) {
  graph g = make_complete_layered_uniform(128, 8);
  kp_options opts;
  opts.known_d = 8;
  const kp_randomized_protocol proto(127, opts);
  const run_result a = run_broadcast(g, proto, seeded(99));
  const run_result b = run_broadcast(g, proto, seeded(99));
  EXPECT_EQ(a.informed_step, b.informed_step);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.informed_at, b.informed_at);
}

TEST(KpRandomizedTest, StageStructureImprovesOnDecayForLargeD) {
  // The headline claim (Theorem 1 vs BGI): with D = n/8 the optimal
  // algorithm's stage is log(r/D)+2 = O(1) steps vs Decay's 2·log n, so
  // completion should be clearly faster on the worst-case family.
  const node_id n = 1024;
  const int d = 128;
  graph g = make_complete_layered_uniform(n, d);
  kp_options opts;
  opts.known_d = d;
  const kp_randomized_protocol kp(n - 1, opts);
  const decay_protocol decay;
  const double t_kp = summarize(completion_times(g, kp, 7, 7)).mean;
  const double t_decay = summarize(completion_times(g, decay, 7, 7)).mean;
  EXPECT_LT(t_kp, t_decay);
}

}  // namespace
}  // namespace radiocast
