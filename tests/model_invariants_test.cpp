// Cross-protocol model-invariant property suite: for every protocol ×
// topology × seed, the run's accounting must satisfy the radio model's
// conservation laws, and traces must be internally consistent and
// seed-deterministic event for event.
#include <gtest/gtest.h>

#include <map>

#include "core/dfs_known.h"
#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace radiocast {
namespace {

struct scenario {
  std::string proto;
  std::string topo;
};

std::string scenario_name(const ::testing::TestParamInfo<scenario>& info) {
  std::string s = info.param.proto + "_" + info.param.topo;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

graph build(const std::string& topo) {
  rng gen(99);
  if (topo == "path") return make_path(48);
  if (topo == "layered") return make_complete_layered_uniform(64, 8);
  if (topo == "gnp") return make_gnp_connected(48, 0.12, gen);
  if (topo == "geometric") return make_random_geometric(48, 0.25, gen);
  return make_random_tree(48, gen);
}

class ModelInvariants : public ::testing::TestWithParam<scenario> {};

TEST_P(ModelInvariants, ConservationLaws) {
  const auto& [proto_name, topo] = GetParam();
  const graph g = build(topo);
  const int d = radius_from(g);
  // "selective" reuses the hint as its degree bound k.
  const int hint = proto_name == "selective" ? max_degree(g) + 1
                                             : std::max(1, d);
  const auto proto = make_protocol(proto_name, g.node_count() - 1, hint);
  trace t;
  run_options opts;
  opts.max_steps = 5'000'000;
  opts.seed = 31;
  opts.sink = &t;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);

  // 1. Everyone informed; the source from the start.
  EXPECT_EQ(res.informed_at[0], 0);
  std::int64_t last_informed = 0;
  for (std::size_t v = 1; v < res.informed_at.size(); ++v) {
    ASSERT_GE(res.informed_at[v], 0);
    last_informed = std::max(last_informed, res.informed_at[v]);
  }
  // 2. Completion step is exactly one past the last informing reception.
  EXPECT_EQ(res.informed_step, last_informed + 1);
  // 3. Every informed node other than the source received ≥ 1 message.
  EXPECT_GE(res.deliveries,
            static_cast<std::int64_t>(res.informed_at.size()) - 1);
  // 4. A delivery needs a transmission; a collision needs ≥ 2.
  EXPECT_GE(res.transmissions, 1);
  EXPECT_LE(res.deliveries + 2 * res.collisions,
            res.transmissions * static_cast<std::int64_t>(max_degree(g)));
  // 4b. Per-node transmission counts sum to the total (energy metric).
  std::int64_t per_node_sum = 0;
  for (std::int64_t x : res.transmissions_per_node) {
    EXPECT_GE(x, 0);
    per_node_sum += x;
  }
  EXPECT_EQ(per_node_sum, res.transmissions);
  // An uninformed-forever node transmits zero times; the source ≥ 1.
  EXPECT_GE(res.transmissions_per_node[0], 1);
  // 5. Trace agrees with the counters.
  EXPECT_EQ(static_cast<std::int64_t>(
                t.filter(trace_event::type::transmit).size()),
            res.transmissions);
  EXPECT_EQ(static_cast<std::int64_t>(
                t.filter(trace_event::type::receive).size()),
            res.deliveries);
  EXPECT_EQ(static_cast<std::int64_t>(
                t.filter(trace_event::type::collision).size()),
            res.collisions);
  // informed events: everyone but the source.
  EXPECT_EQ(t.filter(trace_event::type::informed).size(),
            res.informed_at.size() - 1);

  // 6. Per step, a node never both transmits and receives; receivers of a
  //    step have exactly one transmitting in-neighbor.
  std::map<std::int64_t, std::vector<node_id>> tx_by_step;
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    tx_by_step[e.step].push_back(e.node);
  }
  for (const auto& e : t.filter(trace_event::type::receive)) {
    const auto& txs = tx_by_step[e.step];
    EXPECT_TRUE(std::find(txs.begin(), txs.end(), e.node) == txs.end())
        << "node " << e.node << " transmitted and received at " << e.step;
    int in_tx = 0;
    for (node_id u : g.in_neighbors(e.node)) {
      in_tx += std::find(txs.begin(), txs.end(), u) != txs.end() ? 1 : 0;
    }
    EXPECT_EQ(in_tx, 1) << "reception without a unique transmitter at step "
                        << e.step;
    // The recorded sender is that unique in-neighbor.
    EXPECT_TRUE(g.has_edge(e.msg.from, e.node));
  }
}

TEST_P(ModelInvariants, TraceIsSeedDeterministic) {
  const auto& [proto_name, topo] = GetParam();
  const graph g = build(topo);
  const int d = radius_from(g);
  const int hint = proto_name == "selective" ? max_degree(g) + 1
                                             : std::max(1, d);
  const auto proto = make_protocol(proto_name, g.node_count() - 1, hint);
  auto run_traced = [&](trace& t) {
    run_options opts;
    opts.max_steps = 5'000'000;
    opts.seed = 77;
    opts.sink = &t;
    return run_broadcast(g, *proto, opts);
  };
  trace a;
  trace b;
  const run_result ra = run_traced(a);
  const run_result rb = run_traced(b);
  ASSERT_TRUE(ra.completed && rb.completed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].step, b.events()[i].step);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(static_cast<int>(a.events()[i].what),
              static_cast<int>(b.events()[i].what));
    EXPECT_EQ(a.events()[i].msg, b.events()[i].msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelInvariants,
    ::testing::Values(scenario{"kp", "layered"}, scenario{"kp", "tree"},
                      scenario{"kp", "geometric"},
                      scenario{"decay", "layered"}, scenario{"decay", "gnp"},
                      scenario{"round-robin", "path"},
                      scenario{"round-robin", "layered"},
                      scenario{"select-and-send", "tree"},
                      scenario{"select-and-send", "gnp"},
                      scenario{"select-and-send", "geometric"},
                      scenario{"complete-layered", "layered"},
                      scenario{"interleaved", "tree"},
                      scenario{"interleaved", "layered"},
                      scenario{"selective", "path"}),
    scenario_name);

TEST(ModelInvariantsTest, DfsKnownConservation) {
  rng gen(5);
  const graph g = make_gnp_connected(40, 0.15, gen);
  const dfs_known_protocol proto(g);
  trace t;
  run_options opts;
  opts.stop = stop_condition::all_halted;
  opts.max_steps = 1'000'000;
  opts.sink = &t;
  const run_result res = run_broadcast(g, proto, opts);
  ASSERT_TRUE(res.completed);
  // One transmitter per step ⇒ receptions per step ≤ degree, collisions 0.
  EXPECT_EQ(res.collisions, 0);
  std::map<std::int64_t, int> tx_per_step;
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    EXPECT_EQ(++tx_per_step[e.step], 1)
        << "two transmitters at step " << e.step;
  }
}

}  // namespace
}  // namespace radiocast
