// Chaos harness tests (fault/chaos.h): the sampled sweep is violation-free
// on the real simulator, a deliberately broken fault model is CAUGHT by the
// right invariants, and the radiocast.chaos.v1 report writer/validator
// agree with each other (and reject corrupted documents).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.h"
#include "fault/chaos.h"
#include "fault/fault_model.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "util/rng.h"

namespace radiocast {
namespace {

std::size_t iv(fault::chaos_invariant inv) {
  return static_cast<std::size_t>(inv);
}

// ---------- clean sweeps ----------

TEST(ChaosTest, SampledSweepIsViolationFree) {
  fault::chaos_options opts;
  opts.runs = 40;
  opts.base_seed = 5;
  opts.max_steps = 800;
  const fault::chaos_report rep = fault::run_chaos(opts);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.runs, 40);
  EXPECT_EQ(rep.failed_runs, 0);
  EXPECT_TRUE(rep.failures.empty());
  std::int64_t total_checks = 0;
  for (const fault::invariant_stats& s : rep.invariants) {
    EXPECT_EQ(s.violations, 0);
    total_checks += s.checks;
  }
  EXPECT_GT(total_checks, 0);
  // The structural invariants fire on every run; they must have been
  // exercised many times over 40 scenarios.
  EXPECT_GT(rep.invariants[iv(fault::chaos_invariant::exactly_one_transmitter)]
                .checks,
            0);
  EXPECT_GT(
      rep.invariants[iv(fault::chaos_invariant::engine_bit_identity)].checks,
      0);
  EXPECT_GT(
      rep.invariants[iv(fault::chaos_invariant::completion_semantics)].checks,
      0);
}

TEST(ChaosTest, SweepIsDeterministic) {
  fault::chaos_options opts;
  opts.runs = 8;
  opts.base_seed = 42;
  opts.max_steps = 400;
  const fault::chaos_report a = fault::run_chaos(opts);
  const fault::chaos_report b = fault::run_chaos(opts);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(ChaosTest, CleanScenarioPassesEveryInvariant) {
  // Aim check_scenario at a known-good composition directly (fault-free,
  // so the model pointer is null and zero-intensity is trivially off).
  rng gen(7);
  const graph g = make_gnp_connected(24, 0.2, gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  const fault::scenario_check_result res =
      fault::check_scenario(g, *proto, nullptr, 3, 5'000, false);
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.violations.empty());
  EXPECT_GT(res.checks[iv(fault::chaos_invariant::exactly_one_transmitter)],
            0);
}

// ---------- a broken model is caught ----------

/// Deliberately violates the determinism contract: begin_run fails to
/// reset the run counter, so the model downs edge (0,1) permanently on its
/// FIRST run and does nothing on later runs — while clone() (correctly)
/// starts fresh. The frontier run and the reference run therefore see
/// different fault schedules, and the reference run's trace-replay oracle
/// (driven by a fresh clone) sees deliveries crossing an edge the replay
/// says is down.
class two_faced_churn final : public fault::fault_model {
 public:
  std::string name() const override { return "two_faced_churn"; }
  void begin_run(const fault::run_view& view) override {
    (void)view;
    ++runs_;  // BUG: run state survives begin_run
  }
  void begin_step(const fault::step_view& view,
                  fault::step_faults* out) override {
    if (runs_ == 1 && view.step == 0) out->edges_down.push_back({0, 1});
  }
  std::unique_ptr<fault::fault_model> clone() const override {
    return std::make_unique<two_faced_churn>();
  }

 private:
  int runs_ = 0;
};

TEST(ChaosTest, BrokenModelIsCaughtByDownEdgeAndBitIdentityInvariants) {
  const graph g = make_path(3);
  const auto proto = make_protocol("decay", 2);
  two_faced_churn broken;
  const fault::scenario_check_result res =
      fault::check_scenario(g, *proto, &broken, 9, 64, false);
  EXPECT_FALSE(res.ok());
  // The frontier run (the model's run #1) matches its replay clone; the
  // reference run (run #2) does not: the replay expects the down edge the
  // stale model no longer produces…
  EXPECT_GT(
      res.violation_counts[iv(fault::chaos_invariant::fault_schedule_replay)],
      0);
  // …so the reference trace delivers 0→1 over an edge the oracle holds
  // down…
  EXPECT_GT(res.violation_counts[iv(
                fault::chaos_invariant::no_delivery_over_down_edge)],
            0);
  // …and the two engines' runs cannot be byte-identical.
  EXPECT_GT(
      res.violation_counts[iv(fault::chaos_invariant::engine_bit_identity)],
      0);
  EXPECT_FALSE(res.violations.empty());
}

TEST(ChaosTest, BrokenModelFailureSurfacesInTheReportPipeline) {
  // The same defect driven through run_chaos-style accounting: fold a
  // failing scenario_check_result into per-invariant stats the way the
  // report does, and the document still validates (the schema is about
  // structure, not innocence).
  const graph g = make_path(3);
  const auto proto = make_protocol("decay", 2);
  two_faced_churn broken;
  const fault::scenario_check_result res =
      fault::check_scenario(g, *proto, &broken, 9, 64, false);
  ASSERT_FALSE(res.ok());

  fault::chaos_report rep;
  rep.config.runs = 1;
  rep.runs = 1;
  rep.failed_runs = 1;
  for (std::size_t i = 0; i < fault::kChaosInvariantCount; ++i) {
    rep.invariants[i].checks = res.checks[i];
    rep.invariants[i].violations = res.violation_counts[i];
  }
  fault::chaos_failure f;
  f.seed = 9;
  f.scenario = "path(n=3) proto=decay two_faced_churn";
  f.invariant =
      fault::chaos_invariant_name(res.violations.front().invariant);
  f.detail = res.violations.front().detail;
  rep.failures.push_back(f);

  EXPECT_FALSE(rep.ok());
  std::vector<std::string> errors;
  EXPECT_TRUE(fault::validate_chaos_report(rep.to_json(), &errors))
      << (errors.empty() ? "" : errors.front());
}

// ---------- a broken SoA phase merge is caught ----------

TEST(ChaosTest, BrokenSoaPhaseMergeIsCaughtByBitIdentity) {
  // A dense G(n, p) graph keeps many simultaneous transmitters with
  // DIFFERENT neighborhoods alive for many steps, so with 4 shards of
  // grain 1 the phase-2 reduction genuinely splits the transmitter set:
  // several shards touch the same listeners in different orders, and only
  // the ORDERED merge reproduces the serial engine's first-touch order
  // (hence its trace event order). debug_unordered_merge reverses the
  // shard merge — arrival COUNTS still agree (sums commute), so nothing
  // but the byte-for-byte engine_bit_identity contract can see the
  // corruption. It must. (A complete or complete-layered topology would
  // mask the reversal: interchangeable transmitters produce the same
  // first-touch order no matter which shard merges first.)
  rng topo_gen(31);
  const graph g = make_gnp_connected(40, 0.3, topo_gen);
  const auto proto = make_protocol("decay", g.node_count() - 1);
  fault::soa_check_options sabotage;
  sabotage.step_threads = 4;
  sabotage.step_shard_grain = 1;
  sabotage.debug_unordered_merge = true;
  const fault::scenario_check_result broken = fault::check_scenario(
      g, *proto, nullptr, 13, 4'000, false, sabotage);
  EXPECT_FALSE(broken.ok());
  EXPECT_GT(
      broken.violation_counts[iv(fault::chaos_invariant::engine_bit_identity)],
      0);
  EXPECT_FALSE(broken.violations.empty());

  // The identical scenario with the honest merge is violation-free —
  // the sabotage knob, not the sharding, is what broke it.
  fault::soa_check_options honest = sabotage;
  honest.debug_unordered_merge = false;
  const fault::scenario_check_result clean = fault::check_scenario(
      g, *proto, nullptr, 13, 4'000, false, honest);
  EXPECT_TRUE(clean.ok());
}

// ---------- report schema and validator ----------

TEST(ChaosTest, ReportRoundTripsThroughDumpAndParse) {
  fault::chaos_options opts;
  opts.runs = 6;
  opts.base_seed = 11;
  opts.max_steps = 300;
  const fault::chaos_report rep = fault::run_chaos(opts);
  const obs::json_value doc = rep.to_json();

  const obs::json_value* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "radiocast.chaos.v1");

  std::string error;
  const auto parsed = obs::json_parse(doc.dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, doc);

  std::vector<std::string> errors;
  EXPECT_TRUE(fault::validate_chaos_report(*parsed, &errors))
      << (errors.empty() ? "" : errors.front());
  EXPECT_TRUE(errors.empty());
}

TEST(ChaosTest, ValidatorRejectsCorruptedReports) {
  fault::chaos_options opts;
  opts.runs = 4;
  opts.base_seed = 3;
  opts.max_steps = 300;
  const fault::chaos_report rep = fault::run_chaos(opts);
  const obs::json_value good = rep.to_json();
  ASSERT_TRUE(fault::validate_chaos_report(good));

  {  // negative run count
    obs::json_value doc = good;
    doc.set("runs", -1);
    EXPECT_FALSE(fault::validate_chaos_report(doc));
  }
  {  // more failed runs than runs
    obs::json_value doc = good;
    doc.set("failed_runs", rep.runs + 1);
    EXPECT_FALSE(fault::validate_chaos_report(doc));
  }
  {  // ok flag contradicting failed_runs
    obs::json_value doc = good;
    doc.set("ok", false);
    std::vector<std::string> errors;
    EXPECT_FALSE(fault::validate_chaos_report(doc, &errors));
    EXPECT_FALSE(errors.empty());
  }
  {  // wrong schema tag
    obs::json_value doc = good;
    doc.set("schema", "radiocast.bench.v1");
    EXPECT_FALSE(fault::validate_chaos_report(doc));
  }
  {  // invariant table torn down to a single entry
    obs::json_value doc = good;
    obs::json_value one = obs::json_value::array();
    one.push_back(good.find("invariants")->items().front());
    doc.set("invariants", one);
    EXPECT_FALSE(fault::validate_chaos_report(doc));
  }
  {  // unknown invariant name
    std::string text = good.dump();
    const std::string needle = "\"exactly_one_transmitter\"";
    const std::size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, needle.size(), "\"bogus_invariant\"");
    const auto doc = obs::json_parse(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(fault::validate_chaos_report(*doc));
  }
  {  // violations exceeding checks
    std::string text = good.dump();
    const std::string needle = "\"violations\":0";
    const std::size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, needle.size(), "\"violations\":999999");
    const auto doc = obs::json_parse(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(fault::validate_chaos_report(*doc));
  }
  {  // not even an object
    EXPECT_FALSE(fault::validate_chaos_report(obs::json_value(3)));
  }
}

TEST(ChaosTest, InvariantNamesAreStable) {
  EXPECT_STREQ(
      fault::chaos_invariant_name(
          fault::chaos_invariant::exactly_one_transmitter),
      "exactly_one_transmitter");
  EXPECT_STREQ(fault::chaos_invariant_name(
                   fault::chaos_invariant::no_delivery_over_down_edge),
               "no_delivery_over_down_edge");
  EXPECT_STREQ(
      fault::chaos_invariant_name(fault::chaos_invariant::engine_bit_identity),
      "engine_bit_identity");
  EXPECT_STREQ(fault::chaos_invariant_name(
                   fault::chaos_invariant::zero_intensity_identity),
               "zero_intensity_identity");
}

}  // namespace
}  // namespace radiocast
