// Tests for the determinism lint rule engine (tools/lint/).
//
// Each rule R1–R5 is exercised on inline fixture snippets: a seeded
// violation must fire, the path-based scoping must exempt the designated
// directories, every suppression form must suppress (and be justified),
// and the radiocast.lint.v1 JSON report must round-trip through the
// project's own JSON parser (src/obs/json.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "obs/json.h"

namespace radiocast {
namespace {

using lint::finding;
using lint::lint_file;

/// Unsuppressed findings for one rule.
int fired(const std::vector<finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(), [&](const finding& f) {
        return f.rule == rule && !f.suppressed;
      }));
}

int suppressed(const std::vector<finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(), [&](const finding& f) {
        return f.rule == rule && f.suppressed;
      }));
}

// ---------- R1: no-raw-random ----------

TEST(LintTest, R1FiresOnRawRandomness) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    int x = rand();
  )cpp"),
                  "no-raw-random"),
            1);
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    std::mt19937 gen(42);
  )cpp"),
                  "no-raw-random"),
            1);
  EXPECT_EQ(fired(lint_file("tests/foo_test.cpp", R"cpp(
    std::random_device rd;
  )cpp"),
                  "no-raw-random"),
            1);
  EXPECT_EQ(fired(lint_file("bench/bench_foo.cpp", R"cpp(
    srand(7);
  )cpp"),
                  "no-raw-random"),
            1);
}

TEST(LintTest, R1ExemptsTheRngImplementation) {
  const char* snippet = R"cpp(
    std::mt19937 reference(42);  // cross-checked against xoshiro
  )cpp";
  EXPECT_EQ(fired(lint_file("src/util/rng.cpp", snippet), "no-raw-random"),
            0);
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", snippet), "no-raw-random"),
            1);
}

TEST(LintTest, R1IgnoresCommentsAndStrings) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    // std::mt19937 would be wrong here
    const char* msg = "never call rand() directly";
  )cpp"),
                  "no-raw-random"),
            0);
}

TEST(LintTest, R1IgnoresLongerIdentifiers) {
  // `rand` must match as a whole token, not as a substring.
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    int randomized_rounds = operand + rand_like;
  )cpp"),
                  "no-raw-random"),
            0);
}

// ---------- R2: wall-clock ----------

TEST(LintTest, R2FiresOnWallClockOutsideTimingSites) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    auto t = std::chrono::steady_clock::now();
  )cpp"),
                  "wall-clock"),
            1);
  EXPECT_EQ(fired(lint_file("src/sim/foo.cpp", R"cpp(
    auto seed = time(nullptr);
  )cpp"),
                  "wall-clock"),
            1);
  EXPECT_EQ(fired(lint_file("tools/foo.cpp", R"cpp(
    auto t = std::chrono::system_clock::now();
  )cpp"),
                  "wall-clock"),
            1);
}

TEST(LintTest, R2ExemptsDesignatedTimingSites) {
  const char* snippet = R"cpp(
    auto t = std::chrono::steady_clock::now();
  )cpp";
  EXPECT_EQ(fired(lint_file("bench/bench_common.h", snippet), "wall-clock"),
            0);
  EXPECT_EQ(fired(lint_file("src/exec/parallel_trials.cpp", snippet),
                  "wall-clock"),
            0);
}

TEST(LintTest, R2CoversCampaignCodeExceptAnnotatedAllows) {
  // src/campaign/ is IN scope for R2: its results must be host-independent.
  // The one sanctioned read — the checkpoint freshness timestamp — goes
  // through an annotated allow, exactly as checkpoint.cpp does it.
  EXPECT_EQ(fired(lint_file("src/campaign/campaign.cpp", R"cpp(
    auto t = std::chrono::system_clock::now();
  )cpp"),
                  "wall-clock"),
            1);
  EXPECT_EQ(fired(lint_file("src/campaign/checkpoint.cpp", R"cpp(
    const auto since_epoch =
        // radiocast-lint: allow(wall-clock) -- checkpoint freshness
        // timestamp: display-only metadata, never reaches results
        std::chrono::system_clock::now().time_since_epoch();
  )cpp"),
                  "wall-clock"),
            0);
}

TEST(LintTest, R2MatchesTimeOnlyAsACall) {
  // `time(` is banned; `time_point`, `wall_time(...)` and members named
  // time are not wall-clock reads.
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    std::chrono::steady_clock::time_point tp;
  )cpp"),
                  "wall-clock"),
            1);  // steady_clock itself still fires, time_point does not
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    double w = wall_time(run);
    duration time_budget = limit;
  )cpp"),
                  "wall-clock"),
            0);
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    auto now = time (nullptr);
  )cpp"),
                  "wall-clock"),
            1);
}

// ---------- R3: unordered-iter ----------

TEST(LintTest, R3FiresOnUnorderedContainersInSrc) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    std::unordered_map<int, int> cache;
  )cpp"),
                  "unordered-iter"),
            1);
  EXPECT_EQ(fired(lint_file("src/fault/foo.cpp", R"cpp(
    std::unordered_set<node_id> seen;
  )cpp"),
                  "unordered-iter"),
            1);
}

TEST(LintTest, R3CoversLibraryTestsAndTools) {
  // A test asserting on hash order passes on exactly one libstdc++ build,
  // and a tool can leak hash order into a report diff — so tests/ and
  // tools/ are in scope alongside src/. bench/ stays out (presentation
  // tables only).
  const char* snippet = R"cpp(
    std::unordered_set<int> seen;
  )cpp";
  EXPECT_EQ(fired(lint_file("tests/foo_test.cpp", snippet),
                  "unordered-iter"),
            1);
  EXPECT_EQ(fired(lint_file("tools/foo.cpp", snippet), "unordered-iter"), 1);
  EXPECT_EQ(fired(lint_file("bench/foo.cpp", snippet), "unordered-iter"), 0);
}

TEST(LintTest, R1CoversToolsAndExamples) {
  const char* snippet = R"cpp(
    std::mt19937 gen(12345);
  )cpp";
  EXPECT_EQ(fired(lint_file("tools/foo.cpp", snippet), "no-raw-random"), 1);
  EXPECT_EQ(fired(lint_file("examples/foo.cpp", snippet), "no-raw-random"),
            1);
}

TEST(LintTest, R3IgnoresTheIncludeItself) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
#include <unordered_set>
  )cpp"),
                  "unordered-iter"),
            0);
}

// ---------- R4: check-msg ----------

TEST(LintTest, R4FiresOnBareCheckInAdversaryAndExec) {
  const char* snippet = R"cpp(
    RC_CHECK(block.size() >= 2);
  )cpp";
  EXPECT_EQ(fired(lint_file("src/adversary/foo.cpp", snippet), "check-msg"),
            1);
  EXPECT_EQ(fired(lint_file("src/exec/foo.cpp", snippet), "check-msg"), 1);
  // Other subsystems may use the short form.
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", snippet), "check-msg"), 0);
}

TEST(LintTest, R4AcceptsCheckWithMessage) {
  EXPECT_EQ(fired(lint_file("src/adversary/foo.cpp", R"cpp(
    RC_CHECK_MSG(block.size() >= 2, "block invariant broken");
    RC_CHECK (ok);
  )cpp"),
                  "check-msg"),
            1);  // only the bare (space-separated) RC_CHECK fires
}

// ---------- R5: iostream ----------

TEST(LintTest, R5FiresOnIostreamInSrc) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
#include <iostream>
  )cpp"),
                  "iostream"),
            1);
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
  #  include   <iostream>
  )cpp"),
                  "iostream"),
            1);
}

TEST(LintTest, R5ScopedToLibraryCode) {
  const char* snippet = R"cpp(
#include <iostream>
  )cpp";
  EXPECT_EQ(fired(lint_file("tools/foo.cpp", snippet), "iostream"), 0);
  EXPECT_EQ(fired(lint_file("examples/foo.cpp", snippet), "iostream"), 0);
  // Near-miss headers stay legal.
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
#include <iosfwd>
  )cpp"),
                  "iostream"),
            0);
}

// ---------- suppressions ----------

TEST(LintTest, TrailingAllowSuppresses) {
  const auto fs = lint_file("src/core/foo.cpp", R"cpp(
    std::unordered_set<int> seen;  // radiocast-lint: allow(unordered-iter) -- membership only
  )cpp");
  EXPECT_EQ(fired(fs, "unordered-iter"), 0);
  EXPECT_EQ(suppressed(fs, "unordered-iter"), 1);
  ASSERT_FALSE(fs.empty());
  EXPECT_EQ(fs[0].justification, "membership only");
}

TEST(LintTest, PrecedingLineAllowSuppresses) {
  const auto fs = lint_file("src/core/foo.cpp", R"cpp(
    // radiocast-lint: allow(unordered-iter) -- membership-only set; the
    // continuation of this justification spans comment lines
    std::unordered_set<int> seen;
  )cpp");
  EXPECT_EQ(fired(fs, "unordered-iter"), 0);
  EXPECT_EQ(suppressed(fs, "unordered-iter"), 1);
}

TEST(LintTest, AllowWithoutJustificationIsAFinding) {
  const auto fs = lint_file("src/core/foo.cpp", R"cpp(
    std::unordered_set<int> seen;  // radiocast-lint: allow(unordered-iter)
  )cpp");
  // The bare allow() is rejected, so it also fails to suppress.
  EXPECT_EQ(fired(fs, "lint-annotation"), 1);
  EXPECT_EQ(fired(fs, "unordered-iter"), 1);
}

TEST(LintTest, AllowForUnknownRuleIsAFinding) {
  const auto fs = lint_file("src/core/foo.cpp", R"cpp(
    // radiocast-lint: allow(made-up-rule) -- because
    std::unordered_set<int> seen;
  )cpp");
  EXPECT_EQ(fired(fs, "lint-annotation"), 1);
  EXPECT_EQ(fired(fs, "unordered-iter"), 1);
}

TEST(LintTest, AllowForDifferentRuleDoesNotSuppress) {
  const auto fs = lint_file("src/core/foo.cpp", R"cpp(
    auto t = std::chrono::steady_clock::now();  // radiocast-lint: allow(unordered-iter) -- wrong rule
  )cpp");
  EXPECT_EQ(fired(fs, "wall-clock"), 1);
  // ...and the mismatched suppression is flagged as unused.
  EXPECT_EQ(fired(fs, "lint-annotation"), 1);
}

TEST(LintTest, UnusedAllowIsAFinding) {
  const auto fs = lint_file("src/core/foo.cpp", R"cpp(
    // radiocast-lint: allow(wall-clock) -- stale justification
    int x = 1;
  )cpp");
  EXPECT_EQ(fired(fs, "lint-annotation"), 1);
}

TEST(LintTest, ProseMentioningTheMarkerIsNotAnAnnotation) {
  const auto fs = lint_file("src/core/foo.cpp", R"cpp(
    // See the radiocast-lint docs for the allow() syntax.
    int x = 1;
  )cpp");
  EXPECT_TRUE(fs.empty());
}

// ---------- lexer corner cases ----------

TEST(LintTest, RawStringContentsAreInvisible) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp",
                            "const char* f = R\"fix(\n"
                            "  std::mt19937 gen; rand();\n"
                            ")fix\";\n"),
                  "no-raw-random"),
            0);
}

TEST(LintTest, BlockCommentsSpanningLinesAreStripped) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    /* a block comment mentioning
       std::mt19937 and rand() across lines */
    int x = 1;
  )cpp"),
                  "no-raw-random"),
            0);
}

TEST(LintTest, DigitSeparatorsDoNotConfuseTheLexer) {
  EXPECT_EQ(fired(lint_file("src/core/foo.cpp", R"cpp(
    const std::int64_t big = 1'000'000;
    std::mt19937 gen;
  )cpp"),
                  "no-raw-random"),
            1);  // the separator line parses; the violation still fires
}

TEST(LintTest, FindingCarriesLineAndSnippet) {
  const auto fs = lint_file("src/core/foo.cpp",
                            "int a;\nint b = rand();\nint c;\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "no-raw-random");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[0].snippet, "int b = rand();");
  EXPECT_EQ(fs[0].path, "src/core/foo.cpp");
}

// ---------- every rule is documented ----------

TEST(LintTest, RuleTableCoversR1ToR5) {
  std::vector<std::string> ids;
  for (const lint::rule_info& r : lint::rules()) ids.push_back(r.id);
  const std::vector<std::string> expected = {
      "no-raw-random", "wall-clock", "unordered-iter", "check-msg",
      "iostream"};
  EXPECT_EQ(ids, expected);
  for (const std::string& id : expected) {
    EXPECT_TRUE(lint::is_known_rule(id)) << id;
  }
  EXPECT_FALSE(lint::is_known_rule("made-up"));
}

// ---------- JSON report ----------

TEST(LintTest, ReportRoundTripsThroughTheProjectJsonParser) {
  lint::report rep;
  rep.files_scanned = 3;
  auto add = [&](const std::string& path, const std::string& text) {
    auto fs = lint_file(path, text);
    rep.findings.insert(rep.findings.end(), fs.begin(), fs.end());
  };
  add("src/core/foo.cpp", R"cpp(
    int seed = rand();
  )cpp");
  add("src/core/bar.cpp", R"cpp(
    std::unordered_set<int> seen;  // radiocast-lint: allow(unordered-iter) -- membership only
  )cpp");
  ASSERT_EQ(rep.unsuppressed_count(), 1);
  ASSERT_EQ(rep.suppressed_count(), 1);

  const std::string dumped = lint::report_to_json(rep).dump(2);
  std::string error;
  std::optional<obs::json_value> doc = obs::json_parse(dumped, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  EXPECT_EQ(doc->find("schema")->as_string(), "radiocast.lint.v1");
  EXPECT_EQ(doc->find("tool")->as_string(), "radiocast_lint");
  EXPECT_EQ(doc->find("files_scanned")->as_int(), 3);
  ASSERT_EQ(doc->find("findings")->items().size(), 1u);
  ASSERT_EQ(doc->find("suppressed")->items().size(), 1u);
  EXPECT_EQ(doc->find("rules")->items().size(), lint::rules().size());

  const obs::json_value& f = doc->find("findings")->items()[0];
  EXPECT_EQ(f.find("rule")->as_string(), "no-raw-random");
  EXPECT_EQ(f.find("path")->as_string(), "src/core/foo.cpp");
  EXPECT_EQ(f.find("line")->as_int(), 2);
  EXPECT_EQ(f.find("snippet")->as_string(), "int seed = rand();");

  const obs::json_value& s = doc->find("suppressed")->items()[0];
  EXPECT_EQ(s.find("justification")->as_string(), "membership only");

  EXPECT_EQ(doc->find_path("summary.findings")->as_int(), 1);
  EXPECT_EQ(doc->find_path("summary.suppressed")->as_int(), 1);
  EXPECT_FALSE(doc->find_path("summary.clean")->as_bool());
}

TEST(LintTest, CleanReportIsClean) {
  lint::report rep;
  rep.files_scanned = 1;
  const std::string dumped = lint::report_to_json(rep).dump();
  std::optional<obs::json_value> doc = obs::json_parse(dumped);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find_path("summary.clean")->as_bool());
}

}  // namespace
}  // namespace radiocast
