// Tests of the Echo / Binary-Selection machinery (core/echo.h), driven
// directly against a simulated responder set: the harness plays the radio
// channel for one initiator whose neighbors are the members of S plus the
// helper w, reproducing the exactly-one-transmitter delivery rule.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/echo.h"
#include "util/math.h"
#include "util/rng.h"

namespace radiocast {
namespace {

constexpr selection_kinds kKinds{40, 41};

/// Runs the selection driver to completion against responder set `s`
/// (labels ≥ 1), helper `w` (not in s). Returns the driver's result and
/// reports the number of steps consumed via *steps_out.
selection_driver::status run_selection(const std::set<node_id>& s,
                                       node_id helper, node_id bound,
                                       node_id* selected_out,
                                       int* steps_out = nullptr,
                                       int* segments_out = nullptr) {
  selection_driver driver(kKinds, helper, bound);
  pending_tx replies;  // union of all responders' scheduled replies
  // member → pending reply steps; we model each responder separately to
  // count transmitters per step.
  std::map<std::int64_t, std::vector<node_id>> tx_at;

  int steps = 0;
  for (std::int64_t step = 0; step < 100000; ++step) {
    ++steps;
    // Initiator acts.
    std::optional<message> order = driver.on_step(step);
    if (driver.finished()) break;
    if (order) {
      order->from = -1;
      // Every member of S (and the helper) hears the order: the initiator
      // is their common neighbor and nothing else transmits this step.
      for (node_id member : s) {
        pending_tx out;
        schedule_echo_replies(out, kKinds, *order, step, member,
                              /*is_member=*/true);
        for (std::int64_t t = step + 1; t <= step + 2; ++t) {
          if (out.take(t)) tx_at[t].push_back(member);
        }
      }
      pending_tx out;
      schedule_echo_replies(out, kKinds, *order, step, helper,
                            /*is_member=*/false);
      for (std::int64_t t = step + 1; t <= step + 2; ++t) {
        if (out.take(t)) tx_at[t].push_back(helper);
      }
      continue;
    }
    // Channel: the initiator receives iff exactly one responder transmits.
    const auto it = tx_at.find(step);
    if (it != tx_at.end() && it->second.size() == 1) {
      driver.on_receive(message{kKinds.reply, it->second[0], 0, 0, 0, 0});
    }
  }
  if (steps_out != nullptr) *steps_out = steps;
  if (segments_out != nullptr) *segments_out = driver.segments_issued();
  if (driver.result() == selection_driver::status::selected) {
    *selected_out = driver.selected();
  }
  return driver.result();
}

TEST(EchoTest, EmptySetDetected) {
  node_id selected = -1;
  EXPECT_EQ(run_selection({}, 7, 63, &selected),
            selection_driver::status::empty_set);
}

TEST(EchoTest, SingletonSelectedImmediately) {
  node_id selected = -1;
  int segments = 0;
  EXPECT_EQ(run_selection({5}, 7, 63, &selected, nullptr, &segments),
            selection_driver::status::selected);
  EXPECT_EQ(selected, 5);
  EXPECT_EQ(segments, 1);  // the full probe already finds it
}

TEST(EchoTest, PairSelectsExactlyOneMember) {
  node_id selected = -1;
  EXPECT_EQ(run_selection({3, 9}, 1, 63, &selected),
            selection_driver::status::selected);
  EXPECT_TRUE(selected == 3 || selected == 9);
}

TEST(EchoTest, AdjacentLabelsAreSeparated) {
  node_id selected = -1;
  EXPECT_EQ(run_selection({12, 13}, 1, 63, &selected),
            selection_driver::status::selected);
  EXPECT_TRUE(selected == 12 || selected == 13);
}

TEST(EchoTest, LargeContiguousSet) {
  std::set<node_id> s;
  for (node_id v = 17; v < 49; ++v) s.insert(v);
  node_id selected = -1;
  EXPECT_EQ(run_selection(s, 3, 63, &selected),
            selection_driver::status::selected);
  EXPECT_TRUE(s.count(selected));
}

TEST(EchoTest, MaxLabelOnlyMember) {
  // S = {bound}: doubling must walk to the top and still find it.
  node_id selected = -1;
  EXPECT_EQ(run_selection({63}, 1, 63, &selected),
            selection_driver::status::selected);
  EXPECT_EQ(selected, 63);
}

TEST(EchoTest, SegmentCountIsLogarithmic) {
  // For any S, the number of echo segments is O(log bound): full probe +
  // doubling (≤ log bound) + binary selection (≤ log bound).
  rng gen(77);
  const node_id bound = 1023;
  for (int trial = 0; trial < 40; ++trial) {
    std::set<node_id> s;
    const int size = 1 + static_cast<int>(gen.below(20));
    while (static_cast<int>(s.size()) < size) {
      s.insert(1 + static_cast<node_id>(gen.below(bound)));
    }
    node_id selected = -1;
    int segments = 0;
    ASSERT_EQ(run_selection(s, 0, bound, &selected, nullptr, &segments),
              selection_driver::status::selected);
    ASSERT_TRUE(s.count(selected));
    EXPECT_LE(segments, 2 * ilog2_ceil(bound + 1) + 2)
        << "trial " << trial << " size " << size;
  }
}

// Exhaustive property sweep over small universes: every nonempty subset of
// {1..m} must yield a selected member; the empty set must be reported.
class EchoExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(EchoExhaustive, AllSubsetsSelectCorrectly) {
  const int m = GetParam();
  const node_id bound = static_cast<node_id>(m);
  for (unsigned mask = 0; mask < (1u << m); ++mask) {
    std::set<node_id> s;
    for (int b = 0; b < m; ++b) {
      if (mask & (1u << b)) s.insert(static_cast<node_id>(b + 1));
    }
    node_id selected = -1;
    const auto result = run_selection(s, 0, bound, &selected);
    if (s.empty()) {
      EXPECT_EQ(result, selection_driver::status::empty_set);
    } else {
      ASSERT_EQ(result, selection_driver::status::selected) << "mask=" << mask;
      EXPECT_TRUE(s.count(selected)) << "mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallUniverses, EchoExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EchoTest, PendingTxTakeRemovesEntry) {
  pending_tx p;
  p.schedule(5, message{1, 2, 0, 0, 0, 0});
  EXPECT_TRUE(p.take(4) == std::nullopt);
  auto got = p.take(5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, 1);
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(p.take(5) == std::nullopt);
}

TEST(EchoTest, ScheduleEchoRepliesMemberAndHelper) {
  pending_tx out;
  const message order{kKinds.order, -1, 10, 20, 7, 0};  // range [10,20], w=7
  // member in range: replies at both echo steps.
  schedule_echo_replies(out, kKinds, order, 100, 15, true);
  EXPECT_TRUE(out.take(101).has_value());
  EXPECT_TRUE(out.take(102).has_value());
  EXPECT_TRUE(out.empty());
  // member out of range: silent.
  schedule_echo_replies(out, kKinds, order, 100, 25, true);
  EXPECT_TRUE(out.empty());
  // helper: second echo step only.
  schedule_echo_replies(out, kKinds, order, 100, 7, false);
  EXPECT_FALSE(out.take(101).has_value());
  EXPECT_TRUE(out.take(102).has_value());
}

}  // namespace
}  // namespace radiocast
