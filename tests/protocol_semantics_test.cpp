// White-box semantic tests for protocol scheduling rules that the
// black-box suites cannot pin down: stage-participation timing of the
// KP randomized algorithm, decay phase-joining, round-robin slot
// discipline, and transmission-pattern properties observed via traces.
#include <gtest/gtest.h>

#include <set>

#include "core/decay.h"
#include "core/kp_randomized.h"
#include "core/round_robin.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace radiocast {
namespace {

std::vector<std::int64_t> transmit_steps(const trace& t, node_id v) {
  std::vector<std::int64_t> steps;
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    if (e.node == v) steps.push_back(e.step);
  }
  return steps;
}

// ---------- KP stage participation ----------

TEST(KpSemanticsTest, SourceTransmitsAtStepZeroOnly_FirstBlockStep) {
  // On a 3-node path the source transmits at step 0 (the block's "source
  // transmits" step) and then participates in stages like everyone else.
  graph g = make_path(3);
  kp_options opts;
  opts.known_d = 2;
  const kp_randomized_protocol proto(2, opts);
  trace t;
  run_options ro;
  ro.sink = &t;
  ro.seed = 5;
  const run_result res = run_broadcast(g, proto, ro);
  ASSERT_TRUE(res.completed);
  const auto steps = transmit_steps(t, 0);
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(steps.front(), 0);
  EXPECT_EQ(res.informed_at[1], 0);  // single neighbor hears immediately
}

TEST(KpSemanticsTest, NodeInformedMidStageWaitsForNextStage) {
  // Star with center 0: leaves are informed at step 0. Stage 1 starts at
  // step 1. A leaf must never transmit during step 0 (it was informed *at*
  // step 0, i.e. not before the stage containing step 0... step 0 is the
  // source step anyway); more strongly, across many seeds, no node ever
  // transmits in the same stage in which it was informed.
  const node_id n = 64;
  const int d = 4;
  graph g = make_complete_layered_uniform(n, d);
  kp_options opts;
  opts.known_d = d;
  const kp_randomized_protocol proto(n - 1, opts);
  const int log_r = 6;  // r = 63 → next pow2 exponent 6
  const int stage_len = (log_r - 2) + 2;  // log(r/D)+2 with D=4
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    trace t;
    run_options ro;
    ro.sink = &t;
    ro.seed = seed;
    const run_result res = run_broadcast(g, proto, ro);
    ASSERT_TRUE(res.completed);
    for (node_id v = 1; v < n; ++v) {
      const std::int64_t informed =
          res.informed_at[static_cast<std::size_t>(v)];
      ASSERT_GE(informed, 0);
      for (std::int64_t ts : transmit_steps(t, v)) {
        // Stage containing step ts (steps ≥ 1) starts at ts − (ts−1)%len;
        // the participation rule demands informing strictly before it.
        const std::int64_t stage_start = ts - ((ts - 1) % stage_len);
        EXPECT_LT(informed, stage_start)
            << "node " << v << " transmitted in its informing stage (seed "
            << seed << ")";
      }
    }
  }
}

TEST(KpSemanticsTest, FirstGeometricStepIsCertainTransmission) {
  // Step l = 0 of a stage has probability 1/2⁰ = 1: every participating
  // node transmits. On a path of 3 with D=2, node 1 (informed at step 0)
  // must transmit at the first step of stage 2 at the latest... more
  // simply: the source transmits at the l=0 step of every stage.
  graph g = make_path(3);
  kp_options opts;
  opts.known_d = 2;
  const kp_randomized_protocol proto(2, opts);
  trace t;
  run_options ro;
  ro.sink = &t;
  ro.seed = 3;
  ro.stop = stop_condition::all_halted;  // run past completion
  ro.max_steps = 40;
  run_broadcast(g, proto, ro);
  const auto steps = transmit_steps(t, 0);
  // r = 2 → log_r = 1, D = 2 → stage_len = (1−1)+1+1 = 2.
  // Stage i occupies steps 1+2(i−1), 2+2(i−1); its l=0 step is odd.
  std::set<std::int64_t> tx(steps.begin(), steps.end());
  for (std::int64_t s = 1; s < 39; s += 2) {
    EXPECT_TRUE(tx.count(s)) << "source missed certain step " << s;
  }
}

TEST(KpSemanticsTest, AblatedStageIsOneStepShorter) {
  kp_options full;
  full.known_d = 8;
  full.stage_budget = 10;
  kp_options ablated = full;
  ablated.ablate_universal_step = true;
  const kp_randomized_protocol p_full(255, full);
  const kp_randomized_protocol p_ablated(255, ablated);
  // r=255→log r=8, D=8→log D=3: geometric steps log(r/D)+1 = 6, so the
  // full stage is 7 steps and the ablated one 6; 10·8 stages per block.
  EXPECT_EQ(p_full.schedule_period(), 1 + 10 * 8 * 7);
  EXPECT_EQ(p_ablated.schedule_period(), 1 + 10 * 8 * 6);
}

TEST(KpSemanticsTest, DoublingBlocksCoverAllD) {
  kp_options opts;  // doubling
  opts.stage_budget = 2;
  const kp_randomized_protocol proto(255, opts);
  // log r = 8 blocks for D' = 2,4,…,256: total = Σ 1 + 2·2^i·((8−i)+2).
  std::int64_t expected = 0;
  for (int i = 1; i <= 8; ++i) {
    expected += 1 + 2 * (std::int64_t{1} << i) * ((8 - i) + 2);
  }
  EXPECT_EQ(proto.schedule_period(), expected);
}

// ---------- decay semantics ----------

TEST(DecaySemanticsTest, NodeTransmitsPrefixOfPhase) {
  // Within each phase, a participating node's transmissions form a prefix
  // of the phase (it stops after its geometric cutoff and stays silent).
  const node_id n = 16;
  graph g = make_star(n);
  const decay_protocol proto;
  trace t;
  run_options ro;
  ro.sink = &t;
  ro.seed = 11;
  ro.stop = stop_condition::all_halted;  // run several phases
  ro.max_steps = 100;
  run_broadcast(g, proto, ro);
  const std::int64_t phase_len = 2 * 4;  // 2·⌈log(r+1)⌉, r = 15
  for (node_id v = 0; v < n; ++v) {
    const auto steps = transmit_steps(t, v);
    std::map<std::int64_t, std::vector<std::int64_t>> by_phase;
    for (std::int64_t s : steps) by_phase[s / phase_len].push_back(s % phase_len);
    for (const auto& [phase, offsets] : by_phase) {
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        EXPECT_EQ(offsets[i], static_cast<std::int64_t>(i))
            << "node " << v << " phase " << phase
            << ": transmissions must form a prefix";
      }
    }
  }
}

TEST(DecaySemanticsTest, JoinsOnlyAtPhaseBoundaries) {
  // A node informed mid-phase must stay silent until the next phase starts.
  graph g = make_path(4);
  const decay_protocol proto;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trace t;
    run_options ro;
    ro.sink = &t;
    ro.seed = seed;
    const run_result res = run_broadcast(g, proto, ro);
    ASSERT_TRUE(res.completed);
    const std::int64_t phase_len = 2 * 2;  // r = 3
    for (node_id v = 1; v < 4; ++v) {
      const std::int64_t informed =
          res.informed_at[static_cast<std::size_t>(v)];
      const std::int64_t next_phase =
          ((informed / phase_len) + 1) * phase_len;
      for (std::int64_t s : transmit_steps(t, v)) {
        EXPECT_GE(s, next_phase) << "node " << v << " seed " << seed;
      }
    }
  }
}

// ---------- round robin semantics ----------

TEST(RoundRobinSemanticsTest, TransmitsExactlyInOwnSlot) {
  const node_id n = 8;
  graph g = make_complete(n);
  const round_robin_protocol proto;
  trace t;
  run_options ro;
  ro.sink = &t;
  ro.stop = stop_condition::all_halted;
  ro.max_steps = 4 * n;
  run_broadcast(g, proto, ro);
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    EXPECT_EQ(e.step % n, e.node);  // modulus r+1 = n
  }
}

TEST(RoundRobinSemanticsTest, EveryInformedNodeUsesEverySlotRound) {
  // After everyone is informed, each full round contains exactly one
  // transmission per node.
  const node_id n = 6;
  graph g = make_complete(n);
  const round_robin_protocol proto;
  trace t;
  run_options ro;
  ro.sink = &t;
  ro.stop = stop_condition::all_halted;
  ro.max_steps = 3 * n;
  run_broadcast(g, proto, ro);
  std::map<std::int64_t, int> per_round;
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    if (e.step >= n) ++per_round[e.step / n];  // skip the warm-up round
  }
  for (const auto& [round, count] : per_round) {
    EXPECT_EQ(count, n) << "round " << round;
  }
}

}  // namespace
}  // namespace radiocast
