// Tests for the semantic static-analysis pass engine (tools/analyze/).
//
// Each pass P1–P4 is exercised on inline fixture files: a seeded
// violation must fire, the live-tree idioms the passes were calibrated
// against (wall_ms-family sinks, seeded rng streams, POD SoA traits,
// RC_* assertion arguments) must NOT fire, suppressions must suppress
// with a justification, and the radiocast.analysis.v1 JSON report must
// round-trip through the project's own JSON parser (src/obs/json.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "obs/json.h"

namespace radiocast {
namespace {

using analyze::analyze_files;
using analyze::default_manifest;
using analyze::finding;
using analyze::layer_manifest;
using analyze::parse_manifest;
using analyze::report;
using analyze::source_file;

report run(std::vector<source_file> files) {
  return analyze_files(files, default_manifest());
}

report run_one(const std::string& path, const std::string& text) {
  return run({{path, text}});
}

/// Unsuppressed findings for one pass.
int fired(const report& rep, const std::string& pass) {
  return static_cast<int>(std::count_if(
      rep.findings.begin(), rep.findings.end(),
      [&](const finding& f) { return f.pass == pass && !f.suppressed; }));
}

int suppressed(const report& rep, const std::string& pass) {
  return static_cast<int>(std::count_if(
      rep.findings.begin(), rep.findings.end(),
      [&](const finding& f) { return f.pass == pass && f.suppressed; }));
}

// ---------- the layer manifest ----------

TEST(AnalyzeTest, ManifestParsesLayersAndAssignments) {
  std::vector<std::string> errors;
  const layer_manifest m = parse_manifest(R"(
# comment
layer low
layer high
path src/low/  low
path src/high/ high
)",
                                          &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(m.rank("low"), 0);
  EXPECT_EQ(m.rank("high"), 1);
  EXPECT_EQ(m.rank("absent"), -1);
  EXPECT_EQ(m.layer_for("src/low/a.h"), "low");
  EXPECT_EQ(m.layer_for("elsewhere/a.h"), "");
}

TEST(AnalyzeTest, ManifestLongestPrefixWins) {
  std::vector<std::string> errors;
  const layer_manifest m = parse_manifest(R"(
layer base
layer carved
path src/exec/             base
path src/exec/thread_pool. carved
)",
                                          &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(m.layer_for("src/exec/thread_pool.h"), "carved");
  EXPECT_EQ(m.layer_for("src/exec/other.h"), "base");
}

TEST(AnalyzeTest, ManifestRejectsMalformedAndUndeclared) {
  std::vector<std::string> errors;
  parse_manifest(R"(
layer a
path src/x/ nowhere
bogus line here
)",
                 &errors);
  EXPECT_EQ(errors.size(), 2u);
}

TEST(AnalyzeTest, BuiltInManifestCoversTheTree) {
  const layer_manifest& m = default_manifest();
  EXPECT_LT(m.rank("util"), m.rank("sim"));
  EXPECT_LT(m.rank("sim"), m.rank("core"));
  EXPECT_LT(m.rank("core"), m.rank("harness"));
  EXPECT_EQ(m.layer_for("src/exec/thread_pool.h"), "exec-base");
  EXPECT_EQ(m.layer_for("src/exec/parallel_trials.h"), "exec");
  EXPECT_EQ(m.layer_for("src/fault/chaos.cpp"), "chaos");
  EXPECT_EQ(m.layer_for("src/radiocast.h"), "api");
}

// ---------- P1: layering ----------

TEST(AnalyzeTest, LayeringFiresOnUpwardInclude) {
  const report rep = run({
      {"src/util/low.h", "#pragma once\n#include \"sim/high.h\"\n"},
      {"src/sim/high.h", "#pragma once\n"},
  });
  EXPECT_EQ(fired(rep, "layering"), 1);
}

TEST(AnalyzeTest, LayeringAllowsDownwardAndSameLayerIncludes) {
  const report rep = run({
      {"src/sim/high.h", "#pragma once\n#include \"util/low.h\"\n"},
      {"src/sim/peer.h", "#pragma once\n#include \"sim/high.h\"\n"},
      {"src/util/low.h", "#pragma once\n"},
  });
  EXPECT_EQ(fired(rep, "layering"), 0);
  EXPECT_EQ(rep.edges.size(), 2u);
}

TEST(AnalyzeTest, LayeringFiresOnIncludeCycle) {
  // Same layer, so no upward edge — the cycle check must catch it alone.
  const report rep = run({
      {"src/sim/a.h", "#pragma once\n#include \"sim/b.h\"\n"},
      {"src/sim/b.h", "#pragma once\n#include \"sim/a.h\"\n"},
  });
  EXPECT_EQ(fired(rep, "layering"), 1);
}

TEST(AnalyzeTest, LayeringResolvesIncluderRelativeFirst) {
  // "detail.h" from src/sim/ must bind to src/sim/detail.h, not leak to
  // an external; the edge proves resolution happened.
  const report rep = run({
      {"src/sim/engine.h", "#pragma once\n#include \"detail.h\"\n"},
      {"src/sim/detail.h", "#pragma once\n"},
  });
  EXPECT_EQ(rep.edges.size(), 1u);
  EXPECT_EQ(rep.edges[0].to, "src/sim/detail.h");
}

TEST(AnalyzeTest, LayeringIgnoresExternalAndAngleIncludes) {
  const report rep = run_one("src/util/low.h",
                             "#pragma once\n#include <vector>\n"
                             "#include \"nonexistent/header.h\"\n");
  EXPECT_EQ(fired(rep, "layering"), 0);
  EXPECT_TRUE(rep.edges.empty());
}

TEST(AnalyzeTest, LayeringFiresOnUnassignedFile) {
  const report rep = run_one("mystery/file.h", "#pragma once\n");
  EXPECT_EQ(fired(rep, "layering"), 1);
}

// ---------- P2: taint ----------

TEST(AnalyzeTest, TaintFiresOnBranchingOnWallClock) {
  const report rep = run_one("src/sim/foo.cpp", R"cpp(
void f() {
  const auto t0 = std::chrono::steady_clock::now();
  const double ms = (std::chrono::steady_clock::now() - t0).count();
  if (ms > 5.0) { return; }
}
)cpp");
  EXPECT_EQ(fired(rep, "taint"), 1);
}

TEST(AnalyzeTest, TaintTracksFlowThroughLocals) {
  // Two hops: clock -> a -> b -> branch. Call bans can't see this.
  const report rep = run_one("src/sim/foo.cpp", R"cpp(
void f() {
  const auto a = std::chrono::steady_clock::now().time_since_epoch().count();
  const auto b = a / 2;
  while (b > 100) { break; }
}
)cpp");
  EXPECT_EQ(fired(rep, "taint"), 1);
}

TEST(AnalyzeTest, TaintFiresOnNonWallFamilyMemberSink) {
  const report rep = run_one("src/sim/foo.cpp", R"cpp(
void f(result* r) {
  const auto ticks = std::chrono::steady_clock::now().time_since_epoch().count();
  r->steps = ticks;
}
)cpp");
  EXPECT_EQ(fired(rep, "taint"), 1);
}

TEST(AnalyzeTest, TaintAllowsWallFamilySinks) {
  const report rep = run_one("bench/bench_foo.cpp", R"cpp(
void f(case_report* rep, result* r) {
  const auto start = std::chrono::steady_clock::now();
  const double batch_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - start)
          .count();
  r->wall_ms = batch_ms;
  rep->annotate("batch_wall_ms", batch_ms);
  rep->annotate("speedup", batch_ms > 0.0 ? 2.0 / batch_ms : 1.0);
}
)cpp");
  EXPECT_EQ(fired(rep, "taint"), 0);
}

TEST(AnalyzeTest, TaintFiresOnNonWallFamilyTelemetryKey) {
  const report rep = run_one("bench/bench_foo.cpp", R"cpp(
void f(case_report* rep) {
  const auto jitter = std::chrono::steady_clock::now().time_since_epoch().count();
  rep->annotate("collisions", jitter);
}
)cpp");
  EXPECT_EQ(fired(rep, "taint"), 1);
}

TEST(AnalyzeTest, TaintExpiresWithScope) {
  // The tainted name dies with its block; the same name outside is clean.
  const report rep = run_one("src/sim/foo.cpp", R"cpp(
void f() {
  {
    const auto ms = std::chrono::steady_clock::now().time_since_epoch().count();
  }
  const int ms = 3;
  if (ms > 1) { return; }
}
)cpp");
  EXPECT_EQ(fired(rep, "taint"), 0);
}

TEST(AnalyzeTest, TaintFiresOnUnseededRng) {
  EXPECT_EQ(fired(run_one("src/core/foo.cpp", "void f() { rng g; }\n"),
                  "taint"),
            1);
  EXPECT_EQ(fired(run_one("src/core/foo.cpp",
                          "void f() { double x = 1.0; rng g(x); }\n"),
                  "taint"),
            1);
}

TEST(AnalyzeTest, TaintAllowsSeededRngStreams) {
  const report rep = run_one("src/core/foo.cpp", R"cpp(
void f(const run_options& opts, const view& v) {
  rng root(opts.seed);
  rng salted(mix_seed(v.seed, kSalt));
  rng fixed(2718);
  rng child = root.split(3);
  const rng copy = gens_[0];
}
)cpp");
  EXPECT_EQ(fired(rep, "taint"), 0);
}

TEST(AnalyzeTest, TaintFiresOnWallClockSeededRng) {
  const report rep = run_one("src/core/foo.cpp", R"cpp(
void f() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch().count();
  rng g(t);
}
)cpp");
  EXPECT_EQ(fired(rep, "taint"), 1);
}

TEST(AnalyzeTest, TaintExemptsMemberRngAndTheRngImplItself) {
  // A trailing-underscore member is seeded by its owner later; the rng
  // implementation itself is the one sanctioned site.
  EXPECT_EQ(
      fired(run_one("src/sim/foo.h", "class c { rng gen_; };\n"), "taint"),
      0);
  EXPECT_EQ(fired(run_one("src/util/rng.h", "rng whatever;\n"), "taint"),
            0);
}

// ---------- P3: contract ----------

const char* kGoodTraits = R"cpp(
struct good_soa_traits {
  struct state {
    node_id label = -1;
    bool informed = false;
  };
  void init(state* s, node_id label, const protocol_params& p) const;
  std::optional<message> on_step(state* s, const node_context& ctx) const;
  void on_receive(state* s, const node_context& ctx, const message& m) const;
  bool informed(const state& s) const;
  bool halted(const state& s) const;
  void on_restart(state* s, const node_context& ctx) const;
  void begin_step(std::int64_t step);
};
soa_entry good_protocol::soa_runner() const { return &good_soa_entry; }
)cpp";

TEST(AnalyzeTest, ContractAcceptsAConformingTraits) {
  EXPECT_EQ(fired(run_one("src/core/good.cpp", kGoodTraits), "contract"),
            0);
}

TEST(AnalyzeTest, ContractFiresOnMissingRestartHook) {
  const report rep = run_one("src/core/bad.cpp", R"cpp(
struct bad_soa_traits {
  struct state { bool informed = false; };
  void init(state* s, node_id label, const protocol_params& p) const;
  std::optional<message> on_step(state* s, const node_context& ctx) const;
  void on_receive(state* s, const node_context& ctx, const message& m) const;
  bool informed(const state& s) const;
  bool halted(const state& s) const;
};
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 1);
}

TEST(AnalyzeTest, ContractFiresOnOwningStateMembers) {
  const report rep = run_one("src/core/bad.cpp", R"cpp(
struct bad_soa_traits {
  struct state {
    std::shared_ptr<const schedule> sched;
    std::vector<int> history;
  };
  void init(state* s, node_id label, const protocol_params& p) const;
  std::optional<message> on_step(state* s, const node_context& ctx) const;
  void on_receive(state* s, const node_context& ctx, const message& m) const;
  bool informed(const state& s) const;
  bool halted(const state& s) const;
  void on_restart(state* s, const node_context& ctx) const;
};
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 2);
}

TEST(AnalyzeTest, ContractAllowsOwningMembersOnTheTraitsObject) {
  // kp_randomized's shape: the shared schedule lives on the traits object,
  // outside `struct state` — legal and encouraged.
  const report rep = run_one("src/core/kp_like.cpp", R"cpp(
struct kp_like_soa_traits {
  struct state { node_id label = -1; bool informed = false; };
  std::shared_ptr<const schedule> sched;
  void init(state* s, node_id label, const protocol_params& p) const;
  std::optional<message> on_step(state* s, const node_context& ctx) const;
  void on_receive(state* s, const node_context& ctx, const message& m) const;
  bool informed(const state& s) const;
  bool halted(const state& s) const;
  void on_restart(state* s, const node_context& ctx) const;
};
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 0);
}

TEST(AnalyzeTest, ContractFiresOnMissingStateStruct) {
  const report rep = run_one("src/core/bad.cpp", R"cpp(
struct bad_soa_traits {
  void init() const;
  void on_step() const;
  void on_receive() const;
  bool informed() const;
  bool halted() const;
  void on_restart() const;
};
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 1);
}

TEST(AnalyzeTest, ContractFiresOnLossyBeginStepSignature) {
  // `begin_step(int)` is still callable from the engine's
  // begin_step(std::int64_t{}) detection — but silently truncates past
  // 2^31 steps. The exact declared type is the contract.
  const report rep = run_one("src/core/bad.cpp", R"cpp(
struct bad_soa_traits {
  struct state { bool informed = false; };
  void init(state* s, node_id label, const protocol_params& p) const;
  std::optional<message> on_step(state* s, const node_context& ctx) const;
  void on_receive(state* s, const node_context& ctx, const message& m) const;
  bool informed(const state& s) const;
  bool halted(const state& s) const;
  void on_restart(state* s, const node_context& ctx) const;
  void begin_step(int step);
};
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 1);
}

TEST(AnalyzeTest, ContractAcceptsNestedPodStateMembers) {
  // complete_layered's shape: the state embeds the POD echo/selection
  // mirrors (core/echo_soa.h) as plain members. Nested POD structs are
  // value types, not owning containers — the checker must stay quiet.
  const report rep = run_one("src/core/cl_like.cpp", R"cpp(
struct cl_like_soa_traits {
  node_id r_bound = 1;
  struct state {
    node_id label = -1;
    node_id helper = -1;
    std::int32_t layer = -1;
    soa_pending pending;
    soa_selection sel;
    bool informed = false;
    bool halted = false;
  };
  void init(state* s, node_id label, const protocol_params& p) const;
  std::optional<message> on_step(state* s, const node_context& ctx) const;
  void on_receive(state* s, const node_context& ctx, const message& m) const;
  bool informed(const state& s) const;
  bool halted(const state& s) const;
  void on_restart(state* s, const node_context& ctx) const;
};
soa_entry cl_like_protocol::soa_runner() const { return &cl_like_entry; }
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 0);
}

TEST(AnalyzeTest, ContractAcceptsSharedSubProtocolState) {
  // interleaved's shape: the state embeds another protocol's POD state
  // machine wholesale, and the schedule hoist lives in a non-const
  // begin_step(std::int64_t) mutating traits-level scratch.
  const report rep = run_one("src/core/il_like.cpp", R"cpp(
struct il_like_soa_traits {
  node_id r_bound = 1;
  std::int64_t modulus = 1;
  bool even_step = false;
  std::int64_t rr_slot = 0;
  struct state {
    sas_proto::sas_soa_state sas;
    bool rr_informed = false;
  };
  void begin_step(std::int64_t step);
  void init(state* s, node_id label, const protocol_params& p) const;
  std::optional<message> on_step(state* s, const node_context& ctx) const;
  void on_receive(state* s, const node_context& ctx, const message& m) const;
  bool informed(const state& s) const;
  bool halted(const state& s) const;
  void on_restart(state* s, const node_context& ctx) const;
};
soa_entry il_like_protocol::soa_runner() const { return &il_like_entry; }
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 0);
}

TEST(AnalyzeTest, ContractFiresOnLossyBeginStepInSharedStateShape) {
  // The same interleaved-like shape with begin_step(int): the modulus
  // arithmetic would silently truncate past 2^31 steps. One finding —
  // the nested sub-protocol state must not mask the signature check.
  const report rep = run_one("src/core/il_bad.cpp", R"cpp(
struct il_bad_soa_traits {
  std::int64_t modulus = 1;
  struct state {
    sas_proto::sas_soa_state sas;
    bool rr_informed = false;
  };
  void begin_step(int step);
  void init(state* s, node_id label, const protocol_params& p) const;
  std::optional<message> on_step(state* s, const node_context& ctx) const;
  void on_receive(state* s, const node_context& ctx, const message& m) const;
  bool informed(const state& s) const;
  bool halted(const state& s) const;
  void on_restart(state* s, const node_context& ctx) const;
};
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 1);
}

TEST(AnalyzeTest, ContractFiresOnEntryWithoutTraits) {
  const report rep = run_one("src/core/bad.cpp", R"cpp(
soa_entry bad_protocol::soa_runner() const { return &some_entry_fn; }
)cpp");
  EXPECT_EQ(fired(rep, "contract"), 1);
}

TEST(AnalyzeTest, ContractIgnoresDelegatingAndNullRunners) {
  // protocol.h's default returns nullptr; kp's fallback path delegates.
  // Neither requires local traits.
  EXPECT_EQ(fired(run_one("src/core/a.h",
                          "virtual soa_entry soa_runner() const { return "
                          "nullptr; }\n"),
                  "contract"),
            0);
  EXPECT_EQ(
      fired(run_one("src/core/b.cpp",
                    "soa_entry b::soa_runner() const { return "
                    "other_protocol().soa_runner(); }\n"),
            "contract"),
      0);
}

// ---------- P4: hot-path ----------

TEST(AnalyzeTest, HotPathFiresOnBannedConstructsInsideRegion) {
  const report rep = run_one("src/sim/foo.h", R"cpp(
// radiocast-analyze: hot-path-begin
void step() {
  auto* p = new int(3);
  std::string s = std::to_string(7);
  throw std::runtime_error(s);
}
// radiocast-analyze: hot-path-end
)cpp");
  EXPECT_EQ(fired(rep, "hot-path"), 4);  // new, string, to_string, throw
}

TEST(AnalyzeTest, HotPathIgnoresCodeOutsideRegions) {
  const report rep = run_one("src/sim/foo.h", R"cpp(
void setup() { auto* p = new int(3); }
// radiocast-analyze: hot-path-begin
void step() { int x = 1; }
// radiocast-analyze: hot-path-end
void teardown() { std::string s; }
)cpp");
  EXPECT_EQ(fired(rep, "hot-path"), 0);
}

TEST(AnalyzeTest, HotPathExemptsAssertionArguments) {
  // RC_* failure paths are cold by definition; their message building
  // (std::to_string, string concatenation, even across lines) is exempt.
  const report rep = run_one("src/sim/foo.h", R"cpp(
// radiocast-analyze: hot-path-begin
void step(std::int64_t got, std::int64_t want) {
  RC_CHECK_MSG(got == want,
               "mismatch: got " + std::to_string(got) + " want " +
                   std::to_string(want));
  RC_REQUIRE(got >= 0);
}
// radiocast-analyze: hot-path-end
)cpp");
  EXPECT_EQ(fired(rep, "hot-path"), 0);
}

TEST(AnalyzeTest, HotPathFiresOnUnbalancedMarkers) {
  EXPECT_EQ(fired(run_one("src/sim/foo.h",
                          "// radiocast-analyze: hot-path-begin\n"
                          "void step() {}\n"),
                  "hot-path"),
            1);
  EXPECT_EQ(fired(run_one("src/sim/foo.h",
                          "void step() {}\n"
                          "// radiocast-analyze: hot-path-end\n"),
                  "hot-path"),
            1);
}

// ---------- suppressions + annotation hygiene ----------

TEST(AnalyzeTest, AllowSuppressesWithJustification) {
  const report rep = run_one("src/sim/foo.h", R"cpp(
// radiocast-analyze: hot-path-begin
void warmup() {
  // radiocast-analyze: allow(hot-path) -- one-time lazy construction.
  pool_ = std::make_unique<pool>(3);
}
// radiocast-analyze: hot-path-end
)cpp");
  EXPECT_EQ(fired(rep, "hot-path"), 0);
  EXPECT_EQ(suppressed(rep, "hot-path"), 1);
  for (const finding& f : rep.findings) {
    if (f.suppressed) {
      EXPECT_EQ(f.justification, "one-time lazy construction.");
    }
  }
}

TEST(AnalyzeTest, BareAllowAndUnknownPassAreFindings) {
  const report rep = run_one("src/sim/foo.h", R"cpp(
// radiocast-analyze: allow(hot-path)
int a;
// radiocast-analyze: allow(made-up-pass) -- why not
int b;
)cpp");
  EXPECT_EQ(fired(rep, "analyze-annotation"), 2);
}

TEST(AnalyzeTest, StaleAllowIsAFinding) {
  const report rep = run_one("src/sim/foo.h", R"cpp(
// radiocast-analyze: allow(taint) -- nothing here is tainted.
int clean = 3;
)cpp");
  EXPECT_EQ(fired(rep, "analyze-annotation"), 1);
}

TEST(AnalyzeTest, RegionMarkersAreNotAnnotationFindings) {
  const report rep = run_one("src/sim/foo.h", R"cpp(
// radiocast-analyze: hot-path-begin -- prose after the directive is fine
void step() { int x = 1; }
// radiocast-analyze: hot-path-end
)cpp");
  EXPECT_EQ(fired(rep, "analyze-annotation"), 0);
}

// ---------- the report ----------

TEST(AnalyzeTest, ReportRoundTripsThroughTheProjectJsonParser) {
  const report rep = run({
      {"src/util/low.h", "#pragma once\n#include \"sim/high.h\"\n"},
      {"src/sim/high.h", "#pragma once\n#include \"util/low.h\"\n"},
  });
  std::ostringstream out;
  analyze::report_to_json(rep).write(out, 2);

  std::string err;
  std::optional<obs::json_value> doc = obs::json_parse(out.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("schema")->as_string(), analyze::kSchema);
  EXPECT_EQ(doc->find("files_scanned")->as_int(), 2);
  EXPECT_EQ(doc->find("passes")->items().size(), 4u);
  // The DAG is emitted: 2 nodes with layers, 2 edges.
  const obs::json_value* graph = doc->find("include_graph");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->find("nodes")->items().size(), 2u);
  EXPECT_EQ(graph->find("edges")->items().size(), 2u);
  const obs::json_value& summary = *doc->find("summary");
  EXPECT_EQ(summary.find("findings")->as_int(),
            static_cast<std::int64_t>(rep.unsuppressed_count()));
  EXPECT_FALSE(summary.find("clean")->as_bool());
}

TEST(AnalyzeTest, CleanReportIsClean) {
  const report rep = run_one("src/util/low.h", "#pragma once\nint x;\n");
  std::ostringstream out;
  analyze::report_to_json(rep).write(out, 2);
  std::optional<obs::json_value> doc = obs::json_parse(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find_path("summary.clean")->as_bool());
}

}  // namespace
}  // namespace radiocast
