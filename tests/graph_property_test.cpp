// Property tests for every topology generator in src/graph/generators.h.
//
// Rather than pinning individual hand-picked graphs (graph_test.cpp does
// that), this suite sweeps each generator over a grid of parameters and
// randomized seeds and checks the invariants every generated graph must
// satisfy — simplicity (no self-loops, no parallel edges), undirected
// symmetry, connectivity, node/edge counts, degree bounds — plus each
// family's documented radius formula, validated against an independent
// brute-force BFS oracle written in this file (not the library's own
// bfs_distances, which it cross-checks as a side effect).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/analysis.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/assert.h"
#include "util/rng.h"

namespace radiocast {
namespace {

// ---------------------------------------------------------------------------
// Independent oracle: brute-force BFS over an edge set rebuilt from scratch.
// ---------------------------------------------------------------------------

// Distances from `source` computed without graph's adjacency accessors
// beyond a single pass that copies them into a plain edge list — so a bug
// in e.g. in_neighbors bookkeeping cannot hide from the comparison.
std::vector<int> oracle_distances(const graph& g, node_id source) {
  const node_id n = g.node_count();
  std::vector<std::vector<node_id>> adj(static_cast<std::size_t>(n));
  for (node_id u = 0; u < n; ++u) {
    for (node_id v : g.out_neighbors(u)) {
      adj[static_cast<std::size_t>(u)].push_back(v);
    }
  }
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  std::vector<node_id> frontier{source};
  dist[static_cast<std::size_t>(source)] = 0;
  int d = 0;
  while (!frontier.empty()) {
    ++d;
    std::vector<node_id> next;
    for (node_id u : frontier) {
      for (node_id v : adj[static_cast<std::size_t>(u)]) {
        auto& dv = dist[static_cast<std::size_t>(v)];
        if (dv == -1) {
          dv = d;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

int oracle_radius(const graph& g, node_id source = 0) {
  const std::vector<int> dist = oracle_distances(g, source);
  int r = 0;
  for (int d : dist) {
    EXPECT_NE(d, -1) << "oracle: node unreachable from " << source;
    r = std::max(r, d);
  }
  return r;
}

// ---------------------------------------------------------------------------
// The invariant bundle every generator output must satisfy.
// ---------------------------------------------------------------------------

void expect_simple_graph(const graph& g, const std::string& what) {
  const node_id n = g.node_count();
  std::size_t arc_count = 0;
  for (node_id u = 0; u < n; ++u) {
    const auto out = g.out_neighbors(u);
    arc_count += out.size();
    std::set<node_id> seen;
    for (node_id v : out) {
      EXPECT_NE(v, u) << what << ": self-loop at " << u;
      EXPECT_GE(v, 0) << what;
      EXPECT_LT(v, n) << what;
      EXPECT_TRUE(seen.insert(v).second)
          << what << ": parallel edge " << u << "-" << v;
    }
    if (!g.is_directed()) {
      // Undirected symmetry, both within out-lists and across out/in.
      for (node_id v : out) {
        EXPECT_TRUE(g.has_edge(v, u))
            << what << ": edge " << u << "-" << v << " not symmetric";
      }
      const auto in = g.in_neighbors(u);
      EXPECT_TRUE(std::is_permutation(out.begin(), out.end(), in.begin(),
                                      in.end()))
          << what << ": in/out neighborhoods differ at " << u;
    }
  }
  // edge_count counts each undirected edge once, each arc once.
  const std::size_t expect_arcs =
      g.is_directed() ? g.edge_count() : 2 * g.edge_count();
  EXPECT_EQ(arc_count, expect_arcs) << what;
}

void expect_connected_from_source(const graph& g, const std::string& what) {
  EXPECT_TRUE(all_reachable(g)) << what;
  if (!g.is_directed()) {
    EXPECT_TRUE(is_connected(g)) << what;
  }
  // Library BFS against the oracle, every node.
  const std::vector<int> lib = bfs_distances(g, 0);
  const std::vector<int> oracle = oracle_distances(g, 0);
  EXPECT_EQ(lib, oracle) << what << ": bfs_distances disagrees with oracle";
}

void expect_all(const graph& g, node_id n, const std::string& what) {
  ASSERT_EQ(g.node_count(), n) << what;
  // Every generator must hand back CSR storage, ready for the simulator.
  EXPECT_TRUE(g.finalized()) << what << ": generator returned an "
                                        "unfinalized graph";
  expect_simple_graph(g, what);
  expect_connected_from_source(g, what);
  EXPECT_EQ(radius_from(g), oracle_radius(g))
      << what << ": radius_from disagrees with oracle";
}

// ---------------------------------------------------------------------------
// Deterministic families: exact node/edge counts and radius formulas.
// ---------------------------------------------------------------------------

TEST(GraphPropertyTest, Path) {
  for (node_id n : {2, 3, 7, 64}) {
    const graph g = make_path(n);
    expect_all(g, n, "path n=" + std::to_string(n));
    EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1));
    EXPECT_EQ(radius_from(g), n - 1);
  }
}

TEST(GraphPropertyTest, Cycle) {
  for (node_id n : {3, 4, 9, 50}) {
    const graph g = make_cycle(n);
    expect_all(g, n, "cycle n=" + std::to_string(n));
    EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n));
    EXPECT_EQ(radius_from(g), n / 2);
    for (node_id v = 0; v < n; ++v) EXPECT_EQ(g.out_degree(v), 2);
  }
}

TEST(GraphPropertyTest, Star) {
  for (node_id n : {2, 5, 33}) {
    const graph g = make_star(n);
    expect_all(g, n, "star n=" + std::to_string(n));
    EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1));
    EXPECT_EQ(radius_from(g), 1);
    EXPECT_EQ(g.out_degree(0), n - 1);
  }
}

TEST(GraphPropertyTest, Complete) {
  for (node_id n : {2, 6, 20}) {
    const graph g = make_complete(n);
    expect_all(g, n, "complete n=" + std::to_string(n));
    EXPECT_EQ(g.edge_count(),
              static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2);
    EXPECT_EQ(radius_from(g), 1);
    EXPECT_EQ(max_degree(g), n - 1);
  }
}

TEST(GraphPropertyTest, Grid) {
  const std::vector<std::pair<node_id, node_id>> shapes = {
      {1, 5}, {4, 4}, {3, 8}, {7, 2}};
  for (const auto& [rows, cols] : shapes) {
    const graph g = make_grid(rows, cols);
    const std::string what =
        "grid " + std::to_string(rows) + "x" + std::to_string(cols);
    expect_all(g, rows * cols, what);
    EXPECT_EQ(g.edge_count(),
              static_cast<std::size_t>(rows * (cols - 1) + cols * (rows - 1)))
        << what;
    EXPECT_EQ(radius_from(g), rows + cols - 2) << what;
    EXPECT_LE(max_degree(g), 4) << what;
  }
}

TEST(GraphPropertyTest, Caterpillar) {
  const std::vector<std::pair<node_id, node_id>> shapes = {
      {2, 0}, {5, 1}, {4, 3}, {10, 2}};
  for (const auto& [spine, legs] : shapes) {
    const graph g = make_caterpillar(spine, legs);
    const std::string what =
        "caterpillar spine=" + std::to_string(spine) +
        " legs=" + std::to_string(legs);
    const node_id n = spine * (1 + legs);
    expect_all(g, n, what);
    // A tree on n nodes.
    EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1)) << what;
    EXPECT_EQ(radius_from(g), spine - 1 + std::min<node_id>(1, legs)) << what;
  }
}

// ---------------------------------------------------------------------------
// Layered families.
// ---------------------------------------------------------------------------

TEST(GraphPropertyTest, CompleteLayered) {
  const std::vector<std::vector<node_id>> layerings = {
      {1, 4}, {1, 1, 1, 1}, {1, 3, 5, 2}, {1, 7, 1, 7, 1}};
  for (const auto& sizes : layerings) {
    const graph g = make_complete_layered(sizes);
    node_id n = 0;
    std::size_t edges = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      n += sizes[i];
      if (i + 1 < sizes.size()) {
        edges += static_cast<std::size_t>(sizes[i]) *
                 static_cast<std::size_t>(sizes[i + 1]);
      }
    }
    const std::string what = "complete_layered L=" +
                             std::to_string(sizes.size());
    expect_all(g, n, what);
    EXPECT_EQ(g.edge_count(), edges) << what;
    EXPECT_EQ(radius_from(g), static_cast<int>(sizes.size()) - 1) << what;
    EXPECT_TRUE(is_complete_layered(g)) << what;
    // The BFS layers must recover the construction's layer sizes.
    const auto layers = bfs_layers(g);
    ASSERT_EQ(layers.size(), sizes.size()) << what;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_EQ(layers[i].size(), static_cast<std::size_t>(sizes[i])) << what;
    }
  }
}

TEST(GraphPropertyTest, CompleteLayeredUniform) {
  for (node_id n : {8, 33, 100}) {
    for (int d : {1, 2, 5, 7}) {
      if (d > n - 1) continue;
      const graph g = make_complete_layered_uniform(n, d);
      const std::string what = "layered_uniform n=" + std::to_string(n) +
                               " d=" + std::to_string(d);
      expect_all(g, n, what);
      EXPECT_EQ(radius_from(g), d) << what;
      EXPECT_TRUE(is_complete_layered(g)) << what;
      // Layers 1…D split the n−1 non-source nodes as evenly as possible.
      const auto layers = bfs_layers(g);
      ASSERT_EQ(layers.size(), static_cast<std::size_t>(d + 1)) << what;
      std::size_t min_sz = layers[1].size(), max_sz = layers[1].size();
      for (std::size_t i = 1; i < layers.size(); ++i) {
        min_sz = std::min(min_sz, layers[i].size());
        max_sz = std::max(max_sz, layers[i].size());
      }
      EXPECT_LE(max_sz - min_sz, 1u) << what;
    }
  }
}

TEST(GraphPropertyTest, CompleteLayeredFat) {
  for (int d : {2, 4, 6}) {
    for (int fat : {1, d}) {
      const node_id n = 3 * d + 5;
      const graph g = make_complete_layered_fat(n, d, fat);
      const std::string what = "layered_fat n=" + std::to_string(n) +
                               " d=" + std::to_string(d) +
                               " fat=" + std::to_string(fat);
      expect_all(g, n, what);
      EXPECT_EQ(radius_from(g), d) << what;
      EXPECT_TRUE(is_complete_layered(g)) << what;
      // Every layer except the fat one has the thin size (default 1); the
      // fat layer absorbs the slack.
      const auto layers = bfs_layers(g);
      ASSERT_EQ(layers.size(), static_cast<std::size_t>(d + 1)) << what;
      for (int i = 1; i <= d; ++i) {
        if (i == fat) {
          EXPECT_EQ(layers[static_cast<std::size_t>(i)].size(),
                    static_cast<std::size_t>(n - 1 - (d - 1)))
              << what;
        } else {
          EXPECT_EQ(layers[static_cast<std::size_t>(i)].size(), 1u) << what;
        }
      }
    }
  }
}

TEST(GraphPropertyTest, RandomLayered) {
  rng gen(11);
  const std::vector<std::vector<node_id>> layerings = {
      {1, 4, 4}, {1, 2, 6, 2}, {1, 5, 5, 5, 1}};
  for (const auto& sizes : layerings) {
    for (double p : {0.0, 0.3, 1.0}) {
      const graph g = make_random_layered(sizes, p, gen);
      node_id n = 0;
      for (node_id s : sizes) n += s;
      const std::string what =
          "random_layered L=" + std::to_string(sizes.size()) +
          " p=" + std::to_string(p);
      expect_all(g, n, what);
      // The mandatory parents keep the layer structure exact regardless
      // of p: distances equal the construction layers.
      const auto layers = bfs_layers(g);
      ASSERT_EQ(layers.size(), sizes.size()) << what;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_EQ(layers[i].size(), static_cast<std::size_t>(sizes[i]))
            << what;
      }
      // p = 1 must coincide with the complete layered network.
      if (p == 1.0) {
        EXPECT_TRUE(is_complete_layered(g)) << what;
      }
    }
  }
}

TEST(GraphPropertyTest, DirectedLayered) {
  rng gen(13);
  const std::vector<node_id> sizes = {1, 3, 4, 2};
  for (double p : {0.0, 0.5, 1.0}) {
    const graph g = make_directed_layered(sizes, p, gen);
    const std::string what = "directed_layered p=" + std::to_string(p);
    ASSERT_EQ(g.node_count(), 10) << what;
    EXPECT_TRUE(g.is_directed()) << what;
    expect_simple_graph(g, what);
    EXPECT_TRUE(all_reachable(g)) << what;
    EXPECT_EQ(bfs_distances(g, 0), oracle_distances(g, 0)) << what;
    EXPECT_EQ(radius_from(g), static_cast<int>(sizes.size()) - 1) << what;
    // Arcs only go forward one layer: no node reaches back to the source.
    for (node_id v = 1; v < g.node_count(); ++v) {
      const std::vector<int> back = oracle_distances(g, v);
      EXPECT_EQ(back[0], -1) << what << ": arc path back to source from "
                             << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized families: sweep seeds.
// ---------------------------------------------------------------------------

TEST(GraphPropertyTest, RandomTree) {
  rng gen(3);
  for (node_id n : {2, 9, 40, 120}) {
    for (int rep = 0; rep < 4; ++rep) {
      const graph g = make_random_tree(n, gen);
      const std::string what = "random_tree n=" + std::to_string(n) +
                               " rep=" + std::to_string(rep);
      expect_all(g, n, what);
      EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1)) << what;
    }
  }
}

TEST(GraphPropertyTest, BoundedDegreeTree) {
  rng gen(17);
  for (node_id n : {2, 15, 60}) {
    for (node_id cap : {2, 3, 5}) {
      const graph g = make_bounded_degree_tree(n, cap, gen);
      const std::string what = "bounded_tree n=" + std::to_string(n) +
                               " cap=" + std::to_string(cap);
      expect_all(g, n, what);
      EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1)) << what;
      EXPECT_LE(max_degree(g), cap) << what;
    }
  }
}

TEST(GraphPropertyTest, GnpConnected) {
  rng gen(23);
  for (node_id n : {2, 10, 48}) {
    for (double p : {0.0, 0.05, 0.3, 1.0}) {
      for (int rep = 0; rep < 3; ++rep) {
        const graph g = make_gnp_connected(n, p, gen);
        const std::string what = "gnp n=" + std::to_string(n) +
                                 " p=" + std::to_string(p) +
                                 " rep=" + std::to_string(rep);
        expect_all(g, n, what);
        // Connectivity forces at least a spanning tree's worth of edges.
        EXPECT_GE(g.edge_count(), static_cast<std::size_t>(n - 1)) << what;
        if (p == 1.0) {
          EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n) *
                                        static_cast<std::size_t>(n - 1) / 2)
              << what;
        }
      }
    }
  }
}

TEST(GraphPropertyTest, RandomGeometric) {
  rng gen(29);
  for (node_id n : {2, 12, 50}) {
    for (double range : {0.05, 0.3, 1.5}) {
      std::vector<std::pair<double, double>> pos;
      const graph g = make_random_geometric(n, range, gen, pos);
      const std::string what = "geometric n=" + std::to_string(n) +
                               " range=" + std::to_string(range);
      expect_all(g, n, what);
      ASSERT_EQ(pos.size(), static_cast<std::size_t>(n)) << what;
      for (const auto& [x, y] : pos) {
        EXPECT_GE(x, 0.0) << what;
        EXPECT_LE(x, 1.0) << what;
        EXPECT_GE(y, 0.0) << what;
        EXPECT_LE(y, 1.0) << what;
      }
      // range ≥ √2 covers the whole unit square: must be complete.
      if (range >= 1.5) {
        EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n) *
                                      static_cast<std::size_t>(n - 1) / 2)
            << what;
      }
    }
  }
}

TEST(GraphPropertyTest, PermuteLabelsPreservesStructure) {
  rng gen(31);
  const graph g = make_gnp_connected(24, 0.2, gen);
  for (int rep = 0; rep < 3; ++rep) {
    const graph h = permute_labels(g, gen);
    const std::string what = "permute rep=" + std::to_string(rep);
    expect_all(h, g.node_count(), what);
    EXPECT_EQ(h.edge_count(), g.edge_count()) << what;
    EXPECT_EQ(radius_from(h), radius_from(g)) << what;
    // The degree multiset is invariant under relabeling.
    auto degrees = [](const graph& x) {
      std::vector<node_id> d;
      for (node_id v = 0; v < x.node_count(); ++v) {
        d.push_back(x.out_degree(v));
      }
      std::sort(d.begin(), d.end());
      return d;
    };
    EXPECT_EQ(degrees(h), degrees(g)) << what;
    // The source is fixed, so its degree is preserved exactly.
    EXPECT_EQ(h.out_degree(0), g.out_degree(0)) << what;
  }
}

// ---------------------------------------------------------------------------
// Helper generators.
// ---------------------------------------------------------------------------

TEST(GraphPropertyTest, EvenSplit) {
  for (node_id total : {1, 7, 30, 101}) {
    for (int parts : {1, 2, 5, 13}) {
      if (parts > total) continue;
      const std::vector<node_id> sizes = even_split(total, parts);
      const std::string what = "even_split total=" + std::to_string(total) +
                               " parts=" + std::to_string(parts);
      ASSERT_EQ(sizes.size(), static_cast<std::size_t>(parts)) << what;
      node_id sum = 0;
      node_id min_sz = sizes[0], max_sz = sizes[0];
      for (node_id s : sizes) {
        EXPECT_GE(s, 1) << what;
        sum += s;
        min_sz = std::min(min_sz, s);
        max_sz = std::max(max_sz, s);
      }
      EXPECT_EQ(sum, total) << what;
      EXPECT_LE(max_sz - min_sz, 1) << what;
    }
  }
}

TEST(GraphPropertyTest, SparseLabels) {
  rng gen(37);
  for (node_id n : {1, 8, 40}) {
    for (node_id r : {n - 1, 2 * n, 5 * n + 3}) {
      if (r < n - 1) continue;
      const std::vector<node_id> labels = sparse_labels(n, r, gen);
      const std::string what = "sparse_labels n=" + std::to_string(n) +
                               " r=" + std::to_string(r);
      ASSERT_EQ(labels.size(), static_cast<std::size_t>(n)) << what;
      EXPECT_EQ(labels[0], 0) << what;
      std::set<node_id> distinct;
      for (node_id l : labels) {
        EXPECT_GE(l, 0) << what;
        EXPECT_LE(l, r) << what;
        EXPECT_TRUE(distinct.insert(l).second) << what << ": duplicate label";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CSR finalize vs the old per-add duplicate scan.
// ---------------------------------------------------------------------------

TEST(GraphPropertyTest, FinalizeDedupMatchesPerAddScanOracle) {
  // finalize() dedupes adjacency in one pass; the contract is that the
  // result is IDENTICAL (order included) to what the pre-CSR graph built
  // by scanning for duplicates on every add_edge. Replay a dup-heavy
  // random edge stream into both and compare row by row.
  rng gen(401);
  for (const node_id n : {5, 17, 60}) {
    const std::string what = "dedup n=" + std::to_string(n);
    graph g = graph::undirected(n);
    std::vector<std::vector<node_id>> oracle(static_cast<std::size_t>(n));
    const auto oracle_add = [&oracle](node_id u, node_id v) {
      auto& row = oracle[static_cast<std::size_t>(u)];
      if (std::find(row.begin(), row.end(), v) == row.end()) {
        row.push_back(v);
      }
    };
    const int adds = static_cast<int>(n) * 8;  // dense in dups by design
    for (int i = 0; i < adds; ++i) {
      const auto u = static_cast<node_id>(gen.below(
          static_cast<std::uint64_t>(n)));
      const auto v = static_cast<node_id>(gen.below(
          static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      g.add_edge(u, v);
      oracle_add(u, v);
      oracle_add(v, u);
    }
    g.finalize();
    std::size_t oracle_arcs = 0;
    for (node_id u = 0; u < n; ++u) {
      const auto row = g.out_neighbors(u);
      const auto& want = oracle[static_cast<std::size_t>(u)];
      oracle_arcs += want.size();
      ASSERT_EQ(row.size(), want.size()) << what << " node " << u;
      EXPECT_TRUE(std::equal(row.begin(), row.end(), want.begin()))
          << what << ": adjacency order differs at node " << u;
    }
    EXPECT_EQ(2 * g.edge_count(), oracle_arcs) << what;
  }
}

TEST(GraphPropertyTest, FinalizeDedupMatchesPerAddScanOracleDirected) {
  rng gen(409);
  const node_id n = 24;
  graph g = graph::directed(n);
  std::vector<std::vector<node_id>> out_oracle(static_cast<std::size_t>(n));
  std::vector<std::vector<node_id>> in_oracle(static_cast<std::size_t>(n));
  const auto scan_add = [](std::vector<node_id>& row, node_id v) {
    if (std::find(row.begin(), row.end(), v) == row.end()) row.push_back(v);
  };
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<node_id>(gen.below(
        static_cast<std::uint64_t>(n)));
    const auto v = static_cast<node_id>(gen.below(
        static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    g.add_edge(u, v);
    scan_add(out_oracle[static_cast<std::size_t>(u)], v);
    scan_add(in_oracle[static_cast<std::size_t>(v)], u);
  }
  g.finalize();
  std::size_t arcs = 0;
  for (node_id u = 0; u < n; ++u) {
    const auto out = g.out_neighbors(u);
    const auto& want_out = out_oracle[static_cast<std::size_t>(u)];
    ASSERT_EQ(out.size(), want_out.size()) << "node " << u;
    EXPECT_TRUE(std::equal(out.begin(), out.end(), want_out.begin()))
        << "out order differs at node " << u;
    const auto in = g.in_neighbors(u);
    const auto& want_in = in_oracle[static_cast<std::size_t>(u)];
    ASSERT_EQ(in.size(), want_in.size()) << "node " << u;
    EXPECT_TRUE(std::equal(in.begin(), in.end(), want_in.begin()))
        << "in order differs at node " << u;
    arcs += out.size();
  }
  EXPECT_EQ(g.edge_count(), arcs);
}

}  // namespace
}  // namespace radiocast
