// Cross-module integration tests: every protocol × every topology family ×
// seeds completes; determinism; label-permutation robustness; the runner
// registry; and end-to-end shape checks combining fitting with simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/fit.h"

namespace radiocast {
namespace {

struct topo {
  std::string name;
  graph g;
};

std::vector<topo> topologies(node_id scale) {
  rng gen(2025);
  std::vector<topo> out;
  out.push_back({"path", make_path(scale)});
  out.push_back({"star", make_star(scale)});
  out.push_back({"cycle", make_cycle(scale)});
  out.push_back({"grid", make_grid(scale / 8, 8)});
  out.push_back({"tree", make_random_tree(scale, gen)});
  out.push_back({"gnp", make_gnp_connected(scale, 6.0 / scale, gen)});
  out.push_back({"layered", make_complete_layered_uniform(scale, 8)});
  out.push_back({"layered-deep",
                 make_complete_layered_uniform(scale, scale / 4)});
  out.push_back({"caterpillar", make_caterpillar(scale / 4, 3)});
  out.push_back(
      {"permuted-grid", permute_labels(make_grid(8, scale / 8), gen)});
  return out;
}

class EveryProtocolEveryTopology
    : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryProtocolEveryTopology, CompletesAndInformsAll) {
  const std::string proto_name = GetParam();
  for (const topo& t : topologies(64)) {
    const int d = radius_from(t.g);
    // complete-layered only runs on its own family.
    if (proto_name == "complete-layered" && !is_complete_layered(t.g)) {
      continue;
    }
    const auto proto =
        make_protocol(proto_name, t.g.node_count() - 1, std::max(1, d));
    run_options opts;
    opts.max_steps = 4'000'000;
    opts.seed = 11;
    const run_result res = run_broadcast(t.g, *proto, opts);
    ASSERT_TRUE(res.completed) << proto_name << " on " << t.name;
    for (std::size_t v = 0; v < res.informed_at.size(); ++v) {
      EXPECT_GE(res.informed_at[v], 0)
          << proto_name << " on " << t.name << " node " << v;
    }
    // No node is informed before its BFS distance allows (speed of light).
    const auto dist = bfs_distances(t.g, 0);
    for (std::size_t v = 1; v < res.informed_at.size(); ++v) {
      EXPECT_GE(res.informed_at[v] + 1, dist[v])
          << proto_name << " on " << t.name << " node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, EveryProtocolEveryTopology,
                         ::testing::Values("decay", "kp", "kp-doubling",
                                           "round-robin", "select-and-send",
                                           "complete-layered", "interleaved"),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(RunnerTest, AllNamesConstruct) {
  for (const std::string& name : protocol_names()) {
    const auto proto = make_protocol(name, 127, 4);
    ASSERT_NE(proto, nullptr) << name;
    EXPECT_FALSE(proto->name().empty());
  }
}

TEST(RunnerTest, UnknownNameRejected) {
  EXPECT_THROW(make_protocol("no-such-algorithm", 63), precondition_error);
  EXPECT_THROW(make_protocol("kp", 63), precondition_error);  // needs D
}

TEST(RunnerTest, MeasureCollapsesDeterministicTrials) {
  graph g = make_path(16);
  const auto rr = make_protocol("round-robin", 15);
  const measurement m = measure(g, *rr, 5);
  EXPECT_EQ(m.time.count, 1u);  // deterministic → one run is enough
  const measurement full = measure(g, *rr, 3, 1, 1'000'000, false);
  EXPECT_EQ(full.time.count, 3u);
  EXPECT_DOUBLE_EQ(full.time.stddev, 0.0);  // …and identical anyway
}

TEST(RunnerTest, MeasureReportsRandomVariation) {
  graph g = make_complete_layered_uniform(128, 8);
  const auto decay = make_protocol("decay", 127);
  const measurement m = measure(g, *decay, 8, 42);
  EXPECT_EQ(m.time.count, 8u);
  EXPECT_GT(m.time.mean, 0.0);
  EXPECT_GE(m.time.max, m.time.min);
}

TEST(IntegrationTest, SameSeedSameTrace) {
  graph g = make_complete_layered_uniform(96, 6);
  for (const std::string name : {"decay", "kp", "interleaved"}) {
    const auto proto = make_protocol(name, 95, 6);
    run_options opts;
    opts.max_steps = 1'000'000;
    opts.seed = 1234;
    const run_result a = run_broadcast(g, *proto, opts);
    const run_result b = run_broadcast(g, *proto, opts);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.informed_step, b.informed_step) << name;
    EXPECT_EQ(a.informed_at, b.informed_at) << name;
    EXPECT_EQ(a.transmissions, b.transmissions) << name;
  }
}

TEST(IntegrationTest, DifferentSeedsUsuallyDiffer) {
  graph g = make_complete_layered_uniform(128, 16);
  const auto proto = make_protocol("decay", 127);
  int distinct = 0;
  std::int64_t prev = -1;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    run_options opts;
    opts.seed = seed;
    const run_result r = run_broadcast(g, *proto, opts);
    ASSERT_TRUE(r.completed);
    distinct += (r.informed_step != prev);
    prev = r.informed_step;
  }
  EXPECT_GE(distinct, 3);
}

TEST(IntegrationTest, LabelPermutationKeepsProtocolsCorrect) {
  rng gen(7);
  graph base = make_complete_layered_uniform(72, 6);
  for (int trial = 0; trial < 3; ++trial) {
    graph g = permute_labels(base, gen);
    for (const std::string name :
         {"decay", "kp", "round-robin", "select-and-send",
          "complete-layered", "interleaved"}) {
      const auto proto = make_protocol(name, 71, 6);
      run_options opts;
      opts.max_steps = 4'000'000;
      opts.seed = 5;
      const run_result r = run_broadcast(g, *proto, opts);
      EXPECT_TRUE(r.completed) << name << " trial " << trial;
    }
  }
}

TEST(IntegrationTest, SelectAndSendShapeFitsNLogN) {
  // End-to-end E4-style check: full-traversal times across sizes fit
  // c·n·log n with high R².
  const auto proto = make_protocol("select-and-send", 1 << 20);
  std::vector<double> xs, ys;
  for (node_id n = 32; n <= 512; n *= 2) {
    rng gen(static_cast<std::uint64_t>(n));
    graph g = make_random_tree(n, gen);
    run_options opts;
    opts.max_steps = 50'000'000;
    opts.stop = stop_condition::all_halted;
    const run_result r = run_broadcast(g, *proto, opts);
    ASSERT_TRUE(r.completed);
    xs.push_back(static_cast<double>(n));
    ys.push_back(static_cast<double>(r.steps));
  }
  const fit_result f =
      fit_scaled(xs, ys, [](double x) { return x * std::log2(x); });
  EXPECT_GT(f.r_squared, 0.95);
}

TEST(IntegrationTest, SparseLabelSpacesWork) {
  // §1.3: nodes know only r = O(n); labels may be any distinct subset of
  // {0..r}. Every protocol must still complete under a sparse labeling.
  rng gen(19);
  graph g = make_complete_layered_uniform(64, 8);
  const node_id r = 255;  // 4x sparser than {0..n-1}
  const std::vector<node_id> labels = sparse_labels(64, r, gen);
  for (const std::string name :
       {"decay", "kp", "round-robin", "select-and-send", "complete-layered",
        "interleaved"}) {
    const auto proto = make_protocol(name, r, 8);
    run_options opts;
    opts.max_steps = 10'000'000;
    opts.seed = 23;
    opts.labels = labels;
    const run_result res = run_broadcast_with_r(g, *proto, r, opts);
    EXPECT_TRUE(res.completed) << name;
  }
}

TEST(IntegrationTest, LabelValidationRejectsBadInputs) {
  graph g = make_path(4);
  const auto proto = make_protocol("round-robin", 7);
  run_options opts;
  opts.labels = {0, 1, 2};  // wrong size
  EXPECT_THROW(run_broadcast_with_r(g, *proto, 7, opts), precondition_error);
  opts.labels = {1, 0, 2, 3};  // source not labeled 0
  EXPECT_THROW(run_broadcast_with_r(g, *proto, 7, opts), precondition_error);
  opts.labels = {0, 1, 1, 3};  // duplicate
  EXPECT_THROW(run_broadcast_with_r(g, *proto, 7, opts), precondition_error);
  opts.labels = {0, 1, 2, 9};  // out of range
  EXPECT_THROW(run_broadcast_with_r(g, *proto, 7, opts), precondition_error);
  opts.labels = {0, 3, 5, 7};  // valid sparse labeling
  EXPECT_NO_THROW(run_broadcast_with_r(g, *proto, 7, opts));
}

TEST(IntegrationTest, SparseLabelsHelperProperties) {
  rng gen(4);
  const auto labels = sparse_labels(10, 99, gen);
  ASSERT_EQ(labels.size(), 10u);
  EXPECT_EQ(labels[0], 0);
  std::set<node_id> seen(labels.begin(), labels.end());
  EXPECT_EQ(seen.size(), 10u);  // distinct
  for (node_id l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LE(l, 99);
  }
  EXPECT_THROW(sparse_labels(10, 8, gen), precondition_error);
}

TEST(IntegrationTest, DirectedLayeredNetworksWorkForRandomized) {
  graph dir = make_complete_layered_uniform(128, 8).as_directed();
  for (const std::string name : {"decay", "kp"}) {
    const auto proto = make_protocol(name, 127, 8);
    run_options opts;
    opts.seed = 17;
    const run_result r = run_broadcast(dir, *proto, opts);
    EXPECT_TRUE(r.completed) << name;
  }
}

}  // namespace
}  // namespace radiocast
