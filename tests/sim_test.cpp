// Tests of the radio simulator's semantics: the collision model (receive
// iff exactly one transmitting in-neighbor, collision ≡ silence), the
// no-spontaneous-transmission rule, directed operation, tracing, and the
// run-loop bookkeeping.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace radiocast {
namespace {

// A scripted protocol for exercising the simulator: each node transmits at
// exactly the steps listed in its script and records everything it receives.
// Reception logs are exposed through a shared observer (the protocol is a
// test fixture, not a real broadcasting algorithm).
struct script_observer {
  std::map<node_id, std::vector<std::pair<std::int64_t, node_id>>> received;
};

class scripted_protocol final : public protocol {
 public:
  scripted_protocol(std::map<node_id, std::vector<std::int64_t>> scripts,
                    script_observer* observer)
      : scripts_(std::move(scripts)), observer_(observer) {}

  std::string name() const override { return "scripted"; }
  bool deterministic() const override { return true; }

  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params&) const override {
    std::vector<std::int64_t> script;
    if (const auto it = scripts_.find(label); it != scripts_.end()) {
      script = it->second;
    }
    return std::make_unique<node_impl>(label, std::move(script), observer_);
  }

 private:
  class node_impl final : public protocol_node {
   public:
    node_impl(node_id label, std::vector<std::int64_t> script,
              script_observer* observer)
        : label_(label), script_(std::move(script)), observer_(observer),
          informed_(label == 0) {}

    std::optional<message> on_step(const node_context& ctx) override {
      for (std::int64_t s : script_) {
        if (s == ctx.step) return message{1, label_, ctx.step, 0, 0, 0};
      }
      return std::nullopt;
    }

    void on_receive(const node_context& ctx, const message& msg) override {
      informed_ = true;
      observer_->received[label_].emplace_back(ctx.step, msg.from);
    }

    bool informed() const override { return informed_; }

   private:
    node_id label_;
    std::vector<std::int64_t> script_;
    script_observer* observer_;
    bool informed_;
  };

  std::map<node_id, std::vector<std::int64_t>> scripts_;
  script_observer* observer_;
};

run_options capped(std::int64_t max_steps) {
  run_options o;
  o.max_steps = max_steps;
  return o;
}

/// Like capped(), but runs the full step budget even after everyone is
/// informed (scripted nodes never halt) — for post-wake collision checks.
run_options capped_full(std::int64_t max_steps) {
  run_options o = capped(max_steps);
  o.stop = stop_condition::all_halted;
  return o;
}

// ---------- collision semantics ----------

TEST(SimTest, SingleTransmitterIsReceived) {
  // star: 0 is adjacent to 1, 2, 3.
  graph g = make_star(4);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);
  run_broadcast(g, proto, capped(2));
  for (node_id v : {1, 2, 3}) {
    ASSERT_EQ(obs.received[v].size(), 1u) << "node " << v;
    EXPECT_EQ(obs.received[v][0], (std::pair<std::int64_t, node_id>{0, 0}));
  }
}

TEST(SimTest, TwoTransmittersCollideIntoSilence) {
  // path 1 - 0 - 2: both 1 and 2 transmit at step 1 → 0 hears nothing.
  graph g = graph::undirected(3);
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  g.finalize();
  script_observer obs;
  // step 0: source wakes 1 and 2; step 1: both reply simultaneously.
  scripted_protocol proto({{0, {0}}, {1, {1}}, {2, {1}}}, &obs);
  const run_result r = run_broadcast(g, proto, capped_full(3));
  EXPECT_TRUE(obs.received[0].empty());  // collision ≡ silence
  EXPECT_GE(r.collisions, 1);
}

TEST(SimTest, CollisionOnlyAffectsCommonNeighbor) {
  //   0 - 1, 0 - 2, 2 - 3 : step 0 source wakes 1, 2; step 1 node 2 relays
  // to 3; step 2 nodes 1 and 3 transmit together. Node 0 (neighbors 1, 2)
  // hears only 1; node 2 (neighbors 0, 3) hears only 3 — no collision
  // anywhere despite two simultaneous transmitters.
  graph g = graph::undirected(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.finalize();
  script_observer obs;
  scripted_protocol proto({{0, {0}}, {2, {1}}, {1, {2}}, {3, {2}}}, &obs);
  const run_result r = run_broadcast(g, proto, capped_full(4));
  ASSERT_EQ(obs.received[0].size(), 2u);
  EXPECT_EQ(obs.received[0][0].second, 2);  // the step-1 relay
  EXPECT_EQ(obs.received[0][1].second, 1);  // step 2: only neighbor 1
  ASSERT_EQ(obs.received[2].size(), 2u);    // from 0 at step 0, from 3 at 2
  EXPECT_EQ(obs.received[2][1].second, 3);
  EXPECT_EQ(r.collisions, 0);
}

TEST(SimTest, TransmitterCannotReceiveSimultaneously) {
  // 0 - 1 both transmit at step 0... node 1 cannot transmit spontaneously,
  // so use: step 0 source, step 1 both 0 and 1 transmit → neither receives.
  graph g = make_path(2);
  script_observer obs;
  scripted_protocol proto({{0, {0, 1}}, {1, {1}}}, &obs);
  run_broadcast(g, proto, capped_full(3));
  ASSERT_EQ(obs.received[1].size(), 1u);  // only the step-0 wake
  EXPECT_TRUE(obs.received[0].empty());
}

TEST(SimTest, ThreeTransmittersStillSilence) {
  graph g = make_star(5);  // 0 center
  script_observer obs;
  scripted_protocol proto({{0, {0}}, {1, {1}}, {2, {1}}, {3, {1}}}, &obs);
  run_broadcast(g, proto, capped_full(3));
  EXPECT_TRUE(obs.received[0].empty());
  // Node 4 is a leaf: hears nothing at step 1 (its only neighbor 0 silent).
  ASSERT_EQ(obs.received[4].size(), 1u);
}

// ---------- model rules ----------

TEST(SimTest, SpontaneousTransmissionIsRejected) {
  graph g = make_path(3);
  script_observer obs;
  // Node 2 tries to transmit at step 0 without ever having received. The
  // reference engine steps every node and rejects it directly.
  scripted_protocol proto({{2, {0}}}, &obs);
  run_options opts = capped(2);
  opts.engine = step_engine::reference;
  EXPECT_THROW(run_broadcast(g, proto, opts), invariant_error);
}

TEST(SimTest, SleeperSweepCatchesSpontaneousTransmission) {
  graph g = make_path(3);
  script_observer obs;
  // Under the frontier engine a dormant node is never stepped, so a script
  // that violates the dormant-node contract goes unnoticed — unless
  // verify_sleepers sweeps it.
  scripted_protocol proto({{2, {0}}}, &obs);
  run_options opts = capped(2);
  opts.verify_sleepers = true;
  EXPECT_THROW(run_broadcast(g, proto, opts), invariant_error);
}

TEST(SimTest, SleeperSweepAcceptsContractAbidingProtocol) {
  graph g = make_path(3);
  script_observer obs;
  scripted_protocol proto({{0, {0}}, {1, {1}}}, &obs);
  run_options opts = capped_full(4);
  opts.verify_sleepers = true;
  EXPECT_NO_THROW(run_broadcast(g, proto, opts));
  EXPECT_EQ(obs.received[2].size(), 1u);
}

TEST(SimTest, UnfinalizedGraphIsRejected) {
  graph g = graph::undirected(2);
  g.add_edge(0, 1);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);
  EXPECT_THROW(run_broadcast(g, proto, capped(2)), precondition_error);
}

TEST(SimTest, EnginesAgreeOnScriptedRun) {
  graph g = make_star(6);
  for (const auto engine : {step_engine::frontier, step_engine::reference}) {
    script_observer obs;
    scripted_protocol proto({{0, {0}}, {1, {1}}, {2, {2}}}, &obs);
    run_options opts = capped_full(4);
    opts.engine = engine;
    // Step 0: the center informs all 5 leaves; steps 1 and 2: one leaf
    // each replies to the center (a leaf's only neighbor).
    const run_result r = run_broadcast(g, proto, opts);
    EXPECT_EQ(r.deliveries, 5 + 1 + 1) << "engine differs";
    EXPECT_EQ(obs.received[0].size(), 2u);
  }
}

TEST(SimTest, SourceMayTransmitImmediately) {
  graph g = make_path(2);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);
  EXPECT_NO_THROW(run_broadcast(g, proto, capped(2)));
}

TEST(SimTest, DirectedEdgesDeliverOneWay) {
  graph g = graph::directed(3);
  g.add_edge(0, 1);  // 0 → 1
  g.add_edge(2, 1);  // 2 → 1 (2 unreachable from 0; it stays silent)
  g.finalize();
  script_observer obs;
  scripted_protocol proto({{0, {0, 1}}}, &obs);
  run_broadcast(g, proto, capped_full(3));
  EXPECT_EQ(obs.received[1].size(), 2u);
  EXPECT_TRUE(obs.received[0].empty());  // no arc into 0
  EXPECT_TRUE(obs.received[2].empty());  // no arc into 2
}

TEST(SimTest, DirectedCollisionUsesInNeighbors) {
  // 0→2, 1→2, 0→1: step 0: 0 transmits (1 and 2 hear). step 1: 0 and 1
  // transmit → 2 has two transmitting in-neighbors → silence.
  graph g = graph::directed(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(0, 1);
  g.finalize();
  script_observer obs;
  scripted_protocol proto({{0, {0, 1}}, {1, {1}}}, &obs);
  run_broadcast(g, proto, capped_full(3));
  ASSERT_EQ(obs.received[2].size(), 1u);  // only the step-0 message
  EXPECT_EQ(obs.received[2][0].first, 0);
}

// ---------- bookkeeping ----------

TEST(SimTest, InformedAtTracksFirstReception) {
  graph g = make_path(3);
  script_observer obs;
  scripted_protocol proto({{0, {0}}, {1, {4}}}, &obs);
  const run_result r = run_broadcast(g, proto, capped(10));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.informed_at[0], 0);
  EXPECT_EQ(r.informed_at[1], 0);
  EXPECT_EQ(r.informed_at[2], 4);
  EXPECT_EQ(r.informed_step, 5);  // completed after step 4
}

TEST(SimTest, IncompleteRunReportsFailure) {
  graph g = make_path(3);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);  // node 2 never reached
  const run_result r = run_broadcast(g, proto, capped(5));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 5);
  EXPECT_EQ(r.informed_at[2], -1);
}

TEST(SimTest, CountersAreConsistent) {
  graph g = make_star(4);
  script_observer obs;
  scripted_protocol proto({{0, {0}}, {1, {1}}, {2, {1}}, {3, {2}}}, &obs);
  const run_result r = run_broadcast(g, proto, capped_full(4));
  // transmissions: 0@0, 1@1, 2@1, 3@2.
  EXPECT_EQ(r.transmissions, 4);
  // deliveries: 3 at step 0; collision at 0 in step 1; 3@2 delivers to 0.
  EXPECT_EQ(r.collisions, 1);
  EXPECT_EQ(r.deliveries, 4);
}

TEST(SimTest, TraceRecordsEvents) {
  graph g = make_path(2);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);
  trace t;
  run_options opts = capped(2);
  opts.sink = &t;
  run_broadcast(g, proto, opts);
  EXPECT_EQ(t.filter(trace_event::type::transmit).size(), 1u);
  EXPECT_EQ(t.filter(trace_event::type::receive).size(), 1u);
  EXPECT_EQ(t.filter(trace_event::type::informed).size(), 1u);
  EXPECT_NE(t.to_string().find("transmits"), std::string::npos);
}

TEST(SimTest, ExplicitLabelBoundValidated) {
  graph g = make_path(2);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);
  EXPECT_THROW(run_broadcast_with_r(g, proto, 0, capped(2)),
               precondition_error);
  EXPECT_NO_THROW(run_broadcast_with_r(g, proto, 5, capped(2)));
}

TEST(SimTest, CompletionTimesThrowsOnNonCompletion) {
  graph g = make_path(3);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);
  EXPECT_THROW(completion_times(g, proto, 1, 1, 5), invariant_error);
}

// ---------- trial_set accounting ----------

trial_record make_trial(std::uint64_t seed, bool completed,
                        std::int64_t informed_step, double wall_ms) {
  trial_record t;
  t.seed = seed;
  t.completed = completed;
  t.steps = completed ? informed_step : 100;
  t.informed_step = completed ? informed_step : -1;
  t.wall_ms = wall_ms;
  return t;
}

TEST(SimTest, TrialSetAccountingOnMixedBatch) {
  trial_set batch;
  batch.trials.push_back(make_trial(1, true, 40, 1.0));
  batch.trials.push_back(make_trial(2, false, -1, 2.5));
  batch.trials.push_back(make_trial(3, true, 60, 0.5));
  batch.trials.push_back(make_trial(4, false, -1, 4.0));

  EXPECT_EQ(batch.completed_count(), 2u);
  EXPECT_FALSE(batch.all_completed());
  EXPECT_DOUBLE_EQ(batch.timeout_rate(), 0.5);
  // completion_steps: completed trials only, in trial order.
  const std::vector<double> steps = batch.completion_steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0], 40.0);
  EXPECT_DOUBLE_EQ(steps[1], 60.0);
  // wall-clock sums over ALL trials, timed-out ones included.
  EXPECT_DOUBLE_EQ(batch.total_wall_ms(), 8.0);
}

TEST(SimTest, TrialSetAccountingEdgeCases) {
  trial_set empty;
  EXPECT_EQ(empty.completed_count(), 0u);
  EXPECT_TRUE(empty.all_completed());  // vacuous
  EXPECT_DOUBLE_EQ(empty.timeout_rate(), 0.0);
  EXPECT_TRUE(empty.completion_steps().empty());

  trial_set all_timeout;
  all_timeout.trials.push_back(make_trial(1, false, -1, 1.0));
  all_timeout.trials.push_back(make_trial(2, false, -1, 1.0));
  EXPECT_EQ(all_timeout.completed_count(), 0u);
  EXPECT_DOUBLE_EQ(all_timeout.timeout_rate(), 1.0);
  EXPECT_TRUE(all_timeout.completion_steps().empty());
}

TEST(SimTest, RunTrialsRecordsTimeoutsAsData) {
  // A source that transmits only at step 0 cannot inform a 4-path within
  // the cap: every trial must time out, with no exception thrown.
  graph g = make_path(4);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);
  trial_options topts;
  topts.trials = 3;
  topts.base_seed = 7;
  topts.max_steps = 10;
  const trial_set batch = run_trials(g, proto, topts);
  ASSERT_EQ(batch.trials.size(), 3u);
  EXPECT_DOUBLE_EQ(batch.timeout_rate(), 1.0);
  for (std::size_t t = 0; t < batch.trials.size(); ++t) {
    EXPECT_EQ(batch.trials[t].seed, 7u + t);
    EXPECT_FALSE(batch.trials[t].completed);
    EXPECT_EQ(batch.trials[t].steps, 10);
    EXPECT_EQ(batch.trials[t].informed_step, -1);
    EXPECT_EQ(batch.trials[t].crashed_nodes, 0);
    EXPECT_EQ(batch.trials[t].suppressed_deliveries, 0);
    EXPECT_EQ(batch.trials[t].churned_edges, 0);
  }
}

TEST(SimTest, CompletionTimesMatchesRunTrialsOnCompletion) {
  // Star: the source transmits once, everyone is informed at step 0.
  graph g = make_star(5);
  script_observer obs;
  scripted_protocol proto({{0, {0}}}, &obs);
  trial_options topts;
  topts.trials = 4;
  topts.base_seed = 3;
  topts.max_steps = 10;
  const trial_set batch = run_trials(g, proto, topts);
  EXPECT_TRUE(batch.all_completed());
  const std::vector<double> direct = completion_times(g, proto, 4, 3, 10);
  EXPECT_EQ(direct, batch.completion_steps());
}

}  // namespace
}  // namespace radiocast
