// Unit and property tests for the graph substrate: construction, analysis,
// and every generator's invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/analysis.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace radiocast {
namespace {

// ---------- graph basics ----------

TEST(GraphTest, UndirectedEdgesAreSymmetric) {
  graph g = graph::undirected(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_degree(1), 2);
  EXPECT_EQ(g.in_degree(1), 2);
}

TEST(GraphTest, DirectedEdgesAreOneWay) {
  graph g = graph::directed(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.in_degree(0), 0);
}

TEST(GraphTest, DuplicateEdgesDedupedAtFinalize) {
  graph g = graph::undirected(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.finalize();
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.out_degree(1), 1);
}

TEST(GraphTest, FinalizeKeepsFirstOccurrenceOrder) {
  // The dedup at finalize() must reproduce exactly what a per-add
  // duplicate scan would have built: first occurrence wins, insertion
  // order otherwise preserved.
  graph g = graph::undirected(5);
  g.add_edge(0, 3);
  g.add_edge(0, 1);
  g.add_edge(0, 3);  // duplicate — dropped, position of the first kept
  g.add_edge(0, 4);
  g.add_edge(0, 1);  // duplicate
  g.finalize();
  const auto nbrs = g.out_neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 3);
  EXPECT_EQ(nbrs[1], 1);
  EXPECT_EQ(nbrs[2], 4);
}

TEST(GraphTest, FinalizeIsIdempotent) {
  graph g = graph::undirected(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_TRUE(g.finalized());
  g.finalize();  // no-op
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.out_degree(0), 1);
}

TEST(GraphTest, AddAfterFinalizeRejected) {
  graph g = graph::undirected(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW(g.add_edge(1, 2), precondition_error);
  EXPECT_THROW(g.add_edge_unchecked(1, 2), precondition_error);
}

TEST(GraphTest, AccessorsWorkWhileBuilding) {
  // Generators query the partial graph mid-construction (union-find
  // seeding, BFS connectivity checks) — the building phase must answer.
  graph g = graph::undirected(4);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.finalized());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.out_degree(0), 1);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphTest, SelfLoopsRejected) {
  graph g = graph::undirected(3);
  EXPECT_THROW(g.add_edge(1, 1), precondition_error);
}

TEST(GraphTest, OutOfRangeRejected) {
  graph g = graph::undirected(3);
  EXPECT_THROW(g.add_edge(0, 3), precondition_error);
  EXPECT_THROW(g.add_edge(-1, 0), precondition_error);
  EXPECT_THROW(g.out_neighbors(5), precondition_error);
}

TEST(GraphTest, AsDirectedDoublesArcs) {
  graph g = make_path(4);
  graph d = g.as_directed();
  EXPECT_TRUE(d.is_directed());
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_TRUE(d.has_edge(1, 0));
  EXPECT_EQ(d.edge_count(), 2 * g.edge_count());
}

TEST(GraphTest, SortAdjacency) {
  // Works in both storage phases: on the building rows and on CSR slices.
  graph g = graph::undirected(4);
  g.add_edge(0, 3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.sort_adjacency();
  const auto building = g.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(building.begin(), building.end()));

  graph h = graph::undirected(4);
  h.add_edge(0, 3);
  h.add_edge(0, 1);
  h.add_edge(0, 2);
  h.finalize();
  h.sort_adjacency();
  const auto csr = h.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(csr.begin(), csr.end()));
}

TEST(GraphTest, EdgeListRoundTrip) {
  graph g = make_cycle(5);
  const std::string text = g.to_edge_list();
  graph h = graph::from_edge_list(5, text);
  EXPECT_EQ(h.edge_count(), g.edge_count());
  for (node_id u = 0; u < 5; ++u) {
    for (node_id v : g.out_neighbors(u)) EXPECT_TRUE(h.has_edge(u, v));
  }
}

TEST(GraphTest, DotOutputMentionsEdges) {
  graph g = make_path(3);
  const std::string dot = g.to_dot("p");
  EXPECT_NE(dot.find("graph p"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

// ---------- analysis ----------

TEST(AnalysisTest, BfsDistancesOnPath) {
  graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
}

TEST(AnalysisTest, RadiusOfFamilies) {
  EXPECT_EQ(radius_from(make_path(10)), 9);
  EXPECT_EQ(radius_from(make_star(10)), 1);
  EXPECT_EQ(radius_from(make_complete(6)), 1);
  EXPECT_EQ(radius_from(make_cycle(8)), 4);
  EXPECT_EQ(radius_from(make_cycle(9)), 4);
  EXPECT_EQ(radius_from(make_grid(3, 4)), 3 + 4 - 2);
}

TEST(AnalysisTest, UnreachableNodeThrows) {
  graph g = graph::undirected(3);
  g.add_edge(0, 1);  // node 2 isolated
  EXPECT_THROW(radius_from(g), precondition_error);
  EXPECT_FALSE(all_reachable(g));
  EXPECT_FALSE(is_connected(g));
}

TEST(AnalysisTest, LayersPartitionNodes) {
  graph g = make_grid(4, 4);
  const auto layers = bfs_layers(g);
  std::size_t total = 0;
  for (const auto& layer : layers) total += layer.size();
  EXPECT_EQ(total, 16u);
  // Layer j of the grid corner BFS has min(j+1, ...) nodes; check layer 0/1.
  EXPECT_EQ(layers[0].size(), 1u);
  EXPECT_EQ(layers[1].size(), 2u);
}

TEST(AnalysisTest, DirectedReachabilityFollowsArcs) {
  graph g = graph::directed(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(all_reachable(g, 0));
  EXPECT_FALSE(all_reachable(g, 2));
}

TEST(AnalysisTest, MaxDegree) {
  EXPECT_EQ(max_degree(make_star(7)), 6);
  EXPECT_EQ(max_degree(make_path(5)), 2);
}

TEST(AnalysisTest, CompleteLayeredRecognizer) {
  EXPECT_TRUE(is_complete_layered(make_complete_layered({1, 3, 2, 4})));
  EXPECT_TRUE(is_complete_layered(make_path(6)));   // all layers size 1
  EXPECT_TRUE(is_complete_layered(make_star(5)));   // {1, n−1}
  EXPECT_FALSE(is_complete_layered(make_cycle(6)));
  rng gen(3);
  EXPECT_FALSE(is_complete_layered(
      make_random_layered({1, 4, 4, 4}, 0.3, gen)));
}

// ---------- generators ----------

class GeneratorSizes : public ::testing::TestWithParam<node_id> {};

TEST_P(GeneratorSizes, PathInvariants) {
  const node_id n = GetParam();
  graph g = make_path(n);
  EXPECT_EQ(g.node_count(), n);
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1));
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(radius_from(g), n - 1);
}

TEST_P(GeneratorSizes, StarInvariants) {
  const node_id n = GetParam();
  graph g = make_star(n);
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1));
  EXPECT_EQ(radius_from(g), 1);
}

TEST_P(GeneratorSizes, CompleteInvariants) {
  const node_id n = GetParam();
  graph g = make_complete(n);
  EXPECT_EQ(g.edge_count(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2);
  EXPECT_EQ(radius_from(g), 1);
}

TEST_P(GeneratorSizes, RandomTreeInvariants) {
  const node_id n = GetParam();
  rng gen(99 + static_cast<std::uint64_t>(n));
  graph g = make_random_tree(n, gen);
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1));
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSizes,
                         ::testing::Values(2, 3, 5, 16, 64, 257));

TEST(GeneratorTest, BoundedDegreeTreeRespectsCap) {
  for (node_id cap : {2, 3, 5}) {
    rng gen(7);
    graph g = make_bounded_degree_tree(200, cap, gen);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.edge_count(), 199u);
    EXPECT_LE(max_degree(g), cap);
  }
}

TEST(GeneratorTest, GnpConnectedAlwaysConnected) {
  for (double p : {0.0, 0.01, 0.1, 0.5}) {
    rng gen(static_cast<std::uint64_t>(p * 1000) + 1);
    graph g = make_gnp_connected(100, p, gen);
    EXPECT_TRUE(is_connected(g)) << "p=" << p;
    EXPECT_EQ(g.node_count(), 100);
  }
}

TEST(GeneratorTest, GnpDensityMatchesP) {
  rng gen(4242);
  const node_id n = 200;
  graph g = make_gnp_connected(n, 0.2, gen);
  const double max_edges = static_cast<double>(n) * (n - 1) / 2.0;
  const double density = static_cast<double>(g.edge_count()) / max_edges;
  EXPECT_NEAR(density, 0.2, 0.03);
}

TEST(GeneratorTest, GridInvariants) {
  graph g = make_grid(5, 7);
  EXPECT_EQ(g.node_count(), 35);
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(5 * 6 + 4 * 7));
  EXPECT_TRUE(is_connected(g));
}

TEST(GeneratorTest, CaterpillarInvariants) {
  graph g = make_caterpillar(10, 3);
  EXPECT_EQ(g.node_count(), 40);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(radius_from(g), 10);  // spine end + leg
}

TEST(GeneratorTest, CompleteLayeredLayersAndRadius) {
  const std::vector<node_id> sizes{1, 3, 5, 2};
  graph g = make_complete_layered(sizes);
  EXPECT_EQ(g.node_count(), 11);
  EXPECT_EQ(radius_from(g), 3);
  const auto layers = bfs_layers(g);
  ASSERT_EQ(layers.size(), 4u);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(layers[i].size(), static_cast<std::size_t>(sizes[i]));
  }
  EXPECT_TRUE(is_complete_layered(g));
  // Edge count: sum of consecutive products.
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(1 * 3 + 3 * 5 + 5 * 2));
}

TEST(GeneratorTest, CompleteLayeredRejectsBadLayerZero) {
  EXPECT_THROW(make_complete_layered({2, 3}), precondition_error);
  EXPECT_THROW(make_complete_layered({1}), precondition_error);
  EXPECT_THROW(make_complete_layered({1, 0}), precondition_error);
}

class CompleteLayeredUniform
    : public ::testing::TestWithParam<std::pair<node_id, int>> {};

TEST_P(CompleteLayeredUniform, RadiusAndCount) {
  const auto [n, d] = GetParam();
  graph g = make_complete_layered_uniform(n, d);
  EXPECT_EQ(g.node_count(), n);
  EXPECT_EQ(radius_from(g), d);
  EXPECT_TRUE(is_complete_layered(g));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompleteLayeredUniform,
    ::testing::Values(std::pair<node_id, int>{10, 3},
                      std::pair<node_id, int>{64, 8},
                      std::pair<node_id, int>{100, 1},
                      std::pair<node_id, int>{65, 64},
                      std::pair<node_id, int>{512, 16}));

TEST(GeneratorTest, CompleteLayeredFat) {
  graph g = make_complete_layered_fat(100, 5, 3);
  EXPECT_EQ(g.node_count(), 100);
  EXPECT_EQ(radius_from(g), 5);
  const auto layers = bfs_layers(g);
  EXPECT_EQ(layers[3].size(), 100u - 1 - 4);  // all slack in layer 3
  EXPECT_EQ(layers[1].size(), 1u);
}

TEST(GeneratorTest, EvenSplit) {
  EXPECT_EQ(even_split(10, 3), (std::vector<node_id>{4, 3, 3}));
  EXPECT_EQ(even_split(9, 3), (std::vector<node_id>{3, 3, 3}));
  EXPECT_EQ(even_split(5, 5), (std::vector<node_id>{1, 1, 1, 1, 1}));
  EXPECT_THROW(even_split(2, 3), precondition_error);
}

TEST(GeneratorTest, RandomLayeredKeepsLayerStructure) {
  rng gen(17);
  const std::vector<node_id> sizes{1, 5, 5, 5, 4};
  graph g = make_random_layered(sizes, 0.3, gen);
  EXPECT_EQ(g.node_count(), 20);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(radius_from(g), 4);
  const auto layers = bfs_layers(g);
  ASSERT_EQ(layers.size(), 5u);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(layers[i].size(), static_cast<std::size_t>(sizes[i]));
  }
}

TEST(GeneratorTest, DirectedLayeredHasForwardArcsOnly) {
  rng gen(11);
  const std::vector<node_id> sizes{1, 4, 4, 3};
  graph g = make_directed_layered(sizes, 0.4, gen);
  ASSERT_TRUE(g.is_directed());
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_TRUE(all_reachable(g, 0));
  const auto dist = bfs_distances(g, 0);
  // Every arc goes from layer i exactly to layer i+1.
  for (node_id u = 0; u < g.node_count(); ++u) {
    for (node_id v : g.out_neighbors(u)) {
      EXPECT_EQ(dist[static_cast<std::size_t>(v)],
                dist[static_cast<std::size_t>(u)] + 1);
    }
    // No way back: nothing reaches the source.
    EXPECT_EQ(g.in_degree(0), 0);
  }
  // Directed radius equals the number of layers − 1.
  int radius = 0;
  for (int x : dist) radius = std::max(radius, x);
  EXPECT_EQ(radius, 3);
}

TEST(GeneratorTest, DirectedLayeredDensityP1IsComplete) {
  rng gen(2);
  graph g = make_directed_layered({1, 3, 3}, 1.0, gen);
  // With p = 1 every consecutive pair is connected.
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(1 * 3 + 3 * 3));
}

TEST(GeneratorTest, PermuteLabelsPreservesStructure) {
  rng gen(23);
  graph g = make_complete_layered_uniform(40, 4);
  graph h = permute_labels(g, gen);
  EXPECT_EQ(h.node_count(), g.node_count());
  EXPECT_EQ(h.edge_count(), g.edge_count());
  EXPECT_TRUE(is_connected(h));
  EXPECT_EQ(radius_from(h), 4);  // source stays node 0
}

TEST(GeneratorTest, PermuteLabelsExplicit) {
  graph g = make_path(4);  // 0-1-2-3
  graph h = permute_labels(g, std::vector<node_id>{0, 3, 2, 1});
  EXPECT_TRUE(h.has_edge(0, 3));
  EXPECT_TRUE(h.has_edge(3, 2));
  EXPECT_TRUE(h.has_edge(2, 1));
  EXPECT_FALSE(h.has_edge(0, 1));
}

TEST(GeneratorTest, PermuteLabelsRejectsMovedSource) {
  graph g = make_path(3);
  EXPECT_THROW(permute_labels(g, std::vector<node_id>{1, 0, 2}),
               precondition_error);
  EXPECT_THROW(permute_labels(g, std::vector<node_id>{0, 2, 2}),
               precondition_error);
}

}  // namespace
}  // namespace radiocast
