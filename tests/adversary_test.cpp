// Tests for the lower-bound machinery: (m,k)-selective families, the
// Jamming function's invariants, and the full Theorem 2 construction —
// including the crucial consistency check that replaying the algorithm on
// the constructed network really is slow (the empirical Lemma 9).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "adversary/jamming.h"
#include "adversary/lower_bound_builder.h"
#include "adversary/selective_family.h"
#include "core/interleaved.h"
#include "core/round_robin.h"
#include "core/select_and_send.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace radiocast {
namespace {

// ---------- selective families ----------

TEST(SelectiveFamilyTest, SelectsCountsIntersections) {
  EXPECT_TRUE(selects({1, 3, 5}, {3}));
  EXPECT_TRUE(selects({1, 3, 5}, {2, 3, 4}));
  EXPECT_FALSE(selects({1, 3, 5}, {1, 3}));
  EXPECT_FALSE(selects({1, 3, 5}, {0, 2}));
  EXPECT_FALSE(selects({}, {1}));
}

TEST(SelectiveFamilyTest, SingletonsAreSelective) {
  set_family singles;
  for (int v = 0; v < 8; ++v) singles.push_back({v});
  EXPECT_TRUE(is_selective(singles, 8, 4));
}

TEST(SelectiveFamilyTest, EmptyFamilyIsNotSelective) {
  EXPECT_FALSE(is_selective({}, 4, 2));
  const auto witness = find_unselected({}, 4, 2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(witness->empty());
}

TEST(SelectiveFamilyTest, WitnessIsGenuine) {
  // A family that misses pairs {0,1} ∩ handled sets evenly.
  set_family family{{0, 1}, {2, 3}};
  const auto witness = find_unselected(family, 4, 2);
  ASSERT_TRUE(witness.has_value());
  for (const auto& set : family) {
    EXPECT_FALSE(selects(set, *witness));
  }
}

TEST(SelectiveFamilyTest, BitPositionFamilySelectsPairsOnly) {
  // Sets {x : bit b of x set} select every X of size ≤ 2 that is nonempty…
  // except X = {0} (all-zero label intersects nothing) — the classic reason
  // these families need the complements too.
  set_family bits;
  for (int b = 0; b < 3; ++b) {
    std::vector<int> s;
    for (int x = 0; x < 8; ++x) {
      if (x & (1 << b)) s.push_back(x);
    }
    bits.push_back(s);
  }
  EXPECT_FALSE(is_selective(bits, 8, 2));
  for (int b = 0; b < 3; ++b) {
    std::vector<int> s;
    for (int x = 0; x < 8; ++x) {
      if (!(x & (1 << b))) s.push_back(x);
    }
    bits.push_back(s);
  }
  EXPECT_TRUE(is_selective(bits, 8, 2));
}

class GreedyFamily : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GreedyFamily, ProducesValidFamily) {
  const auto [m, k] = GetParam();
  rng gen(static_cast<std::uint64_t>(m * 100 + k));
  const set_family family = greedy_selective_family(m, k, gen);
  EXPECT_TRUE(is_selective(family, m, k)) << "m=" << m << " k=" << k;
  EXPECT_LE(family.size(), static_cast<std::size_t>(m));  // ≤ singletons
}

INSTANTIATE_TEST_SUITE_P(Sizes, GreedyFamily,
                         ::testing::Values(std::pair<int, int>{6, 2},
                                           std::pair<int, int>{10, 2},
                                           std::pair<int, int>{12, 3},
                                           std::pair<int, int>{16, 2},
                                           std::pair<int, int>{16, 3},
                                           std::pair<int, int>{20, 2}));

TEST(SelectiveFamilyTest, GreedyBeatsSingletonsForSmallK) {
  rng gen(9);
  const set_family family = greedy_selective_family(24, 2, gen);
  EXPECT_LT(family.size(), 24u);  // strictly better than the trivial family
}

TEST(SelectiveFamilyTest, ModularFamilySelectiveWithEnoughPrimes) {
  const set_family family = modular_selective_family(16, 2, 4);
  EXPECT_TRUE(is_selective(family, 16, 2));
}

TEST(SelectiveFamilyTest, CmsLowerBoundIsRespectedByGreedy) {
  // The bound is asymptotic with constant 1/8 — any valid family here
  // must be at least that large.
  rng gen(5);
  for (const auto& [m, k] : std::vector<std::pair<int, int>>{
           {8, 2}, {16, 2}, {16, 4}, {20, 3}}) {
    const set_family family = greedy_selective_family(m, k, gen);
    EXPECT_GE(static_cast<double>(family.size()),
              cms_size_lower_bound(m, k))
        << "m=" << m << " k=" << k;
  }
}

// ---------- jamming ----------

std::vector<node_id> iota_pool(node_id from, node_id count) {
  std::vector<node_id> pool;
  for (node_id v = 0; v < count; ++v) pool.push_back(from + v);
  return pool;
}

TEST(JammingTest, ConstructionPartitionsPool) {
  jamming jam(iota_pool(10, 40), 8);
  EXPECT_EQ(jam.blocks().size(), 4u);  // k/2
  std::size_t total = 0;
  for (const auto& b : jam.blocks()) total += b.size();
  EXPECT_EQ(total, 40u);
  EXPECT_TRUE(jam.invariant_holds());
}

TEST(JammingTest, RejectsBadParameters) {
  EXPECT_THROW(jamming(iota_pool(0, 40), 3), precondition_error);   // odd k
  EXPECT_THROW(jamming(iota_pool(0, 40), 2), precondition_error);   // k < 4
  EXPECT_THROW(jamming(iota_pool(0, 5), 4), precondition_error);    // small
}

TEST(JammingTest, EmptyYIsSilence) {
  jamming jam(iota_pool(0, 32), 4);
  const auto out = jam.step({});
  EXPECT_EQ(out.what, jamming::outcome::kind::silence);
  EXPECT_TRUE(jam.invariant_holds());
}

TEST(JammingTest, MassiveYIsCollisionAndShrinksOneBlock) {
  jamming jam(iota_pool(0, 32), 4);
  // All of block 0 transmits: |B∩Y| = |B| > (2/k)|B|.
  std::vector<node_id> y;
  for (node_id v = 0; v < 16; ++v) y.push_back(v);
  const auto out = jam.step(y);
  EXPECT_EQ(out.what, jamming::outcome::kind::collision);
  EXPECT_TRUE(jam.invariant_holds());
}

TEST(JammingTest, SingletonFromLargeBlockIsRemovedSilently) {
  jamming jam(iota_pool(0, 32), 4);
  const auto out = jam.step({0});
  // 1 ≤ (2/4)·8: case B — the transmitter is deleted, answer is silence
  // (no small blocks yet).
  EXPECT_EQ(out.what, jamming::outcome::kind::silence);
  bool still_there = false;
  for (const auto& b : jam.blocks()) {
    for (node_id v : b) still_there |= (v == 0);
  }
  EXPECT_FALSE(still_there);
  EXPECT_TRUE(jam.invariant_holds());
}

TEST(JammingTest, LargeBlockSurvivorsShareTransmitTrace) {
  // Drive random Y's; at the end, members of every still-large block must
  // have identical membership histories — the property underlying the
  // non-selectivity witness X*.
  rng gen(31);
  const auto pool = iota_pool(0, 64);
  jamming jam(pool, 8);
  std::map<node_id, std::vector<bool>> trace;
  for (node_id v : pool) trace[v] = {};
  for (int step = 0; step < 12; ++step) {
    std::vector<node_id> y;
    for (node_id v : pool) {
      if (gen.bernoulli(0.2)) y.push_back(v);
    }
    jam.step(y);
    std::set<node_id> in_y(y.begin(), y.end());
    for (node_id v : pool) trace[v].push_back(in_y.count(v) != 0);
    ASSERT_TRUE(jam.invariant_holds());
  }
  for (const auto& block : jam.blocks()) {
    if (static_cast<int>(block.size()) < jam.k()) continue;  // small block
    for (std::size_t i = 1; i < block.size(); ++i) {
      EXPECT_EQ(trace[block[0]], trace[block[i]])
          << "large-block survivors diverged";
    }
  }
}

TEST(JammingTest, PickLayerShape) {
  jamming jam(iota_pool(0, 64), 8);
  const auto choice = jam.pick_layer();
  // X' has 2 per non-p* block (3 blocks) plus X* of size ≤ k.
  EXPECT_EQ(choice.layer.size(), 2u * 3 + choice.star.size());
  EXPECT_GE(choice.star.size(), 2u);
  EXPECT_LE(choice.star.size(), 8u);
  // star ⊆ layer, all distinct.
  std::set<node_id> layer_set(choice.layer.begin(), choice.layer.end());
  EXPECT_EQ(layer_set.size(), choice.layer.size());
  for (node_id v : choice.star) EXPECT_TRUE(layer_set.count(v));
}

// ---------- the full construction ----------

void check_network_shape(const adversarial_network& net, node_id n, int d) {
  EXPECT_EQ(net.g.node_count(), n);
  EXPECT_TRUE(is_connected(net.g));
  EXPECT_EQ(radius_from(net.g), d);
  // Layer structure: spine i at distance 2i, odd layers between, L_D last.
  const auto dist = bfs_distances(net.g, 0);
  for (int i = 0; i < d / 2; ++i) {
    EXPECT_EQ(dist[static_cast<std::size_t>(i)], 2 * i) << "spine " << i;
    for (node_id w : net.odd_layers[static_cast<std::size_t>(i)]) {
      EXPECT_EQ(dist[static_cast<std::size_t>(w)], 2 * i + 1);
    }
  }
  for (node_id u : net.last_layer) {
    EXPECT_EQ(dist[static_cast<std::size_t>(u)], d);
  }
  EXPECT_FALSE(net.last_layer.empty());
}

TEST(LowerBoundTest, BuildsWellFormedNetworkAgainstRoundRobin) {
  const round_robin_protocol proto;
  const node_id n = 512;
  const int d = 8;
  const adversarial_network net = build_adversarial_network(proto, n, d);
  EXPECT_FALSE(net.stuck);
  check_network_shape(net, n, d);
  EXPECT_GE(net.k, 4);
  EXPECT_GE(net.jam_steps_per_stage, 1);
}

TEST(LowerBoundTest, BuildsWellFormedNetworkAgainstSelectAndSend) {
  const select_and_send_protocol proto;
  const node_id n = 512;
  const int d = 8;
  const adversarial_network net = build_adversarial_network(proto, n, d);
  EXPECT_FALSE(net.stuck);
  check_network_shape(net, n, d);
}

TEST(LowerBoundTest, ReplayIsAtLeastForcedSteps) {
  // The empirical Lemma 9: running the algorithm on G_A with the real
  // simulator takes at least the forced (D/2−1)·s steps, for every
  // deterministic protocol we constructed against.
  const node_id n = 512;
  const int d = 8;
  const round_robin_protocol rr;
  const select_and_send_protocol sas;
  const interleaved_protocol inter;
  const std::vector<const protocol*> protos{&rr, &sas, &inter};
  for (const protocol* proto : protos) {
    const adversarial_network net = build_adversarial_network(*proto, n, d);
    ASSERT_FALSE(net.stuck) << proto->name();
    run_options opts;
    opts.max_steps = 20'000'000;
    const run_result res = run_broadcast(net.g, *proto, opts);
    ASSERT_TRUE(res.completed) << proto->name();
    EXPECT_GE(res.informed_step, net.forced_steps) << proto->name();
  }
}

TEST(LowerBoundTest, AdversarialGraphSlowerThanFriendlyGraph) {
  // Against round-robin, G_A must be much slower than a benign layered
  // network of the same (n, D): the adversary picks high labels for the
  // layers, forcing nearly full label rounds per hop.
  const node_id n = 512;
  const int d = 8;
  const round_robin_protocol rr;
  const adversarial_network net = build_adversarial_network(rr, n, d);
  run_options opts;
  opts.max_steps = 20'000'000;
  const auto t_adv = run_broadcast(net.g, rr, opts).informed_step;
  graph friendly = make_complete_layered_uniform(n, d);
  const auto t_friendly = run_broadcast(friendly, rr, opts).informed_step;
  EXPECT_GT(t_adv, t_friendly);
}

TEST(LowerBoundTest, SpineTransmissionsMatchConstructionTimes) {
  // Consistency between the abstract construction and the real replay:
  // spine node i's first transmission in the real run happens exactly at
  // the step the construction recorded (the heart of Lemma 9).
  const node_id n = 512;
  const int d = 8;
  const round_robin_protocol rr;
  const adversarial_network net = build_adversarial_network(rr, n, d);
  ASSERT_FALSE(net.stuck);
  trace t;
  run_options opts;
  opts.max_steps = 20'000'000;
  opts.sink = &t;
  const run_result res = run_broadcast(net.g, rr, opts);
  ASSERT_TRUE(res.completed);
  std::vector<std::int64_t> first_tx(static_cast<std::size_t>(n), -1);
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    if (first_tx[static_cast<std::size_t>(e.node)] < 0) {
      first_tx[static_cast<std::size_t>(e.node)] = e.step;
    }
  }
  for (int i = 0; i < d / 2; ++i) {
    const std::int64_t constructed =
        net.spine_first_tx[static_cast<std::size_t>(i)];
    if (constructed < 0) continue;  // last spine: not tracked by builder
    EXPECT_EQ(first_tx[static_cast<std::size_t>(i)], constructed)
        << "spine " << i;
  }
}

TEST(LowerBoundTest, SpineConsistencyForSelectAndSend) {
  // The same Lemma 9 replay check for the most intricate protocol: the
  // abstract construction and the real run must agree on every spine
  // node's first transmission step.
  const node_id n = 512;
  const int d = 8;
  const select_and_send_protocol sas;
  const adversarial_network net = build_adversarial_network(sas, n, d);
  ASSERT_FALSE(net.stuck);
  trace t;
  run_options opts;
  opts.max_steps = 20'000'000;
  opts.sink = &t;
  const run_result res = run_broadcast(net.g, sas, opts);
  ASSERT_TRUE(res.completed);
  std::vector<std::int64_t> first_tx(static_cast<std::size_t>(n), -1);
  for (const auto& e : t.filter(trace_event::type::transmit)) {
    if (first_tx[static_cast<std::size_t>(e.node)] < 0) {
      first_tx[static_cast<std::size_t>(e.node)] = e.step;
    }
  }
  for (int i = 0; i < d / 2; ++i) {
    const std::int64_t constructed =
        net.spine_first_tx[static_cast<std::size_t>(i)];
    if (constructed < 0) continue;
    EXPECT_EQ(first_tx[static_cast<std::size_t>(i)], constructed)
        << "spine " << i;
  }
}

TEST(LowerBoundTest, ForcedDelayGrowsWithParameters) {
  const round_robin_protocol rr;
  const adversarial_network small = build_adversarial_network(rr, 512, 8);
  const adversarial_network big = build_adversarial_network(rr, 4096, 16);
  EXPECT_GT(big.forced_steps, small.forced_steps);
  EXPECT_GT(big.jam_steps_per_stage, small.jam_steps_per_stage);
}

TEST(LowerBoundTest, RejectsBadParameters) {
  const round_robin_protocol rr;
  EXPECT_THROW(build_adversarial_network(rr, 512, 7), precondition_error);
  EXPECT_THROW(build_adversarial_network(rr, 512, 2), precondition_error);
  EXPECT_THROW(build_adversarial_network(rr, 40, 8), precondition_error);
}

TEST(LowerBoundTest, VariousShapes) {
  const round_robin_protocol rr;
  for (const auto& [n, d] : std::vector<std::pair<node_id, int>>{
           {256, 4}, {384, 6}, {1024, 8}}) {
    const adversarial_network net = build_adversarial_network(rr, n, d);
    EXPECT_FALSE(net.stuck) << "n=" << n << " d=" << d;
    check_network_shape(net, n, d);
  }
}

}  // namespace
}  // namespace radiocast
