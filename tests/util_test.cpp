// Unit tests for the utility substrate: RNG, integer math, statistics,
// least-squares fitting, table rendering, CLI parsing, packed bit masks.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/assert.h"
#include "util/bitset.h"
#include "util/cli.h"
#include "util/fit.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace radiocast {
namespace {

// ---------- assertions ----------

TEST(AssertTest, CheckThrowsInvariantError) {
  EXPECT_THROW(RC_CHECK(1 == 2), invariant_error);
  EXPECT_NO_THROW(RC_CHECK(1 == 1));
}

TEST(AssertTest, RequireThrowsPreconditionError) {
  EXPECT_THROW(RC_REQUIRE(false), precondition_error);
  EXPECT_THROW(RC_REQUIRE_MSG(false, "context"), precondition_error);
}

TEST(AssertTest, MessageContainsContext) {
  try {
    RC_REQUIRE_MSG(false, "the widget is missing");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("widget"), std::string::npos);
  }
}

TEST(AssertTest, CheckEvaluatesExpressionExactlyOnce) {
  // The macros must expand their argument a single time — an expression
  // with side effects (e.g. an rng draw inside a check) would otherwise
  // perturb downstream state and break replay determinism.
  int evals = 0;
  RC_CHECK(++evals == 1);
  EXPECT_EQ(evals, 1);

  evals = 0;
  RC_CHECK_MSG(++evals == 1, "once");
  EXPECT_EQ(evals, 1);

  evals = 0;
  RC_REQUIRE(++evals == 1);
  EXPECT_EQ(evals, 1);

  evals = 0;
  RC_REQUIRE_MSG(++evals == 1, "once");
  EXPECT_EQ(evals, 1);
}

TEST(AssertTest, CheckEvaluatesExpressionOnceOnFailureToo) {
  int evals = 0;
  EXPECT_THROW(RC_CHECK(++evals == 0), invariant_error);
  EXPECT_EQ(evals, 1);

  evals = 0;
  EXPECT_THROW(RC_REQUIRE_MSG(++evals == 0, "boom"), precondition_error);
  EXPECT_EQ(evals, 1);
}

TEST(AssertTest, MessageBuiltOnlyOnFailure) {
  // The message argument is lazily evaluated: building it may allocate or
  // format, which the hot path must never pay for a passing check.
  int msg_evals = 0;
  auto message = [&msg_evals] {
    ++msg_evals;
    return std::string("expensive context");
  };
  RC_CHECK_MSG(true, message());
  EXPECT_EQ(msg_evals, 0);
  EXPECT_THROW(RC_CHECK_MSG(false, message()), invariant_error);
  EXPECT_EQ(msg_evals, 1);
}

// ---------- math ----------

TEST(MathTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(6));
}

TEST(MathTest, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(4), 2);
  EXPECT_EQ(ilog2_floor(1023), 9);
  EXPECT_EQ(ilog2_floor(1024), 10);
}

TEST(MathTest, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(4), 2);
  EXPECT_EQ(ilog2_ceil(5), 3);
  EXPECT_EQ(ilog2_ceil(1025), 11);
}

TEST(MathTest, FloorCeilAgreeOnPowersOfTwo) {
  for (int e = 0; e < 30; ++e) {
    const std::uint64_t x = 1ULL << e;
    EXPECT_EQ(ilog2_floor(x), e);
    EXPECT_EQ(ilog2_ceil(x), e);
  }
}

TEST(MathTest, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(MathTest, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(3, 0), 1u);
  EXPECT_EQ(ipow(5, 3), 125u);
}

TEST(MathTest, PreconditionsRejected) {
  EXPECT_THROW(ilog2_floor(0), precondition_error);
  EXPECT_THROW(ilog2_ceil(0), precondition_error);
  EXPECT_THROW(ceil_div(1, 0), precondition_error);
}

// ---------- rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int agreements = 0;
  for (int i = 0; i < 64; ++i) agreements += (a.next() == b.next());
  EXPECT_LT(agreements, 4);
}

TEST(RngTest, SplitIsDeterministicAndIndependent) {
  rng parent1(7);
  rng parent2(7);
  rng c1 = parent1.split();
  rng c2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next(), c2.next());
  // child and parent produce different streams
  rng p(7);
  rng c = p.split();
  int agreements = 0;
  for (int i = 0; i < 64; ++i) agreements += (p.next() == c.next());
  EXPECT_LT(agreements, 4);
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform) {
  rng gen(123);
  std::vector<int> buckets(10, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t v = gen.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[static_cast<std::size_t>(v)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, samples / 10, samples / 100);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  rng gen(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = gen.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01Bounds) {
  rng gen(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  rng gen(11);
  const int samples = 200000;
  int hits = 0;
  for (int i = 0; i < samples; ++i) hits += gen.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.25, 0.01);
  EXPECT_FALSE(gen.bernoulli(0.0));
  EXPECT_TRUE(gen.bernoulli(1.0));
}

TEST(RngTest, BelowRejectsZeroBound) {
  rng gen(1);
  EXPECT_THROW(gen.below(0), precondition_error);
}

// ---------- stats ----------

TEST(StatsTest, SummarizeBasics) {
  const summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(StatsTest, SummarizeSingleSample) {
  const summary s = summarize({7});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.0);
}

TEST(StatsTest, SummarizeRejectsEmpty) {
  EXPECT_THROW(summarize({}), precondition_error);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> sorted{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(sorted, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 50), 25.0);
}

TEST(StatsTest, AccumulatorMatchesBatch) {
  accumulator acc;
  const std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  for (double x : xs) acc.add(x);
  const summary s = summarize(xs);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(StatsTest, AccumulatorVarianceOfFewSamples) {
  accumulator acc;
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

// ---------- fit ----------

TEST(FitTest, PerfectSingleCoefficientFit) {
  std::vector<double> xs, ys;
  for (int n = 4; n <= 1024; n *= 2) {
    xs.push_back(n);
    ys.push_back(2.5 * n * std::log2(n));
  }
  const fit_result f =
      fit_scaled(xs, ys, [](double x) { return x * std::log2(x); });
  ASSERT_EQ(f.coefficients.size(), 1u);
  EXPECT_NEAR(f.coefficients[0], 2.5, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_LT(f.max_relative_error, 1e-9);
}

TEST(FitTest, TwoBasisFit) {
  std::vector<double> xs, ys;
  for (double x = 1; x <= 64; x += 1) {
    xs.push_back(x);
    ys.push_back(3.0 * x + 7.0);
  }
  const fit_result f = fit_linear(
      xs, ys, {[](double x) { return x; }, [](double) { return 1.0; }});
  ASSERT_EQ(f.coefficients.size(), 2u);
  EXPECT_NEAR(f.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(f.coefficients[1], 7.0, 1e-9);
}

TEST(FitTest, NoisyFitStillHighR2) {
  rng gen(31);
  std::vector<double> xs, ys;
  for (int n = 16; n <= 4096; n *= 2) {
    xs.push_back(n);
    ys.push_back(1.5 * n * (1.0 + 0.05 * (gen.uniform01() - 0.5)));
  }
  const fit_result f = fit_scaled(xs, ys, [](double x) { return x; });
  EXPECT_GT(f.r_squared, 0.99);
  EXPECT_NEAR(f.coefficients[0], 1.5, 0.1);
}

TEST(FitTest, FeaturesEntryPoint) {
  // y = 2·a + 3·b over feature rows (a, b).
  std::vector<std::vector<double>> features{{1, 0}, {0, 1}, {1, 1}, {2, 3}};
  std::vector<double> ys{2, 3, 5, 13};
  const fit_result f = fit_features(features, ys);
  EXPECT_NEAR(f.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(f.coefficients[1], 3.0, 1e-9);
}

TEST(FitTest, RejectsMismatchedInputs) {
  EXPECT_THROW(fit_scaled({1, 2}, {1}, [](double x) { return x; }),
               precondition_error);
  EXPECT_THROW(fit_features({}, {}), precondition_error);
}

TEST(FitTest, TinyMagnitudeWellConditionedFitSucceeds) {
  // Regression for the pivot tolerance: with an absolute 1e-12 cutoff a
  // perfectly well-conditioned system whose features are ~1e-14 (normal
  // equation entries ~1e-27) was rejected as "singular". The tolerance is
  // now relative to the matrix magnitude.
  std::vector<double> xs, ys;
  for (double x = 1; x <= 8; x += 1) {
    xs.push_back(x);
    ys.push_back(3.0 * (1e-14 * x) + 2.0 * 1e-14);
  }
  const fit_result f = fit_linear(
      xs, ys,
      {[](double x) { return 1e-14 * x; }, [](double) { return 1e-14; }});
  ASSERT_EQ(f.coefficients.size(), 2u);
  EXPECT_NEAR(f.coefficients[0], 3.0, 1e-6);
  EXPECT_NEAR(f.coefficients[1], 2.0, 1e-6);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-9);
}

TEST(FitTest, IllConditionedLargeMagnitudeFitThrows) {
  // The other direction: two nearly linearly dependent basis functions at
  // magnitude ~1e8 leave an eliminated pivot around 1e-9 — far above an
  // absolute 1e-12 cutoff (which silently returned garbage coefficients),
  // far below the magnitude-relative one (entries ~1e18 ⇒ tol ~1e6).
  std::vector<double> xs, ys;
  for (double x = 1; x <= 8; x += 1) {
    xs.push_back(x);
    ys.push_back(1e8 * x);
  }
  EXPECT_THROW(
      fit_linear(xs, ys,
                 {[](double x) { return 1e8 * x; },
                  [](double x) { return 1e8 * x + 1e-5 * x * x; }}),
      invariant_error);
}

TEST(FitTest, ExactlySingularStillThrows) {
  // Duplicate basis columns stay detected after the tolerance rework.
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{1, 2, 3, 4};
  EXPECT_THROW(fit_linear(xs, ys,
                          {[](double x) { return x; },
                           [](double x) { return x; }}),
               invariant_error);
}

// ---------- table ----------

TEST(TableTest, RendersHeaderAndRows) {
  text_table t("demo");
  t.set_header({"n", "time"});
  t.add(16, 42.5);
  t.add(32, 99.125);
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("time"), std::string::npos);
  EXPECT_NE(s.find("42.50"), std::string::npos);
}

TEST(TableTest, RejectsWrongWidthRow) {
  text_table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(TableTest, CsvOutput) {
  text_table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "2"});
  t.add_row({"with\"quote", "3"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2\n"
            "\"with\"\"quote\",3\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(text_table::format_double(1.0, 2), "1.00");
  EXPECT_EQ(text_table::format_double(2.5, 0), "2");  // rounds to even
}

// ---------- cli ----------

TEST(CliTest, ParsesFlagsAndPositionals) {
  // Note: "--flag value" greedily binds the next non-flag token, so a bare
  // boolean flag must come last or be written --flag=true.
  const char* argv[] = {"prog", "--n=64", "--protocol", "decay", "pos1",
                        "--verbose"};
  cli_args args(6, argv);
  EXPECT_EQ(args.get_int("n", 0), 64);
  EXPECT_EQ(args.get_string("protocol", ""), "decay");
  EXPECT_TRUE(args.get_bool("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.program_name(), "prog");
}

TEST(CliTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  cli_args args(1, argv);
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_EQ(args.get_double("p", 0.5), 0.5);
  EXPECT_FALSE(args.has("n"));
}

TEST(CliTest, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n=abc"};
  cli_args args(2, argv);
  EXPECT_THROW(args.get_int("n", 0), precondition_error);
}

TEST(CliTest, BooleanSpellings) {
  const char* argv[] = {"prog", "--x=off", "--y=1"};
  cli_args args(3, argv);
  EXPECT_FALSE(args.get_bool("x", true));
  EXPECT_TRUE(args.get_bool("y", false));
}

// ---------- packed bit masks ----------

TEST(BitsetTest, SizeEdgesKeepTailBitsZero) {
  // 0, 63, 64 and 65 bits cover: empty, a partial word, an exact word
  // boundary, and one bit spilling into a second word. The word-level
  // contract is that tail bits past size() are ZERO even after assign(n,
  // true), so word-at-a-time consumers may OR whole words unmasked.
  for (const std::size_t n : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{65}}) {
    util::bitset b;
    b.assign(n, true);
    EXPECT_EQ(b.size(), n);
    EXPECT_EQ(b.count(), n);
    EXPECT_EQ(b.word_count(), (n + 63) / 64);
    EXPECT_EQ(b.any(), n != 0);
    std::size_t word_pop = 0;
    for (std::size_t w = 0; w < b.word_count(); ++w) {
      word_pop += static_cast<std::size_t>(std::popcount(b.word(w)));
    }
    EXPECT_EQ(word_pop, n) << "tail bits leaked past size() at n=" << n;
  }
}

TEST(BitsetTest, WordBoundaryBitsLandInTheRightWord) {
  util::bitset b;
  b.assign(130, false);
  // Straddle both word boundaries: last bit of word 0, first of word 1,
  // last of word 1, first of word 2.
  for (const std::size_t i : {std::size_t{63}, std::size_t{64},
                              std::size_t{127}, std::size_t{128}}) {
    b.set(i);
    EXPECT_TRUE(b.test(i));
  }
  EXPECT_EQ(b.word(0), std::uint64_t{1} << 63);
  EXPECT_EQ(b.word(1), (std::uint64_t{1} << 63) | 1);
  EXPECT_EQ(b.word(2), 1u);
  EXPECT_EQ(b.count(), 4u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(127));
  EXPECT_EQ(b.word(1), std::uint64_t{1} << 63);
  EXPECT_EQ(b.count(), 3u);
}

TEST(BitsetTest, PopcountSkipScanFindsExactlyTheSetBits) {
  // The engine's sweep idiom: scan word(), peel bits with countr_zero.
  // Bits chosen to hit word edges (0, 63, 64) and an interior run.
  util::bitset b;
  b.assign(200, false);
  const std::size_t picks[] = {0, 7, 63, 64, 65, 130, 199};
  for (const std::size_t i : picks) b.set(i);
  std::vector<std::size_t> seen;
  for (std::size_t w = 0; w < b.word_count(); ++w) {
    std::uint64_t rest = b.word(w);
    while (rest != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(rest));
      rest &= rest - 1;
      seen.push_back(w * util::bitset::kWordBits + bit);
    }
  }
  EXPECT_EQ(seen, std::vector<std::size_t>(std::begin(picks),
                                           std::end(picks)));
  EXPECT_EQ(b.count(), std::size(picks));
}

TEST(BitsetTest, AnyNoneAndReassignment) {
  util::bitset b;
  b.assign(65, false);
  EXPECT_TRUE(b.none());
  b.set(64);  // only bit: first of the second word
  EXPECT_TRUE(b.any());
  EXPECT_EQ(b.count(), 1u);
  b.reset(64);
  EXPECT_TRUE(b.none());
  // assign() must clear old contents, including when shrinking across a
  // word boundary.
  b.set(3);
  b.assign(5, false);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_TRUE(b.none());
}

TEST(BitsetTest, OutOfRangeAccessRejected) {
  util::bitset b;
  b.assign(64, false);
  EXPECT_THROW(b.test(64), precondition_error);
  EXPECT_THROW(b.set(64), precondition_error);
  EXPECT_THROW(b.reset(64), precondition_error);
  EXPECT_THROW(b.word(1), precondition_error);
  util::bitset empty;
  EXPECT_THROW(empty.test(0), precondition_error);
}

}  // namespace
}  // namespace radiocast
