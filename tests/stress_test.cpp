// Larger-scale smoke tests: the sizes the benchmark harnesses run at,
// exercised once each under the test runner so regressions in asymptotic
// behavior (not just correctness) fail CI. Budgeted to stay under ~30 s.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/lower_bound_builder.h"
#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"

namespace radiocast {
namespace {

TEST(StressTest, KpOnLargeWorstCaseFamily) {
  const node_id n = 8192;
  const int d = 512;
  graph g = make_complete_layered_uniform(n, d);
  const auto proto = make_protocol("kp", n - 1, d);
  run_options opts;
  opts.seed = 2;
  opts.max_steps = 2'000'000;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);
  // Generous shape bound: c·(D log(n/D) + log²n).
  const double bound = 40.0 * (d * std::log2(16.0) + 169.0);
  EXPECT_LT(static_cast<double>(res.informed_step), bound);
}

TEST(StressTest, DecayOnLargeSparseNetwork) {
  rng gen(3);
  const node_id n = 8192;
  graph g = make_gnp_connected(n, 3.0 / n, gen);
  const auto proto = make_protocol("decay", n - 1);
  run_options opts;
  opts.seed = 4;
  opts.max_steps = 5'000'000;
  EXPECT_TRUE(run_broadcast(g, *proto, opts).completed);
}

TEST(StressTest, SelectAndSendOnLongPath) {
  const node_id n = 4096;
  graph g = make_path(n);
  const auto proto = make_protocol("select-and-send", n - 1);
  run_options opts;
  opts.max_steps = 50'000'000;
  opts.stop = stop_condition::all_halted;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_LT(res.steps, 8 * static_cast<std::int64_t>(n));  // ≈ 2·4 per hop
}

TEST(StressTest, CompleteLayeredOnWideNetwork) {
  const node_id n = 8192;
  const int d = 16;
  graph g = make_complete_layered_uniform(n, d);  // 512-wide layers
  const auto proto = make_protocol("complete-layered", n - 1);
  run_options opts;
  opts.max_steps = 10'000'000;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_LT(res.informed_step, 2 * n);
}

TEST(StressTest, AdversaryAtBenchScale) {
  const node_id n = 4096;
  const int d = 16;
  const auto proto = make_protocol("round-robin", n - 1);
  const adversarial_network net = build_adversarial_network(*proto, n, d);
  ASSERT_FALSE(net.stuck);
  EXPECT_EQ(radius_from(net.g), d);
  run_options opts;
  opts.max_steps = 100'000'000;
  const run_result res = run_broadcast(net.g, *proto, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_GE(res.informed_step, net.forced_steps);
}

TEST(StressTest, SoaEngineOnHundredThousandNodeLayeredNetwork) {
  // The struct-of-arrays engine at the scale the mega benchmark runs:
  // fat-first layered keeps essentially every node awake from step 1 on,
  // which is the layout's worst case for state volume and best case for
  // exposing quadratic slips (a per-step O(n²) scan would blow the step
  // budget's wall-clock instantly at n = 10⁵).
  const node_id n = 100'000;
  graph g = make_complete_layered_fat(n, 64, /*fat_index=*/1);
  const auto proto = make_protocol("decay", n - 1);
  run_options opts;
  opts.seed = 12;
  opts.max_steps = 2'000'000;
  opts.engine = step_engine::soa;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);
  // 63 thin-layer hops, each a Decay phase of 2·⌈log₂(r+1)⌉ = 34 steps
  // with O(log n) expected phases per hop: tens of thousands of steps is
  // sane, millions is not.
  EXPECT_LT(res.informed_step, 200'000);
}

TEST(StressTest, SoaEngineOnHundredThousandNodeSparseGnp) {
  rng gen(13);
  const node_id n = 100'000;
  graph g = make_gnp_sparse_connected(n, 3.0 / n, gen);
  const auto proto = make_protocol("decay", n - 1);
  run_options opts;
  opts.seed = 14;
  opts.max_steps = 2'000'000;
  opts.engine = step_engine::soa;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);
  // Diameter of G(n, 3/n) is O(log n); Decay pays O(log² n) per hop.
  EXPECT_LT(res.informed_step, 100'000);
}

TEST(StressTest, SoaMatchesFrontierAtScale) {
  // Record-level spot check at a size the differential matrix (which runs
  // every engine × fault × thread combination on small graphs) cannot
  // afford: one seed, n = 50k, soa vs frontier must agree exactly.
  const node_id n = 50'000;
  graph g = make_complete_layered_fat(n, 32, /*fat_index=*/1);
  const auto proto = make_protocol("decay", n - 1);
  run_options opts;
  opts.seed = 15;
  opts.max_steps = 2'000'000;
  opts.engine = step_engine::soa;
  const run_result soa = run_broadcast(g, *proto, opts);
  opts.engine = step_engine::frontier;
  const run_result fro = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(soa.completed);
  EXPECT_EQ(soa.steps, fro.steps);
  EXPECT_EQ(soa.informed_step, fro.informed_step);
  EXPECT_EQ(soa.transmissions, fro.transmissions);
  EXPECT_EQ(soa.collisions, fro.collisions);
  EXPECT_EQ(soa.deliveries, fro.deliveries);
  EXPECT_EQ(soa.informed_at, fro.informed_at);
}

// Engine-matching helper for the deterministic-protocol scale checks
// below: one seed, soa vs frontier, every record field exact. The token
// protocols keep all informed nodes in the awake list, so sizes here are
// bounded by steps × awake ≈ n² — a few thousand nodes is already well
// past what the differential matrix runs.
void expect_soa_matches_frontier(const graph& g, const protocol& proto,
                                 run_options opts) {
  opts.engine = step_engine::soa;
  const run_result soa = run_broadcast(g, proto, opts);
  opts.engine = step_engine::frontier;
  const run_result fro = run_broadcast(g, proto, opts);
  EXPECT_EQ(soa.completed, fro.completed);
  EXPECT_EQ(soa.steps, fro.steps);
  EXPECT_EQ(soa.informed_step, fro.informed_step);
  EXPECT_EQ(soa.transmissions, fro.transmissions);
  EXPECT_EQ(soa.collisions, fro.collisions);
  EXPECT_EQ(soa.deliveries, fro.deliveries);
  EXPECT_EQ(soa.informed_at, fro.informed_at);
}

TEST(StressTest, SelectAndSendSoaMatchesFrontierOnLongPath) {
  const node_id n = 8192;
  graph g = make_path(n);
  const auto proto = make_protocol("select-and-send", n - 1);
  run_options opts;
  opts.max_steps = 50'000'000;
  opts.stop = stop_condition::all_halted;
  expect_soa_matches_frontier(g, *proto, opts);
}

TEST(StressTest, CompleteLayeredSoaMatchesFrontierOnWideNetwork) {
  const node_id n = 8192;
  graph g = make_complete_layered_uniform(n, 16);  // 512-wide layers
  const auto proto = make_protocol("complete-layered", n - 1);
  run_options opts;
  opts.max_steps = 10'000'000;
  expect_soa_matches_frontier(g, *proto, opts);
}

TEST(StressTest, InterleavedSoaMatchesFrontierAtScale) {
  // Interleaved drives both of its halves at once — the even-step
  // round-robin stream and the odd-step select-and-send token — so this
  // exercises the composed begin_step schedule hoist at a size where a
  // modulus slip would visibly desynchronize the two engines.
  const node_id n = 4096;
  graph g = make_complete_layered_uniform(n, 64);
  const auto proto = make_protocol("interleaved", n - 1);
  run_options opts;
  opts.max_steps = 50'000'000;
  expect_soa_matches_frontier(g, *proto, opts);
}

TEST(StressTest, GeometricFieldAtScale) {
  rng gen(7);
  graph g = make_random_geometric(2000, 0.05, gen);
  ASSERT_TRUE(is_connected(g));
  const int d = radius_from(g);
  const auto proto = make_protocol("kp", g.node_count() - 1,
                                   std::max(1, d));
  run_options opts;
  opts.seed = 6;
  opts.max_steps = 5'000'000;
  EXPECT_TRUE(run_broadcast(g, *proto, opts).completed);
}

}  // namespace
}  // namespace radiocast
