// Larger-scale smoke tests: the sizes the benchmark harnesses run at,
// exercised once each under the test runner so regressions in asymptotic
// behavior (not just correctness) fail CI. Budgeted to stay under ~30 s.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/lower_bound_builder.h"
#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"

namespace radiocast {
namespace {

TEST(StressTest, KpOnLargeWorstCaseFamily) {
  const node_id n = 8192;
  const int d = 512;
  graph g = make_complete_layered_uniform(n, d);
  const auto proto = make_protocol("kp", n - 1, d);
  run_options opts;
  opts.seed = 2;
  opts.max_steps = 2'000'000;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);
  // Generous shape bound: c·(D log(n/D) + log²n).
  const double bound = 40.0 * (d * std::log2(16.0) + 169.0);
  EXPECT_LT(static_cast<double>(res.informed_step), bound);
}

TEST(StressTest, DecayOnLargeSparseNetwork) {
  rng gen(3);
  const node_id n = 8192;
  graph g = make_gnp_connected(n, 3.0 / n, gen);
  const auto proto = make_protocol("decay", n - 1);
  run_options opts;
  opts.seed = 4;
  opts.max_steps = 5'000'000;
  EXPECT_TRUE(run_broadcast(g, *proto, opts).completed);
}

TEST(StressTest, SelectAndSendOnLongPath) {
  const node_id n = 4096;
  graph g = make_path(n);
  const auto proto = make_protocol("select-and-send", n - 1);
  run_options opts;
  opts.max_steps = 50'000'000;
  opts.stop = stop_condition::all_halted;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_LT(res.steps, 8 * static_cast<std::int64_t>(n));  // ≈ 2·4 per hop
}

TEST(StressTest, CompleteLayeredOnWideNetwork) {
  const node_id n = 8192;
  const int d = 16;
  graph g = make_complete_layered_uniform(n, d);  // 512-wide layers
  const auto proto = make_protocol("complete-layered", n - 1);
  run_options opts;
  opts.max_steps = 10'000'000;
  const run_result res = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_LT(res.informed_step, 2 * n);
}

TEST(StressTest, AdversaryAtBenchScale) {
  const node_id n = 4096;
  const int d = 16;
  const auto proto = make_protocol("round-robin", n - 1);
  const adversarial_network net = build_adversarial_network(*proto, n, d);
  ASSERT_FALSE(net.stuck);
  EXPECT_EQ(radius_from(net.g), d);
  run_options opts;
  opts.max_steps = 100'000'000;
  const run_result res = run_broadcast(net.g, *proto, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_GE(res.informed_step, net.forced_steps);
}

TEST(StressTest, GeometricFieldAtScale) {
  rng gen(7);
  graph g = make_random_geometric(2000, 0.05, gen);
  ASSERT_TRUE(is_connected(g));
  const int d = radius_from(g);
  const auto proto = make_protocol("kp", g.node_count() - 1,
                                   std::max(1, d));
  run_options opts;
  opts.seed = 6;
  opts.max_steps = 5'000'000;
  EXPECT_TRUE(run_broadcast(g, *proto, opts).completed);
}

}  // namespace
}  // namespace radiocast
