// Tests of the observability layer: the metrics registry (counter / gauge /
// histogram bucket boundaries / series), the JSON document model and its
// parser (round-trips), the span profiler, the trace ring buffer and its
// NDJSON export, and the simulator-facing instrumentation contract
// (metrics/series filled when a registry is attached, run_trials reporting
// timeouts as data).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "campaign/artifact.h"
#include "core/runner.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/ndjson.h"
#include "obs/span.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "sim/trace_analysis.h"
#include "util/stats.h"

namespace radiocast {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::metrics_registry reg;
  reg.get_counter("tx").add();
  reg.get_counter("tx").add(4);
  EXPECT_EQ(reg.get_counter("tx").value(), 5);

  reg.get_gauge("phase").set(3);
  reg.get_gauge("phase").set(7);
  EXPECT_EQ(reg.get_gauge("phase").value(), 7);
  EXPECT_EQ(reg.get_gauge("phase").writes(), 2);
}

TEST(MetricsTest, LabeledLookupIsDistinct) {
  obs::metrics_registry reg;
  reg.get_counter("tx", "universal").add(2);
  reg.get_counter("tx", "geometric").add(5);
  EXPECT_EQ(reg.get_counter("tx", "universal").value(), 2);
  EXPECT_EQ(reg.get_counter("tx", "geometric").value(), 5);
  EXPECT_EQ(reg.find_counter("tx{universal}")->value(), 2);
  EXPECT_EQ(reg.find_counter("tx"), nullptr);
}

TEST(MetricsTest, ReferencesStayStableAcrossInsertions) {
  obs::metrics_registry reg;
  obs::counter& first = reg.get_counter("a");
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    reg.get_counter(name).add();
  }
  first.add(9);
  EXPECT_EQ(reg.get_counter("a").value(), 9);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket i holds values in (2^(i-1), 2^i]; bucket 0 holds v ≤ 1. The
  // boundary value 2^i must land in bucket i, and 2^i + 1 in bucket i+1.
  EXPECT_EQ(obs::histogram::bucket_index(0), 0);
  EXPECT_EQ(obs::histogram::bucket_index(1), 0);
  EXPECT_EQ(obs::histogram::bucket_index(2), 1);
  EXPECT_EQ(obs::histogram::bucket_index(3), 2);
  EXPECT_EQ(obs::histogram::bucket_index(4), 2);
  EXPECT_EQ(obs::histogram::bucket_index(5), 3);
  EXPECT_EQ(obs::histogram::bucket_index(8), 3);
  EXPECT_EQ(obs::histogram::bucket_index(9), 4);
  EXPECT_EQ(obs::histogram::bucket_index(1 << 20), 20);
  EXPECT_EQ(obs::histogram::bucket_index((1 << 20) + 1), 21);

  obs::histogram h;
  for (std::int64_t v : {1, 2, 3, 4, 100, 1000}) h.observe(v);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 1110);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 1110.0 / 6.0);
}

TEST(MetricsTest, HistogramPercentileBoundIsAnUpperBound) {
  obs::histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.observe(v);
  // The p50 bucket bound must cover at least half the mass but stay within
  // one power of two of the true median.
  const std::int64_t p50 = h.percentile_bound(50.0);
  EXPECT_GE(p50, 500);
  EXPECT_LE(p50, 1024);
  EXPECT_GE(h.percentile_bound(100.0), 1000);
}

TEST(MetricsTest, SeriesRecordsInOrder) {
  obs::metrics_registry reg;
  obs::series& s = reg.get_series("frontier");
  s.push(1);
  s.push(5);
  s.push(25);
  ASSERT_EQ(s.values().size(), 3u);
  EXPECT_EQ(s.values()[2], 25);
}

TEST(MetricsTest, ToJsonExportsAllKinds) {
  obs::metrics_registry reg;
  reg.get_counter("c").add(2);
  reg.get_gauge("g").set(4);
  reg.get_histogram("h").observe(9);
  reg.get_series("s").push(1);
  const obs::json_value j = reg.to_json();
  ASSERT_NE(j.find_path("counters.c"), nullptr);
  EXPECT_EQ(j.find_path("counters.c")->as_int(), 2);
  ASSERT_NE(j.find_path("gauges.g"), nullptr);
  ASSERT_NE(j.find_path("histograms.h"), nullptr);
  EXPECT_EQ(j.find_path("histograms.h.count")->as_int(), 1);
  ASSERT_NE(j.find_path("series.s"), nullptr);
  EXPECT_EQ(j.find_path("series.s")->items().size(), 1u);
}

// ---------------------------------------------------------------------------
// JSON model + parser
// ---------------------------------------------------------------------------

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplacesInPlace) {
  obs::json_value o = obs::json_value::object();
  o.set("z", 1);
  o.set("a", 2);
  o.set("z", 3);
  EXPECT_EQ(o.dump(), "{\"z\":3,\"a\":2}");
}

TEST(JsonTest, RoundTripsThroughParser) {
  obs::json_value o = obs::json_value::object();
  o.set("int", std::int64_t{1234567890123});
  o.set("neg", -4);
  o.set("pi", 3.25);
  o.set("text", "quote \" backslash \\ newline \n unicode \u00e9");
  o.set("flag", true);
  o.set("nothing", nullptr);
  obs::json_value arr = obs::json_value::array();
  arr.push_back(1);
  arr.push_back("two");
  o.set("arr", std::move(arr));

  for (int indent : {-1, 2}) {
    std::string err;
    const auto parsed = obs::json_parse(o.dump(indent), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(*parsed, o) << "indent=" << indent;
    // Integers must survive as integers (no 1.23457e+12 mangling).
    EXPECT_EQ(parsed->find("int")->as_int(), 1234567890123);
  }
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\""}) {
    std::string err;
    EXPECT_FALSE(obs::json_parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(JsonTest, FindPathDescendsDottedKeys) {
  const auto doc = obs::json_parse(R"({"a":{"b":{"c":42}}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find_path("a.b.c"), nullptr);
  EXPECT_EQ(doc->find_path("a.b.c")->as_int(), 42);
  EXPECT_EQ(doc->find_path("a.x.c"), nullptr);
}

// ---------------------------------------------------------------------------
// Span profiler
// ---------------------------------------------------------------------------

TEST(SpanTest, NestsAndAccumulates) {
  obs::span_profiler prof;
  for (int i = 0; i < 3; ++i) {
    obs::scoped_span outer(&prof, "outer");
    obs::scoped_span inner(&prof, "inner");
  }
  const obs::span_stats* outer = prof.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 3);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0]->name, "inner");
  EXPECT_EQ(outer->children[0]->count, 3);
  EXPECT_LE(outer->children[0]->total_ns, outer->total_ns);
}

TEST(SpanTest, NullProfilerIsANoOp) {
  obs::scoped_span s(nullptr, "nothing");  // must not crash
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Trace: ring buffer + exports
// ---------------------------------------------------------------------------

trace_event make_event(std::int64_t step, trace_event::type t, node_id node) {
  trace_event e;
  e.step = step;
  e.what = t;
  e.node = node;
  e.msg = message{7, node, step, 2, 3, 4};
  return e;
}

TEST(TraceTest, RingBufferKeepsNewestAndCountsDropped) {
  trace tr(3);
  for (std::int64_t s = 0; s < 10; ++s) {
    tr.record(make_event(s, trace_event::type::transmit, 1));
  }
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.dropped(), 7u);
  EXPECT_EQ(tr.recorded(), 10u);
  const auto events = tr.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].step, 7);  // oldest retained
  EXPECT_EQ(events[2].step, 9);  // newest
}

TEST(TraceTest, ShrinkingCapacityDropsOldest) {
  trace tr;
  for (std::int64_t s = 0; s < 5; ++s) {
    tr.record(make_event(s, trace_event::type::informed, 2));
  }
  tr.set_capacity(2);
  const auto events = tr.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].step, 3);
  EXPECT_EQ(events[1].step, 4);
  EXPECT_EQ(tr.dropped(), 3u);
}

TEST(TraceTest, FilterSelectsOneTypeInOrder) {
  trace tr;
  tr.record(make_event(0, trace_event::type::transmit, 1));
  tr.record(make_event(1, trace_event::type::collision, 2));
  tr.record(make_event(2, trace_event::type::transmit, 3));
  const auto transmits = tr.filter(trace_event::type::transmit);
  ASSERT_EQ(transmits.size(), 2u);
  EXPECT_EQ(transmits[0].node, 1);
  EXPECT_EQ(transmits[1].node, 3);
  EXPECT_EQ(tr.filter(trace_event::type::informed).size(), 0u);
}

TEST(TraceTest, ToStringMentionsEveryEvent) {
  trace tr;
  tr.record(make_event(5, trace_event::type::transmit, 3));
  tr.record(make_event(6, trace_event::type::collision, 4));
  const std::string text = tr.to_string();
  EXPECT_NE(text.find("transmit"), std::string::npos);
  EXPECT_NE(text.find("collision"), std::string::npos);
  EXPECT_NE(text.find('5'), std::string::npos);
}

TEST(TraceTest, NdjsonRoundTripsThroughTheParser) {
  trace tr;
  tr.record(make_event(0, trace_event::type::transmit, 1));
  tr.record(make_event(0, trace_event::type::collision, 2));
  tr.record(make_event(1, trace_event::type::receive, 3));
  std::ostringstream out;
  tr.to_ndjson(out);

  std::string err;
  const auto lines = obs::ndjson_parse(out.str(), &err);
  ASSERT_TRUE(lines.has_value()) << err;
  ASSERT_EQ(lines->size(), 3u);
  EXPECT_EQ((*lines)[0].find("type")->as_string(), "transmit");
  // Message payload fields only appear on transmit/receive events.
  EXPECT_EQ((*lines)[0].find("kind")->as_int(), 7);
  EXPECT_EQ((*lines)[0].find("a")->as_int(), 0);
  EXPECT_EQ((*lines)[1].find("type")->as_string(), "collision");
  EXPECT_EQ((*lines)[1].find("kind"), nullptr);
  EXPECT_EQ((*lines)[2].find("node")->as_int(), 3);

  const auto summary = obs::json_parse(tr.summary_json(), &err);
  ASSERT_TRUE(summary.has_value()) << err;
  EXPECT_EQ(summary->find("events")->as_int(), 3);
  EXPECT_EQ(summary->find_path("by_type.transmit")->as_int(), 1);
}

// ---------------------------------------------------------------------------
// NDJSON streaming reader
// ---------------------------------------------------------------------------

TEST(NdjsonReaderTest, EmptyInputYieldsNothingCleanly) {
  std::istringstream in("");
  obs::ndjson_reader reader(in);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.failed());
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.documents(), 0);
  // Once drained, further calls stay drained.
  EXPECT_FALSE(reader.next().has_value());
}

TEST(NdjsonReaderTest, SkipsBlankLinesAndStripsCrlf) {
  std::istringstream in("{\"a\":1}\r\n\n\r\n{\"a\":2}\n");
  obs::ndjson_reader reader(in);
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->find("a")->as_int(), 1);
  const auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->find("a")->as_int(), 2);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.failed());
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.documents(), 2);
}

TEST(NdjsonReaderTest, TornFinalLineIsTruncationNotCorruption) {
  // The signature an interrupted writer leaves: a complete record, then a
  // record cut mid-byte with no trailing newline.
  std::istringstream in("{\"seed\":1,\"steps\":9}\n{\"seed\":2,\"st");
  obs::ndjson_reader reader(in);
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->find("seed")->as_int(), 1);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.failed());
  EXPECT_EQ(reader.documents(), 1);
}

TEST(NdjsonReaderTest, CompleteFinalLineWithoutNewlineIsFine) {
  std::istringstream in("{\"a\":1}\n{\"a\":2}");
  obs::ndjson_reader reader(in);
  EXPECT_TRUE(reader.next().has_value());
  const auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->find("a")->as_int(), 2);
  EXPECT_FALSE(reader.truncated());
  EXPECT_FALSE(reader.failed());
}

TEST(NdjsonReaderTest, MalformedInteriorLineIsAHardError) {
  std::istringstream in("{\"a\":1}\nnot json\n{\"a\":3}\n");
  obs::ndjson_reader reader(in);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_FALSE(reader.truncated());
  EXPECT_NE(reader.error().find("line 2"), std::string::npos)
      << reader.error();
  // A hard error is terminal: the valid-looking third line stays unread.
  EXPECT_FALSE(reader.next().has_value());
}

TEST(NdjsonReaderTest, StreamsAMultiMegabyteLine) {
  // Line length must be unbounded: build one record > 1 MiB.
  std::string big = "{\"blob\":\"";
  big.append(1 << 20, 'x');
  big += "\",\"tail\":42}\n{\"after\":1}\n";
  std::istringstream in(big);
  obs::ndjson_reader reader(in);
  const auto doc = reader.next();
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("blob")->as_string().size(), 1u << 20);
  EXPECT_EQ(doc->find("tail")->as_int(), 42);
  const auto after = reader.next();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->find("after")->as_int(), 1);
  EXPECT_FALSE(reader.failed());
}

TEST(NdjsonReaderTest, ShardRecordTypesRoundTrip) {
  // Every radiocast.shard.v1 record type survives write → stream → parse.
  campaign::shard_header h;
  h.campaign = "rt";
  h.shard = 3;
  h.point = 1;
  h.case_name = "path/n=8/decay";
  h.params = obs::json_value::object();
  h.params.set("n", 8);
  h.first_trial = 4;
  h.trials = 2;
  h.base_seed = 5;
  trial_record t;
  t.seed = 5;
  t.completed = true;
  t.steps = 17;
  t.informed_step = 16;
  t.transmissions = 33;
  t.collisions = 2;
  t.deliveries = 7;
  t.crashed_nodes = 1;
  t.suppressed_deliveries = 2;
  t.churned_edges = 3;
  t.wall_ms = 0.25;

  std::ostringstream out;
  campaign::header_record(h).write(out);
  out << '\n';
  campaign::trial_record_json(t).write(out);
  out << '\n';
  campaign::footer_record(3, 1).write(out);
  out << '\n';

  std::istringstream in(out.str());
  obs::ndjson_reader reader(in);
  const auto header_doc = reader.next();
  ASSERT_TRUE(header_doc.has_value());
  std::string err;
  const auto h2 = campaign::parse_header(*header_doc, &err);
  ASSERT_TRUE(h2.has_value()) << err;
  EXPECT_EQ(h2->campaign, "rt");
  EXPECT_EQ(h2->shard, 3);
  EXPECT_EQ(h2->point, 1);
  EXPECT_EQ(h2->case_name, "path/n=8/decay");
  EXPECT_EQ(h2->first_trial, 4);
  EXPECT_EQ(h2->trials, 2);
  EXPECT_EQ(h2->base_seed, 5u);

  const auto trial_doc = reader.next();
  ASSERT_TRUE(trial_doc.has_value());
  const auto t2 = campaign::parse_trial(*trial_doc, &err);
  ASSERT_TRUE(t2.has_value()) << err;
  EXPECT_EQ(t2->seed, 5u);
  EXPECT_TRUE(t2->completed);
  EXPECT_EQ(t2->steps, 17);
  EXPECT_EQ(t2->informed_step, 16);
  EXPECT_EQ(t2->transmissions, 33);
  EXPECT_EQ(t2->collisions, 2);
  EXPECT_EQ(t2->deliveries, 7);
  EXPECT_EQ(t2->crashed_nodes, 1);
  EXPECT_EQ(t2->suppressed_deliveries, 2);
  EXPECT_EQ(t2->churned_edges, 3);
  EXPECT_DOUBLE_EQ(t2->wall_ms, 0.25);

  const auto footer_doc = reader.next();
  ASSERT_TRUE(footer_doc.has_value());
  EXPECT_EQ(footer_doc->find("record")->as_string(), "footer");
  EXPECT_EQ(footer_doc->find("trials_written")->as_int(), 1);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.failed());
  EXPECT_FALSE(reader.truncated());
}

// ---------------------------------------------------------------------------
// Trace analytics
// ---------------------------------------------------------------------------

TEST(TraceAnalysisTest, PathTreeDepthEqualsCompletionStep) {
  // A path is the unit-width layered graph: node v's first delivery can
  // only come from v−1, so the first-delivery tree IS the path and its
  // depth is n−1. Round-robin with identity labels moves the frontier one
  // hop per step, so the run's completion step equals that depth — the
  // analyzer must reconstruct exactly this from the trace.
  const node_id n = 24;
  graph g = make_path(n);
  const auto proto = make_protocol("round-robin", n - 1);
  trace tr;
  run_options opts;
  opts.seed = 11;
  opts.sink = &tr;
  const run_result r = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(r.completed);

  const trace_analysis a = analyze_trace(tr);
  EXPECT_EQ(a.nodes_informed, n);
  EXPECT_EQ(a.tree_depth, n - 1);
  EXPECT_EQ(a.tree_depth, r.informed_step);
  EXPECT_FALSE(a.missing_provenance);
  ASSERT_EQ(a.parent.size(), static_cast<std::size_t>(n));
  for (node_id v = 1; v < n; ++v) {
    EXPECT_EQ(a.parent[static_cast<std::size_t>(v)], v - 1);
    EXPECT_EQ(a.depth[static_cast<std::size_t>(v)], v);
  }
  // Unit-width layers: one node each, woken in step order.
  ASSERT_EQ(a.layers.size(), static_cast<std::size_t>(n));
  for (std::size_t d = 0; d < a.layers.size(); ++d) {
    EXPECT_EQ(a.layers[d].nodes, 1);
    EXPECT_EQ(a.layers[d].first_step, a.layers[d].last_step);
  }
  EXPECT_EQ(a.transmissions, r.transmissions);
  EXPECT_EQ(a.deliveries, r.deliveries);
}

TEST(TraceAnalysisTest, NdjsonExportAnalyzesIdentically) {
  graph g = make_complete_layered_uniform(96, 6);
  const auto proto = make_protocol("decay", 95);
  trace tr;
  run_options opts;
  opts.seed = 5;
  opts.sink = &tr;
  const run_result r = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(r.completed);

  const trace_analysis direct = analyze_trace(tr);
  std::ostringstream ndjson;
  tr.to_ndjson(ndjson);
  std::istringstream in(ndjson.str());
  std::string err;
  const auto parsed = analyze_ndjson(in, &err);
  ASSERT_TRUE(parsed.has_value()) << err;

  EXPECT_EQ(parsed->nodes_informed, direct.nodes_informed);
  EXPECT_EQ(parsed->tree_depth, direct.tree_depth);
  // run_result::informed_step is "first step after which all informed" —
  // one past the step of the last informed trace event.
  EXPECT_EQ(parsed->last_informed_step, r.informed_step - 1);
  EXPECT_EQ(parsed->parent, direct.parent);
  EXPECT_EQ(parsed->depth, direct.depth);
  EXPECT_EQ(parsed->transmissions, direct.transmissions);
  EXPECT_EQ(parsed->collisions, direct.collisions);
  // Every node's parent lives one layer down: depth == its layer.
  EXPECT_EQ(parsed->tree_depth, 6);
}

TEST(TraceAnalysisTest, ProfilesRankByCountThenNode) {
  std::vector<trace_event> events;
  auto tx = [&](node_id v, std::int64_t step) {
    trace_event e;
    e.step = step;
    e.what = trace_event::type::transmit;
    e.node = v;
    events.push_back(e);
  };
  tx(4, 0);
  tx(2, 0);
  tx(2, 1);
  tx(7, 1);
  tx(7, 2);
  const trace_analysis a = analyze_events(events);
  ASSERT_EQ(a.transmitters.size(), 3u);
  EXPECT_EQ(a.transmitters[0].node, 2);  // count 2, lowest node first
  EXPECT_EQ(a.transmitters[1].node, 7);
  EXPECT_EQ(a.transmitters[2].node, 4);
  EXPECT_EQ(a.transmitters[0].count, 2);
  EXPECT_EQ(a.transmitters[2].count, 1);

  const obs::json_value doc = analysis_to_json(a, 2);
  EXPECT_EQ(doc.find("top_transmitters")->items().size(), 2u);
  EXPECT_EQ(doc.find("ranked_nodes_transmitters")->as_int(), 3);
}

// ---------------------------------------------------------------------------
// Simulator instrumentation contract
// ---------------------------------------------------------------------------

TEST(SimObservabilityTest, MetricsRegistryFillsSeriesAndPhaseCounters) {
  graph g = make_complete_layered_uniform(128, 8);
  const auto proto = make_protocol("decay", 127);
  obs::metrics_registry metrics;
  run_options opts;
  opts.seed = 3;
  opts.metrics = &metrics;
  const run_result r = run_broadcast(g, *proto, opts);
  ASSERT_TRUE(r.completed);

  // Per-step series must be exactly as long as the run.
  const obs::series* frontier = metrics.find_series("sim.informed_frontier");
  ASSERT_NE(frontier, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(frontier->values().size()), r.steps);
  EXPECT_EQ(frontier->values().back(), 128);
  const obs::series* tx = metrics.find_series("sim.transmissions");
  ASSERT_NE(tx, nullptr);
  std::int64_t total_tx = 0;
  for (std::int64_t v : tx->values()) total_tx += v;
  EXPECT_EQ(total_tx, r.transmissions);
  ASSERT_NE(metrics.find_series("sim.collisions"), nullptr);
  ASSERT_NE(metrics.find_series("sim.deliveries"), nullptr);
  ASSERT_NE(metrics.find_series("sim.idle_listeners"), nullptr);

  // Protocol phase markers: decay exposes its stage structure.
  EXPECT_NE(metrics.find_gauge("decay.phase"), nullptr);
  EXPECT_NE(metrics.find_histogram("decay.cutoff"), nullptr);
}

TEST(SimObservabilityTest, KpAndSelectAndSendExposePhaseMarkers) {
  graph g = make_complete_layered_uniform(64, 4);
  {
    obs::metrics_registry metrics;
    run_options opts;
    opts.metrics = &metrics;
    const auto kp = make_protocol("kp", 63, 4);
    ASSERT_TRUE(run_broadcast(g, *kp, opts).completed);
    ASSERT_NE(metrics.find_counter("kp.tx{universal}"), nullptr);
    EXPECT_GT(metrics.find_counter("kp.tx{universal}")->value(), 0);
    EXPECT_NE(metrics.find_gauge("kp.stage"), nullptr);
  }
  {
    obs::metrics_registry metrics;
    run_options opts;
    opts.metrics = &metrics;
    opts.stop = stop_condition::all_halted;
    opts.max_steps = 10'000'000;
    const auto sas = make_protocol("select-and-send", 63);
    ASSERT_TRUE(run_broadcast(g, *sas, opts).completed);
    ASSERT_NE(metrics.find_counter("sas.token_hops"), nullptr);
    EXPECT_GT(metrics.find_counter("sas.token_hops")->value(), 0);
    // Every non-source node is first-visited exactly once by the DFS token.
    ASSERT_NE(metrics.find_counter("sas.first_visits"), nullptr);
    EXPECT_EQ(metrics.find_counter("sas.first_visits")->value(), 63);
    EXPECT_NE(metrics.find_counter("echo.segments{binary}"), nullptr);
  }
}

TEST(SimObservabilityTest, ProfilerRecordsRunSpans) {
  graph g = make_path(16);
  const auto proto = make_protocol("round-robin", 15);
  obs::span_profiler prof;
  run_options opts;
  opts.profiler = &prof;
  ASSERT_TRUE(run_broadcast(g, *proto, opts).completed);
  const obs::span_stats* run = prof.find("run_broadcast");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->count, 1);
  ASSERT_NE(prof.find("step_loop"), nullptr);
}

TEST(SimObservabilityTest, RunTrialsReportsTimeoutsAsData) {
  graph g = make_path(64);
  const auto proto = make_protocol("round-robin", 63);
  trial_options opts;
  opts.trials = 3;
  opts.max_steps = 10;  // far too few steps for a 64-node path
  const trial_set batch = run_trials(g, *proto, opts);
  EXPECT_EQ(batch.completed_count(), 0);
  EXPECT_DOUBLE_EQ(batch.timeout_rate(), 1.0);
  EXPECT_TRUE(batch.completion_steps().empty());
  for (const trial_record& t : batch.trials) {
    EXPECT_FALSE(t.completed);
    EXPECT_EQ(t.informed_step, -1);
    EXPECT_EQ(t.steps, 10);
  }
  // The throwing wrapper still aborts, for call sites that require
  // completion.
  EXPECT_THROW(completion_times(g, *proto, 1, 1, 10), invariant_error);
}

TEST(StatsTest, PercentilesBatchMatchesSingleCalls) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(i);
  const auto ps = percentiles(samples, {50.0, 90.0, 99.0});
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_NEAR(ps[0], 50.5, 1e-9);
  EXPECT_NEAR(ps[1], 90.1, 1e-9);
  EXPECT_NEAR(ps[2], 99.01, 1e-9);
  const summary s = summarize(samples);
  EXPECT_NEAR(s.p90, ps[1], 1e-9);
  EXPECT_NEAR(s.p99, ps[2], 1e-9);
}

}  // namespace
}  // namespace radiocast
