// Tests for the deterministic broadcasting algorithms: Round-Robin,
// Select-and-Send (Theorem 3), Complete-Layered (Theorem 4), and the
// interleaved combination — correctness across topology families plus
// time-bound sanity checks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/complete_layered.h"
#include "core/interleaved.h"
#include "core/round_robin.h"
#include "core/select_and_send.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"

namespace radiocast {
namespace {

run_options capped(std::int64_t cap, stop_condition stop =
                                         stop_condition::all_informed) {
  run_options o;
  o.max_steps = cap;
  o.stop = stop;
  return o;
}

std::vector<graph> test_family() {
  rng gen(1234);
  std::vector<graph> graphs;
  graphs.push_back(make_path(2));
  graphs.push_back(make_path(17));
  graphs.push_back(make_star(20));
  graphs.push_back(make_complete(12));
  graphs.push_back(make_cycle(15));
  graphs.push_back(make_grid(5, 6));
  graphs.push_back(make_caterpillar(8, 2));
  graphs.push_back(make_random_tree(40, gen));
  graphs.push_back(make_bounded_degree_tree(40, 3, gen));
  graphs.push_back(make_gnp_connected(40, 0.1, gen));
  graphs.push_back(make_complete_layered_uniform(60, 6));
  graphs.push_back(permute_labels(make_grid(4, 8), gen));
  return graphs;
}

// ---------- round robin ----------

TEST(RoundRobinTest, CompletesEverywhereWithinRTimesDPlusOne) {
  const round_robin_protocol proto;
  const auto graphs = test_family();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const graph& g = graphs[i];
    const std::int64_t r = g.node_count();  // modulus r+1 with r = n−1
    const int d = radius_from(g);
    const run_result res = run_broadcast(g, proto, capped(r * (d + 2) + 1));
    EXPECT_TRUE(res.completed) << "graph " << i;
    EXPECT_LE(res.informed_step, r * (d + 1)) << "graph " << i;
  }
}

TEST(RoundRobinTest, NeverCollides) {
  const round_robin_protocol proto;
  graph g = make_complete_layered_uniform(64, 4);
  const run_result res = run_broadcast(g, proto, capped(100000));
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.collisions, 0);  // distinct labels ⇒ distinct slots
}

TEST(RoundRobinTest, PathTimeIsExactlyPredictable) {
  // On a path with identity labels, node v is informed the first time node
  // v−1 transmits after being informed: label v−1 transmits at steps
  // ≡ v−1 (mod n), so information advances one hop per round.
  const node_id n = 9;
  graph g = make_path(n);
  const round_robin_protocol proto;
  const run_result res = run_broadcast(g, proto, capped(10000));
  ASSERT_TRUE(res.completed);
  for (node_id v = 1; v < n; ++v) {
    EXPECT_EQ(res.informed_at[static_cast<std::size_t>(v)], v - 1)
        << "identity labels make the frontier advance every step";
  }
}

// ---------- select and send ----------

TEST(SelectAndSendTest, InformsEveryTopology) {
  const select_and_send_protocol proto;
  const auto graphs = test_family();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const run_result res = run_broadcast(graphs[i], proto, capped(2'000'000));
    EXPECT_TRUE(res.completed) << "graph " << i;
  }
}

TEST(SelectAndSendTest, FullTraversalTerminatesEverywhere) {
  const select_and_send_protocol proto;
  const auto graphs = test_family();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const run_result res = run_broadcast(
        graphs[i], proto, capped(2'000'000, stop_condition::all_halted));
    EXPECT_TRUE(res.completed) << "graph " << i;
  }
}

TEST(SelectAndSendTest, TimeBoundCNLogN) {
  // Theorem 3: O(n log n). Verify with an explicit constant across sizes.
  const select_and_send_protocol proto;
  for (const node_id n : {16, 64, 256}) {
    rng gen(static_cast<std::uint64_t>(n));
    const std::vector<graph> graphs = {
        make_path(n), make_random_tree(n, gen),
        make_gnp_connected(n, 4.0 / n, gen),
        make_complete_layered_uniform(n, std::max(1, n / 8))};
    for (const graph& g : graphs) {
      const run_result res =
          run_broadcast(g, proto, capped(5'000'000,
                                         stop_condition::all_halted));
      ASSERT_TRUE(res.completed);
      const double bound = 40.0 * n * std::log2(static_cast<double>(n));
      EXPECT_LT(static_cast<double>(res.steps), bound) << "n=" << n;
    }
  }
}

TEST(SelectAndSendTest, RobustToLabelPermutation) {
  rng gen(5);
  graph base = make_grid(6, 6);
  const select_and_send_protocol proto;
  for (int trial = 0; trial < 5; ++trial) {
    graph g = permute_labels(base, gen);
    const run_result res = run_broadcast(g, proto, capped(2'000'000));
    EXPECT_TRUE(res.completed) << "trial " << trial;
  }
}

TEST(SelectAndSendTest, TwoNodeNetwork) {
  graph g = make_path(2);
  const select_and_send_protocol proto;
  const run_result res =
      run_broadcast(g, proto, capped(1000, stop_condition::all_halted));
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.informed_at[1], 0);  // woken by the announcement itself
}

TEST(SelectAndSendTest, DeterministicTrace) {
  graph g = make_grid(4, 4);
  const select_and_send_protocol proto;
  const run_result a = run_broadcast(g, proto, capped(1'000'000));
  const run_result b = run_broadcast(g, proto, capped(1'000'000));
  EXPECT_EQ(a.informed_at, b.informed_at);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

TEST(SelectAndSendTest, EveryNodeEventuallyHalts) {
  rng gen(8);
  graph g = make_random_tree(30, gen);
  const select_and_send_protocol proto;
  const run_result res =
      run_broadcast(g, proto, capped(1'000'000, stop_condition::all_halted));
  EXPECT_TRUE(res.completed);  // all informed AND all halted
}

// ---------- complete layered ----------

class CompleteLayeredParam
    : public ::testing::TestWithParam<std::pair<node_id, int>> {};

TEST_P(CompleteLayeredParam, CompletesWithCorrectLayers) {
  const auto [n, d] = GetParam();
  graph g = make_complete_layered_uniform(n, d);
  const complete_layered_protocol proto;
  const run_result res = run_broadcast(g, proto, capped(1'000'000));
  ASSERT_TRUE(res.completed) << "n=" << n << " d=" << d;
  // Every node of layer j must be informed no earlier than one of layer
  // j−1 first was (information flows layer by layer).
  const auto layers = bfs_layers(g);
  std::int64_t prev_first = -1;
  for (const auto& layer : layers) {
    std::int64_t first = res.informed_at[static_cast<std::size_t>(layer[0])];
    for (node_id v : layer) {
      first = std::min(first, res.informed_at[static_cast<std::size_t>(v)]);
    }
    EXPECT_GE(first, prev_first);
    prev_first = first;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompleteLayeredParam,
    ::testing::Values(std::pair<node_id, int>{8, 1},
                      std::pair<node_id, int>{12, 2},
                      std::pair<node_id, int>{60, 6},
                      std::pair<node_id, int>{100, 4},
                      std::pair<node_id, int>{100, 25},
                      std::pair<node_id, int>{129, 64},
                      std::pair<node_id, int>{256, 16}));

TEST(CompleteLayeredTest, HandlesFatLayers) {
  for (int fat : {1, 3, 5}) {
    graph g = make_complete_layered_fat(120, 5, fat);
    const complete_layered_protocol proto;
    const run_result res = run_broadcast(g, proto, capped(1'000'000));
    EXPECT_TRUE(res.completed) << "fat layer " << fat;
  }
}

TEST(CompleteLayeredTest, RobustToLabelPermutation) {
  rng gen(6);
  graph base = make_complete_layered_uniform(80, 8);
  const complete_layered_protocol proto;
  for (int trial = 0; trial < 5; ++trial) {
    graph g = permute_labels(base, gen);
    const run_result res = run_broadcast(g, proto, capped(1'000'000));
    EXPECT_TRUE(res.completed) << "trial " << trial;
  }
}

TEST(CompleteLayeredTest, TimeBoundCNPlusDLogN) {
  // Theorem 4: O(n + D log n). The n term is the phase-1 announcement
  // (≈ 2·min label of L₁ ≤ 2n); each later phase is O(log n).
  for (const auto& [n, d] : std::vector<std::pair<node_id, int>>{
           {128, 4}, {128, 16}, {256, 32}, {512, 64}}) {
    graph g = make_complete_layered_uniform(n, d);
    const complete_layered_protocol proto;
    const run_result res = run_broadcast(g, proto, capped(2'000'000));
    ASSERT_TRUE(res.completed);
    const double bound =
        2.0 * n + 30.0 * d * std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(res.informed_step), bound)
        << "n=" << n << " d=" << d;
  }
}

TEST(CompleteLayeredTest, BeatsTheRefutedBoundShape) {
  // The paper refutes the claimed Ω(n log D) undirected lower bound with
  // this very algorithm: for unbounded D ∈ o(n), measured time must drop
  // clearly below c·n·log D for the c matching Select-and-Send-like costs.
  const node_id n = 1024;
  const int d = 64;
  graph g = make_complete_layered_uniform(n, d);
  const complete_layered_protocol proto;
  const run_result res = run_broadcast(g, proto, capped(2'000'000));
  ASSERT_TRUE(res.completed);
  // Time ≈ 2·(min L₁ label) + O(D log n) ≪ n·log₂ D here.
  EXPECT_LT(static_cast<double>(res.informed_step),
            static_cast<double>(n) * std::log2(static_cast<double>(d)));
}

// ---------- interleaved ----------

TEST(InterleavedTest, CompletesEverywhere) {
  const interleaved_protocol proto;
  const auto graphs = test_family();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const run_result res = run_broadcast(graphs[i], proto, capped(4'000'000));
    EXPECT_TRUE(res.completed) << "graph " << i;
  }
}

TEST(InterleavedTest, NoSlowerThanTwiceTheBetterComponent) {
  const interleaved_protocol inter;
  const round_robin_protocol rr;
  const select_and_send_protocol sas;
  rng gen(3);
  const std::vector<graph> graphs = {
      make_path(64),                       // small D? no: D = 63, rr slow
      make_star(64),                       // D = 1: rr wins
      make_complete_layered_uniform(96, 2),
      make_random_tree(64, gen)};
  for (const graph& g : graphs) {
    const auto t_inter =
        run_broadcast(g, inter, capped(8'000'000)).informed_step;
    const auto t_rr = run_broadcast(g, rr, capped(8'000'000)).informed_step;
    const auto t_sas = run_broadcast(g, sas, capped(8'000'000)).informed_step;
    ASSERT_GT(t_inter, 0);
    ASSERT_GT(t_rr, 0);
    ASSERT_GT(t_sas, 0);
    EXPECT_LE(t_inter, 2 * std::min(t_rr, t_sas) + 3);
  }
}

TEST(InterleavedTest, BeatsRoundRobinOnDeepGraphs) {
  // D large with adversarial labels: round-robin waits ~n/2 steps per hop
  // on average, while the token stream advances every few steps.
  rng gen(44);
  graph g = permute_labels(make_path(100), gen);
  const interleaved_protocol inter;
  const round_robin_protocol rr;
  const auto t_inter = run_broadcast(g, inter, capped(8'000'000)).informed_step;
  const auto t_rr = run_broadcast(g, rr, capped(8'000'000)).informed_step;
  EXPECT_LT(t_inter, t_rr);
}

TEST(InterleavedTest, BeatsSelectAndSendOnShallowGraphs) {
  // A "broom": the source holds m leaves, and a 2-hop tail hangs behind
  // the highest-labeled leaf. Echo replies leak one hop, but the tail end
  // is two hops from any early transmitter, so Select-and-Send informs it
  // only after the DFS token has visited all lower-labeled leaves
  // (Θ(log n) steps each); round-robin reaches it in ~m steps.
  const node_id m = 100;
  graph g = graph::undirected(m + 3);
  for (node_id v = 1; v <= m; ++v) g.add_edge(0, v);  // leaves 1..m
  g.add_edge(m, m + 1);                               // tail entrance
  g.add_edge(m + 1, m + 2);                           // tail end
  g.finalize();
  const interleaved_protocol inter;
  const select_and_send_protocol sas;
  const auto t_inter = run_broadcast(g, inter, capped(8'000'000)).informed_step;
  const auto t_sas = run_broadcast(g, sas, capped(8'000'000)).informed_step;
  EXPECT_LT(t_inter, t_sas);
}

}  // namespace
}  // namespace radiocast
