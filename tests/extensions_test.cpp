// Tests for the extension modules: selective-family broadcasting, the
// known-neighborhood DFS baseline, and the random geometric generator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dfs_known.h"
#include "core/runner.h"
#include "core/select_and_send.h"
#include "core/selective_broadcast.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"

namespace radiocast {
namespace {

run_options capped(std::int64_t cap, stop_condition stop =
                                         stop_condition::all_informed) {
  run_options o;
  o.max_steps = cap;
  o.stop = stop;
  return o;
}

// ---------- selective-family broadcast ----------

TEST(SelectiveBroadcastTest, FamilyIsActuallySelective) {
  // For label spaces small enough, verify the constructed family
  // exhaustively at the k the protocol promises.
  for (const auto& [r, k] : std::vector<std::pair<node_id, int>>{
           {15, 2}, {15, 3}, {23, 3}, {31, 4}}) {
    const selective_broadcast_protocol proto(r, k);
    EXPECT_TRUE(is_selective(proto.family(), r + 1, k))
        << "r=" << r << " k=" << k;
  }
}

TEST(SelectiveBroadcastTest, CompletesOnBoundedDegreeGraphs) {
  rng gen(4);
  for (const node_id cap_deg : {3, 5}) {
    graph g = make_bounded_degree_tree(120, cap_deg, gen);
    const selective_broadcast_protocol proto(g.node_count() - 1,
                                             cap_deg + 1);
    const run_result res = run_broadcast(g, proto, capped(10'000'000));
    EXPECT_TRUE(res.completed) << "degree cap " << cap_deg;
  }
}

TEST(SelectiveBroadcastTest, CompletesOnPathsAndCycles) {
  const selective_broadcast_protocol proto(99, 3);  // max degree 2
  for (graph g : {make_path(100), make_cycle(100)}) {
    const run_result res = run_broadcast(g, proto, capped(10'000'000));
    EXPECT_TRUE(res.completed);
  }
}

TEST(SelectiveBroadcastTest, TimeBoundedByDTimesFamilyPasses) {
  rng gen(6);
  graph g = make_bounded_degree_tree(100, 3, gen);
  const selective_broadcast_protocol proto(99, 4);
  const int d = radius_from(g);
  const run_result res = run_broadcast(g, proto, capped(10'000'000));
  ASSERT_TRUE(res.completed);
  // One pass per layer suffices once the frontier stabilizes; allow the
  // +1 pass slack for mid-pass changes.
  EXPECT_LE(res.informed_step, (d + 1) * 2 * proto.family_size());
}

TEST(SelectiveBroadcastTest, ViaRunnerRegistry) {
  graph g = make_path(40);
  const auto proto = make_protocol("selective", 39, 3);
  const run_result res = run_broadcast(g, *proto, capped(1'000'000));
  EXPECT_TRUE(res.completed);
  EXPECT_NE(proto->name().find("selective-family"), std::string::npos);
}

TEST(SelectiveBroadcastTest, RejectsBadParameters) {
  EXPECT_THROW(selective_broadcast_protocol(0, 2), precondition_error);
  EXPECT_THROW(selective_broadcast_protocol(15, 0), precondition_error);
  EXPECT_THROW(make_protocol("selective", 15), precondition_error);
}

// ---------- known-neighborhood DFS ----------

TEST(DfsKnownTest, CompletesOnVariedTopologies) {
  rng gen(12);
  const std::vector<graph> graphs = {
      make_path(30),  make_star(30),          make_complete(16),
      make_grid(5, 6), make_random_tree(50, gen),
      make_gnp_connected(50, 0.1, gen),
      make_complete_layered_uniform(60, 6)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const dfs_known_protocol proto(graphs[i]);
    const run_result res = run_broadcast(
        graphs[i], proto, capped(1'000'000, stop_condition::all_halted));
    EXPECT_TRUE(res.completed) << "graph " << i;
  }
}

TEST(DfsKnownTest, LinearTimeWithSmallConstant) {
  // Two steps per first visit + one per backtrack ⇒ ≤ 3n + O(1).
  for (const node_id n : {32, 128, 512}) {
    rng gen(static_cast<std::uint64_t>(n));
    graph g = make_random_tree(n, gen);
    const dfs_known_protocol proto(g);
    const run_result res =
        run_broadcast(g, proto, capped(1'000'000, stop_condition::all_halted));
    ASSERT_TRUE(res.completed);
    EXPECT_LE(res.steps, 4 * static_cast<std::int64_t>(n)) << "n=" << n;
  }
}

TEST(DfsKnownTest, CollisionFree) {
  rng gen(3);
  graph g = make_gnp_connected(64, 0.1, gen);
  const dfs_known_protocol proto(g);
  const run_result res =
      run_broadcast(g, proto, capped(1'000'000, stop_condition::all_halted));
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.collisions, 0);  // one transmitter per step, always
}

TEST(DfsKnownTest, BeatsSelectAndSendEverywhere) {
  // The whole point of the baseline: neighborhood knowledge removes the
  // Θ(log n) selection cost per visit.
  rng gen(9);
  for (const node_id n : {64, 256}) {
    graph g = make_random_tree(n, gen);
    const dfs_known_protocol dfs(g);
    const select_and_send_protocol sas;
    const auto t_dfs = run_broadcast(
        g, dfs, capped(10'000'000, stop_condition::all_halted)).steps;
    const auto t_sas = run_broadcast(
        g, sas, capped(10'000'000, stop_condition::all_halted)).steps;
    EXPECT_LT(t_dfs, t_sas) << "n=" << n;
  }
}

TEST(DfsKnownTest, RejectsDirectedGraphs) {
  graph d = make_path(4).as_directed();
  EXPECT_THROW(dfs_known_protocol{d}, precondition_error);
}

// ---------- random geometric graphs ----------

class GeometricParam
    : public ::testing::TestWithParam<std::pair<node_id, double>> {};

TEST_P(GeometricParam, ConnectedWithAllNodes) {
  const auto [n, range] = GetParam();
  rng gen(static_cast<std::uint64_t>(n * 1000));
  graph g = make_random_geometric(n, range, gen);
  EXPECT_EQ(g.node_count(), n);
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeometricParam,
    ::testing::Values(std::pair<node_id, double>{20, 0.4},
                      std::pair<node_id, double>{100, 0.15},
                      std::pair<node_id, double>{100, 0.02},  // sparse: bridged
                      std::pair<node_id, double>{300, 0.1}));

TEST(GeometricTest, DenserRangeGivesMoreEdges) {
  rng gen1(5);
  rng gen2(5);
  graph sparse = make_random_geometric(150, 0.08, gen1);
  graph dense = make_random_geometric(150, 0.25, gen2);
  EXPECT_GT(dense.edge_count(), sparse.edge_count());
}

TEST(GeometricTest, RadiusShrinksWithRange) {
  rng gen1(8);
  rng gen2(8);
  graph wide = make_random_geometric(200, 0.5, gen1);
  graph narrow = make_random_geometric(200, 0.12, gen2);
  EXPECT_LE(radius_from(wide), radius_from(narrow));
}

TEST(GeometricTest, AllProtocolsBroadcastOnGeometricNetworks) {
  rng gen(21);
  graph g = make_random_geometric(120, 0.15, gen);
  const int d = radius_from(g);
  for (const std::string name :
       {"kp", "decay", "round-robin", "select-and-send", "interleaved"}) {
    const auto proto = make_protocol(name, g.node_count() - 1,
                                     std::max(1, d));
    run_options opts;
    opts.max_steps = 10'000'000;
    opts.seed = 2;
    const run_result res = run_broadcast(g, *proto, opts);
    EXPECT_TRUE(res.completed) << name;
  }
  const dfs_known_protocol dfs(g);
  run_options opts;
  opts.max_steps = 10'000'000;
  EXPECT_TRUE(run_broadcast(g, dfs, opts).completed);
}

TEST(GeometricTest, RejectsBadParameters) {
  rng gen(1);
  EXPECT_THROW(make_random_geometric(1, 0.5, gen), precondition_error);
  EXPECT_THROW(make_random_geometric(10, 0.0, gen), precondition_error);
}

}  // namespace
}  // namespace radiocast
