// Experiment E5 (Theorem 4): Complete-Layered broadcasts in O(n + D log n)
// on undirected complete layered networks, refuting the claimed Ω(n log D)
// lower bound of [10] for the undirected case.
//
// Sweep D at several n and compare measured time against the refuted bound
// n·log D: at fixed D the ratio must vanish as n grows — for any
// unbounded D ∈ o(n) the claimed bound fails. Runs with identity labels
// (where phase 1 is nearly free) and with adversarially permuted labels
// (which exercise the O(n) phase-1 announcement in full), plus the
// Select-and-Send time on the same networks for scale.
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("complete_layered");
  rep.config("experiment", "E5");
  text_table table("E5: Complete-Layered vs the refuted Ω(n log D) claim");
  table.set_header({"n", "D", "cl", "cl-advlabels", "n+D·logn", "refuted "
                    "n·logD", "cl/refuted", "select-and-send"});
  std::vector<std::vector<double>> features;
  std::vector<double> ys;
  for (const node_id n : bench::sweep({1024, 2048, 4096})) {
    for (int d = 4; d <= n / 4; d *= 4) {
      graph g = make_complete_layered_uniform(n, d);
      // Adversarial labeling: give layer 1 the highest labels so phase 1's
      // announcement pays its full Θ(n) cost (slot 2·minlabel).
      const node_id l1_size = (n - 1 + d - 1) / d;  // first (largest) layer
      std::vector<node_id> perm(static_cast<std::size_t>(n));
      perm[0] = 0;
      for (node_id v = 1; v <= l1_size; ++v) {
        perm[static_cast<std::size_t>(v)] = n - l1_size + (v - 1);
      }
      for (node_id v = l1_size + 1; v < n; ++v) {
        perm[static_cast<std::size_t>(v)] = v - l1_size;
      }
      graph gp = permute_labels(g, perm);
      const auto cl = make_protocol("complete-layered", n - 1);
      constexpr std::int64_t kCap = 100'000'000;
      const std::string cell =
          "n=" + std::to_string(n) + "/D=" + std::to_string(d);
      const auto base = [&](const char* labels, const char* proto) {
        return bench::params("n", n, "D", d, "labels", labels, "protocol",
                             proto);
      };
      const double t_cl = bench::mean_steps(bench::run_case(
          rep, cell + "/cl", base("identity", "complete-layered"), g, *cl, 1,
          1, kCap));
      RC_CHECK(!std::isnan(t_cl));
      const double t_clp = bench::mean_steps(bench::run_case(
          rep, cell + "/cl-advlabels", base("adversarial", "complete-layered"),
          gp, *cl, 1, 1, kCap));
      RC_CHECK(!std::isnan(t_clp));
      // The Select-and-Send comparison column gets expensive on the
      // largest instances; sample it where it is cheap enough.
      std::string sas_cell = "-";
      if (n <= 2048) {
        const auto sas = make_protocol("select-and-send", n - 1);
        const double t_sas = bench::mean_steps(bench::run_case(
            rep, cell + "/select-and-send",
            base("identity", "select-and-send"), g, *sas, 1, 1, kCap));
        sas_cell = text_table::format_double(t_sas);
      }
      const double our_bound = n + d * bench::lg(n);
      const double refuted = n * bench::lg(d);
      table.add_row({std::to_string(n), std::to_string(d),
                     text_table::format_double(t_cl),
                     text_table::format_double(t_clp),
                     text_table::format_double(our_bound),
                     text_table::format_double(refuted),
                     text_table::format_double(t_clp / refuted),
                     sas_cell});
      features.push_back({static_cast<double>(n), d * bench::lg(n)});
      ys.push_back(t_clp);
    }
  }
  table.print(std::cout);
  const fit_result f = fit_features(features, ys);
  obs::json_value fit = obs::json_value::object();
  fit.set("a_n", f.coefficients[0]);
  fit.set("b_dlogn", f.coefficients[1]);
  fit.set("r_squared", f.r_squared);
  rep.annotate("fit", std::move(fit));
  std::cout << "  fit cl-advlabels ≈ a·n + b·D·log n: a="
            << text_table::format_double(f.coefficients[0], 3)
            << " b=" << text_table::format_double(f.coefficients[1], 3)
            << " R²=" << text_table::format_double(f.r_squared, 4) << "\n"
            << "\nExpected shape: read 'cl/refuted' down a fixed-D column —\n"
               "it shrinks as n grows, so time = o(n·log D): the claimed\n"
               "undirected Ω(n log D) bound is refuted. The adversarial\n"
               "labeling exposes the O(n) phase-1 term (a ≈ 2); identity\n"
               "labels make it nearly free.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
