// Experiment E12 (the log²n term of Theorem 1; Alon–Bar-Noy–Linial–Peleg):
// at small constant radius, randomized broadcasting time is governed by the
// additive log²n term — the Ω(log²n) lower bound of [1] holds for some
// radius-2 networks even for randomized algorithms, which is half of what
// makes O(D log(n/D) + log²n) optimal.
//
// Sweep n at D ∈ {2, 4} on complete layered networks and fit time against
// log²n: growth must be superlogarithmic but polylogarithmic — and the
// single-term log²n fit should explain it.
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("small_radius");
  rep.config("experiment", "E12");
  rep.config("trials", bench::trial_count(25));
  text_table table("E12: small-radius scaling of randomized broadcast "
                   "(complete layered, 25 trials)");
  table.set_header({"D", "n", "kp", "decay", "kp/log2n", "kp/logn"});
  const int trials = bench::trial_count(25);
  const node_id n_max = bench::smoke() ? 256 : 4096;
  for (const int d : {2, 4}) {
    std::vector<double> xs, ys;
    for (node_id n = 256; n <= n_max; n *= 2) {
      graph g = make_complete_layered_uniform(n, d);
      const auto kp = make_protocol("kp", n - 1, d);
      const auto decay = make_protocol("decay", n - 1);
      const std::string cell =
          "D=" + std::to_string(d) + "/n=" + std::to_string(n);
      const auto base = [&](const char* proto) {
        return bench::params("n", n, "D", d, "protocol", proto);
      };
      const double t_kp = bench::mean_steps(bench::run_case(
          rep, cell + "/kp", base("kp"), g, *kp, trials, 11));
      const double t_decay = bench::mean_steps(bench::run_case(
          rep, cell + "/decay", base("decay"), g, *decay, trials, 11));
      table.add(d, n, t_kp, t_decay, t_kp / (bench::lg(n) * bench::lg(n)),
                t_kp / bench::lg(n));
      xs.push_back(static_cast<double>(n));
      ys.push_back(t_kp);
    }
    if (xs.size() >= 2) {
      const fit_result f = fit_scaled(
          xs, ys, [](double x) { return bench::lg(x) * bench::lg(x); });
      rep.annotate("fit_log2n", bench::fit_json(f));
      std::cout << "  D=" << d << " single-term fit kp ≈ c·log²n: ";
      bench::print_fit("log²n", f);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 'kp/log2n' roughly flat while 'kp/logn'\n"
               "grows — the additive log²n term (the [1] lower-bound regime)\n"
               "dominates at constant radius, as Theorem 1 predicts.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
