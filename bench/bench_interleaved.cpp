// Experiment E9 (Section 4.2 remark): interleaving round-robin with
// Select-and-Send yields O(n·min(D, log n)) — round-robin wins on shallow
// networks, the DFS token on deep ones, and the interleaved algorithm
// tracks twice the better of the two with the crossover near D ≈ log n.
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  const node_id n = 1024;
  bench::reporter rep("interleaved");
  rep.config("experiment", "E9");
  rep.config("n", n);
  text_table table("E9: interleaved O(n·min(D, log n)) sweep (n = 1024, "
                   "adversarially permuted layered networks)");
  table.set_header({"D", "round-robin", "select-and-send", "interleaved",
                    "2*min+3", "interleaved<=2min+3"});
  rng gen(13);
  const int d_max = bench::smoke() ? 2 : 256;
  for (int d = 2; d <= d_max; d *= 2) {
    graph g = permute_labels(make_complete_layered_uniform(n, d), gen);
    const std::string cell = "D=" + std::to_string(d);
    const auto one = [&](const char* proto) {
      const trial_set batch = bench::run_case(
          rep, cell + "/" + proto,
          bench::params("n", n, "D", d, "protocol", proto), g,
          *make_protocol(proto, n - 1), 1, 1, 100'000'000);
      RC_CHECK(batch.all_completed());
      return batch.trials.front().informed_step;
    };
    const std::int64_t t_rr = one("round-robin");
    const std::int64_t t_sas = one("select-and-send");
    const std::int64_t t_inter = one("interleaved");
    const std::int64_t budget = 2 * std::min(t_rr, t_sas) + 3;
    rep.annotate("within_budget", t_inter <= budget);
    table.add(d, t_rr, t_sas, t_inter, budget,
              std::string(t_inter <= budget ? "yes" : "NO"));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: round-robin degrades with D, the token\n"
               "stream is roughly flat, and the interleaved column follows\n"
               "2·min of the two — i.e. O(n·min(D, log n)).\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
