// Experiment E9 (Section 4.2 remark): interleaving round-robin with
// Select-and-Send yields O(n·min(D, log n)) — round-robin wins on shallow
// networks, the DFS token on deep ones, and the interleaved algorithm
// tracks twice the better of the two with the crossover near D ≈ log n.
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  const node_id n = 1024;
  text_table table("E9: interleaved O(n·min(D, log n)) sweep (n = 1024, "
                   "adversarially permuted layered networks)");
  table.set_header({"D", "round-robin", "select-and-send", "interleaved",
                    "2*min+3", "interleaved<=2min+3"});
  rng gen(13);
  for (int d = 2; d <= 256; d *= 2) {
    graph g = permute_labels(make_complete_layered_uniform(n, d), gen);
    run_options opts;
    opts.max_steps = 100'000'000;
    const auto t_rr = run_broadcast(g, *make_protocol("round-robin", n - 1),
                                    opts).informed_step;
    const auto t_sas = run_broadcast(
        g, *make_protocol("select-and-send", n - 1), opts).informed_step;
    const auto t_inter = run_broadcast(
        g, *make_protocol("interleaved", n - 1), opts).informed_step;
    const std::int64_t budget = 2 * std::min(t_rr, t_sas) + 3;
    table.add(d, t_rr, t_sas, t_inter, budget,
              std::string(t_inter <= budget ? "yes" : "NO"));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: round-robin degrades with D, the token\n"
               "stream is roughly flat, and the interleaved column follows\n"
               "2·min of the two — i.e. O(n·min(D, log n)).\n";
}

}  // namespace
}  // namespace radiocast

int main() {
  radiocast::run();
  return 0;
}
