// Experiment E1 (Theorem 1 vs BGI): the optimal randomized algorithm
// against the Decay baseline on the worst-case family (complete layered
// networks) and on random layered networks.
//
// Paper claim: expected time O(D log(n/D) + log² n) vs O(D log n + log² n);
// the gap opens for large D (e.g. D ∈ Θ(n / polylog n)) and closes for
// small D. The table reports mean completion steps and the speedup, per
// (n, D) cell; the speedup should grow with D at fixed n.
#include <set>

#include "bench_common.h"

namespace radiocast {
namespace {

void run_family(bench::reporter& rep, const std::string& family) {
  text_table table("E1 [" + family + "]: KP optimal vs BGI Decay, mean steps "
                   "(20 trials)");
  table.set_header({"n", "D", "kp", "decay", "speedup", "kp/bound",
                    "decay/bound"});
  rng gen(99);
  const int trials = bench::trial_count(20);
  for (const node_id n : bench::sweep({512, 1024, 2048, 4096})) {
    const std::set<int> ds{8, static_cast<int>(std::sqrt(n)), n / 32, n / 8};
    for (const int d : ds) {
      if (d < 2 || d > n / 2) continue;
      graph g = family == "complete-layered"
                    ? make_complete_layered_uniform(n, d)
                    : make_random_layered(
                          [&] {
                            std::vector<node_id> sizes{1};
                            const auto rest = even_split(n - 1, d);
                            sizes.insert(sizes.end(), rest.begin(),
                                         rest.end());
                            return sizes;
                          }(),
                          0.5, gen);
      const auto kp = make_protocol("kp", n - 1, d);
      const auto decay = make_protocol("decay", n - 1);
      const auto cell = [&](const char* proto) {
        return family + "/n=" + std::to_string(n) +
               "/D=" + std::to_string(d) + "/" + proto;
      };
      const auto base = [&](const char* proto) {
        return bench::params("family", family, "n", n, "D", d, "protocol",
                             proto);
      };
      const double t_kp = bench::mean_steps(bench::run_case(
          rep, cell("kp"), base("kp"), g, *kp, trials, 1));
      const double t_decay = bench::mean_steps(bench::run_case(
          rep, cell("decay"), base("decay"), g, *decay, trials, 1));
      table.add(n, d, t_kp, t_decay, t_decay / t_kp,
                t_kp / bench::kp_bound(n, d),
                t_decay / bench::bgi_bound(n, d));
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::bench::reporter rep("randomized_vs_decay");
  rep.config("experiment", "E1");
  rep.config("trials", radiocast::bench::trial_count(20));
  radiocast::run_family(rep, "complete-layered");
  radiocast::run_family(rep, "random-layered");
  std::cout << "\nExpected shape: speedup column grows with D at fixed n;\n"
               "both normalized columns stay O(1) across the sweep.\n";
  return 0;
}
