// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one experiment from DESIGN.md's index: it
// sweeps the workload, measures completion steps through the simulator,
// and prints a text table whose rows mirror the claim being reproduced.
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Telemetry: every bench also emits a machine-readable artifact,
// `BENCH_<name>.json`, through `bench::reporter` — run configuration,
// per-trial metrics (steps/transmissions/collisions/wall-clock), step
// percentiles, timeout rates, and the wall-clock span tree of the run.
// `tools/radiocast_inspect` pretty-prints, validates, and diffs these
// files; docs/OBSERVABILITY.md documents the schema
// ("radiocast.bench.v1").
//
// Smoke mode: with RADIOCAST_SMOKE=1 in the environment, `sweep()` and
// `trial_count()` shrink every sweep to its first point and ≤ 2 trials so
// CI can validate the telemetry pipeline in seconds (scripts/reproduce.sh
// smoke).
// Parallelism: trial batches go through parallel_run_trials, so every
// bench shards its seeded trials across workers when asked to — via the
// `--threads N` flag (see parse_threads_flag) or the RADIOCAST_THREADS
// environment default. The default is 1 (serial); results are
// bit-identical either way (docs/PARALLELISM.md). Each case's telemetry
// records `threads`, the batch wall-clock (`batch_wall_ms`), and the
// trial-throughput `speedup` (summed per-trial wall over batch wall).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "exec/parallel_trials.h"
#include "exec/thread_pool.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/simulator.h"
#include "util/fit.h"
#include "util/stats.h"
#include "util/table.h"

namespace radiocast::bench {

/// True when RADIOCAST_SMOKE is set (to anything but "0"): benches shrink
/// sweeps/trials to a telemetry-validating minimum.
inline bool smoke() {
  static const bool value = [] {
    const char* env = std::getenv("RADIOCAST_SMOKE");
    return env != nullptr && std::string(env) != "0";
  }();
  return value;
}

/// The sweep to run: the full list normally, only its first point under
/// smoke mode.
template <typename T>
std::vector<T> sweep(std::initializer_list<T> full) {
  std::vector<T> values(full);
  if (smoke() && values.size() > 1) {
    values.erase(values.begin() + 1, values.end());
  }
  return values;
}

/// Trial count: `full` normally, at most 2 under smoke mode.
inline int trial_count(int full) { return smoke() ? std::min(full, 2) : full; }

/// The process-wide requested thread count for trial batches: 0 (the
/// default) defers to the RADIOCAST_THREADS environment variable, anything
/// positive was set explicitly (the --threads flag).
inline int& requested_threads() {
  static int value = 0;
  return value;
}

/// Worker count every trial batch will actually use.
inline int threads() { return exec::resolve_threads(requested_threads()); }

/// Applies `--threads N` / `--threads=N` from a bench's command line (all
/// other arguments are ignored, so google-benchmark flags pass through
/// untouched). Call at the top of main, before constructing the reporter.
inline void parse_threads_flag(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--threads=", 0) == 0) {
      requested_threads() = std::max(1, std::atoi(arg.c_str() + 10));
    } else if (arg == "--threads" && i + 1 < argc) {
      requested_threads() = std::max(1, std::atoi(argv[i + 1]));
      ++i;
    }
  }
}

/// Collects every measured case of one bench run and writes
/// `BENCH_<name>.json` on destruction (schema "radiocast.bench.v1").
/// Also installs a span profiler as the process-wide default for its
/// lifetime, so `run_broadcast`/`run_trials` spans land in the artifact.
class reporter {
 public:
  explicit reporter(std::string name) : name_(std::move(name)) {
    previous_profiler_ = obs::global_profiler();
    obs::set_global_profiler(&profiler_);
    root_ = obs::json_value::object();
    root_.set("schema", "radiocast.bench.v1");
    root_.set("bench", name_);
    config_ = obs::json_value::object();
    config_.set("smoke", smoke());
    config_.set("threads", static_cast<std::int64_t>(threads()));
    cases_ = obs::json_value::array();
  }

  ~reporter() {
    obs::set_global_profiler(previous_profiler_);
    write();
  }

  reporter(const reporter&) = delete;
  reporter& operator=(const reporter&) = delete;

  /// Adds one run-configuration entry ("trials", "families", …).
  void config(const std::string& key, obs::json_value v) {
    config_.set(key, std::move(v));
  }

  /// Records one measured case: a (topology, protocol, parameters) cell of
  /// the sweep with its trial batch. Returns the mean completion steps
  /// over completed trials (NaN when every trial timed out) so call sites
  /// can keep building their text tables from the same measurement.
  double add_case(const std::string& case_name, obs::json_value params,
                  const trial_set& batch) {
    obs::json_value c = obs::json_value::object();
    c.set("name", case_name);
    c.set("params", std::move(params));

    obs::json_value trials = obs::json_value::array();
    for (const trial_record& t : batch.trials) {
      obs::json_value one = obs::json_value::object();
      one.set("seed", static_cast<std::int64_t>(t.seed));
      one.set("completed", t.completed);
      one.set("steps", t.steps);
      one.set("informed_step", t.informed_step);
      one.set("transmissions", t.transmissions);
      one.set("collisions", t.collisions);
      one.set("deliveries", t.deliveries);
      one.set("wall_ms", t.wall_ms);
      one.set("crashed_nodes", t.crashed_nodes);
      one.set("suppressed_deliveries", t.suppressed_deliveries);
      one.set("churned_edges", t.churned_edges);
      one.set("recoveries", t.recoveries);
      one.set("reachable_nodes", t.reachable_nodes);
      one.set("informed_reachable", t.informed_reachable);
      one.set("outcome", run_outcome_name(t.outcome));
      trials.push_back(std::move(one));
    }
    c.set("trials", std::move(trials));
    c.set("timeout_rate", batch.timeout_rate());
    c.set("wall_ms", batch.total_wall_ms());

    double mean_steps = std::nan("");
    const std::vector<double> steps = batch.completion_steps();
    obs::json_value stats = obs::json_value::object();
    if (!steps.empty()) {
      const summary s = summarize(steps);
      mean_steps = s.mean;
      stats.set("mean", s.mean);
      stats.set("stddev", s.stddev);
      stats.set("min", s.min);
      stats.set("p50", s.median);
      stats.set("p90", s.p90);
      stats.set("p95", s.p95);
      stats.set("p99", s.p99);
      stats.set("max", s.max);
    }
    c.set("steps", std::move(stats));
    cases_.push_back(std::move(c));
    return mean_steps;
  }

  /// Records a case with no simulator trials — analytic benches
  /// (selective-family sizes, universal-sequence quality) report derived
  /// values plus the wall-clock they took to compute.
  void add_analytic_case(const std::string& case_name,
                         obs::json_value params, obs::json_value values,
                         double wall_ms = 0.0) {
    obs::json_value c = obs::json_value::object();
    c.set("name", case_name);
    c.set("params", std::move(params));
    c.set("trials", obs::json_value::array());
    c.set("timeout_rate", 0.0);
    c.set("wall_ms", wall_ms);
    c.set("steps", obs::json_value::object());
    c.set("values", std::move(values));
    cases_.push_back(std::move(c));
  }

  /// Attaches extra JSON (fit coefficients, derived ratios, …) to the most
  /// recently added case.
  void annotate(const std::string& key, obs::json_value v) {
    if (cases_.items().empty()) return;
    cases_.items().back().set(key, std::move(v));
  }

  /// Attaches a metrics-registry export to the most recent case (used by
  /// benches that run with per-step series enabled).
  void attach_metrics(const obs::metrics_registry& metrics) {
    annotate("metrics", metrics.to_json());
  }

  obs::span_profiler& profiler() { return profiler_; }
  const std::string& artifact_path() const { return path_; }

  /// Writes the artifact (idempotent; the destructor calls it too).
  void write() {
    if (written_) return;
    written_ = true;
    root_.set("config", config_);
    root_.set("cases", cases_);
    root_.set("spans", profiler_.to_json());
    path_ = "BENCH_" + name_ + ".json";
    std::ofstream out(path_);
    root_.write(out, 2);
    out << '\n';
    std::cout << "\n[telemetry] wrote " << path_ << " ("
              << cases_.items().size() << " cases)\n";
  }

 private:
  std::string name_;
  std::string path_;
  bool written_ = false;
  obs::json_value root_, config_, cases_;
  obs::span_profiler profiler_;
  obs::span_profiler* previous_profiler_ = nullptr;
};

/// Runs a seeded trial batch, records it as a case, and returns the batch.
/// Timeouts become data (timeout_rate in the artifact), never exceptions.
/// An optional fault model is re-seeded per trial by run_trials, so each
/// trial draws an independent fault schedule from its own seed.
inline trial_set run_case(reporter& rep, const std::string& case_name,
                          obs::json_value params, const graph& g,
                          const protocol& proto, int trials,
                          std::uint64_t seed = 1,
                          std::int64_t cap = 50'000'000,
                          stop_condition stop = stop_condition::all_informed,
                          fault::fault_model* faults = nullptr) {
  trial_options topts;
  topts.trials = trials;
  topts.base_seed = seed;
  topts.max_steps = cap;
  topts.stop = stop;
  topts.faults = faults;
  topts.threads = threads();
  const auto start = std::chrono::steady_clock::now();
  trial_set batch = parallel_run_trials(g, proto, topts);
  const double batch_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - start)
          .count();
  rep.add_case(case_name, std::move(params), batch);
  rep.annotate("threads", static_cast<std::int64_t>(topts.threads));
  rep.annotate("batch_wall_ms", batch_ms);
  // Trial throughput gain over one core: total per-trial work over the
  // batch's wall clock (≈1.0 serially, up to `threads` when sharding
  // scales; also <1.0 when per-trial overhead dominates tiny batches).
  rep.annotate("speedup",
               batch_ms > 0.0 ? batch.total_wall_ms() / batch_ms : 1.0);
  return batch;
}

/// Mean completion steps of a batch over its completed trials; NaN when
/// every trial hit the cap (prints as "nan" in tables — the timeout_rate
/// column/artifact carries the real story).
inline double mean_steps(const trial_set& batch) {
  const std::vector<double> steps = batch.completion_steps();
  if (steps.empty()) return std::nan("");
  return summarize(steps).mean;
}

/// Mean completion time of `proto` on `g` over seeded trials, without
/// artifact recording (used by helper sweeps; prefers run_case +
/// mean_steps when a reporter is in scope). Tolerates timeouts.
inline double mean_time(const graph& g, const protocol& proto, int trials,
                        std::uint64_t seed = 1,
                        std::int64_t cap = 50'000'000) {
  trial_options topts;
  topts.trials = trials;
  topts.base_seed = seed;
  topts.max_steps = cap;
  topts.threads = threads();
  return mean_steps(parallel_run_trials(g, proto, topts));
}

/// Convenience for params objects: key/value pairs of heterogeneous
/// JSON-compatible values.
inline obs::json_value params() { return obs::json_value::object(); }
template <typename V, typename... Rest>
obs::json_value params(const std::string& key, V value, Rest... rest) {
  obs::json_value obj = params(rest...);
  obs::json_value ordered = obs::json_value::object();
  ordered.set(key, obs::json_value(value));
  for (const auto& [k, v] : obj.members()) ordered.set(k, v);
  return ordered;
}

/// log₂ with a floor at 1 to keep ratios finite for tiny arguments.
inline double lg(double x) { return std::max(1.0, std::log2(x)); }

/// The paper's randomized bounds.
inline double kp_bound(double n, double d) {
  return d * lg(n / d) + lg(n) * lg(n);
}
inline double bgi_bound(double n, double d) { return d * lg(n) + lg(n) * lg(n); }

/// Prints a one-line fit verdict under a table.
inline void print_fit(const std::string& label, const fit_result& f) {
  std::cout << "  fit " << label << ": coefficient="
            << text_table::format_double(f.coefficients[0], 3)
            << "  R²=" << text_table::format_double(f.r_squared, 4) << "\n";
}

/// JSON form of a fit, for annotate().
inline obs::json_value fit_json(const fit_result& f) {
  obs::json_value v = obs::json_value::object();
  v.set("coefficient", f.coefficients[0]);
  v.set("r_squared", f.r_squared);
  return v;
}

}  // namespace radiocast::bench
