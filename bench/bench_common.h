// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one experiment from DESIGN.md's index
// (E1–E10): it sweeps the workload, measures completion steps through the
// simulator, and prints a text table whose rows mirror the claim being
// reproduced. EXPERIMENTS.md records the paper-vs-measured comparison.
#pragma once

#include <cmath>
#include <iostream>
#include <string>

#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/fit.h"
#include "util/stats.h"
#include "util/table.h"

namespace radiocast::bench {

/// Mean completion time of `proto` on `g` over seeded trials.
inline double mean_time(const graph& g, const protocol& proto, int trials,
                        std::uint64_t seed = 1,
                        std::int64_t cap = 50'000'000) {
  return summarize(completion_times(g, proto, trials, seed, cap)).mean;
}

/// log₂ with a floor at 1 to keep ratios finite for tiny arguments.
inline double lg(double x) { return std::max(1.0, std::log2(x)); }

/// The paper's randomized bounds.
inline double kp_bound(double n, double d) {
  return d * lg(n / d) + lg(n) * lg(n);
}
inline double bgi_bound(double n, double d) { return d * lg(n) + lg(n) * lg(n); }

/// Prints a one-line fit verdict under a table.
inline void print_fit(const std::string& label, const fit_result& f) {
  std::cout << "  fit " << label << ": coefficient="
            << text_table::format_double(f.coefficients[0], 3)
            << "  R²=" << text_table::format_double(f.r_squared, 4) << "\n";
}

}  // namespace radiocast::bench
