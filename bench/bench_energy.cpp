// Experiment E15 (supplementary): energy — transmission counts.
//
// In radio networks a node's power budget is dominated by transmitting.
// The paper optimizes time only; this experiment asks what that costs in
// energy. Both algorithms fire every informed node once per window
// (the probability-1 step), so total energy ≈ #informed × #windows —
// KP's windows are log(r/D)+2 steps against Decay's 2·log n, i.e. KP packs
// proportionally more windows into its proportionally shorter run, and the
// two effects roughly cancel.
//
// Reports total and max-per-node transmissions at completion.
#include "bench_common.h"

namespace radiocast {
namespace {

// One protocol's energy batch: direct run_broadcast calls (the per-node
// transmission vector is not part of trial_record), folded back into a
// trial_set so the telemetry artifact carries the same schema as every
// other bench. Returns {mean total tx, max tx on any node}.
std::pair<double, double> energy_case(bench::reporter& rep,
                                      const std::string& case_name,
                                      obs::json_value params, const graph& g,
                                      const protocol& proto, int trials) {
  trial_set batch;
  double total_tx = 0;
  double max_per_node = 0;
  for (int t = 0; t < trials; ++t) {
    run_options opts;
    opts.seed = 7 + static_cast<std::uint64_t>(t);
    opts.max_steps = 10'000'000;
    const run_result r = run_broadcast(g, proto, opts);
    RC_CHECK(r.completed);
    total_tx += static_cast<double>(r.transmissions);
    for (std::int64_t x : r.transmissions_per_node) {
      max_per_node = std::max(max_per_node, static_cast<double>(x));
    }
    trial_record rec;
    rec.seed = opts.seed;
    rec.completed = r.completed;
    rec.steps = r.steps;
    rec.informed_step = r.informed_step;
    rec.transmissions = r.transmissions;
    rec.collisions = r.collisions;
    rec.deliveries = r.deliveries;
    batch.trials.push_back(rec);
  }
  rep.add_case(case_name, std::move(params), batch);
  obs::json_value energy = obs::json_value::object();
  energy.set("mean_total_tx", total_tx / trials);
  energy.set("max_tx_per_node", max_per_node);
  rep.annotate("energy", std::move(energy));
  return {total_tx / trials, max_per_node};
}

void run() {
  bench::reporter rep("energy");
  rep.config("experiment", "E15");
  rep.config("trials", bench::trial_count(10));
  text_table table("E15: energy (transmissions) until completion, mean over "
                   "10 trials");
  table.set_header({"n", "D", "kp total tx", "decay total tx", "tx ratio",
                    "kp max/node", "decay max/node"});
  for (const node_id n : bench::sweep({512, 1024, 2048})) {
    for (const int d : {16, n / 16}) {
      graph g = make_complete_layered_uniform(n, d);
      const auto kp = make_protocol("kp", n - 1, d);
      const auto decay = make_protocol("decay", n - 1);
      const int trials = bench::trial_count(10);
      const std::string cell =
          "n=" + std::to_string(n) + "/D=" + std::to_string(d);
      const auto base = [&](const char* proto) {
        return bench::params("n", n, "D", d, "protocol", proto);
      };
      const auto [kp_tx, kp_max] =
          energy_case(rep, cell + "/kp", base("kp"), g, *kp, trials);
      const auto [decay_tx, decay_max] = energy_case(
          rep, cell + "/decay", base("decay"), g, *decay, trials);
      table.add(n, d, kp_tx, decay_tx, decay_tx / kp_tx, kp_max, decay_max);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: tx ratio ≈ 1 across the sweep — the 2–4×\n"
               "time speedup of Theorem 1 comes at NO extra energy: shorter\n"
               "windows fire more often per step but the run ends sooner,\n"
               "and the two effects cancel. Max-per-node loads are likewise\n"
               "comparable.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
