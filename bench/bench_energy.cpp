// Experiment E15 (supplementary): energy — transmission counts.
//
// In radio networks a node's power budget is dominated by transmitting.
// The paper optimizes time only; this experiment asks what that costs in
// energy. Both algorithms fire every informed node once per window
// (the probability-1 step), so total energy ≈ #informed × #windows —
// KP's windows are log(r/D)+2 steps against Decay's 2·log n, i.e. KP packs
// proportionally more windows into its proportionally shorter run, and the
// two effects roughly cancel.
//
// Reports total and max-per-node transmissions at completion.
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  text_table table("E15: energy (transmissions) until completion, mean over "
                   "10 trials");
  table.set_header({"n", "D", "kp total tx", "decay total tx", "tx ratio",
                    "kp max/node", "decay max/node"});
  for (const node_id n : {512, 1024, 2048}) {
    for (const int d : {16, n / 16}) {
      graph g = make_complete_layered_uniform(n, d);
      const auto kp = make_protocol("kp", n - 1, d);
      const auto decay = make_protocol("decay", n - 1);
      double kp_tx = 0;
      double decay_tx = 0;
      double kp_max = 0;
      double decay_max = 0;
      constexpr int kTrials = 10;
      for (int t = 0; t < kTrials; ++t) {
        run_options opts;
        opts.seed = 7 + static_cast<std::uint64_t>(t);
        opts.max_steps = 10'000'000;
        const run_result a = run_broadcast(g, *kp, opts);
        const run_result b = run_broadcast(g, *decay, opts);
        RC_CHECK(a.completed && b.completed);
        kp_tx += static_cast<double>(a.transmissions);
        decay_tx += static_cast<double>(b.transmissions);
        for (std::int64_t x : a.transmissions_per_node) {
          kp_max = std::max(kp_max, static_cast<double>(x));
        }
        for (std::int64_t x : b.transmissions_per_node) {
          decay_max = std::max(decay_max, static_cast<double>(x));
        }
      }
      kp_tx /= kTrials;
      decay_tx /= kTrials;
      table.add(n, d, kp_tx, decay_tx, decay_tx / kp_tx, kp_max, decay_max);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: tx ratio ≈ 1 across the sweep — the 2–4×\n"
               "time speedup of Theorem 1 comes at NO extra energy: shorter\n"
               "windows fire more often per step but the run ends sooner,\n"
               "and the two effects cancel. Max-per-node loads are likewise\n"
               "comparable.\n";
}

}  // namespace
}  // namespace radiocast

int main() {
  radiocast::run();
  return 0;
}
