// Experiment E11 (supplementary; paper §1.1 + §4): the price of not
// knowing your neighbors.
//
// Under the known-neighborhood model ([3]), a token DFS broadcasts in O(n)
// ([2]). Under the paper's model (own label + r only), Select-and-Send
// pays Θ(log n) per DFS move for Echo/Binary-Selection — Theorem 3's
// O(n log n), and the best known bounds leave at most a log factor of slack
// (the paper's closing open problem). The measured ratio between the two
// should therefore grow like c·log n.
#include "core/dfs_known.h"
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("knowledge_gap");
  rep.config("experiment", "E11");
  text_table table("E11: known neighborhoods (O(n)) vs unknown (O(n log n))"
                   ", full DFS traversal steps");
  table.set_header({"family", "n", "dfs-known", "select-and-send", "ratio",
                    "ratio/log2(n)"});
  for (const std::string family : {"tree", "gnp"}) {
    for (const node_id n : bench::sweep({128, 256, 512, 1024, 2048})) {
      rng gen(static_cast<std::uint64_t>(n) * 7);
      graph g = family == "tree" ? make_random_tree(n, gen)
                                 : make_gnp_connected(n, 6.0 / n, gen);
      const std::string cell = family + "/n=" + std::to_string(n);
      const auto base = [&](const char* proto) {
        return bench::params("family", family, "n", n, "protocol", proto);
      };
      // Both protocols run to all-halted: the comparison is over the FULL
      // DFS traversal, and steps (not informed_step) is the measurement.
      const auto halted_steps = [&](const std::string& case_name,
                                    obs::json_value params,
                                    const protocol& proto) {
        const trial_set batch =
            bench::run_case(rep, case_name, std::move(params), g, proto, 1, 1,
                            100'000'000, stop_condition::all_halted);
        RC_CHECK(batch.all_completed());
        return static_cast<double>(batch.trials.front().steps);
      };
      const dfs_known_protocol dfs(g);
      const double t_dfs =
          halted_steps(cell + "/dfs-known", base("dfs-known"), dfs);
      const auto sas = make_protocol("select-and-send", n - 1);
      const double t_sas = halted_steps(cell + "/select-and-send",
                                        base("select-and-send"), *sas);
      table.add(family, n, t_dfs, t_sas, t_sas / t_dfs,
                (t_sas / t_dfs) / bench::lg(n));
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 'dfs-known' grows linearly (≈ 3n), the\n"
               "ratio grows with n, and ratio/log₂(n) is roughly flat — the\n"
               "per-move Θ(log n) selection cost is exactly what neighborhood\n"
               "knowledge removes.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
