// Experiment E7 (Lemma 1): universal probability sequences exist with
// period O(D) and satisfy the U1/U2 window bounds.
//
// Sweeps (r, D) over powers of two in the paper's regime and reports the
// period against the 2D + 64·log²r count and, per condition, the worst
// ratio of measured max cyclic gap to the allowed bound (≤ 1 required).
#include <chrono>

#include "core/universal_sequence.h"
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("universal_sequence");
  rep.config("experiment", "E7");
  text_table table("E7: universal sequence construction quality");
  table.set_header({"log r", "log D", "period", "count bound", "U1 worst",
                    "U2 worst"});
  const int log_r_max = bench::smoke() ? 12 : 20;
  for (int log_r = 12; log_r <= log_r_max; log_r += 2) {
    // Start the D sweep where every placement level fits the depth-log D
    // tree (the paper's D > 32·r^(2/3) regime, in its practical form).
    for (int log_d = (2 * log_r) / 3 + 3; log_d <= log_r; log_d += 2) {
      const auto start = std::chrono::steady_clock::now();
      const universal_sequence seq(log_r, log_d);
      double u1_worst = 0.0;
      for (int j = seq.u1_lo(); j <= seq.u1_hi(); ++j) {
        u1_worst = std::max(u1_worst,
                            static_cast<double>(seq.max_cyclic_gap(j)) /
                                static_cast<double>(seq.u1_gap_bound(j)));
      }
      double u2_worst = 0.0;
      for (int j = seq.u2_lo(); j <= seq.u2_hi(); ++j) {
        u2_worst = std::max(u2_worst,
                            static_cast<double>(seq.max_cyclic_gap(j)) /
                                static_cast<double>(seq.u2_gap_bound(j)));
      }
      const std::int64_t count_bound =
          2 * (std::int64_t{1} << log_d) +
          64 * static_cast<std::int64_t>(log_r) * log_r;
      const double wall_ms =
          std::chrono::duration_cast<
              std::chrono::duration<double, std::milli>>(
              std::chrono::steady_clock::now() - start)
              .count();
      obs::json_value values = obs::json_value::object();
      values.set("period", seq.period());
      values.set("count_bound", count_bound);
      values.set("u1_worst", u1_worst);
      values.set("u2_worst", u2_worst);
      rep.add_analytic_case(
          "log_r=" + std::to_string(log_r) + "/log_d=" + std::to_string(log_d),
          bench::params("log_r", log_r, "log_d", log_d), std::move(values),
          wall_ms);
      table.add(log_r, log_d, seq.period(), count_bound, u1_worst, u2_worst);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: period ≤ count bound on every row and both\n"
               "'worst' columns ≤ 1.00 — each probability 1/2ʲ recurs within\n"
               "its U1/U2 window, which is exactly what the Stage analysis\n"
               "(Lemmas 3 and 4) consumes.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
