// Experiment E13 (Section 2's setting): the randomized algorithm on
// genuinely DIRECTED radio networks.
//
// Theorem 1 is proved for directed networks of directed radius D
// (undirected graphs are the special case with every edge doubled). The
// harness runs KP and Decay on directed layered networks — arcs point only
// forward, so there is no feedback whatsoever — and on the symmetrized
// versions, checking that the bound shape and the KP-vs-Decay ordering are
// insensitive to direction.
#include <set>

#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("directed_randomized");
  rep.config("experiment", "E13");
  rep.config("trials", bench::trial_count(15));
  text_table table("E13: randomized broadcast on directed layered networks "
                   "(15 trials)");
  table.set_header({"n", "D", "arc density", "kp directed", "decay directed",
                    "kp undirected", "kp-dir/bound"});
  rng gen(8);
  const int trials = bench::trial_count(15);
  for (const node_id n : bench::sweep({512, 1024, 2048})) {
    const std::set<int> ds{8, 32, n / 16};
    for (const int d : ds) {
      for (const double p : {0.1, 0.9}) {
        std::vector<node_id> sizes{1};
        const auto rest = even_split(n - 1, d);
        sizes.insert(sizes.end(), rest.begin(), rest.end());
        graph dir = make_directed_layered(sizes, p, gen);
        graph und = make_complete_layered_uniform(n, d);
        const auto kp = make_protocol("kp", n - 1, d);
        const auto decay = make_protocol("decay", n - 1);
        const std::string cell = "n=" + std::to_string(n) +
                                 "/D=" + std::to_string(d) +
                                 "/p=" + text_table::format_double(p, 1);
        const auto base = [&](const char* topo, const char* proto) {
          return bench::params("n", n, "D", d, "arc_density", p, "topology",
                               topo, "protocol", proto);
        };
        const double t_dir = bench::mean_steps(bench::run_case(
            rep, cell + "/kp-directed", base("directed", "kp"), dir, *kp,
            trials, 3));
        const double t_dir_decay = bench::mean_steps(bench::run_case(
            rep, cell + "/decay-directed", base("directed", "decay"), dir,
            *decay, trials, 3));
        const double t_und = bench::mean_steps(bench::run_case(
            rep, cell + "/kp-undirected", base("undirected", "kp"), und, *kp,
            trials, 3));
        table.add(n, d, p, t_dir, t_dir_decay, t_und,
                  t_dir / bench::kp_bound(n, d));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the normalized column stays bounded and\n"
               "KP beats Decay on directed networks just as on undirected\n"
               "ones — Theorem 1's analysis is direction-agnostic.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
