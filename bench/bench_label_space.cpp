// Experiment E14 (§1.3): sensitivity to the label-space bound r.
//
// The paper stresses that nodes knowing only "labels are in {0,…,r},
// r = O(n)" is genuinely weaker than knowing n with labels {0,…,n−1}: the
// deterministic algorithms' label-space scans (round-robin slots, the
// announcement of Select-and-Send / Complete-Layered, doubling + binary
// selection) are paid in r, not n — while the randomized algorithm only
// pays log(r/D) per stage. Sweep r/n at fixed topology and watch who cares.
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  const node_id n = 1024;
  const int d = 16;
  graph g = make_complete_layered_uniform(n, d);
  bench::reporter rep("label_space");
  rep.config("experiment", "E14");
  rep.config("n", n);
  rep.config("D", d);
  text_table table("E14: sparse label spaces, n = 1024, D = 16 "
                   "(complete layered; 5 labelings per row)");
  table.set_header({"r/n", "r", "kp", "round-robin", "sas-traversal",
                    "complete-layered"});
  rng gen(12);
  for (const int factor : bench::sweep({1, 2, 4, 8})) {
    const node_id r = factor * n - 1;
    // Average over several uniform random labelings per r (factor 1 = a
    // random permutation) so rows differ only in label-space sparsity,
    // not in one labeling's luck.
    const int kLabelings = bench::trial_count(5);
    std::vector<std::vector<node_id>> labelings;
    for (int l = 0; l < kLabelings; ++l) {
      labelings.push_back(sparse_labels(n, r, gen));
    }
    // run_case cannot thread custom labels / explicit r through, so the
    // (labeling × seed) grid is run directly and folded into a trial_set
    // by hand before recording.
    auto timed = [&](const std::string& name, int trials_per_labeling,
                     stop_condition stop) {
      const auto proto = make_protocol(name, r, d);
      trial_set batch;
      double total = 0;
      for (const auto& labels : labelings) {
        for (int t = 0; t < trials_per_labeling; ++t) {
          run_options opts;
          opts.seed = 100 + static_cast<std::uint64_t>(t);
          opts.max_steps = 200'000'000;
          opts.labels = labels;
          opts.stop = stop;
          const run_result res = run_broadcast_with_r(g, *proto, r, opts);
          RC_CHECK(res.completed);
          total += static_cast<double>(stop == stop_condition::all_informed
                                           ? res.informed_step
                                           : res.steps);
          trial_record rec;
          rec.seed = opts.seed;
          rec.completed = res.completed;
          rec.steps = res.steps;
          rec.informed_step = res.informed_step;
          rec.transmissions = res.transmissions;
          rec.collisions = res.collisions;
          rec.deliveries = res.deliveries;
          batch.trials.push_back(rec);
        }
      }
      rep.add_case(
          "r=" + std::to_string(r) + "/" + name,
          bench::params("n", n, "D", d, "r", r, "r_over_n", factor,
                        "protocol", name, "labelings", kLabelings),
          batch);
      return total / (kLabelings * trials_per_labeling);
    };
    const auto informed = stop_condition::all_informed;
    table.add(factor, r, timed("kp", 3, informed),
              timed("round-robin", 1, informed),
              // The DFS traversal's per-visit doubling/selection cost is
              // what scales with r; informing time is stray-dominated.
              timed("select-and-send", 1, stop_condition::all_halted),
              timed("complete-layered", 1, informed));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: round-robin scales ~linearly in r (its\n"
               "round is r+1 slots); the DFS traversal and Complete-Layered\n"
               "grow steadily with r (doubling/selection over a wider label\n"
               "space); the randomized kp pays only log(r/D) per stage and\n"
               "barely moves — the knowledge model's price lands on the\n"
               "deterministic side, as §1.3 suggests.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
