// Experiment E16 (resilience curves): completion time and timeout rate of
// four broadcast protocols under graded fault intensity, one curve per
// fault model — message loss, oblivious and greedy jamming, crash-stop
// failures, connectivity-preserving edge churn, non-connectivity-preserving
// partition churn, and crash-RECOVERY (downtime sweep, retain vs amnesia
// rejoin semantics; see fault/recovery.h).
//
// The paper's model is an ideal synchronous radio network; this bench
// measures how far each algorithm degrades as that ideal is relaxed.
// Expected shape: completion steps (and eventually timeout rate) increase
// monotonically with fault intensity under loss, jamming, and churn. Two
// families are special:
//   * jam_greedy — the adaptive jammer is omniscient: with ANY per-step
//     budget it kills the last frontier delivery every step, so no
//     protocol (randomized or not) ever finishes; the curve is a step
//     function at budget 1.
//   * crash — crashed nodes are exempt from the completion condition, so
//     crashes both remove relays (slower) and remove listeners (less work
//     to finish); the completion-time curve is legitimately non-monotone.
#include <iterator>
#include <optional>

#include "bench_common.h"
#include "fault/churn.h"
#include "fault/crash.h"
#include "fault/jammer.h"
#include "fault/loss.h"
#include "fault/partition.h"
#include "fault/recovery.h"

namespace radiocast {
namespace {

constexpr std::int64_t kStepCap = 100'000;

struct proto_spec {
  const char* key;    // case-name + artifact key
  const char* name;   // make_protocol registry name
};

constexpr proto_spec kProtocols[] = {
    {"decay", "decay"},
    {"kp", "kp"},
    {"select_and_send", "select-and-send"},
    {"interleaved", "interleaved"},
};

// Amnesia restarts re-initialize protocol state mid-run, which the token
// protocols reject by contract (their schedules cannot survive a reboot),
// so the recovery sweeps run the restart-tolerant randomized pair only.
constexpr proto_spec kRandomizedProtocols[] = {
    {"decay", "decay"},
    {"kp", "kp"},
};

// One measured point of a resilience curve.
struct curve_point {
  double intensity = 0.0;
  double mean = 0.0;          // mean completion steps (NaN: all timed out)
  double timeout_rate = 0.0;
};

// Severity collapses (timeout_rate, mean steps) into one monotone-checkable
// scalar: timeouts dominate, then steps; an all-timeout point sits at the
// cap. A curve is "monotone" when severity never drops by more than the
// trial-noise slack between consecutive intensities.
double severity(const curve_point& p) {
  const double steps = std::isnan(p.mean) ? double(kStepCap) : p.mean;
  return p.timeout_rate * 1e9 + steps;
}

bool is_monotone(const std::vector<curve_point>& curve) {
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (severity(curve[i]) < severity(curve[i - 1]) * 0.98) return false;
  }
  return true;
}

obs::json_value curve_json(const std::vector<curve_point>& curve) {
  obs::json_value intensities = obs::json_value::array();
  obs::json_value means = obs::json_value::array();
  obs::json_value timeouts = obs::json_value::array();
  for (const curve_point& p : curve) {
    intensities.push_back(obs::json_value(p.intensity));
    means.push_back(obs::json_value(p.mean));
    timeouts.push_back(obs::json_value(p.timeout_rate));
  }
  obs::json_value v = obs::json_value::object();
  v.set("intensity", std::move(intensities));
  v.set("mean_steps", std::move(means));
  v.set("timeout_rate", std::move(timeouts));
  v.set("monotone", is_monotone(curve));
  return v;
}

// Builds the fault model for one (family, intensity) cell. The returned
// pointer references one of the locally stored models.
class fault_cell {
 public:
  fault_cell(const std::string& family, double intensity) {
    if (family == "loss") {
      loss_.emplace(fault::loss_options{intensity});
      model_ = &*loss_;
    } else if (family == "jam_oblivious" || family == "jam_greedy") {
      fault::jammer_options jopts;
      jopts.budget = static_cast<int>(intensity);
      jopts.strategy = family == "jam_greedy"
                           ? fault::jam_strategy::greedy_frontier
                           : fault::jam_strategy::oblivious_random;
      jam_.emplace(jopts);
      model_ = &*jam_;
    } else if (family == "crash") {
      fault::crash_options copts;
      copts.crash_probability = intensity;
      copts.spare_source = true;  // keep broadcast solvable
      crash_.emplace(copts);
      model_ = &*crash_;
    } else if (family == "recovery_retain" || family == "recovery_amnesia") {
      // Fixed crash pressure, swept DOWNTIME: intensity is the rejoin
      // delay in steps (0 = crashes are permanent — the crash-stop
      // degenerate case the curve starts from).
      fault::recovery_options ropts;
      ropts.crash_probability = 2e-3;
      ropts.spare_source = true;  // isolate rejoin cost from source loss
      ropts.mode = family == "recovery_amnesia"
                       ? fault::recovery_mode::amnesia
                       : fault::recovery_mode::retain;
      ropts.downtime = static_cast<std::int64_t>(intensity);
      recovery_.emplace(ropts);
      model_ = &*recovery_;
    } else if (family == "partition") {
      // Swept all-edge toggle probability on top of a fixed periodic
      // partition window — the non-connectivity-preserving counterpart of
      // the churn sweep.
      fault::partition_options popts;
      popts.toggle_probability = intensity;
      popts.period = 48;
      popts.duration = 12;
      popts.island_fraction = 0.25;
      partition_.emplace(popts);
      model_ = &*partition_;
    } else {
      RC_REQUIRE(family == "churn");
      churn_.emplace(fault::churn_options{intensity});
      model_ = &*churn_;
    }
  }

  fault::fault_model* model() { return model_; }

 private:
  std::optional<fault::loss_model> loss_;
  std::optional<fault::jammer_model> jam_;
  std::optional<fault::crash_model> crash_;
  std::optional<fault::churn_model> churn_;
  std::optional<fault::recovery_model> recovery_;
  std::optional<fault::partition_model> partition_;
  fault::fault_model* model_ = nullptr;
};

void run_family(bench::reporter& rep, const graph& g, int known_d,
                const std::string& family, const char* knob,
                const std::vector<double>& intensities, int trials,
                const std::vector<proto_spec>& protocols,
                std::vector<std::vector<curve_point>>& curves) {
  const node_id n = g.node_count();
  text_table table("E16 [" + family + "]: mean steps / timeout% by " + knob +
                   " (" + std::to_string(trials) + " trials)");
  std::vector<std::string> header{knob};
  for (const proto_spec& p : protocols) {
    header.emplace_back(p.key);
    header.emplace_back("to%");
  }
  table.set_header(header);

  for (const double intensity : intensities) {
    fault_cell cell(family, intensity);
    std::vector<std::string> row{text_table::format_double(intensity, 4)};
    for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
      const proto_spec& spec = protocols[pi];
      const auto proto = make_protocol(spec.name, n - 1, known_d);
      const std::string case_name = family + "/" + knob + "=" +
                                    text_table::format_double(intensity, 4) +
                                    "/" + spec.key;
      const trial_set batch = bench::run_case(
          rep, case_name,
          bench::params("family", family, knob, intensity, "protocol",
                        spec.key, "n", n, "D", known_d),
          g, *proto, trials, /*seed=*/1, kStepCap,
          stop_condition::all_informed, cell.model());
      const double mean = bench::mean_steps(batch);
      row.push_back(text_table::format_double(mean));
      row.push_back(text_table::format_double(100 * batch.timeout_rate()));
      curves[pi].push_back({intensity, mean, batch.timeout_rate()});
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void run_bench(bench::reporter& rep) {
  rng gen(2016);
  const node_id n = bench::smoke() ? 48 : 160;
  const graph g = make_random_geometric(n, 0.16, gen);
  const int d = radius_from(g);
  const int trials = bench::trial_count(8);
  rep.config("experiment", "E16");
  rep.config("n", static_cast<std::int64_t>(n));
  rep.config("D", static_cast<std::int64_t>(d));
  rep.config("trials", static_cast<std::int64_t>(trials));
  rep.config("step_cap", kStepCap);
  std::cout << "E16 topology: random geometric, n=" << n << ", D=" << d
            << ", m=" << g.edge_count() << "\n\n";

  struct family_spec {
    const char* family;
    const char* knob;
    std::vector<double> intensities;
    std::vector<proto_spec> protocols;
  };
  const std::vector<proto_spec> all_protocols(std::begin(kProtocols),
                                              std::end(kProtocols));
  const std::vector<proto_spec> randomized(std::begin(kRandomizedProtocols),
                                           std::end(kRandomizedProtocols));
  const family_spec families[] = {
      {"loss", "p", bench::sweep({0.0, 0.05, 0.1, 0.2, 0.35}), all_protocols},
      {"jam_oblivious", "budget", bench::sweep({0.0, 1.0, 2.0, 4.0, 8.0}),
       all_protocols},
      {"jam_greedy", "budget", bench::sweep({0.0, 1.0, 2.0, 4.0, 8.0}),
       all_protocols},
      {"crash", "p", bench::sweep({0.0, 1e-4, 5e-4, 2e-3}), all_protocols},
      {"churn", "p", bench::sweep({0.0, 0.005, 0.02, 0.08}), all_protocols},
      {"partition", "toggle_p", bench::sweep({0.0, 0.002, 0.01, 0.04}),
       all_protocols},
      {"recovery_retain", "downtime",
       bench::sweep({0.0, 2.0, 8.0, 32.0, 128.0}), randomized},
      {"recovery_amnesia", "downtime",
       bench::sweep({0.0, 2.0, 8.0, 32.0, 128.0}), randomized},
  };

  obs::json_value trend = obs::json_value::object();
  for (const family_spec& fam : families) {
    std::vector<std::vector<curve_point>> curves(fam.protocols.size());
    run_family(rep, g, d, fam.family, fam.knob, fam.intensities, trials,
               fam.protocols, curves);
    obs::json_value per_proto = obs::json_value::object();
    for (std::size_t pi = 0; pi < fam.protocols.size(); ++pi) {
      per_proto.set(fam.protocols[pi].key, curve_json(curves[pi]));
    }
    trend.set(fam.family, std::move(per_proto));
  }
  trend.set("notes",
            obs::json_value("monotone expected for loss/jam/churn; crash "
                            "curves may dip because crashed nodes are "
                            "exempt from completion; jam_greedy is a step "
                            "function (any budget stalls every protocol); "
                            "recovery curves start at the crash-stop "
                            "degenerate point (downtime 0 = nobody "
                            "returns), then cost grows with downtime — "
                            "amnesia above retain since rejoiners must be "
                            "re-informed; partition sweeps all-edge toggle "
                            "churn on top of a periodic island cut"));
  rep.add_analytic_case("trend", bench::params("derived_from", "all cases"),
                        std::move(trend));
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::bench::reporter rep("fault_resilience");
  radiocast::run_bench(rep);
  std::cout << "\nExpected shape: severity (timeout rate, then mean steps)"
               "\nis non-decreasing in fault intensity for loss, jamming,"
               "\nchurn, and partition toggling; the adaptive greedy jammer"
               "\nstalls every protocol at any budget (it always kills the"
               "\nlast frontier delivery); crash curves may dip (crashed"
               "\nnodes are exempt from completion, so crashes also remove"
               "\nwork); recovery curves grow with downtime from the"
               "\ncrash-stop point, amnesia above retain (rejoiners must be"
               "\nre-informed).\n";
  return 0;
}
