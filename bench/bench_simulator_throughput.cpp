// Wall-clock microbenchmarks (google-benchmark) for the simulator itself —
// not a paper experiment, but the substrate-cost baseline that tells you
// how far the step-count experiments can be scaled.
#include <benchmark/benchmark.h>

#include "core/runner.h"
#include "graph/generators.h"
#include "sim/simulator.h"

namespace radiocast {
namespace {

void bm_decay_layered(benchmark::State& state) {
  const auto n = static_cast<node_id>(state.range(0));
  graph g = make_complete_layered_uniform(n, 16);
  const auto proto = make_protocol("decay", n - 1);
  std::uint64_t seed = 1;
  std::int64_t steps = 0;
  for (auto _ : state) {
    run_options opts;
    opts.seed = seed++;
    const run_result r = run_broadcast(g, *proto, opts);
    benchmark::DoNotOptimize(r.informed_step);
    steps += r.steps;
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(bm_decay_layered)->Arg(256)->Arg(1024)->Arg(4096);

void bm_kp_layered(benchmark::State& state) {
  const auto n = static_cast<node_id>(state.range(0));
  graph g = make_complete_layered_uniform(n, n / 8);
  const auto proto = make_protocol("kp", n - 1, n / 8);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    run_options opts;
    opts.seed = seed++;
    const run_result r = run_broadcast(g, *proto, opts);
    benchmark::DoNotOptimize(r.informed_step);
  }
}
BENCHMARK(bm_kp_layered)->Arg(256)->Arg(1024)->Arg(4096);

void bm_select_and_send_tree(benchmark::State& state) {
  const auto n = static_cast<node_id>(state.range(0));
  rng gen(5);
  graph g = make_random_tree(n, gen);
  const auto proto = make_protocol("select-and-send", n - 1);
  for (auto _ : state) {
    run_options opts;
    opts.max_steps = 100'000'000;
    opts.stop = stop_condition::all_halted;
    const run_result r = run_broadcast(g, *proto, opts);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(bm_select_and_send_tree)->Arg(256)->Arg(1024);

void bm_graph_generation(benchmark::State& state) {
  const auto n = static_cast<node_id>(state.range(0));
  for (auto _ : state) {
    graph g = make_complete_layered_uniform(n, 16);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(bm_graph_generation)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace radiocast

BENCHMARK_MAIN();
