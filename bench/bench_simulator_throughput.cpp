// Wall-clock microbenchmarks (google-benchmark) for the simulator itself —
// not a paper experiment, but the substrate-cost baseline that tells you
// how far the step-count experiments can be scaled.
//
// Also the guard for the observability contract: the step loop must cost
// the same with metrics DISABLED (null registry — the default for every
// experiment) as it did before instrumentation existed. The main() below
// measures the disabled path against the fully-enabled path and asserts
// the disabled path is not slower (within a noise margin): if the null
// checks ever stop being free, this bench fails.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/runner.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/assert.h"

namespace radiocast {
namespace {

void bm_decay_layered(benchmark::State& state) {
  const auto n = static_cast<node_id>(state.range(0));
  graph g = make_complete_layered_uniform(n, 16);
  const auto proto = make_protocol("decay", n - 1);
  std::uint64_t seed = 1;
  std::int64_t steps = 0;
  for (auto _ : state) {
    run_options opts;
    opts.seed = seed++;
    const run_result r = run_broadcast(g, *proto, opts);
    benchmark::DoNotOptimize(r.informed_step);
    steps += r.steps;
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(bm_decay_layered)->Arg(256)->Arg(1024)->Arg(4096);

void bm_kp_layered(benchmark::State& state) {
  const auto n = static_cast<node_id>(state.range(0));
  graph g = make_complete_layered_uniform(n, n / 8);
  const auto proto = make_protocol("kp", n - 1, n / 8);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    run_options opts;
    opts.seed = seed++;
    const run_result r = run_broadcast(g, *proto, opts);
    benchmark::DoNotOptimize(r.informed_step);
  }
}
BENCHMARK(bm_kp_layered)->Arg(256)->Arg(1024)->Arg(4096);

void bm_select_and_send_tree(benchmark::State& state) {
  const auto n = static_cast<node_id>(state.range(0));
  rng gen(5);
  graph g = make_random_tree(n, gen);
  const auto proto = make_protocol("select-and-send", n - 1);
  for (auto _ : state) {
    run_options opts;
    opts.max_steps = 100'000'000;
    opts.stop = stop_condition::all_halted;
    const run_result r = run_broadcast(g, *proto, opts);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(bm_select_and_send_tree)->Arg(256)->Arg(1024);

void bm_graph_generation(benchmark::State& state) {
  const auto n = static_cast<node_id>(state.range(0));
  for (auto _ : state) {
    graph g = make_complete_layered_uniform(n, 16);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(bm_graph_generation)->Arg(1024)->Arg(4096);

// --------------------------------------------------------------------------
// Metrics-overhead guard.
// --------------------------------------------------------------------------

// Minimum wall-clock over `reps` identical runs (min, not mean: the minimum
// is the least noise-contaminated estimate of the true cost).
double min_wall_ms(const graph& g, const protocol& proto, int reps,
                   obs::metrics_registry* metrics) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    if (metrics != nullptr) metrics->clear();
    run_options opts;
    opts.seed = 42;  // same seed: identical work in both configurations
    opts.metrics = metrics;
    const auto start = std::chrono::steady_clock::now();
    const run_result r = run_broadcast(g, proto, opts);
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    RC_CHECK(r.completed);
    best = std::min(best, ms);
  }
  return best;
}

void check_metrics_overhead(bench::reporter& rep) {
  const node_id n = bench::smoke() ? 512 : 2048;
  const int reps = bench::smoke() ? 3 : 7;
  graph g = make_complete_layered_uniform(n, 16);
  const auto proto = make_protocol("decay", n - 1);
  // Warm up caches/allocator so neither configuration pays first-run costs.
  min_wall_ms(g, *proto, 1, nullptr);

  obs::metrics_registry metrics;
  const double off_ms = min_wall_ms(g, *proto, reps, nullptr);
  const double on_ms = min_wall_ms(g, *proto, reps, &metrics);
  const double ratio = off_ms / on_ms;

  obs::json_value values = obs::json_value::object();
  values.set("n", n);
  values.set("reps", reps);
  values.set("metrics_off_min_ms", off_ms);
  values.set("metrics_on_min_ms", on_ms);
  values.set("off_over_on", ratio);
  rep.add_analytic_case("metrics_overhead/decay/n=" + std::to_string(n),
                        bench::params("n", n, "protocol", "decay"),
                        std::move(values), off_ms + on_ms);

  std::cout << "metrics overhead guard: off=" << off_ms << "ms on=" << on_ms
            << "ms (off/on=" << ratio << ")\n";
  // The disabled path must not be slower than the enabled one beyond
  // scheduling noise — i.e. null-registry instrumentation is free. The
  // margin is generous (25% + 0.5ms) because the runs are short.
  RC_CHECK_MSG(off_ms <= on_ms * 1.25 + 0.5,
               "metrics-disabled step loop measurably slower than "
               "metrics-enabled: the null-check fast path has regressed");
}

// --------------------------------------------------------------------------
// Parallel trial-throughput measurement.
// --------------------------------------------------------------------------

// Times the same seeded trial batch serially and sharded over 4 workers,
// checks the shards are bit-identical to the serial records, and reports
// the trial-throughput speedup in the telemetry. The speedup is a
// MEASUREMENT, not an assertion: on a multi-core host it should reach ≥2×
// at 4 threads; on a single-core host (hardware_threads() == 1) the best
// possible value is ~1×, so the artifact records hardware_threads
// alongside it for interpretation.
void check_parallel_speedup(bench::reporter& rep) {
  const node_id n = bench::smoke() ? 256 : 1024;
  const int trials = bench::smoke() ? 8 : 48;
  const int par_threads = 4;
  graph g = make_complete_layered_uniform(n, 16);
  const auto proto = make_protocol("decay", n - 1);

  auto timed = [&](int threads, trial_set* out) {
    trial_options topts;
    topts.trials = trials;
    topts.base_seed = 7;
    topts.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    *out = parallel_run_trials(g, *proto, topts);
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  trial_set warmup;
  timed(par_threads, &warmup);  // touch caches, spawn-thread warm-up

  trial_set serial, parallel;
  const double serial_ms = timed(1, &serial);
  const double parallel_ms = timed(par_threads, &parallel);

  // The determinism contract, enforced where the speedup is measured.
  RC_CHECK(serial.trials.size() == parallel.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    const trial_record& a = serial.trials[i];
    const trial_record& b = parallel.trials[i];
    RC_CHECK_MSG(a.seed == b.seed && a.completed == b.completed &&
                     a.steps == b.steps && a.informed_step == b.informed_step &&
                     a.transmissions == b.transmissions &&
                     a.collisions == b.collisions &&
                     a.deliveries == b.deliveries,
                 "parallel trial records diverged from serial ones");
  }

  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 1.0;
  obs::json_value values = obs::json_value::object();
  values.set("n", n);
  values.set("trials", trials);
  values.set("threads", par_threads);
  values.set("hardware_threads", exec::hardware_threads());
  values.set("serial_wall_ms", serial_ms);
  values.set("parallel_wall_ms", parallel_ms);
  values.set("speedup", speedup);
  rep.add_analytic_case(
      "parallel_trials/decay/n=" + std::to_string(n),
      bench::params("n", n, "protocol", "decay", "threads", par_threads),
      std::move(values), serial_ms + parallel_ms);

  std::cout << "parallel trial throughput: serial=" << serial_ms
            << "ms threads=" << par_threads << " parallel=" << parallel_ms
            << "ms (speedup=" << speedup
            << "x, hardware threads=" << exec::hardware_threads() << ")\n";
}

// --------------------------------------------------------------------------
// Frontier-engine speedup measurement.
// --------------------------------------------------------------------------

// Minimum wall-clock and step count of the same seeded run under a given
// engine (min over reps, as in check_metrics_overhead).
struct engine_timing {
  double min_ms = 1e300;
  std::int64_t steps = 0;
  run_result result;
};

engine_timing time_engine(const graph& g, const protocol& proto, int reps,
                          step_engine engine) {
  engine_timing out;
  for (int rep = 0; rep < reps; ++rep) {
    run_options opts;
    opts.seed = 42;  // same seed: both engines do identical protocol work
    opts.max_steps = 10'000'000;
    opts.engine = engine;
    const auto start = std::chrono::steady_clock::now();
    run_result r = run_broadcast(g, proto, opts);
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    RC_CHECK(r.completed);
    out.steps = r.steps;
    // radiocast-analyze: allow(taint) -- min-of-reps selection between
    // bit-identical runs (same seed, RC_CHECKed completed); timing picks
    // which copy to keep, never what it contains.
    if (ms < out.min_ms) {
      out.min_ms = ms;
      out.result = std::move(r);
    }
  }
  return out;
}

// Times the reference engine (phase 1 over all n nodes) against the
// frontier engine (phase 1 over the awake set) on a topology built to
// keep the awake set small for most of the run: a thin chain of d − 1
// single-node layers with all the slack in the LAST layer, so the
// frontier stays ≤ a handful of nodes until the wave reaches the fat
// layer. Checks the two engines produce bit-identical results where the
// speedup is measured, and asserts the frontier engine actually wins.
void check_frontier_speedup(bench::reporter& rep) {
  const node_id n = bench::smoke() ? 2048 : 16384;
  const int d = bench::smoke() ? 128 : 512;
  const int reps = bench::smoke() ? 3 : 5;
  // Fat layer last: awake-set size stays O(1) for d − 1 of the d hops.
  graph g = make_complete_layered_fat(n, d, /*fat_index=*/d);
  const auto proto = make_protocol("decay", n - 1);

  // Warm-up, then min-of-reps per engine.
  time_engine(g, *proto, 1, step_engine::frontier);
  const engine_timing ref = time_engine(g, *proto, reps,
                                        step_engine::reference);
  const engine_timing fro = time_engine(g, *proto, reps,
                                        step_engine::frontier);

  // Bit-identity enforced where the speedup is measured.
  RC_CHECK_MSG(ref.result.steps == fro.result.steps &&
                   ref.result.informed_step == fro.result.informed_step &&
                   ref.result.transmissions == fro.result.transmissions &&
                   ref.result.collisions == fro.result.collisions &&
                   ref.result.deliveries == fro.result.deliveries &&
                   ref.result.informed_at == fro.result.informed_at,
               "frontier engine diverged from the reference engine");

  const double steps_per_sec_ref =
      static_cast<double>(ref.steps) / (ref.min_ms / 1000.0);
  const double steps_per_sec_fro =
      static_cast<double>(fro.steps) / (fro.min_ms / 1000.0);
  const double speedup = fro.min_ms > 0.0 ? ref.min_ms / fro.min_ms : 1.0;

  obs::json_value values = obs::json_value::object();
  values.set("n", n);
  values.set("d", d);
  values.set("reps", reps);
  values.set("steps", fro.steps);
  values.set("reference_min_ms", ref.min_ms);
  values.set("frontier_min_ms", fro.min_ms);
  values.set("steps_per_sec_reference", steps_per_sec_ref);
  values.set("steps_per_sec_frontier", steps_per_sec_fro);
  values.set("speedup", speedup);
  rep.add_analytic_case(
      "frontier_speedup/decay/layered_fat/n=" + std::to_string(n) +
          "/d=" + std::to_string(d),
      bench::params("n", n, "protocol", "decay", "d", d),
      std::move(values), ref.min_ms + fro.min_ms);

  std::cout << "frontier engine speedup: reference=" << ref.min_ms
            << "ms frontier=" << fro.min_ms << "ms over " << fro.steps
            << " steps (speedup=" << speedup << "x, "
            << steps_per_sec_fro << " steps/s)\n";
  // The frontier engine must actually be faster on its home turf — a
  // large deep network where awake ≪ n for most steps. The acceptance
  // target is ≥3×; the hard floor here is >1× so noisy CI hosts don't
  // flake, with the measured ratio recorded in the artifact.
  RC_CHECK_MSG(speedup > 1.0,
               "frontier engine not faster than the reference engine on a "
               "large-D layered network: the awake-set skip has regressed");
}

// --------------------------------------------------------------------------
// Mega-scale SoA measurement.
// --------------------------------------------------------------------------

// The opposite regime from check_frontier_speedup: a fat-FIRST layered
// network (all slack in layer 1) keeps essentially every node awake from
// step 2 on, so the frontier engine's awake-set skip buys nothing and the
// SoA engine's remaining levers — contiguous state, devirtualized step
// loop — are what get measured. Also drives the engine's namesake
// workload: a (smoke-scaled) million-node layered and sparse-G(n, p)
// completion run each, recorded as wall clock + exact step counts.
void check_mega_scale(bench::reporter& rep) {
  const node_id n = bench::smoke() ? (1 << 14) : (1 << 18);
  const int d = 64;
  const int reps = bench::smoke() ? 3 : 5;
  graph g = make_complete_layered_fat(n, d, /*fat_index=*/1);
  const auto proto = make_protocol("decay", n - 1);

  time_engine(g, *proto, 1, step_engine::soa);  // warm-up
  const engine_timing fro = time_engine(g, *proto, reps,
                                        step_engine::frontier);
  const engine_timing soa = time_engine(g, *proto, reps, step_engine::soa);

  // Bit-identity enforced where the speedup is measured.
  RC_CHECK_MSG(soa.result.steps == fro.result.steps &&
                   soa.result.informed_step == fro.result.informed_step &&
                   soa.result.transmissions == fro.result.transmissions &&
                   soa.result.collisions == fro.result.collisions &&
                   soa.result.deliveries == fro.result.deliveries &&
                   soa.result.informed_at == fro.result.informed_at,
               "soa engine diverged from the frontier engine");

  const double steps_per_sec_fro =
      static_cast<double>(fro.steps) / (fro.min_ms / 1000.0);
  const double steps_per_sec_soa =
      static_cast<double>(soa.steps) / (soa.min_ms / 1000.0);
  const double soa_speedup = soa.min_ms > 0.0 ? fro.min_ms / soa.min_ms : 1.0;

  obs::json_value values = obs::json_value::object();
  values.set("n", n);
  values.set("d", d);
  values.set("reps", reps);
  values.set("steps", soa.steps);
  values.set("frontier_min_ms", fro.min_ms);
  values.set("soa_min_ms", soa.min_ms);
  values.set("steps_per_sec_frontier", steps_per_sec_fro);
  values.set("steps_per_sec_soa", steps_per_sec_soa);
  values.set("soa_speedup", soa_speedup);

  // Million-node completion runs (soa only: the virtual engines take
  // minutes at this size). Smoke shrinks n so CI stays in seconds.
  const node_id mega = bench::smoke() ? (1 << 17) : 1'000'000;
  double mega_wall = 0.0;
  {
    graph mg = make_complete_layered_fat(mega, d, /*fat_index=*/1);
    const auto mproto = make_protocol("decay", mega - 1);
    run_options opts;
    opts.seed = 42;
    opts.max_steps = 10'000'000;
    opts.engine = step_engine::soa;
    const auto start = std::chrono::steady_clock::now();
    const run_result r = run_broadcast(mg, *mproto, opts);
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    RC_CHECK_MSG(r.completed, "mega-scale layered broadcast did not complete");
    values.set("mega_n", mega);
    values.set("mega_layered_wall_ms", ms);
    values.set("mega_layered_steps", r.steps);
    mega_wall += ms;
    std::cout << "mega scale: layered n=" << mega << " completed in "
              << r.steps << " steps, " << ms << "ms (soa)\n";
  }
  {
    rng gen(9);
    graph mg = make_gnp_sparse_connected(mega, 6.0 / mega, gen);
    const auto mproto = make_protocol("decay", mega - 1);
    run_options opts;
    opts.seed = 43;
    opts.max_steps = 10'000'000;
    opts.engine = step_engine::soa;
    const auto start = std::chrono::steady_clock::now();
    const run_result r = run_broadcast(mg, *mproto, opts);
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    RC_CHECK_MSG(r.completed, "mega-scale G(n,p) broadcast did not complete");
    values.set("mega_gnp_wall_ms", ms);
    values.set("mega_gnp_steps", r.steps);
    mega_wall += ms;
    std::cout << "mega scale: sparse gnp n=" << mega << " completed in "
              << r.steps << " steps, " << ms << "ms (soa)\n";
  }

  rep.add_analytic_case(
      "mega_scale/decay/layered_fat_first/n=" + std::to_string(n) +
          "/d=" + std::to_string(d),
      bench::params("n", n, "protocol", "decay", "d", d),
      std::move(values), fro.min_ms + soa.min_ms + mega_wall);

  std::cout << "soa engine speedup: frontier=" << fro.min_ms
            << "ms soa=" << soa.min_ms << "ms over " << soa.steps
            << " steps (soa_speedup=" << soa_speedup << "x, "
            << steps_per_sec_soa << " steps/s)\n";
  // The acceptance target for the SoA layout + devirtualized loop at
  // n = 2^18 is large (≥10× node-steps/s on a dense-awake network); the
  // hard floor here is >1× so noisy or single-core CI hosts don't flake,
  // with the measured ratio recorded in the artifact for the regress gate.
  RC_CHECK_MSG(soa_speedup > 1.0,
               "soa engine not faster than the frontier engine on a "
               "dense-awake layered network: the SoA step loop has "
               "regressed");
}

// --------------------------------------------------------------------------
// Deterministic-protocol SoA measurement.
// --------------------------------------------------------------------------

// Times a fixed step WINDOW of the same seeded run under a given engine.
// The deterministic token protocols keep every informed node in the awake
// list until the traversal winds down, so timing a full n = 2^18 run would
// cost Θ(n²) node-steps regardless of topology; a truncated window bounds
// the work while still measuring the engines on the real mega-scale graph.
// Truncation is exact: both engines stop after the same `window` steps of
// bit-identical work, so every record field still has to match.
engine_timing time_engine_window(const graph& g, const protocol& proto,
                                 int reps, step_engine engine,
                                 std::int64_t window, int step_threads,
                                 std::int64_t shard_grain) {
  engine_timing out;
  for (int rep = 0; rep < reps; ++rep) {
    run_options opts;
    opts.seed = 42;
    opts.max_steps = window;
    opts.stop = stop_condition::all_halted;
    opts.engine = engine;
    opts.step_threads = step_threads;
    opts.step_shard_grain = shard_grain;
    const auto start = std::chrono::steady_clock::now();
    run_result r = run_broadcast(g, proto, opts);
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    out.steps = r.steps;
    // radiocast-analyze: allow(taint) -- min-of-reps selection between
    // bit-identical runs (same seed and step window); timing picks which
    // copy to keep, never what it contains.
    if (ms < out.min_ms) {
      out.min_ms = ms;
      out.result = std::move(r);
    }
  }
  return out;
}

void require_identical(const run_result& a, const run_result& b,
                       const char* what) {
  RC_CHECK_MSG(a.steps == b.steps && a.informed_step == b.informed_step &&
                   a.transmissions == b.transmissions &&
                   a.collisions == b.collisions &&
                   a.deliveries == b.deliveries &&
                   a.informed_at == b.informed_at,
               std::string("soa engine diverged from the frontier engine: ") +
                   what);
}

// The deterministic protocols (select-and-send, complete-layered) under
// frontier vs SoA on an n = 2^18 thin-layer network: the SoA traits forms
// must be bit-identical where the speedup is measured, and the gated
// `det_soa_speedup` (combined frontier wall-clock over combined SoA
// wall-clock across both protocols) must stay above 1×. The per-protocol
// legs are recorded separately for diagnosis but not hard-gated: the
// select-and-send margin is a few percent and would flake on noisy hosts,
// while the combined ratio is dominated by the complete-layered leg and
// only dips below 1× on a genuine step-loop regression. Also records a
// step_threads = 4 sharded-step measurement so the multi-core intra-step
// number lands in a committed baseline.
void check_deterministic_scale(bench::reporter& rep) {
  const node_id n = bench::smoke() ? (1 << 13) : (1 << 18);
  const int d = bench::smoke() ? 32 : 1024;  // thin layers: width = n / d
  const std::int64_t window = bench::smoke() ? 8'000 : 40'000;
  const int reps = bench::smoke() ? 3 : 5;
  const int par_threads = 4;
  // Small shard grain for the threads run so intra-step sharding engages
  // even at smoke scale (awake counts there stay below the default grain);
  // the ordered merge keeps any grain bit-identical to the serial loop.
  const std::int64_t grain = 512;
  graph g = make_complete_layered_uniform(n, d);

  obs::json_value values = obs::json_value::object();
  values.set("n", n);
  values.set("d", d);
  values.set("window_steps", window);
  values.set("reps", reps);
  values.set("hardware_threads", exec::hardware_threads());
  double wall = 0.0;
  double frontier_total_ms = 0.0;
  double soa_total_ms = 0.0;

  const char* kProtos[] = {"select-and-send", "complete-layered"};
  const char* kTags[] = {"sas", "cl"};
  for (int p = 0; p < 2; ++p) {
    const auto proto = make_protocol(kProtos[p], n - 1);
    time_engine_window(g, *proto, 1, step_engine::soa, window, 1, 0);
    const engine_timing fro = time_engine_window(
        g, *proto, reps, step_engine::frontier, window, 1, 0);
    const engine_timing soa = time_engine_window(
        g, *proto, reps, step_engine::soa, window, 1, 0);
    const engine_timing soa4 = time_engine_window(
        g, *proto, reps, step_engine::soa, window, par_threads, grain);

    // Bit-identity enforced where the speedup is measured — single-thread
    // SoA against the frontier oracle, and the sharded run against both.
    require_identical(fro.result, soa.result, kProtos[p]);
    require_identical(soa.result, soa4.result, kProtos[p]);

    const double speedup = soa.min_ms > 0.0 ? fro.min_ms / soa.min_ms : 1.0;
    const double speedup4 =
        soa4.min_ms > 0.0 ? fro.min_ms / soa4.min_ms : 1.0;
    frontier_total_ms += fro.min_ms;
    soa_total_ms += soa.min_ms;
    const std::string tag = kTags[p];
    values.set(tag + "_steps", soa.steps);
    values.set(tag + "_frontier_min_ms", fro.min_ms);
    values.set(tag + "_soa_min_ms", soa.min_ms);
    values.set(tag + "_soa_threads4_min_ms", soa4.min_ms);
    values.set(tag + "_soa_speedup", speedup);
    values.set(tag + "_soa_threads4_speedup", speedup4);
    wall += fro.min_ms + soa.min_ms + soa4.min_ms;

    std::cout << "deterministic scale: " << kProtos[p] << " frontier="
              << fro.min_ms << "ms soa=" << soa.min_ms << "ms soa(t=4)="
              << soa4.min_ms << "ms over " << soa.steps
              << " steps (soa_speedup=" << speedup << "x)\n";
  }
  const double det_soa_speedup =
      soa_total_ms > 0.0 ? frontier_total_ms / soa_total_ms : 1.0;
  values.set("det_soa_speedup", det_soa_speedup);
  rep.add_analytic_case(
      "deterministic_scale/layered_uniform/n=" + std::to_string(n) +
          "/d=" + std::to_string(d),
      bench::params("n", n, "d", d, "window", window), std::move(values),
      wall);

  // The deterministic SoA traits exist to make the token protocols usable
  // at mega scale; the hard floor here is >1× so noisy or single-core CI
  // hosts don't flake, with the measured ratio recorded for the regress
  // gate (`det_soa_speedup`, tolerance-checked in scripts/ci.sh stage 6).
  RC_CHECK_MSG(det_soa_speedup > 1.0,
               "soa traits not faster than the frontier engine for the "
               "deterministic protocols: the devirtualized step loop has "
               "regressed");
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  // Under smoke the google-benchmark pass shrinks to a token run; the
  // overhead guard below still executes in full.
  std::string min_time = "--benchmark_min_time=0.01";
  if (radiocast::bench::smoke()) args.push_back(min_time.data());
  int benchmark_argc = static_cast<int>(args.size());
  benchmark::Initialize(&benchmark_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  radiocast::bench::reporter rep("simulator_throughput");
  rep.config("kind", "microbenchmark");
  radiocast::check_metrics_overhead(rep);
  radiocast::check_parallel_speedup(rep);
  radiocast::check_frontier_speedup(rep);
  radiocast::check_mega_scale(rep);
  radiocast::check_deterministic_scale(rep);
  return 0;
}
