// Experiment E6 (Section 1.2 corollary): complete layered networks are the
// hardest topology for randomized broadcasting but NOT for deterministic
// broadcasting.
//
// Randomized side: the Kushilevitz–Mansour Ω(D log(n/D)) lower bound was
// proved on complete layered networks, and our optimal algorithm matches it
// there — time/(D log(n/D)+log²n) stays Θ(1).
// Deterministic side: Complete-Layered finishes in O(n + D log n), far
// below the deterministic lower bound Ω(n log n / log(n/D)) that holds for
// (other) worst-case topologies — so layered networks are comparatively
// easy deterministically.
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("hardness_corollary");
  rep.config("experiment", "E6");
  rep.config("trials", bench::trial_count(15));
  text_table table("E6: hardness of complete layered networks, by paradigm");
  table.set_header({"n", "D", "rand time", "rand lower bnd", "rand ratio",
                    "det time", "det worst-case bnd", "det ratio"});
  for (const node_id n : bench::sweep({1024, 2048, 4096})) {
    for (const int d : {16, 64, n / 8}) {
      graph g = make_complete_layered_uniform(n, d);
      const auto kp = make_protocol("kp", n - 1, d);
      const std::string cell =
          "n=" + std::to_string(n) + "/D=" + std::to_string(d);
      const auto base = [&](const char* proto) {
        return bench::params("n", n, "D", d, "protocol", proto);
      };
      const double t_rand = bench::mean_steps(bench::run_case(
          rep, cell + "/kp", base("kp"), g, *kp, bench::trial_count(15), 5));
      const double rand_lb = d * bench::lg(static_cast<double>(n) / d);
      const auto cl = make_protocol("complete-layered", n - 1);
      const double t_det = bench::mean_steps(bench::run_case(
          rep, cell + "/complete-layered", base("complete-layered"), g, *cl,
          1, 1, 100'000'000));
      const double det_wc =
          n * bench::lg(n) / bench::lg(static_cast<double>(n) / d);
      table.add(n, d, t_rand, rand_lb, t_rand / rand_lb, t_det, det_wc,
                t_det / det_wc);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 'rand ratio' stays within a small constant\n"
               "band — layered networks saturate the randomized lower bound.\n"
               "'det ratio' shrinks as n grows at every fixed D (read down a\n"
               "D column): deterministic broadcasting on layered networks is\n"
               "o(worst-case bound), so they are NOT the deterministic worst\n"
               "case (the paper's corollary). At the largest D the O(D log n)\n"
               "constant still dominates at these instance sizes.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
