// Experiment E10 (Theorem 2's machinery): (m,k)-selective family sizes.
//
// The jamming argument consumes the Clementi–Monti–Silvestri lower bound:
// any (m,k)-selective family needs ≥ (k/8)·log m / log k sets — this is
// where the per-stage jam count ⌊k·log(n/4)/(8·log k)⌋ comes from. The
// harness builds greedy families, verifies them exhaustively, and brackets
// their size between the CMS bound and the trivial m-singleton family.
#include <chrono>

#include "adversary/selective_family.h"
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("selective_family");
  rep.config("experiment", "E10");
  text_table table("E10: greedy (m,k)-selective families vs the CMS bound");
  table.set_header({"m", "k", "greedy size", "CMS lower bnd", "singletons",
                    "verified"});
  rng gen(2718);
  for (const auto& [m, k] : bench::sweep<std::pair<int, int>>(
           {{8, 2}, {12, 2}, {16, 2}, {20, 2}, {24, 2},
            {10, 3}, {14, 3}, {18, 3}, {12, 4}, {16, 4}})) {
    const auto start = std::chrono::steady_clock::now();
    const set_family family = greedy_selective_family(m, k, gen);
    const bool ok = is_selective(family, m, k);
    const double wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    obs::json_value values = obs::json_value::object();
    values.set("greedy_size", static_cast<std::int64_t>(family.size()));
    values.set("cms_lower_bound", bench::lg(m) * k / 8.0);
    values.set("singletons", m);
    values.set("verified", ok);
    rep.add_analytic_case(
        "m=" + std::to_string(m) + "/k=" + std::to_string(k),
        bench::params("m", m, "k", k), std::move(values), wall_ms);
    table.add(m, k, family.size(), bench::lg(m) * k / 8.0, m,
              std::string(ok ? "yes" : "NO"));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: every family verifies; sizes sit between\n"
               "the CMS lower bound and m (the trivial singleton family),\n"
               "growing with both m and k — small selective families do not\n"
               "exist, which is what lets the jamming adversary stall each\n"
               "layer for ⌊k·log(n/4)/(8·log k)⌋ steps.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
