// Experiment E4 (Theorem 3): Select-and-Send runs in O(n log n) on
// arbitrary undirected networks.
//
// The harness measures the FULL traversal (token back at the source, every
// node halted — the theorem's O(n log n) covers the whole run) across five
// topology families and sweeps n, then fits c·n·log n.
#include "bench_common.h"

namespace radiocast {
namespace {

graph family_graph(const std::string& family, node_id n, rng& gen) {
  if (family == "path") return make_path(n);
  if (family == "tree") return make_random_tree(n, gen);
  if (family == "gnp") return make_gnp_connected(n, 6.0 / n, gen);
  if (family == "grid") return make_grid(n / 16, 16);
  return make_complete_layered_uniform(n, std::max(2, n / 16));
}

void run() {
  bench::reporter rep("select_and_send");
  rep.config("experiment", "E4");
  text_table table("E4: Select-and-Send full-traversal steps vs n");
  table.set_header(
      {"family", "n=128", "n=256", "n=512", "n=1024", "c in c·n·log n",
       "R^2"});
  for (const std::string family :
       {"path", "tree", "gnp", "grid", "layered"}) {
    rng gen(7);
    std::vector<double> xs, ys;
    std::vector<std::string> row{family};
    for (const node_id n : bench::sweep({128, 256, 512, 1024})) {
      graph g = family_graph(family, n, gen);
      const auto proto = make_protocol("select-and-send", n - 1);
      const trial_set batch = bench::run_case(
          rep, family + "/n=" + std::to_string(n),
          bench::params("family", family, "n", n, "protocol",
                        "select-and-send"),
          g, *proto, 1, 1, 100'000'000, stop_condition::all_halted);
      RC_CHECK(batch.all_completed());
      const std::int64_t steps = batch.trials.front().steps;
      xs.push_back(static_cast<double>(n));
      ys.push_back(static_cast<double>(steps));
      row.push_back(std::to_string(steps));
    }
    if (xs.size() >= 2) {
      const fit_result f =
          fit_scaled(xs, ys, [](double x) { return x * bench::lg(x); });
      rep.annotate("fit", bench::fit_json(f));
      row.push_back(text_table::format_double(f.coefficients[0], 2));
      row.push_back(text_table::format_double(f.r_squared, 4));
    }
    while (row.size() < 7) row.push_back("-");  // smoke: sweep too short to fit
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: every family fits c·n·log n with R² ≈ 1\n"
               "and a family-dependent constant c (denser graphs pay more\n"
               "binary-selection segments per visit).\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
