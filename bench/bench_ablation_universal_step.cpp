// Experiment E8 (ablation, Section 2 design argument): why every stage
// carries the extra universal-sequence step.
//
// A node with x informed in-neighbors needs a transmission probability near
// 1/x to be informed; the geometric steps of a stage only reach down to
// D/r. On a complete layered network with one fat layer (in-degree ≫ r/D),
// the ablated algorithm — shortened Decay alone — stalls, while the full
// algorithm sails through, and plain BGI survives only because its stages
// are log n long (the very cost Theorem 1 removes).
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  constexpr std::int64_t kCap = 100'000;  // ≫ 500× the full algorithm
  bench::reporter rep("ablation_universal_step");
  rep.config("experiment", "E8");
  rep.config("cap", static_cast<std::int64_t>(kCap));
  text_table table(
      "E8: ablating the universal-sequence step (fat complete layered "
      "networks, cap 100k steps)");
  table.set_header({"n", "D", "fat in-degree", "kp full", "kp ablated",
                    "bgi decay", "ablation penalty"});
  for (const auto& [n, d] : bench::sweep<std::pair<node_id, int>>(
           {{512, 8}, {512, 16}, {1024, 16}, {2048, 16}, {2048, 32}})) {
    graph g = make_complete_layered_fat(n, d, d - 1);
    const auto full = make_protocol("kp", n - 1, d);
    const auto ablated = make_protocol("kp-ablated", n - 1, d);
    const auto decay = make_protocol("decay", n - 1);
    const std::string cell =
        "n=" + std::to_string(n) + "/D=" + std::to_string(d);
    const auto base = [&](const char* proto) {
      return bench::params("n", n, "D", d, "protocol", proto);
    };
    const double t_full = bench::mean_steps(bench::run_case(
        rep, cell + "/kp-full", base("kp"), g, *full,
        bench::trial_count(10), 9, kCap));
    const double t_decay = bench::mean_steps(bench::run_case(
        rep, cell + "/decay", base("decay"), g, *decay,
        bench::trial_count(10), 9, kCap));
    const int kAblatedTrials = bench::trial_count(4);
    const trial_set ablated_batch = bench::run_case(
        rep, cell + "/kp-ablated", base("kp-ablated"), g, *ablated,
        kAblatedTrials, 9, kCap);
    // Timed-out trials count at the cap: the penalty column is a lower
    // bound when any trial stalls.
    double t_ablated = 0;
    int timeouts = 0;
    for (const trial_record& t : ablated_batch.trials) {
      t_ablated += t.completed ? static_cast<double>(t.informed_step)
                               : static_cast<double>(kCap);
      timeouts += t.completed ? 0 : 1;
    }
    t_ablated /= kAblatedTrials;
    std::string ablated_cell = text_table::format_double(t_ablated);
    if (timeouts > 0) {
      ablated_cell = ">" + ablated_cell + " (" + std::to_string(timeouts) +
                     "/" + std::to_string(kAblatedTrials) + " timed out)";
    }
    table.add_row({std::to_string(n), std::to_string(d),
                   std::to_string(n - 1 - (d - 1)),
                   text_table::format_double(t_full), ablated_cell,
                   text_table::format_double(t_decay),
                   text_table::format_double(t_ablated / t_full, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 'kp ablated' is orders of magnitude slower\n"
               "than 'kp full' (often hitting the cap) and the penalty grows\n"
               "with the fat layer's in-degree — the paper's justification\n"
               "for the p_i step.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
