// Experiment E3 (Theorem 2): the adversarial construction G_A.
//
// Paper claim: for every deterministic algorithm A there is an n-node
// network of radius Θ(D) forcing time Ω(n·log n / log(n/D)). The harness
// builds G_A against each deterministic protocol, replays the protocol on
// the real simulator, and reports measured time against both the per-stage
// forced delay (D/2−1)·s and the asymptotic bound shape.
#include "adversary/lower_bound_builder.h"
#include "bench_common.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("lower_bound_adversary");
  rep.config("experiment", "E3");
  text_table table("E3: adversarial network G_A per deterministic protocol");
  table.set_header({"protocol", "n", "D", "k", "s/stage", "forced",
                    "measured", "bound", "measured/bound"});
  for (const std::string name :
       {"round-robin", "select-and-send", "interleaved"}) {
    for (const auto& [n, d] : bench::sweep<std::pair<node_id, int>>(
             {{512, 8}, {1024, 8}, {2048, 16}, {4096, 16}})) {
      const auto proto = make_protocol(name, n - 1);
      const adversarial_network net =
          build_adversarial_network(*proto, n, d);
      const trial_set batch = bench::run_case(
          rep,
          name + "/n=" + std::to_string(n) + "/D=" + std::to_string(d),
          bench::params("protocol", name, "n", n, "D", d, "k", net.k,
                        "jam_steps_per_stage", net.jam_steps_per_stage,
                        "stuck", net.stuck),
          net.g, *proto, 1, 1, 200'000'000);
      const trial_record& res = batch.trials.front();
      const double measured =
          res.completed ? static_cast<double>(res.informed_step)
                        : 200'000'000.0;
      const double bound = n * bench::lg(n) / bench::lg(
                               static_cast<double>(n) / d);
      obs::json_value forced = obs::json_value::object();
      forced.set("forced_steps", net.forced_steps);
      forced.set("bound", bound);
      forced.set("measured_over_bound", measured / bound);
      rep.annotate("adversary", std::move(forced));
      table.add(name + (net.stuck ? " (stuck)" : ""), n, d, net.k,
                net.jam_steps_per_stage, net.forced_steps, measured, bound,
                measured / bound);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: measured ≥ forced for every row (the\n"
               "construction's guarantee), and measured/bound = Ω(1): no\n"
               "deterministic algorithm beats the Ω(n log n / log(n/D))\n"
               "shape on its own adversarial network.\n";
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
