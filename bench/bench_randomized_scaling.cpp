// Experiment E2 (Theorem 1 optimality): normalized scaling of the optimal
// randomized algorithm.
//
// Paper claim: completion time is Θ(D log(n/D) + log² n) — the ratio
// time / (D log(n/D) + log²n) must stay bounded across the whole (n, D)
// sweep, and a least-squares fit of time against the two basis terms
// D·log(n/D) and log²n should explain the data (high R²). Also reports the
// doubling wrapper's overhead relative to known-D operation.
#include "bench_common.h"
#include "core/kp_randomized.h"

namespace radiocast {
namespace {

void run() {
  bench::reporter rep("randomized_scaling");
  rep.config("experiment", "E2");
  rep.config("trials", bench::trial_count(15));
  text_table table(
      "E2: KP randomized time vs theory bound (complete layered, 15 trials)");
  table.set_header({"n", "D", "time", "bound", "time/bound", "doubling"});
  std::vector<std::vector<double>> features;
  std::vector<double> ys;
  for (const node_id n : bench::sweep({256, 512, 1024, 2048, 4096})) {
    for (int d = 4; d <= n / 8; d *= 4) {
      graph g = make_complete_layered_uniform(n, d);
      const auto kp = make_protocol("kp", n - 1, d);
      const std::string cell =
          "n=" + std::to_string(n) + "/D=" + std::to_string(d);
      const double t = bench::mean_steps(bench::run_case(
          rep, cell + "/kp",
          bench::params("n", n, "D", d, "protocol", "kp"), g, *kp,
          bench::trial_count(15), 3));
      // The doubling wrapper pays for the unsuccessful smaller-D blocks;
      // keep its budget small so the bench finishes quickly.
      kp_options opts;
      opts.stage_budget = 8;
      const kp_randomized_protocol doubling(n - 1, opts);
      const double t_doubling = bench::mean_steps(bench::run_case(
          rep, cell + "/kp-doubling",
          bench::params("n", n, "D", d, "protocol", "kp-doubling"), g,
          doubling, bench::trial_count(5), 3));
      const double bound = bench::kp_bound(n, d);
      table.add(n, d, t, bound, t / bound, t_doubling);
      features.push_back({d * bench::lg(static_cast<double>(n) / d),
                          bench::lg(n) * bench::lg(n)});
      ys.push_back(t);
    }
  }
  table.print(std::cout);
  if (ys.size() >= 3) {
    const fit_result f = fit_features(features, ys);
    std::cout << "  two-term fit time ≈ a·D·log(n/D) + b·log²n: a="
              << text_table::format_double(f.coefficients[0], 3)
              << " b=" << text_table::format_double(f.coefficients[1], 3)
              << " R²=" << text_table::format_double(f.r_squared, 4) << "\n"
              << "Expected shape: time/bound bounded (no drift with n or D);"
                 " R² close to 1.\n";
  }
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  radiocast::bench::parse_threads_flag(argc, argv);
  radiocast::run();
  return 0;
}
