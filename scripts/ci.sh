#!/usr/bin/env bash
# Continuous-integration entry point: static analysis first, then builds and
# tests in three configurations, then a chaos invariant-fuzzing smoke pass
# under sanitizers, then a telemetry smoke pass, then the campaign
# interruption drill and the perf-regression gate.
#
#   0. Static analysis                  — builds only the two static gates
#      (radiocast_lint + radiocast_analyze, which link radiocast_json but
#      NOT the simulator library) and runs them BEFORE any other compile
#      stage: the determinism lint over src/ bench/ tests/ tools/
#      examples/, then the semantic analysis suite (architecture layering
#      gate, determinism taint pass, engine/protocol contract checker,
#      hot-path hygiene) over src/ tools/ bench/. A wall-clock seed, a raw
#      std::mt19937, or an upward #include fails CI in seconds, not after
#      a full build. clang-tidy (config pinned in .clang-tidy) then runs
#      over the library sources via the exported compile_commands.json —
#      MANDATORY: a host without clang-tidy fails this stage unless
#      RADIOCAST_SKIP_CLANG_TIDY=1 is set explicitly. The stage ends with
#      a per-tool runtime summary. The JSON reports both gates write are
#      schema-validated in stage 1, once radiocast_inspect is built.
#   1. Release build (build/)           — cmake + ctest, the tier-1 gate.
#      RADIOCAST_WERROR=ON (the default) promotes the hardened warning set
#      (-Wshadow -Wconversion -Wsign-conversion -Wextra-semi -Wpedantic)
#      to errors.
#   2. Sanitizer build (build-san/)     — address+undefined via
#      -DRADIOCAST_SANITIZE=address,undefined, full ctest under
#      instrumentation.
#   3. Thread-sanitizer build (build-tsan/) — -DRADIOCAST_SANITIZE=thread;
#      runs the parallel-execution, simulator, and chaos suites with
#      RADIOCAST_THREADS=4 so parallel_run_trials genuinely shards across
#      workers under TSan on any host (the env default makes every
#      threads=0 call site parallel, and determinism tests pass at any
#      worker count by construction). chaos_test additionally drives the
#      soa engine's intra-step sharding (step_threads=2..4, grain=1), so
#      the two-phase fork/join and ordered shard merges are TSan-checked.
#   4. Chaos smoke (build-san/ci-chaos) — radiocast_chaos fuzzes ~200
#      seeded fault-model × protocol × graph scenarios under asan/ubsan,
#      checking the ten simulator invariants (radio rule, crash/partition
#      masking, replay determinism, engine bit-identity, zero-intensity
#      identity); ANY violation fails CI, and the emitted
#      radiocast.chaos.v1 report must pass `radiocast_inspect validate`.
#   5. Telemetry smoke (build/ci-smoke) — every bench with RADIOCAST_SMOKE=1
#      (first sweep point, ≤2 trials), then `radiocast_inspect validate` on
#      each emitted BENCH_*.json. Runs in
#      a scratch directory so the committed full-run artifacts at the
#      repository root are untouched.
#   6. Campaign smoke + regression gate (build/ci-campaign) — the
#      interruption drill: runs a 4-shard campaign, stops it after 2 shards
#      (--stop-after), resumes it, merges, validates the merged artifact,
#      and diffs it against an uninterrupted single-pass merge — the two
#      must be bit-identical outside wall-clock keys. Then the
#      perf-regression gate: `radiocast_inspect regress` compares stage 4's
#      fresh smoke artifacts against the committed bench/baselines/ and
#      fails CI on any gated drop (see scripts/update_baselines.sh).
#
# Every ctest invocation carries --timeout 300 so a hung test (deadlocked
# pool, runaway adversary) fails the stage instead of wedging CI.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== [0/7] Static analysis (lint + semantic passes + clang-tidy) ==="
# Configure-only is enough to export compile_commands.json for clang-tidy;
# the only targets built here are the two standalone static gates, so a
# seeded violation fails in seconds without compiling the simulator.
stage0_started=$SECONDS
cmake -B build -S .
cmake --build build --parallel --target radiocast_lint radiocast_analyze
t_build=$((SECONDS - stage0_started))

t0=$SECONDS
build/tools/radiocast_lint --root . --json build/lint-report.json
t_lint=$((SECONDS - t0))

t0=$SECONDS
build/tools/radiocast_analyze --root . --json build/analysis-report.json
t_analyze=$((SECONDS - t0))

t0=$SECONDS
if [ "${RADIOCAST_SKIP_CLANG_TIDY:-0}" = "1" ]; then
  echo "clang-tidy: skipped (RADIOCAST_SKIP_CLANG_TIDY=1)"
elif command -v clang-tidy >/dev/null 2>&1; then
  echo "--- clang-tidy (checks pinned in .clang-tidy) ---"
  clang-tidy -p build --quiet src/*/*.cpp tools/*.cpp tools/lint/*.cpp \
    tools/analyze/*.cpp
else
  echo "ci: clang-tidy is required for stage 0; install it or set" >&2
  echo "ci: RADIOCAST_SKIP_CLANG_TIDY=1 to skip explicitly" >&2
  exit 1
fi
t_tidy=$((SECONDS - t0))

echo "--- stage 0 runtimes: build ${t_build}s, lint ${t_lint}s," \
  "analyze ${t_analyze}s, clang-tidy ${t_tidy}s ---"

echo "=== [1/7] Release build + tests ==="
cmake --build build --parallel
# Stage 0's reports get their schema check here, now that
# radiocast_inspect exists.
build/tools/radiocast_inspect validate build/lint-report.json \
  build/analysis-report.json
ctest --test-dir build --output-on-failure --timeout 300

echo "=== [2/7] Sanitizer build + tests (address,undefined) ==="
cmake -B build-san -S . -DRADIOCAST_SANITIZE=address,undefined
cmake --build build-san --parallel
ctest --test-dir build-san --output-on-failure --timeout 300

echo "=== [3/7] Thread-sanitizer build + parallel tests ==="
cmake -B build-tsan -S . -DRADIOCAST_SANITIZE=thread
cmake --build build-tsan --parallel --target parallel_test sim_test \
  chaos_test
# chaos_test rides along for the intra-step-sharded soa engine: its SoA
# leg forces step_threads=2 / grain=1 on every sampled scenario (and the
# broken-merge case runs 4 shards), so exec::run_shards' fork/join and the
# ordered phase merges execute under TSan on every push. RADIOCAST_THREADS=4
# makes every threads=0 call site (including run_options::step_threads=0)
# genuinely parallel on any host.
RADIOCAST_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
  --timeout 300 -R 'parallel_test|sim_test|chaos_test'

echo "=== [4/7] Chaos smoke (invariant fuzzing under asan/ubsan) ==="
chaos_dir=build-san/ci-chaos
rm -rf "$chaos_dir"
mkdir -p "$chaos_dir"
cmake --build build-san --parallel --target radiocast_chaos
# ~200 seeded fault-model × protocol × graph scenarios; the tool exits
# non-zero on ANY invariant violation, so this line IS the gate. The
# sanitizer build doubles the payoff: every fuzzed scenario also runs
# under asan/ubsan.
build-san/tools/radiocast_chaos --runs 200 --seed 1 \
  --out "$chaos_dir"/chaos-report.json
build/tools/radiocast_inspect validate "$chaos_dir"/chaos-report.json

echo "=== [5/7] Telemetry smoke + schema validation ==="
smoke_dir=build/ci-smoke
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "--- $(basename "$b") ---"
    (cd "$smoke_dir" && RADIOCAST_SMOKE=1 "../../$b")
  fi
done
build/tools/radiocast_inspect validate "$smoke_dir"/BENCH_*.json
# The throughput bench carries the frontier-engine speedup gate (the bench
# itself RC_CHECKs frontier > reference and bit-identical results); make
# its artifact's presence and schema an explicit CI requirement rather
# than a side effect of the wildcard above.
if [ ! -f "$smoke_dir"/BENCH_simulator_throughput.json ]; then
  echo "ci: BENCH_simulator_throughput.json missing from smoke run" >&2
  exit 1
fi
build/tools/radiocast_inspect validate \
  "$smoke_dir"/BENCH_simulator_throughput.json

echo "=== [6/7] Campaign smoke (interrupt/resume/merge) + regression gate ==="
campaign_dir=build/ci-campaign
rm -rf "$campaign_dir"
mkdir -p "$campaign_dir"
cmake --build build --parallel --target radiocast_campaign
cat > "$campaign_dir"/manifest.json <<'EOF'
{
  "schema": "radiocast.campaign.v1",
  "name": "ci-smoke-campaign",
  "base_seed": 1,
  "trials_per_point": 4,
  "shard_size": 2,
  "threads": 2,
  "max_steps": 100000,
  "grid": [
    {"family": "complete-layered", "n": 48, "d": 6, "protocol": "decay"},
    {"family": "layered-fat", "n": 64, "d": 4, "protocol": "kp",
     "known_d": 4}
  ]
}
EOF
# Interruption drill: 4 shards total — stop after 2, resume, merge.
build/tools/radiocast_campaign run "$campaign_dir"/manifest.json \
  --out "$campaign_dir"/interrupted --stop-after 2
build/tools/radiocast_campaign run "$campaign_dir"/manifest.json \
  --out "$campaign_dir"/interrupted
build/tools/radiocast_campaign merge "$campaign_dir"/manifest.json \
  --out "$campaign_dir"/interrupted \
  --output "$campaign_dir"/merged-interrupted.json
# Control: the same campaign in one uninterrupted pass.
build/tools/radiocast_campaign run "$campaign_dir"/manifest.json \
  --out "$campaign_dir"/straight
build/tools/radiocast_campaign merge "$campaign_dir"/manifest.json \
  --out "$campaign_dir"/straight \
  --output "$campaign_dir"/merged-straight.json
build/tools/radiocast_inspect validate \
  "$campaign_dir"/merged-interrupted.json \
  "$campaign_dir"/merged-straight.json
# Resume bit-identity: the merges must agree outside wall-clock keys
# (radiocast_inspect diff excludes those by default and exits non-zero on
# any other difference).
build/tools/radiocast_inspect diff \
  "$campaign_dir"/merged-interrupted.json \
  "$campaign_dir"/merged-straight.json
# Perf-regression gate: stage 5's fresh smoke artifacts vs the committed
# baselines. Deterministic keys (steps, steps.mean, timeout_rate) gate
# exactly; wall-clock-derived ratios get an extra-wide tolerance here
# because smoke-mode runs (≤2 trials) are noisy on shared CI hosts — the
# throughput bench separately RC_CHECKs frontier > reference, so a real
# engine regression still fails stage 5.
build/tools/radiocast_inspect regress \
  bench/baselines/BENCH_simulator_throughput.json \
  "$smoke_dir"/BENCH_simulator_throughput.json \
  --tolerance speedup=75 --tolerance soa_speedup=75 \
  --tolerance off_over_on=75 --tolerance det_soa_speedup=75
build/tools/radiocast_inspect regress \
  bench/baselines/BENCH_fault_resilience.json \
  "$smoke_dir"/BENCH_fault_resilience.json

echo "ci: all seven stages passed"
