#!/usr/bin/env bash
# Continuous-integration entry point: builds and tests the library in three
# configurations and smoke-validates the telemetry pipeline.
#
#   1. Release build (build/)           — cmake + ctest, the tier-1 gate.
#   2. Sanitizer build (build-san/)     — address+undefined via
#      -DRADIOCAST_SANITIZE=address,undefined, full ctest under
#      instrumentation.
#   3. Thread-sanitizer build (build-tsan/) — -DRADIOCAST_SANITIZE=thread;
#      runs the parallel-execution and simulator suites with
#      RADIOCAST_THREADS=4 so parallel_run_trials genuinely shards across
#      workers under TSan on any host (the env default makes every
#      threads=0 call site parallel, and determinism tests pass at any
#      worker count by construction).
#   4. Telemetry smoke (build/ci-smoke) — every bench with RADIOCAST_SMOKE=1
#      (first sweep point, ≤2 trials), then `radiocast_inspect validate` on
#      each emitted BENCH_*.json. Runs in a scratch directory so the
#      committed full-run artifacts at the repository root are untouched.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== [1/4] Release build + tests ==="
cmake -B build -S .
cmake --build build --parallel
ctest --test-dir build --output-on-failure

echo "=== [2/4] Sanitizer build + tests (address,undefined) ==="
cmake -B build-san -S . -DRADIOCAST_SANITIZE=address,undefined
cmake --build build-san --parallel
ctest --test-dir build-san --output-on-failure

echo "=== [3/4] Thread-sanitizer build + parallel tests ==="
cmake -B build-tsan -S . -DRADIOCAST_SANITIZE=thread
cmake --build build-tsan --parallel --target parallel_test sim_test
RADIOCAST_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
  -R 'parallel_test|sim_test'

echo "=== [4/4] Telemetry smoke + schema validation ==="
smoke_dir=build/ci-smoke
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "--- $(basename "$b") ---"
    (cd "$smoke_dir" && RADIOCAST_SMOKE=1 "../../$b")
  fi
done
build/tools/radiocast_inspect validate "$smoke_dir"/BENCH_*.json

echo "ci: all four stages passed"
