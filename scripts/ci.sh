#!/usr/bin/env bash
# Continuous-integration entry point: builds and tests the library in two
# configurations and smoke-validates the telemetry pipeline.
#
#   1. Release build (build/)           — cmake + ctest, the tier-1 gate.
#   2. Sanitizer build (build-san/)     — address+undefined via
#      -DRADIOCAST_SANITIZE=address,undefined, full ctest under
#      instrumentation.
#   3. Telemetry smoke (build/ci-smoke) — every bench with RADIOCAST_SMOKE=1
#      (first sweep point, ≤2 trials), then `radiocast_inspect validate` on
#      each emitted BENCH_*.json. Runs in a scratch directory so the
#      committed full-run artifacts at the repository root are untouched.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== [1/3] Release build + tests ==="
cmake -B build -S .
cmake --build build --parallel
ctest --test-dir build --output-on-failure

echo "=== [2/3] Sanitizer build + tests (address,undefined) ==="
cmake -B build-san -S . -DRADIOCAST_SANITIZE=address,undefined
cmake --build build-san --parallel
ctest --test-dir build-san --output-on-failure

echo "=== [3/3] Telemetry smoke + schema validation ==="
smoke_dir=build/ci-smoke
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "--- $(basename "$b") ---"
    (cd "$smoke_dir" && RADIOCAST_SMOKE=1 "../../$b")
  fi
done
build/tools/radiocast_inspect validate "$smoke_dir"/BENCH_*.json

echo "ci: all three stages passed"
