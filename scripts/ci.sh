#!/usr/bin/env bash
# Continuous-integration entry point: static analysis first, then builds and
# tests in three configurations, then a telemetry smoke pass.
#
#   0. Static analysis                  — builds only radiocast_lint (plus
#      its deps) and runs the determinism lint over src/ bench/ tests/
#      tools/ examples/ BEFORE any other compile stage; a wall-clock seed or
#      raw std::mt19937 fails CI in seconds, not after a full build. Also
#      runs clang-tidy (config pinned in .clang-tidy) over the library
#      sources via the exported compile_commands.json when clang-tidy is
#      installed, and skips it gracefully otherwise.
#   1. Release build (build/)           — cmake + ctest, the tier-1 gate.
#      RADIOCAST_WERROR=ON (the default) promotes the hardened warning set
#      (-Wshadow -Wconversion -Wsign-conversion -Wextra-semi -Wpedantic)
#      to errors.
#   2. Sanitizer build (build-san/)     — address+undefined via
#      -DRADIOCAST_SANITIZE=address,undefined, full ctest under
#      instrumentation.
#   3. Thread-sanitizer build (build-tsan/) — -DRADIOCAST_SANITIZE=thread;
#      runs the parallel-execution and simulator suites with
#      RADIOCAST_THREADS=4 so parallel_run_trials genuinely shards across
#      workers under TSan on any host (the env default makes every
#      threads=0 call site parallel, and determinism tests pass at any
#      worker count by construction).
#   4. Telemetry smoke (build/ci-smoke) — every bench with RADIOCAST_SMOKE=1
#      (first sweep point, ≤2 trials), then `radiocast_inspect validate` on
#      each emitted BENCH_*.json plus the lint report from stage 0. Runs in
#      a scratch directory so the committed full-run artifacts at the
#      repository root are untouched.
#
# Every ctest invocation carries --timeout 300 so a hung test (deadlocked
# pool, runaway adversary) fails the stage instead of wedging CI.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== [0/5] Static analysis (determinism lint + clang-tidy) ==="
cmake -B build -S .
cmake --build build --parallel --target radiocast_lint radiocast_inspect
build/tools/radiocast_lint --root . --json build/lint-report.json
build/tools/radiocast_inspect validate build/lint-report.json
if command -v clang-tidy >/dev/null 2>&1; then
  echo "--- clang-tidy (checks pinned in .clang-tidy) ---"
  clang-tidy -p build --quiet src/*/*.cpp tools/*.cpp tools/lint/*.cpp
else
  echo "clang-tidy not installed; skipping (lint stage still gates)"
fi

echo "=== [1/5] Release build + tests ==="
cmake --build build --parallel
ctest --test-dir build --output-on-failure --timeout 300

echo "=== [2/5] Sanitizer build + tests (address,undefined) ==="
cmake -B build-san -S . -DRADIOCAST_SANITIZE=address,undefined
cmake --build build-san --parallel
ctest --test-dir build-san --output-on-failure --timeout 300

echo "=== [3/5] Thread-sanitizer build + parallel tests ==="
cmake -B build-tsan -S . -DRADIOCAST_SANITIZE=thread
cmake --build build-tsan --parallel --target parallel_test sim_test
RADIOCAST_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
  --timeout 300 -R 'parallel_test|sim_test'

echo "=== [4/5] Telemetry smoke + schema validation ==="
smoke_dir=build/ci-smoke
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "--- $(basename "$b") ---"
    (cd "$smoke_dir" && RADIOCAST_SMOKE=1 "../../$b")
  fi
done
build/tools/radiocast_inspect validate "$smoke_dir"/BENCH_*.json
# The throughput bench carries the frontier-engine speedup gate (the bench
# itself RC_CHECKs frontier > reference and bit-identical results); make
# its artifact's presence and schema an explicit CI requirement rather
# than a side effect of the wildcard above.
if [ ! -f "$smoke_dir"/BENCH_simulator_throughput.json ]; then
  echo "ci: BENCH_simulator_throughput.json missing from smoke run" >&2
  exit 1
fi
build/tools/radiocast_inspect validate \
  "$smoke_dir"/BENCH_simulator_throughput.json

echo "ci: all five stages passed"
