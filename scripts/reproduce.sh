#!/usr/bin/env bash
# Rebuilds radiocast, runs the full test suite, and regenerates every
# experiment table (E1–E15) into test_output.txt / bench_output.txt at the
# repository root, plus one BENCH_<name>.json telemetry artifact per bench
# (schema "radiocast.bench.v1"; see docs/OBSERVABILITY.md). This is the
# one-command reproduction entry point.
#
# Usage:
#   scripts/reproduce.sh          full run (all experiments, full sweeps)
#   scripts/reproduce.sh smoke    minutes-scale validation: every bench runs
#                                 with RADIOCAST_SMOKE=1 (first sweep point,
#                                 ≤2 trials) and every emitted JSON artifact
#                                 is schema-checked with radiocast_inspect;
#                                 missing keys fail the run.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"

# No explicit generator: reuse whatever build/ was configured with (the
# acceptance command is plain `cmake -B build -S .`).
cmake -B build -S .
cmake --build build --parallel

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

smoke_env=()
if [ "$mode" = "smoke" ]; then
  smoke_env=(RADIOCAST_SMOKE=1)
fi

{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      env "${smoke_env[@]}" "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

# Validate every telemetry artifact against the radiocast.bench.v1 schema.
build/tools/radiocast_inspect validate BENCH_*.json

echo "done: see test_output.txt, bench_output.txt, and BENCH_*.json"
