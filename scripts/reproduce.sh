#!/usr/bin/env bash
# Rebuilds radiocast, runs the full test suite, and regenerates every
# experiment table (E1–E13) into test_output.txt / bench_output.txt at the
# repository root. This is the one-command reproduction entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
