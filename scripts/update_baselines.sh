#!/usr/bin/env bash
# Regenerates the committed perf-regression baselines in bench/baselines/.
#
# The baselines are SMOKE-MODE artifacts (RADIOCAST_SMOKE=1: first sweep
# point, ≤2 trials) so regeneration takes seconds and the deterministic
# keys (steps, steps.mean, timeout_rate) are bit-stable across hosts. The
# wall-clock-derived keys (speedup, off_over_on, steps_per_sec_*) are host
# noise; `radiocast_inspect regress` compares them with a wide directional
# tolerance, so committing baselines from any reasonable machine is fine.
#
# Run this ONLY when a deliberate change moves a gated value (e.g. a
# protocol change that alters step counts) — the diff it produces is the
# reviewable record of what moved. CI (scripts/ci.sh, campaign-smoke
# stage) fails when fresh smoke artifacts regress against these files.
#
# Usage: scripts/update_baselines.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=${1:-build}
baseline_dir=bench/baselines

cmake -B "$build_dir" -S .
cmake --build "$build_dir" --parallel --target \
  bench_simulator_throughput bench_fault_resilience radiocast_inspect

mkdir -p "$baseline_dir"
for bench in bench_simulator_throughput bench_fault_resilience; do
  echo "--- $bench (smoke mode) ---"
  (cd "$baseline_dir" && RADIOCAST_SMOKE=1 "../../$build_dir/bench/$bench")
done

"$build_dir"/tools/radiocast_inspect validate \
  "$baseline_dir"/BENCH_simulator_throughput.json \
  "$baseline_dir"/BENCH_fault_resilience.json

echo "update_baselines: wrote $(ls "$baseline_dir" | wc -l) artifacts to $baseline_dir/"
echo "update_baselines: commit the diff alongside the change that moved it"
