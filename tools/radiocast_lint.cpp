// radiocast_lint — determinism lint CLI (rule engine in tools/lint/).
//
//   radiocast_lint [--root DIR] [--json FILE] [--rules] [PATH...]
//
// Scans PATH... (default: src bench tests tools examples, relative to
// --root, default ".") for .h/.cpp files, applies the project rules R1–R5
// (docs/STATIC_ANALYSIS.md), prints diagnostics, and optionally writes a
// radiocast.lint.v1 JSON report that `radiocast_inspect validate` checks.
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
//
// scripts/ci.sh runs this as stage 0, before any build stage.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace radiocast {
namespace {

namespace fs = std::filesystem;

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

int usage() {
  std::cerr << "usage: radiocast_lint [--root DIR] [--json FILE] [--rules]"
               " [PATH...]\n"
               "  PATH... default: src bench tests tools examples\n";
  return 2;
}

int run(const std::vector<std::string>& args) {
  std::string root = ".";
  std::string json_out;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (args[i] == "--json" && i + 1 < args.size()) {
      json_out = args[++i];
    } else if (args[i] == "--rules") {
      for (const lint::rule_info& r : lint::rules()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
      }
      return 0;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage();
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tests", "tools", "examples"};

  // Collect files, sorted by repo-relative path so diagnostics and the
  // JSON report are deterministic across filesystems.
  std::vector<std::string> files;
  const fs::path root_path(root);
  for (const std::string& p : paths) {
    const fs::path full = root_path / p;
    std::error_code ec;
    if (fs::is_regular_file(full, ec)) {
      if (lintable(full)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(full, ec)) {
      std::cerr << "radiocast_lint: error: no such file or directory: "
                << full.string() << "\n";
      return 2;
    }
    for (fs::recursive_directory_iterator it(full, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(
            it->path().lexically_relative(root_path).generic_string());
      }
    }
    if (ec) {
      std::cerr << "radiocast_lint: error walking " << full.string() << ": "
                << ec.message() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  lint::report rep;
  for (const std::string& rel : files) {
    std::string text;
    if (!read_file(root_path / rel, &text)) {
      std::cerr << "radiocast_lint: error: cannot read " << rel << "\n";
      return 2;
    }
    std::vector<lint::finding> found = lint::lint_file(rel, text);
    rep.findings.insert(rep.findings.end(),
                        std::make_move_iterator(found.begin()),
                        std::make_move_iterator(found.end()));
    ++rep.files_scanned;
  }

  for (const lint::finding& f : rep.findings) {
    if (f.suppressed) continue;
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
    if (!f.snippet.empty()) std::cout << "    " << f.snippet << "\n";
  }
  std::cout << "radiocast_lint: " << rep.files_scanned << " files, "
            << rep.unsuppressed_count() << " findings, "
            << rep.suppressed_count() << " suppressed\n";

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << "radiocast_lint: error: cannot write " << json_out
                << "\n";
      return 2;
    }
    lint::report_to_json(rep).write(out, 2);
    out << "\n";
  }
  return rep.unsuppressed_count() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  return radiocast::run({argv + 1, argv + argc});
}
