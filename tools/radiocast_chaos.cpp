// radiocast_chaos — seed-driven invariant fuzzing over fault models,
// protocols, and graph families (src/fault/chaos.h).
//
//   radiocast_chaos [--runs N] [--seed S] [--max-steps M]
//                   [--out FILE] [--no-minimize]
//
// Runs N sampled scenarios, checks every chaos invariant on each, and
// emits a radiocast.chaos.v1 JSON report (stdout, or FILE with --out; a
// one-line verdict always goes to stderr). Exit status: 0 iff every run
// passed every invariant — scripts/ci.sh runs a sanitizer-built smoke
// sweep and fails the push on any violation.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/chaos.h"

namespace {

int usage() {
  std::cerr << "usage: radiocast_chaos [--runs N] [--seed S] [--max-steps M]"
               " [--out FILE] [--no-minimize]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  radiocast::fault::chaos_options opts;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    if (a == "--runs" && has_value) {
      opts.runs = std::atoll(args[++i].c_str());
    } else if (a == "--seed" && has_value) {
      opts.base_seed =
          static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (a == "--max-steps" && has_value) {
      opts.max_steps = std::atoll(args[++i].c_str());
    } else if (a == "--out" && has_value) {
      out_path = args[++i];
    } else if (a == "--no-minimize") {
      opts.minimize = false;
    } else {
      return usage();
    }
  }
  if (opts.runs < 0 || opts.max_steps < 1) return usage();

  const radiocast::fault::chaos_report report =
      radiocast::fault::run_chaos(opts);
  const radiocast::obs::json_value doc = report.to_json();
  if (out_path.empty()) {
    doc.write(std::cout, 2);
    std::cout << "\n";
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    doc.write(out, 2);
    out << "\n";
  }

  std::int64_t checks = 0;
  for (const radiocast::fault::invariant_stats& s : report.invariants) {
    checks += s.checks;
  }
  std::cerr << "chaos: " << report.runs << " runs, " << checks
            << " invariant checks, " << report.failed_runs << " failed\n";
  for (const radiocast::fault::chaos_failure& f : report.failures) {
    std::cerr << "  seed " << f.seed << " [" << f.invariant << "] "
              << f.scenario << ": " << f.detail << "\n";
  }
  return report.ok() ? 0 : 1;
}
