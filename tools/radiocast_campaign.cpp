// radiocast_campaign — runs, resumes, and merges sharded parameter-sweep
// campaigns (docs/CAMPAIGNS.md).
//
//   radiocast_campaign plan  MANIFEST
//       prints the deterministic shard plan (no execution)
//   radiocast_campaign run   MANIFEST --out DIR [--stop-after N] [--fresh]
//       executes pending shards into DIR, checkpointing after each; a
//       rerun of the same command resumes where the last one stopped
//   radiocast_campaign merge MANIFEST --out DIR [--output FILE]
//       folds the completed shard artifacts into one radiocast.bench.v1
//       document (stdout unless --output)
//
// Exit codes: 0 success, 1 failure (diagnostic on stderr), 2 usage.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/manifest.h"

namespace radiocast {
namespace {

int usage() {
  std::cerr
      << "usage: radiocast_campaign plan  MANIFEST\n"
         "       radiocast_campaign run   MANIFEST --out DIR"
         " [--stop-after N] [--fresh]\n"
         "       radiocast_campaign merge MANIFEST --out DIR"
         " [--output FILE]\n";
  return 2;
}

std::optional<campaign::manifest> load(const std::string& path) {
  std::string error;
  std::optional<campaign::manifest> m = campaign::load_manifest(path, &error);
  if (!m) std::cerr << "error: " << error << "\n";
  return m;
}

int cmd_plan(const std::string& manifest_path) {
  std::optional<campaign::manifest> m = load(manifest_path);
  if (!m) return 1;
  const std::vector<campaign::shard_plan> plan = campaign::plan_shards(*m);
  std::cout << "campaign: " << m->name << "\n"
            << "points:   " << m->grid.size() << "\n"
            << "shards:   " << plan.size() << "\n";
  for (const campaign::shard_plan& s : plan) {
    std::cout << "  " << campaign::shard_file_name(s.shard) << "  "
              << m->grid[static_cast<std::size_t>(s.point)].case_name()
              << "  trials " << s.first_trial << ".."
              << s.first_trial + s.count - 1 << "  seeds " << s.base_seed
              << ".." << s.base_seed + static_cast<std::uint64_t>(s.count) - 1
              << "\n";
  }
  return 0;
}

int cmd_run(const std::string& manifest_path,
            const campaign::campaign_options& opts) {
  std::optional<campaign::manifest> m = load(manifest_path);
  if (!m) return 1;
  const campaign::campaign_result result = campaign::run_campaign(*m, opts);
  if (!result.ok) {
    std::cerr << "error: " << result.error << "\n";
    return 1;
  }
  std::cout << "[campaign] " << m->name << ": " << result.executed
            << " executed, " << result.skipped << " resumed of "
            << result.total_shards << " shards"
            << (result.finished ? " — complete" : " — interrupted") << "\n";
  return 0;
}

int cmd_merge(const std::string& manifest_path, const std::string& out_dir,
              const std::string& output) {
  std::optional<campaign::manifest> m = load(manifest_path);
  if (!m) return 1;
  std::string error;
  std::optional<obs::json_value> doc =
      campaign::merge_campaign(*m, out_dir, &error);
  if (!doc) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (output.empty()) {
    doc->write(std::cout, 2);
    std::cout << "\n";
  } else {
    std::ofstream out(output, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot write " << output << "\n";
      return 1;
    }
    doc->write(out, 2);
    out << "\n";
    std::cout << "[campaign] merged "
              << doc->find("cases")->items().size() << " cases into "
              << output << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  using radiocast::usage;
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2) return usage();
  const std::string& cmd = args[0];
  const std::string& manifest_path = args[1];

  std::string out_dir, output;
  int stop_after = -1;
  bool fresh = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_dir = args[++i];
    } else if (args[i] == "--stop-after" && i + 1 < args.size()) {
      stop_after = std::atoi(args[++i].c_str());
    } else if (args[i] == "--output" && i + 1 < args.size()) {
      output = args[++i];
    } else if (args[i] == "--fresh") {
      fresh = true;
    } else {
      return usage();
    }
  }

  if (cmd == "plan" && args.size() == 2) {
    return radiocast::cmd_plan(manifest_path);
  }
  if (cmd == "run" && !out_dir.empty()) {
    radiocast::campaign::campaign_options opts;
    opts.out_dir = out_dir;
    opts.stop_after = stop_after;
    opts.fresh = fresh;
    opts.log = &std::cout;
    return radiocast::cmd_run(manifest_path, opts);
  }
  if (cmd == "merge" && !out_dir.empty()) {
    return radiocast::cmd_merge(manifest_path, out_dir, output);
  }
  return usage();
}
