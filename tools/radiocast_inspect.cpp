// radiocast_inspect — reads the JSON artifacts this repository's tooling
// emits: BENCH_<name>.json bench telemetry (schema "radiocast.bench.v1";
// see docs/OBSERVABILITY.md), radiocast_lint reports (schema
// "radiocast.lint.v1") and radiocast_analyze reports (schema
// "radiocast.analysis.v1"; both in docs/STATIC_ANALYSIS.md), and
// radiocast_chaos fuzzing reports (schema "radiocast.chaos.v1"; see
// docs/FAULTS.md).
//
//   radiocast_inspect print    FILE        human-readable summary
//   radiocast_inspect validate FILE...     schema check; exit 1 on failure
//                                          (dispatches on the "schema" key)
//   radiocast_inspect diff     OLD NEW     numeric per-case comparison;
//                                          wall-clock keys excluded, exit 1
//                                          beyond tolerance
//   radiocast_inspect analyze  TRACE       trace analytics (first-delivery
//                                          tree, wake timeline, hotspots)
//   radiocast_inspect regress  BASE FRESH  perf-regression gate; exit 1 on
//                                          a regression past tolerance
//
// `validate` is what scripts/reproduce.sh's smoke target runs against every
// artifact: it fails on any missing required key, so a bench that silently
// stops filling a field breaks CI instead of producing holes in the data.
// `regress` is the CI perf gate (scripts/ci.sh, bench/baselines/).
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/artifact.h"
#include "campaign/regress.h"
#include "fault/chaos.h"
#include "obs/json.h"
#include "sim/trace_analysis.h"

namespace radiocast {
namespace {

using obs::json_value;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool load(const std::string& path, json_value* out) {
  std::string text;
  if (!read_file(path, &text)) {
    std::cerr << "error: cannot read " << path << "\n";
    return false;
  }
  std::string error;
  std::optional<json_value> doc = obs::json_parse(text, &error);
  if (!doc) {
    std::cerr << "error: " << path << ": " << error << "\n";
    return false;
  }
  *out = std::move(*doc);
  return true;
}

std::string fmt(double v, int prec = 1) {
  if (std::isnan(v)) return "-";
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << v;
  return ss.str();
}

double number_or_nan(const json_value* v) {
  return v != nullptr && v->is_number() ? v->as_double() : std::nan("");
}

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

struct validator {
  std::string path;
  int failures = 0;

  void fail(const std::string& what) {
    std::cerr << path << ": " << what << "\n";
    ++failures;
  }

  void require(const json_value& obj, const std::string& where,
               const std::string& key, json_value::kind k) {
    const json_value* v = obj.find(key);
    if (v == nullptr) {
      fail(where + ": missing required key \"" + key + "\"");
      return;
    }
    const bool numeric_ok =
        (k == json_value::kind::number || k == json_value::kind::integer) &&
        v->is_number();
    if (v->type() != k && !numeric_ok) {
      fail(where + ": key \"" + key + "\" has the wrong type");
    }
  }

  /// Type-checks `key` only when present: newer writers add keys that
  /// older artifacts (committed BENCH_*.json) legitimately lack.
  void optional(const json_value& obj, const std::string& where,
                const std::string& key, json_value::kind k) {
    if (obj.contains(key)) require(obj, where, key, k);
  }

  void check_trial(const json_value& t, const std::string& where) {
    require(t, where, "seed", json_value::kind::integer);
    require(t, where, "completed", json_value::kind::boolean);
    require(t, where, "steps", json_value::kind::integer);
    require(t, where, "informed_step", json_value::kind::integer);
    require(t, where, "transmissions", json_value::kind::integer);
    require(t, where, "collisions", json_value::kind::integer);
    require(t, where, "deliveries", json_value::kind::integer);
    require(t, where, "wall_ms", json_value::kind::number);
    // Fault accounting, added with the fault-injection subsystem.
    optional(t, where, "crashed_nodes", json_value::kind::integer);
    optional(t, where, "suppressed_deliveries", json_value::kind::integer);
    optional(t, where, "churned_edges", json_value::kind::integer);
    // Recovery and partition-tolerant accounting (crash-recovery PR).
    optional(t, where, "recoveries", json_value::kind::integer);
    optional(t, where, "reachable_nodes", json_value::kind::integer);
    optional(t, where, "informed_reachable", json_value::kind::integer);
    const json_value* outcome = t.find("outcome");
    if (outcome != nullptr) {
      if (!outcome->is_string()) {
        fail(where + ": key \"outcome\" has the wrong type");
      } else {
        const std::string& tag = outcome->as_string();
        if (tag != "completed" && tag != "stuck" && tag != "unreachable" &&
            tag != "source_lost") {
          fail(where + ": unknown outcome \"" + tag + "\"");
        }
      }
    }
  }

  void check_case(const json_value& c, const std::string& where) {
    require(c, where, "name", json_value::kind::string);
    require(c, where, "params", json_value::kind::object);
    require(c, where, "trials", json_value::kind::array);
    require(c, where, "timeout_rate", json_value::kind::number);
    require(c, where, "wall_ms", json_value::kind::number);
    require(c, where, "steps", json_value::kind::object);
    // Parallel-execution telemetry, added with src/exec/: worker count,
    // whole-batch wall clock, and trial-throughput speedup.
    optional(c, where, "threads", json_value::kind::integer);
    optional(c, where, "batch_wall_ms", json_value::kind::number);
    optional(c, where, "speedup", json_value::kind::number);
    // Step-engine telemetry, added with the frontier engine: the
    // frontier_speedup analytic case records per-engine wall clock and
    // throughput (see bench_simulator_throughput.cpp).
    const json_value* values = c.find("values");
    if (values != nullptr && values->is_object()) {
      const std::string vwhere = where + ".values";
      optional(*values, vwhere, "reference_min_ms", json_value::kind::number);
      optional(*values, vwhere, "frontier_min_ms", json_value::kind::number);
      optional(*values, vwhere, "steps_per_sec_reference",
               json_value::kind::number);
      optional(*values, vwhere, "steps_per_sec_frontier",
               json_value::kind::number);
      optional(*values, vwhere, "speedup", json_value::kind::number);
      optional(*values, vwhere, "steps", json_value::kind::integer);
      // SoA-engine telemetry, added with the mega_scale analytic case:
      // soa vs frontier wall clock/throughput and the million-node
      // completion runs (see check_mega_scale in
      // bench_simulator_throughput.cpp).
      optional(*values, vwhere, "soa_min_ms", json_value::kind::number);
      optional(*values, vwhere, "steps_per_sec_soa",
               json_value::kind::number);
      optional(*values, vwhere, "soa_speedup", json_value::kind::number);
      optional(*values, vwhere, "mega_n", json_value::kind::integer);
      optional(*values, vwhere, "mega_layered_wall_ms",
               json_value::kind::number);
      optional(*values, vwhere, "mega_layered_steps",
               json_value::kind::integer);
      optional(*values, vwhere, "mega_gnp_wall_ms",
               json_value::kind::number);
      optional(*values, vwhere, "mega_gnp_steps",
               json_value::kind::integer);
    }
    const json_value* trials = c.find("trials");
    if (trials != nullptr && trials->is_array()) {
      for (std::size_t i = 0; i < trials->items().size(); ++i) {
        check_trial(trials->items()[i],
                    where + ".trials[" + std::to_string(i) + "]");
      }
      // A case with completed trials must carry the percentile block; an
      // analytic case (no trials) must carry "values" instead.
      const json_value* steps = c.find("steps");
      bool any_completed = false;
      for (const json_value& t : trials->items()) {
        const json_value* done = t.find("completed");
        if (done != nullptr && done->as_bool()) any_completed = true;
      }
      if (any_completed && steps != nullptr && steps->is_object()) {
        for (const char* key :
             {"mean", "stddev", "min", "p50", "p90", "p95", "p99", "max"}) {
          require(*steps, where + ".steps", key, json_value::kind::number);
        }
      }
      if (trials->items().empty() && !c.contains("values")) {
        fail(where + ": no trials and no \"values\" block");
      }
    }
  }

  /// radiocast.lint.v1: the report radiocast_lint --json writes.
  void check_lint_finding(const json_value& f, const std::string& where,
                          bool suppressed) {
    require(f, where, "rule", json_value::kind::string);
    require(f, where, "path", json_value::kind::string);
    require(f, where, "line", json_value::kind::integer);
    require(f, where, "message", json_value::kind::string);
    require(f, where, "snippet", json_value::kind::string);
    if (suppressed) {
      require(f, where, "justification", json_value::kind::string);
    }
  }

  bool run_lint(const json_value& doc) {
    require(doc, "root", "tool", json_value::kind::string);
    require(doc, "root", "files_scanned", json_value::kind::integer);
    require(doc, "root", "rules", json_value::kind::array);
    require(doc, "root", "findings", json_value::kind::array);
    require(doc, "root", "suppressed", json_value::kind::array);
    require(doc, "root", "summary", json_value::kind::object);
    const json_value* rule_table = doc.find("rules");
    if (rule_table != nullptr && rule_table->is_array()) {
      if (rule_table->items().empty()) fail("rules array is empty");
      for (std::size_t i = 0; i < rule_table->items().size(); ++i) {
        const std::string where = "rules[" + std::to_string(i) + "]";
        require(rule_table->items()[i], where, "id",
                json_value::kind::string);
        require(rule_table->items()[i], where, "summary",
                json_value::kind::string);
      }
    }
    for (const char* key : {"findings", "suppressed"}) {
      const json_value* arr = doc.find(key);
      if (arr == nullptr || !arr->is_array()) continue;
      for (std::size_t i = 0; i < arr->items().size(); ++i) {
        check_lint_finding(
            arr->items()[i],
            std::string(key) + "[" + std::to_string(i) + "]",
            std::string(key) == "suppressed");
      }
    }
    const json_value* summary = doc.find("summary");
    if (summary != nullptr && summary->is_object()) {
      require(*summary, "summary", "findings", json_value::kind::integer);
      require(*summary, "summary", "suppressed", json_value::kind::integer);
      require(*summary, "summary", "clean", json_value::kind::boolean);
      // The counts must agree with the arrays they summarize.
      const json_value* open = doc.find("findings");
      const json_value* supp = doc.find("suppressed");
      const json_value* n_open = summary->find("findings");
      const json_value* n_supp = summary->find("suppressed");
      if (open != nullptr && open->is_array() && n_open != nullptr &&
          n_open->as_int() !=
              static_cast<std::int64_t>(open->items().size())) {
        fail("summary.findings disagrees with the findings array");
      }
      if (supp != nullptr && supp->is_array() && n_supp != nullptr &&
          n_supp->as_int() !=
              static_cast<std::int64_t>(supp->items().size())) {
        fail("summary.suppressed disagrees with the suppressed array");
      }
    }
    return failures == 0;
  }

  /// radiocast.analysis.v1: the report radiocast_analyze --json writes.
  /// Structurally the lint report (pass/path/line findings, counted
  /// summary) plus the layer list and the include DAG.
  void check_analysis_finding(const json_value& f, const std::string& where,
                              bool suppressed) {
    require(f, where, "pass", json_value::kind::string);
    require(f, where, "path", json_value::kind::string);
    require(f, where, "line", json_value::kind::integer);
    require(f, where, "message", json_value::kind::string);
    require(f, where, "snippet", json_value::kind::string);
    if (suppressed) {
      require(f, where, "justification", json_value::kind::string);
    }
  }

  bool run_analysis(const json_value& doc) {
    require(doc, "root", "tool", json_value::kind::string);
    require(doc, "root", "files_scanned", json_value::kind::integer);
    require(doc, "root", "passes", json_value::kind::array);
    require(doc, "root", "layers", json_value::kind::array);
    require(doc, "root", "include_graph", json_value::kind::object);
    require(doc, "root", "findings", json_value::kind::array);
    require(doc, "root", "suppressed", json_value::kind::array);
    require(doc, "root", "summary", json_value::kind::object);
    const json_value* pass_table = doc.find("passes");
    if (pass_table != nullptr && pass_table->is_array()) {
      if (pass_table->items().empty()) fail("passes array is empty");
      for (std::size_t i = 0; i < pass_table->items().size(); ++i) {
        const std::string where = "passes[" + std::to_string(i) + "]";
        require(pass_table->items()[i], where, "id",
                json_value::kind::string);
        require(pass_table->items()[i], where, "summary",
                json_value::kind::string);
      }
    }
    const json_value* layers = doc.find("layers");
    if (layers != nullptr && layers->is_array() && layers->items().empty()) {
      fail("layers array is empty");
    }
    const json_value* graph = doc.find("include_graph");
    if (graph != nullptr && graph->is_object()) {
      require(*graph, "include_graph", "nodes", json_value::kind::array);
      require(*graph, "include_graph", "edges", json_value::kind::array);
      const json_value* nodes = graph->find("nodes");
      if (nodes != nullptr && nodes->is_array()) {
        for (std::size_t i = 0; i < nodes->items().size(); ++i) {
          const std::string where =
              "include_graph.nodes[" + std::to_string(i) + "]";
          require(nodes->items()[i], where, "path",
                  json_value::kind::string);
          require(nodes->items()[i], where, "layer",
                  json_value::kind::string);
        }
      }
      const json_value* edges = graph->find("edges");
      if (edges != nullptr && edges->is_array()) {
        for (std::size_t i = 0; i < edges->items().size(); ++i) {
          const std::string where =
              "include_graph.edges[" + std::to_string(i) + "]";
          require(edges->items()[i], where, "from",
                  json_value::kind::string);
          require(edges->items()[i], where, "to", json_value::kind::string);
        }
      }
    }
    for (const char* key : {"findings", "suppressed"}) {
      const json_value* arr = doc.find(key);
      if (arr == nullptr || !arr->is_array()) continue;
      for (std::size_t i = 0; i < arr->items().size(); ++i) {
        check_analysis_finding(
            arr->items()[i],
            std::string(key) + "[" + std::to_string(i) + "]",
            std::string(key) == "suppressed");
      }
    }
    const json_value* summary = doc.find("summary");
    if (summary != nullptr && summary->is_object()) {
      require(*summary, "summary", "findings", json_value::kind::integer);
      require(*summary, "summary", "suppressed", json_value::kind::integer);
      require(*summary, "summary", "clean", json_value::kind::boolean);
      require(*summary, "summary", "by_pass", json_value::kind::object);
      const json_value* open = doc.find("findings");
      const json_value* supp = doc.find("suppressed");
      const json_value* n_open = summary->find("findings");
      const json_value* n_supp = summary->find("suppressed");
      if (open != nullptr && open->is_array() && n_open != nullptr &&
          n_open->as_int() !=
              static_cast<std::int64_t>(open->items().size())) {
        fail("summary.findings disagrees with the findings array");
      }
      if (supp != nullptr && supp->is_array() && n_supp != nullptr &&
          n_supp->as_int() !=
              static_cast<std::int64_t>(supp->items().size())) {
        fail("summary.suppressed disagrees with the suppressed array");
      }
    }
    return failures == 0;
  }

  bool run(const json_value& doc) {
    const json_value* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string()) {
      fail("missing required key \"schema\"");
      return false;
    }
    if (schema->as_string() == "radiocast.lint.v1") return run_lint(doc);
    if (schema->as_string() == "radiocast.analysis.v1") {
      return run_analysis(doc);
    }
    if (schema->as_string() == "radiocast.chaos.v1") {
      // The chaos schema's structural validator lives with its writer
      // (src/fault/chaos.cpp) so tests can drive both against the same
      // corpus; this tool only adapts its error reporting.
      std::vector<std::string> errors;
      if (!fault::validate_chaos_report(doc, &errors)) {
        for (const std::string& e : errors) fail(e);
      }
      return failures == 0;
    }
    if (schema->as_string() != "radiocast.bench.v1") {
      fail("unknown schema \"" + schema->as_string() + "\"");
    }
    require(doc, "root", "bench", json_value::kind::string);
    require(doc, "root", "config", json_value::kind::object);
    require(doc, "root", "cases", json_value::kind::array);
    require(doc, "root", "spans", json_value::kind::array);
    const json_value* config = doc.find("config");
    if (config != nullptr && config->is_object()) {
      optional(*config, "config", "threads", json_value::kind::integer);
    }
    const json_value* cases = doc.find("cases");
    if (cases != nullptr && cases->is_array()) {
      if (cases->items().empty()) fail("cases array is empty");
      for (std::size_t i = 0; i < cases->items().size(); ++i) {
        check_case(cases->items()[i], "cases[" + std::to_string(i) + "]");
      }
    }
    return failures == 0;
  }
};

int cmd_validate(const std::vector<std::string>& files) {
  int bad = 0;
  for (const std::string& file : files) {
    json_value doc;
    if (!load(file, &doc)) {
      ++bad;
      continue;
    }
    validator v{file};
    if (v.run(doc)) {
      const json_value* cases = doc.find("cases");
      const json_value* schema = doc.find("schema");
      if (schema != nullptr && schema->is_string() &&
          schema->as_string() == "radiocast.chaos.v1") {
        const json_value* runs = doc.find("runs");
        std::cout << file << ": OK ("
                  << (runs != nullptr ? runs->as_int() : 0)
                  << " chaos runs)\n";
      } else if (cases != nullptr) {
        std::cout << file << ": OK (" << cases->items().size()
                  << " cases)\n";
      } else {
        const json_value* findings = doc.find("findings");
        std::cout << file << ": OK ("
                  << (findings != nullptr ? findings->items().size() : 0)
                  << " findings)\n";
      }
    } else {
      std::cerr << file << ": FAILED (" << v.failures << " problems)\n";
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// print
// ---------------------------------------------------------------------------

void print_spans(const json_value& spans, int depth) {
  for (const json_value& s : spans.items()) {
    const json_value* name = s.find("name");
    std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ')
              << (name != nullptr ? name->as_string() : "?") << "  "
              << fmt(number_or_nan(s.find("total_ms")), 2) << " ms  ×"
              << (s.find("count") != nullptr ? s.find("count")->as_int() : 0)
              << "\n";
    const json_value* children = s.find("children");
    if (children != nullptr && !children->items().empty()) {
      print_spans(*children, depth + 1);
    }
  }
}

int cmd_print(const std::string& file) {
  json_value doc;
  if (!load(file, &doc)) return 1;
  const json_value* bench = doc.find("bench");
  std::cout << "bench: " << (bench != nullptr ? bench->as_string() : "?")
            << "\n";
  const json_value* config = doc.find("config");
  if (config != nullptr) std::cout << "config: " << config->dump() << "\n";

  const json_value* cases = doc.find("cases");
  if (cases != nullptr && cases->is_array()) {
    std::cout << "\n"
              << std::left << std::setw(44) << "case" << std::right
              << std::setw(7) << "trials" << std::setw(10) << "mean"
              << std::setw(10) << "p95" << std::setw(9) << "t/o"
              << std::setw(11) << "wall ms" << "\n";
    for (const json_value& c : cases->items()) {
      const json_value* name = c.find("name");
      const json_value* trials = c.find("trials");
      const std::size_t n_trials =
          trials != nullptr ? trials->items().size() : 0;
      std::cout << std::left << std::setw(44)
                << (name != nullptr ? name->as_string() : "?") << std::right
                << std::setw(7) << n_trials << std::setw(10)
                << fmt(number_or_nan(c.find_path("steps.mean")))
                << std::setw(10)
                << fmt(number_or_nan(c.find_path("steps.p95"))) << std::setw(9)
                << fmt(100.0 * number_or_nan(c.find("timeout_rate")), 0) + "%"
                << std::setw(11) << fmt(number_or_nan(c.find("wall_ms")), 1)
                << "\n";
      const json_value* values = c.find("values");
      if (values != nullptr && !values->members().empty()) {
        std::cout << "    values: " << values->dump() << "\n";
      }
    }
  }
  const json_value* spans = doc.find("spans");
  if (spans != nullptr && !spans->items().empty()) {
    std::cout << "\nspans:\n";
    print_spans(*spans, 1);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Shared flag parsing for diff/regress: repeated `--tolerance key=pct`.
bool parse_tolerances(const std::vector<std::string>& args, std::size_t from,
                      std::vector<std::pair<std::string, double>>* out,
                      bool* include_wall_clock) {
  for (std::size_t i = from; i < args.size(); ++i) {
    if (args[i] == "--tolerance" && i + 1 < args.size()) {
      const std::string& spec = args[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return false;
      out->emplace_back(spec.substr(0, eq),
                        std::atof(spec.c_str() + eq + 1));
    } else if (args[i] == "--include-wall-clock" &&
               include_wall_clock != nullptr) {
      *include_wall_clock = true;
    } else {
      return false;
    }
  }
  return true;
}

double tolerance_for_key(
    const std::vector<std::pair<std::string, double>>& tolerances,
    const std::string& key) {
  for (const auto& [k, pct] : tolerances) {
    if (k == key) return pct;
  }
  return 0.0;
}

struct diff_state {
  const std::vector<std::pair<std::string, double>>& tolerances;
  bool include_wall_clock = false;
  int flagged = 0;    ///< numeric deltas beyond tolerance (drive exit 1)
  int compared = 0;
  std::vector<std::string> notes;  ///< informational (missing keys, …)

  void flag(const std::string& path, const std::string& what) {
    ++flagged;
    std::cout << "  " << path << ": " << what << "\n";
  }
};

/// Recursive numeric comparison. Reruns of the same binary are
/// bit-identical outside the wall-clock keys, so the default tolerance is
/// 0% — any drift in a deterministic field is a finding.
void diff_values(const json_value& a, const json_value& b,
                 const std::string& path, const std::string& leaf,
                 diff_state* st) {
  if (a.is_object() && b.is_object()) {
    for (const auto& [key, member] : a.members()) {
      if (!st->include_wall_clock &&
          radiocast::campaign::is_wall_clock_key(key)) {
        continue;
      }
      const json_value* other = b.find(key);
      const std::string child = path.empty() ? key : path + "." + key;
      if (other == nullptr) {
        st->notes.push_back(child + " only in OLD");
        continue;
      }
      diff_values(member, *other, child, key, st);
    }
    for (const auto& [key, member] : b.members()) {
      (void)member;
      if (!st->include_wall_clock &&
          radiocast::campaign::is_wall_clock_key(key)) {
        continue;
      }
      if (a.find(key) == nullptr) {
        st->notes.push_back((path.empty() ? key : path + "." + key) +
                            " only in NEW");
      }
    }
    return;
  }
  if (a.is_array() && b.is_array()) {
    if (a.items().size() != b.items().size()) {
      st->flag(path, "array length " + std::to_string(a.items().size()) +
                         " vs " + std::to_string(b.items().size()));
      return;
    }
    for (std::size_t i = 0; i < a.items().size(); ++i) {
      diff_values(a.items()[i], b.items()[i],
                  path + "[" + std::to_string(i) + "]", leaf, st);
    }
    return;
  }
  if (a.is_number() && b.is_number()) {
    ++st->compared;
    const double x = a.as_double();
    const double y = b.as_double();
    if (x == y || (std::isnan(x) && std::isnan(y))) return;
    const double pct = tolerance_for_key(st->tolerances, leaf);
    const double rel =
        x != 0.0 ? 100.0 * std::fabs(y - x) / std::fabs(x)
                 : std::numeric_limits<double>::infinity();
    if (rel > pct) {
      st->flag(path, fmt(x, 6) + " -> " + fmt(y, 6) + " (" +
                         (std::isinf(rel) ? std::string("inf")
                                          : fmt(rel, 2)) +
                         "% > " + fmt(pct, 2) + "% tolerance)");
    }
    return;
  }
  // Type mismatch or non-numeric scalars: exact comparison.
  if (a.dump() != b.dump()) st->flag(path, "value mismatch");
}

int cmd_diff(const std::vector<std::string>& args) {
  std::vector<std::pair<std::string, double>> tolerances;
  bool include_wall_clock = false;
  if (args.size() < 2 ||
      !parse_tolerances(args, 2, &tolerances, &include_wall_clock)) {
    return 2;
  }
  json_value old_doc, new_doc;
  if (!load(args[0], &old_doc) || !load(args[1], &new_doc)) return 1;

  std::map<std::string, const json_value*> old_cases, new_cases;
  auto index = [](const json_value& doc,
                  std::map<std::string, const json_value*>* out) {
    const json_value* cases = doc.find("cases");
    if (cases == nullptr) return;
    for (const json_value& c : cases->items()) {
      const json_value* name = c.find("name");
      if (name != nullptr) (*out)[name->as_string()] = &c;
    }
  };
  index(old_doc, &old_cases);
  index(new_doc, &new_cases);

  diff_state st{tolerances, include_wall_clock, 0, 0, {}};
  for (const auto& [name, new_case] : new_cases) {
    const auto it = old_cases.find(name);
    if (it == old_cases.end()) {
      st.notes.push_back(name + " (new case)");
      continue;
    }
    const double old_mean = number_or_nan(it->second->find_path("steps.mean"));
    const double new_mean = number_or_nan(new_case->find_path("steps.mean"));
    std::cout << std::left << std::setw(44) << name << std::right
              << " mean " << fmt(old_mean) << " -> " << fmt(new_mean)
              << "\n";
    diff_values(*it->second, *new_case, name, "", &st);
  }
  for (const auto& [name, old_case] : old_cases) {
    (void)old_case;
    if (new_cases.find(name) == new_cases.end()) {
      st.notes.push_back(name + " (removed case)");
    }
  }
  for (const std::string& note : st.notes) {
    std::cout << "  note: " << note << "\n";
  }
  std::cout << "diff: " << st.compared << " numeric values compared, "
            << st.flagged << " beyond tolerance"
            << (include_wall_clock ? "" : " (wall-clock keys excluded)")
            << "\n";
  return st.flagged == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------------

int cmd_analyze(const std::string& trace_file) {
  std::ifstream in(trace_file, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot read " << trace_file << "\n";
    return 1;
  }
  std::string error;
  std::optional<trace_analysis> analysis = analyze_ndjson(in, &error);
  if (!analysis) {
    std::cerr << "error: " << trace_file << ": " << error << "\n";
    return 1;
  }
  analysis_to_json(*analysis).write(std::cout, 2);
  std::cout << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// regress
// ---------------------------------------------------------------------------

int cmd_regress(const std::vector<std::string>& args) {
  radiocast::campaign::regress_options opts;
  if (args.size() < 2 || !parse_tolerances(args, 2, &opts.tolerances,
                                           nullptr)) {
    return 2;
  }
  json_value baseline, fresh;
  if (!load(args[0], &baseline) || !load(args[1], &fresh)) return 1;
  const radiocast::campaign::regress_report report =
      radiocast::campaign::run_regress(baseline, fresh, opts);
  for (const std::string& problem : report.problems) {
    std::cerr << "regression: " << problem << "\n";
  }
  std::cout << "regress: " << report.comparisons << " comparisons, "
            << report.problems.size() << " regressions ("
            << args[0] << " vs " << args[1] << ")\n";
  return report.ok ? 0 : 1;
}

int usage() {
  std::cerr
      << "usage: radiocast_inspect print    BENCH_x.json\n"
         "       radiocast_inspect validate BENCH_x.json [more...]\n"
         "       radiocast_inspect diff     OLD.json NEW.json"
         " [--tolerance key=pct]... [--include-wall-clock]\n"
         "       radiocast_inspect analyze  TRACE.ndjson\n"
         "       radiocast_inspect regress  BASELINE.json FRESH.json"
         " [--tolerance key=pct]...\n";
  return 2;
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return radiocast::usage();
  const std::string& cmd = args.front();
  if (cmd == "print" && args.size() == 2) return radiocast::cmd_print(args[1]);
  if (cmd == "validate" && args.size() >= 2) {
    return radiocast::cmd_validate({args.begin() + 1, args.end()});
  }
  if (cmd == "diff" && args.size() >= 3) {
    const int rc = radiocast::cmd_diff({args.begin() + 1, args.end()});
    return rc == 2 ? radiocast::usage() : rc;
  }
  if (cmd == "analyze" && args.size() == 2) {
    return radiocast::cmd_analyze(args[1]);
  }
  if (cmd == "regress" && args.size() >= 3) {
    const int rc = radiocast::cmd_regress({args.begin() + 1, args.end()});
    return rc == 2 ? radiocast::usage() : rc;
  }
  return radiocast::usage();
}
