// radiocast_lint — project-specific determinism lint (rule engine).
//
// The simulator's load-bearing guarantee is bit-identical results across
// serial and parallel trial execution and across fault replays. That
// guarantee is easy to break silently: one wall-clock seed, one direct
// std::mt19937, or one result-affecting iteration over an unordered
// container is enough. This engine enforces the project rules statically
// (docs/STATIC_ANALYSIS.md):
//
//   R1 no-raw-random   all randomness flows through util/rng.h
//                      (everywhere: src/, tests/, tools/, bench/, examples/)
//   R2 wall-clock      no wall-clock APIs outside bench/ and src/exec/
//                      (src/campaign/ checkpoint timestamps: annotated
//                      allow only)
//   R3 unordered-iter  no std::unordered_{map,set} use in src/, tests/, or
//                      tools/ without an annotated justification
//   R4 check-msg       RC_CHECK in src/adversary/ and src/exec/ must carry
//                      a message (RC_CHECK_MSG)
//   R5 iostream        no <iostream> in src/ library code
//
// Findings are suppressed per line with
//   // radiocast-lint: allow(<rule>) -- <justification>
// either trailing the offending line or on the line directly above it.
// The justification is mandatory; a bare allow() is itself a finding.
//
// The engine is deliberately dependency-free and text-based (the shared
// lexer in tools/lint/lexer.h strips comments, string/char literals, and
// raw strings, then this engine matches identifier tokens) so it builds in
// seconds and runs before any compile stage in scripts/ci.sh. The semantic
// analyzer (tools/analyze/) builds on the same lexer for flow- and
// structure-level rules this token tripwire cannot express. Rules are
// scoped by path prefix, and tests feed it synthetic paths plus inline
// snippets (tests/lint_test.cpp).
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"

namespace radiocast::lint {

/// Schema tag of the JSON report; radiocast_inspect validates it.
inline constexpr char kSchema[] = "radiocast.lint.v1";

/// One rule, for the report's rule table and the CLI's --rules listing.
struct rule_info {
  const char* id;       ///< annotation name, e.g. "unordered-iter"
  const char* summary;  ///< one-line description
};

/// The five project rules R1–R5, in order.
const std::vector<rule_info>& rules();

/// True iff `id` names a known rule.
bool is_known_rule(const std::string& id);

/// One diagnostic. `suppressed` findings carry the annotation's
/// justification and do not affect the exit status.
struct finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  std::string snippet;        ///< offending source line, whitespace-trimmed
  bool suppressed = false;
  std::string justification;  ///< annotation text after "--"
};

/// Lints one file. `path` must be repo-relative with forward slashes
/// ("src/core/decay.cpp"); the path prefix decides which rules apply.
std::vector<finding> lint_file(const std::string& path,
                               const std::string& text);

/// Aggregated result over a scan.
struct report {
  std::vector<finding> findings;
  int files_scanned = 0;

  int unsuppressed_count() const;
  int suppressed_count() const;
};

/// Serializes `rep` as a radiocast.lint.v1 document.
obs::json_value report_to_json(const report& rep);

}  // namespace radiocast::lint
