#include "lint/lexer.h"

#include <cctype>

namespace radiocast::lint {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool next_nonspace_is_paren(const std::string& code, std::size_t from) {
  for (std::size_t i = from; i < code.size(); ++i) {
    if (code[i] == ' ' || code[i] == '\t') continue;
    return code[i] == '(';
  }
  return false;
}

namespace {

/// True when `code` ends in a raw-string prefix (R, uR, UR, LR, u8R) that
/// is not the tail of a longer identifier.
bool ends_with_raw_prefix(const std::string& code) {
  const std::size_t n = code.size();
  if (n == 0 || code[n - 1] != 'R') return false;
  std::size_t start = n - 1;  // first char of the candidate prefix
  if (start >= 1 && (code[start - 1] == 'u' || code[start - 1] == 'U' ||
                     code[start - 1] == 'L')) {
    --start;
    if (start >= 1 && code[start] == 'u' && code[start - 1] == 'u') {
      // not a prefix; "uu" cannot start one
    } else if (start >= 1 && code[start - 1] == '8' && start >= 2 &&
               code[start - 2] == 'u') {
      start -= 2;  // u8R
    }
  }
  return start == 0 || !is_ident_char(code[start - 1]);
}

}  // namespace

scrubbed scrub(const std::string& text) {
  scrubbed out;
  out.code.emplace_back();
  out.comment.emplace_back();
  out.code_strings.emplace_back();
  enum class state { code, line_comment, block_comment, string, chr, raw };
  state st = state::code;
  std::string raw_end;  // ")delim\"" closing the active raw string
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (st == state::line_comment) st = state::code;
      // Unterminated ordinary literal: recover at end of line so one bad
      // line cannot swallow the rest of the file.
      if (st == state::string || st == state::chr) st = state::code;
      out.code.emplace_back();
      out.comment.emplace_back();
      out.code_strings.emplace_back();
      continue;
    }
    std::string& code = out.code.back();
    std::string& comment = out.comment.back();
    std::string& with_str = out.code_strings.back();
    switch (st) {
      case state::code:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          st = state::line_comment;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          st = state::block_comment;
          ++i;
        } else if (c == '"' && ends_with_raw_prefix(code)) {
          raw_end.clear();
          raw_end.push_back(')');
          std::size_t j = i + 1;
          while (j < n && text[j] != '(' && text[j] != '\n') {
            raw_end.push_back(text[j]);
            ++j;
          }
          raw_end.push_back('"');
          i = j;  // at '(' (or recover at newline-1)
          if (j < n && text[j] == '\n') --i;
          st = state::raw;
          code.push_back('"');
          with_str.push_back('"');
        } else if (c == '"') {
          st = state::string;
          code.push_back('"');
          with_str.push_back('"');
        } else if (c == '\'' && !code.empty() && is_digit(code.back())) {
          code.push_back(c);  // digit separator, e.g. 1'000'000
          with_str.push_back(c);
        } else if (c == '\'') {
          st = state::chr;
          code.push_back('\'');
          with_str.push_back('\'');
        } else {
          code.push_back(c);
          with_str.push_back(c);
        }
        break;
      case state::line_comment:
        comment.push_back(c);
        break;
      case state::block_comment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          st = state::code;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case state::string:
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          with_str.push_back(c);
          with_str.push_back(text[i + 1]);
          ++i;
        } else if (c == '"') {
          st = state::code;
          code.push_back('"');
          with_str.push_back('"');
        } else {
          with_str.push_back(c);
        }
        break;
      case state::chr:
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          with_str.push_back(c);
          with_str.push_back(text[i + 1]);
          ++i;
        } else if (c == '\'') {
          st = state::code;
          code.push_back('\'');
          with_str.push_back('\'');
        } else {
          with_str.push_back(c);
        }
        break;
      case state::raw:
        if (text.compare(i, raw_end.size(), raw_end) == 0) {
          i += raw_end.size() - 1;
          st = state::code;
          code.push_back('"');
          with_str.push_back('"');
        } else {
          with_str.push_back(c);
        }
        break;
    }
  }
  return out;
}

allow_set collect_allows(
    const scrubbed& src, const std::string& marker,
    const std::function<bool(const std::string&)>& is_known_rule,
    const std::function<bool(const std::string&)>& is_directive) {
  allow_set out;
  const auto line_count = static_cast<int>(src.code.size());
  for (int ln = 1; ln <= line_count; ++ln) {
    // An annotation must open its comment (`// <marker>: ...`); prose that
    // merely mentions the marker mid-comment is not one.
    const std::string comment =
        trim(src.comment[static_cast<std::size_t>(ln - 1)]);
    if (!starts_with(comment, marker.c_str())) continue;
    // The marker must be the whole first word, not a prefix of a longer
    // one ("radiocast-lint" must not claim "radiocast-linty" comments).
    if (comment.size() > marker.size() &&
        is_ident_char(comment[marker.size()]) ) {
      continue;
    }
    std::string rest = trim(comment.substr(marker.size()));
    if (!rest.empty() && rest.front() == ':') rest = trim(rest.substr(1));
    if (is_directive && is_directive(rest)) continue;  // caller handles it
    auto bad = [&](const std::string& why) {
      out.issues.push_back({ln, why});
    };
    if (!starts_with(rest, "allow(")) {
      bad("malformed annotation; expected `" + marker +
          ": allow(<rule>) -- <justification>`");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string::npos) {
      bad("malformed annotation; unterminated allow(");
      continue;
    }
    std::vector<std::string> ids;
    std::string id_list = rest.substr(6, close - 6);
    std::size_t pos = 0;
    while (pos <= id_list.size()) {
      const std::size_t comma = id_list.find(',', pos);
      ids.push_back(trim(id_list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    std::string tail = trim(rest.substr(close + 1));
    std::string justification;
    if (starts_with(tail, "--")) justification = trim(tail.substr(2));
    if (justification.empty()) {
      bad("suppression needs a justification: "
          "`allow(<rule>) -- <why this cannot affect results>`");
      continue;
    }
    bool ok = true;
    for (const std::string& id : ids) {
      if (!is_known_rule(id)) {
        bad("unknown rule '" + id + "' in allow()");
        ok = false;
      }
    }
    if (!ok) continue;
    // A trailing annotation covers its own line; an annotation in a pure
    // comment covers the next line that has code (the justification may
    // continue over several comment lines).
    const bool pure_comment =
        trim(src.code[static_cast<std::size_t>(ln - 1)]).empty();
    int target = ln;
    if (pure_comment) {
      target = ln + 1;
      while (target <= line_count &&
             trim(src.code[static_cast<std::size_t>(target - 1)]).empty()) {
        ++target;
      }
    }
    for (const std::string& id : ids) {
      out.by_line[target].push_back({id, justification, ln, false});
    }
  }
  return out;
}

}  // namespace radiocast::lint
