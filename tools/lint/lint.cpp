#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <utility>

#include "lint/lexer.h"

namespace radiocast::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule tables
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 16> kRandomTokens = {
    "rand",          "srand",         "drand48",
    "lrand48",       "random_device", "mt19937",
    "mt19937_64",    "minstd_rand",   "minstd_rand0",
    "ranlux24_base", "ranlux48_base", "ranlux24",
    "ranlux48",      "knuth_b",       "default_random_engine",
    "random_shuffle"};

constexpr std::array<const char*, 9> kClockTokens = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "utc_clock",    "file_clock",   "gettimeofday",
    "clock_gettime", "timespec_get", "ftime"};

// Banned only as calls: `time(...)`/`clock(...)`, not `time_point` etc.
constexpr std::array<const char*, 2> kClockCallTokens = {"time", "clock"};

constexpr std::array<const char*, 4> kUnorderedTokens = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

template <std::size_t N>
bool in_table(const std::array<const char*, N>& table,
              const std::string& tok) {
  return std::find(table.begin(), table.end(), tok) != table.end();
}

/// Which rules apply to a file, decided by its repo-relative path.
struct rule_scope {
  bool no_raw_random = false;
  bool wall_clock = false;
  bool unordered_iter = false;
  bool check_msg = false;
  bool iostream = false;
};

rule_scope scope_for(const std::string& path) {
  rule_scope s;
  const bool in_src = starts_with(path, "src/");
  // R1: everywhere — src/, tests/, tools/, bench/, examples/ alike;
  // util/rng.{h,cpp} is the one sanctioned implementation.
  s.no_raw_random =
      path != "src/util/rng.cpp" && path != "src/util/rng.h";
  // R2: bench/ harness timing and src/exec/ wall-clock accounting are the
  // designated timing sites; anywhere else needs an annotation. In
  // particular src/campaign/ stays IN scope — its one sanctioned read
  // (checkpoint `updated_unix_ms`, display-only) must carry an annotated
  // allow so the justification is auditable in the lint report.
  s.wall_clock =
      !starts_with(path, "bench/") && !starts_with(path, "src/exec/");
  // R3: library code, tests, and tools — a test that iterates an
  // unordered container can assert on hash order and pass on exactly one
  // libstdc++ build, and a tool can leak hash order into a report diff.
  // bench/ stays out of scope (tables are presentation, and sweeps never
  // route results through hash containers today).
  s.unordered_iter = in_src || starts_with(path, "tests/") ||
                     starts_with(path, "tools/");
  // R5: library code only.
  s.iostream = in_src;
  // R4: the subsystems whose invariants encode paper-level claims.
  s.check_msg =
      starts_with(path, "src/adversary/") || starts_with(path, "src/exec/");
  return s;
}

}  // namespace

const std::vector<rule_info>& rules() {
  static const std::vector<rule_info> kRules = {
      {"no-raw-random",
       "all randomness flows through util/rng.h; std::rand, "
       "std::random_device, and direct std::mt19937 are banned"},
      {"wall-clock",
       "no wall-clock APIs outside the designated timing sites in bench/ "
       "and src/exec/; src/campaign/ checkpoint timestamps are permitted "
       "only through an annotated allow"},
      {"unordered-iter",
       "no std::unordered_map/set use in src/, tests/, or tools/ without "
       "an annotated justification; iteration order can leak into results"},
      {"check-msg",
       "RC_CHECK in src/adversary/ and src/exec/ must carry a message "
       "(use RC_CHECK_MSG)"},
      {"iostream", "no <iostream> in src/ library code"},
  };
  return kRules;
}

bool is_known_rule(const std::string& id) {
  for (const rule_info& r : rules()) {
    if (id == r.id) return true;
  }
  return false;
}

std::vector<finding> lint_file(const std::string& path,
                               const std::string& text) {
  const scrubbed src = scrub(text);
  const auto line_count = static_cast<int>(src.code.size());
  std::vector<finding> out;

  auto raw_line = [&](int line) {  // 1-based; original text for snippets
    std::size_t begin = 0;
    for (int l = 1; l < line; ++l) {
      const std::size_t nl = text.find('\n', begin);
      if (nl == std::string::npos) return std::string();
      begin = nl + 1;
    }
    const std::size_t end = text.find('\n', begin);
    return trim(text.substr(
        begin, end == std::string::npos ? std::string::npos : end - begin));
  };

  // Pass 1: collect suppression annotations (and lint the annotations
  // themselves — they are part of the contract, not free-form comments).
  allow_set allows = collect_allows(src, "radiocast-lint", is_known_rule);
  for (const annotation_issue& issue : allows.issues) {
    out.push_back({"lint-annotation", path, issue.line, issue.message,
                   raw_line(issue.line), false, ""});
  }

  auto emit = [&](const std::string& rule, int ln, std::string message) {
    finding f{rule, path, ln, std::move(message), raw_line(ln), false, ""};
    auto it = allows.by_line.find(ln);
    if (it != allows.by_line.end()) {
      for (allow_entry& a : it->second) {
        if (a.rule == rule) {
          a.used = true;
          f.suppressed = true;
          f.justification = a.justification;
          break;
        }
      }
    }
    out.push_back(std::move(f));
  };

  // Pass 2: the rules.
  const rule_scope scope = scope_for(path);
  for (int ln = 1; ln <= line_count; ++ln) {
    const std::string& code = src.code[static_cast<std::size_t>(ln - 1)];
    const std::string stripped = trim(code);
    if (stripped.empty()) continue;
    if (stripped.front() == '#') {
      // Preprocessor line: only the include-hygiene rule applies.
      if (scope.iostream) {
        std::string squeezed;
        for (char c : stripped) {
          if (c != ' ' && c != '\t') squeezed.push_back(c);
        }
        if (starts_with(squeezed, "#include<iostream>")) {
          emit("iostream", ln,
               "#include <iostream> in library code — src/ must not own "
               "streams; report through return values or obs/");
        }
      }
      continue;
    }
    // Identifier token walk.
    std::size_t i = 0;
    while (i < code.size()) {
      if (!is_ident_char(code[i]) || is_digit(code[i])) {
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      const std::string tok = code.substr(start, i - start);
      if (scope.no_raw_random && in_table(kRandomTokens, tok)) {
        emit("no-raw-random", ln,
             "direct use of '" + tok +
                 "' — all randomness must flow through util/rng.h so runs "
                 "replay bit-identically");
      }
      if (scope.wall_clock &&
          (in_table(kClockTokens, tok) ||
           (in_table(kClockCallTokens, tok) &&
            next_nonspace_is_paren(code, i)))) {
        emit("wall-clock", ln,
             "wall-clock API '" + tok +
                 "' outside bench/ and src/exec/ — wall time must never "
                 "reach results");
      }
      if (scope.unordered_iter && in_table(kUnorderedTokens, tok)) {
        emit("unordered-iter", ln,
             "'std::" + tok +
                 "' in src/, tests/, or tools/ — iteration order can leak "
                 "into results; use a sorted std::vector, or annotate why "
                 "membership-only use is safe");
      }
      if (scope.check_msg && tok == "RC_CHECK" &&
          next_nonspace_is_paren(code, i)) {
        emit("check-msg", ln,
             "RC_CHECK without a message — use RC_CHECK_MSG so an "
             "adversary/exec invariant failure is actionable");
      }
    }
  }

  // Pass 3: stale suppressions are findings too — an allow() that matches
  // nothing no longer documents anything and must be deleted.
  for (const auto& [target, entries] : allows.by_line) {
    (void)target;
    for (const allow_entry& a : entries) {
      if (!a.used) {
        out.push_back({"lint-annotation", path, a.annotation_line,
                       "unused suppression: no '" + a.rule +
                           "' finding on the annotated line",
                       raw_line(a.annotation_line), false, ""});
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const finding& a, const finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

int report::unsuppressed_count() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [](const finding& f) { return !f.suppressed; }));
}

int report::suppressed_count() const {
  return static_cast<int>(findings.size()) - unsuppressed_count();
}

obs::json_value report_to_json(const report& rep) {
  using obs::json_value;
  json_value doc = json_value::object();
  doc.set("schema", kSchema);
  doc.set("tool", "radiocast_lint");
  doc.set("files_scanned", rep.files_scanned);

  json_value rule_table = json_value::array();
  for (const rule_info& r : rules()) {
    json_value entry = json_value::object();
    entry.set("id", r.id);
    entry.set("summary", r.summary);
    rule_table.push_back(std::move(entry));
  }
  doc.set("rules", std::move(rule_table));

  json_value open = json_value::array();
  json_value suppressed = json_value::array();
  for (const finding& f : rep.findings) {
    json_value entry = json_value::object();
    entry.set("rule", f.rule);
    entry.set("path", f.path);
    entry.set("line", f.line);
    entry.set("message", f.message);
    entry.set("snippet", f.snippet);
    if (f.suppressed) {
      entry.set("justification", f.justification);
      suppressed.push_back(std::move(entry));
    } else {
      open.push_back(std::move(entry));
    }
  }
  doc.set("findings", std::move(open));
  doc.set("suppressed", std::move(suppressed));

  json_value summary = json_value::object();
  summary.set("findings", rep.unsuppressed_count());
  summary.set("suppressed", rep.suppressed_count());
  summary.set("clean", rep.unsuppressed_count() == 0);
  doc.set("summary", std::move(summary));
  return doc;
}

}  // namespace radiocast::lint
