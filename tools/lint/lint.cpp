#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <utility>

namespace radiocast::lint {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Lexical scrub: split into lines, blank out string/char literal contents,
// and separate comment text (where suppression annotations live) from code.
// ---------------------------------------------------------------------------

struct scrubbed {
  std::vector<std::string> code;     ///< literals blanked, comments removed
  std::vector<std::string> comment;  ///< comment text only
};

/// True when `code` ends in a raw-string prefix (R, uR, UR, LR, u8R) that
/// is not the tail of a longer identifier.
bool ends_with_raw_prefix(const std::string& code) {
  const std::size_t n = code.size();
  if (n == 0 || code[n - 1] != 'R') return false;
  std::size_t start = n - 1;  // first char of the candidate prefix
  if (start >= 1 && (code[start - 1] == 'u' || code[start - 1] == 'U' ||
                     code[start - 1] == 'L')) {
    --start;
    if (start >= 1 && code[start] == 'u' && code[start - 1] == 'u') {
      // not a prefix; "uu" cannot start one
    } else if (start >= 1 && code[start - 1] == '8' && start >= 2 &&
               code[start - 2] == 'u') {
      start -= 2;  // u8R
    }
  }
  return start == 0 || !is_ident_char(code[start - 1]);
}

scrubbed scrub(const std::string& text) {
  scrubbed out;
  out.code.emplace_back();
  out.comment.emplace_back();
  enum class state { code, line_comment, block_comment, string, chr, raw };
  state st = state::code;
  std::string raw_end;  // ")delim\"" closing the active raw string
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (st == state::line_comment) st = state::code;
      // Unterminated ordinary literal: recover at end of line so one bad
      // line cannot swallow the rest of the file.
      if (st == state::string || st == state::chr) st = state::code;
      out.code.emplace_back();
      out.comment.emplace_back();
      continue;
    }
    std::string& code = out.code.back();
    std::string& comment = out.comment.back();
    switch (st) {
      case state::code:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          st = state::line_comment;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          st = state::block_comment;
          ++i;
        } else if (c == '"' && ends_with_raw_prefix(code)) {
          raw_end.clear();
          raw_end.push_back(')');
          std::size_t j = i + 1;
          while (j < n && text[j] != '(' && text[j] != '\n') {
            raw_end.push_back(text[j]);
            ++j;
          }
          raw_end.push_back('"');
          i = j;  // at '(' (or recover at newline-1)
          if (j < n && text[j] == '\n') --i;
          st = state::raw;
          code.push_back('"');
        } else if (c == '"') {
          st = state::string;
          code.push_back('"');
        } else if (c == '\'' && !code.empty() && is_digit(code.back())) {
          code.push_back(c);  // digit separator, e.g. 1'000'000
        } else if (c == '\'') {
          st = state::chr;
          code.push_back('\'');
        } else {
          code.push_back(c);
        }
        break;
      case state::line_comment:
        comment.push_back(c);
        break;
      case state::block_comment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          st = state::code;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case state::string:
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          ++i;
        } else if (c == '"') {
          st = state::code;
          code.push_back('"');
        }
        break;
      case state::chr:
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          ++i;
        } else if (c == '\'') {
          st = state::code;
          code.push_back('\'');
        }
        break;
      case state::raw:
        if (text.compare(i, raw_end.size(), raw_end) == 0) {
          i += raw_end.size() - 1;
          st = state::code;
          code.push_back('"');
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppression annotations
// ---------------------------------------------------------------------------

constexpr char kMarker[] = "radiocast-lint";

struct allow_entry {
  std::string rule;
  std::string justification;
  int annotation_line;  // 1-based, where the annotation itself sits
  bool used = false;
};

// ---------------------------------------------------------------------------
// Rule tables
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 16> kRandomTokens = {
    "rand",          "srand",         "drand48",
    "lrand48",       "random_device", "mt19937",
    "mt19937_64",    "minstd_rand",   "minstd_rand0",
    "ranlux24_base", "ranlux48_base", "ranlux24",
    "ranlux48",      "knuth_b",       "default_random_engine",
    "random_shuffle"};

constexpr std::array<const char*, 9> kClockTokens = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "utc_clock",    "file_clock",   "gettimeofday",
    "clock_gettime", "timespec_get", "ftime"};

// Banned only as calls: `time(...)`/`clock(...)`, not `time_point` etc.
constexpr std::array<const char*, 2> kClockCallTokens = {"time", "clock"};

constexpr std::array<const char*, 4> kUnorderedTokens = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

template <std::size_t N>
bool in_table(const std::array<const char*, N>& table,
              const std::string& tok) {
  return std::find(table.begin(), table.end(), tok) != table.end();
}

/// Which rules apply to a file, decided by its repo-relative path.
struct rule_scope {
  bool no_raw_random = false;
  bool wall_clock = false;
  bool unordered_iter = false;
  bool check_msg = false;
  bool iostream = false;
};

rule_scope scope_for(const std::string& path) {
  rule_scope s;
  const bool in_src = starts_with(path, "src/");
  // R1: everywhere; util/rng.{h,cpp} is the one sanctioned implementation.
  s.no_raw_random =
      path != "src/util/rng.cpp" && path != "src/util/rng.h";
  // R2: bench/ harness timing and src/exec/ wall-clock accounting are the
  // designated timing sites; anywhere else needs an annotation. In
  // particular src/campaign/ stays IN scope — its one sanctioned read
  // (checkpoint `updated_unix_ms`, display-only) must carry an annotated
  // allow so the justification is auditable in the lint report.
  s.wall_clock =
      !starts_with(path, "bench/") && !starts_with(path, "src/exec/");
  // R3 + R5: library code only.
  s.unordered_iter = in_src;
  s.iostream = in_src;
  // R4: the subsystems whose invariants encode paper-level claims.
  s.check_msg =
      starts_with(path, "src/adversary/") || starts_with(path, "src/exec/");
  return s;
}

bool next_nonspace_is_paren(const std::string& code, std::size_t from) {
  for (std::size_t i = from; i < code.size(); ++i) {
    if (code[i] == ' ' || code[i] == '\t') continue;
    return code[i] == '(';
  }
  return false;
}

}  // namespace

const std::vector<rule_info>& rules() {
  static const std::vector<rule_info> kRules = {
      {"no-raw-random",
       "all randomness flows through util/rng.h; std::rand, "
       "std::random_device, and direct std::mt19937 are banned"},
      {"wall-clock",
       "no wall-clock APIs outside the designated timing sites in bench/ "
       "and src/exec/; src/campaign/ checkpoint timestamps are permitted "
       "only through an annotated allow"},
      {"unordered-iter",
       "no std::unordered_map/set use in src/ without an annotated "
       "justification; iteration order can leak into results"},
      {"check-msg",
       "RC_CHECK in src/adversary/ and src/exec/ must carry a message "
       "(use RC_CHECK_MSG)"},
      {"iostream", "no <iostream> in src/ library code"},
  };
  return kRules;
}

bool is_known_rule(const std::string& id) {
  for (const rule_info& r : rules()) {
    if (id == r.id) return true;
  }
  return false;
}

std::vector<finding> lint_file(const std::string& path,
                               const std::string& text) {
  const scrubbed src = scrub(text);
  const auto line_count = static_cast<int>(src.code.size());
  std::vector<finding> out;

  auto raw_line = [&](int line) {  // 1-based; original text for snippets
    std::size_t begin = 0;
    for (int l = 1; l < line; ++l) {
      const std::size_t nl = text.find('\n', begin);
      if (nl == std::string::npos) return std::string();
      begin = nl + 1;
    }
    const std::size_t end = text.find('\n', begin);
    return trim(text.substr(
        begin, end == std::string::npos ? std::string::npos : end - begin));
  };

  // Pass 1: collect suppression annotations (and lint the annotations
  // themselves — they are part of the contract, not free-form comments).
  std::map<int, std::vector<allow_entry>> allows;  // target line → entries
  for (int ln = 1; ln <= line_count; ++ln) {
    // An annotation must open its comment (`// radiocast-lint: ...`);
    // prose that merely mentions the marker mid-comment is not one.
    const std::string comment =
        trim(src.comment[static_cast<std::size_t>(ln - 1)]);
    if (!starts_with(comment, kMarker)) continue;
    auto bad = [&](const std::string& why) {
      out.push_back({"lint-annotation", path, ln, why, raw_line(ln), false,
                     ""});
    };
    std::string rest = trim(comment.substr(sizeof(kMarker) - 1));
    if (!rest.empty() && rest.front() == ':') rest = trim(rest.substr(1));
    if (!starts_with(rest, "allow(")) {
      bad("malformed annotation; expected "
          "`radiocast-lint: allow(<rule>) -- <justification>`");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string::npos) {
      bad("malformed annotation; unterminated allow(");
      continue;
    }
    std::vector<std::string> ids;
    std::string id_list = rest.substr(6, close - 6);
    std::size_t pos = 0;
    while (pos <= id_list.size()) {
      const std::size_t comma = id_list.find(',', pos);
      ids.push_back(trim(id_list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    std::string tail = trim(rest.substr(close + 1));
    std::string justification;
    if (starts_with(tail, "--")) justification = trim(tail.substr(2));
    if (justification.empty()) {
      bad("suppression needs a justification: "
          "`allow(<rule>) -- <why this cannot affect results>`");
      continue;
    }
    bool ok = true;
    for (const std::string& id : ids) {
      if (!is_known_rule(id)) {
        bad("unknown rule '" + id + "' in allow()");
        ok = false;
      }
    }
    if (!ok) continue;
    // A trailing annotation covers its own line; an annotation in a pure
    // comment covers the next line that has code (the justification may
    // continue over several comment lines).
    const bool pure_comment =
        trim(src.code[static_cast<std::size_t>(ln - 1)]).empty();
    int target = ln;
    if (pure_comment) {
      target = ln + 1;
      while (target <= line_count &&
             trim(src.code[static_cast<std::size_t>(target - 1)]).empty()) {
        ++target;
      }
    }
    for (const std::string& id : ids) {
      allows[target].push_back({id, justification, ln, false});
    }
  }

  auto emit = [&](const std::string& rule, int ln, std::string message) {
    finding f{rule, path, ln, std::move(message), raw_line(ln), false, ""};
    auto it = allows.find(ln);
    if (it != allows.end()) {
      for (allow_entry& a : it->second) {
        if (a.rule == rule) {
          a.used = true;
          f.suppressed = true;
          f.justification = a.justification;
          break;
        }
      }
    }
    out.push_back(std::move(f));
  };

  // Pass 2: the rules.
  const rule_scope scope = scope_for(path);
  for (int ln = 1; ln <= line_count; ++ln) {
    const std::string& code = src.code[static_cast<std::size_t>(ln - 1)];
    const std::string stripped = trim(code);
    if (stripped.empty()) continue;
    if (stripped.front() == '#') {
      // Preprocessor line: only the include-hygiene rule applies.
      if (scope.iostream) {
        std::string squeezed;
        for (char c : stripped) {
          if (c != ' ' && c != '\t') squeezed.push_back(c);
        }
        if (starts_with(squeezed, "#include<iostream>")) {
          emit("iostream", ln,
               "#include <iostream> in library code — src/ must not own "
               "streams; report through return values or obs/");
        }
      }
      continue;
    }
    // Identifier token walk.
    std::size_t i = 0;
    while (i < code.size()) {
      if (!is_ident_char(code[i]) || is_digit(code[i])) {
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      const std::string tok = code.substr(start, i - start);
      if (scope.no_raw_random && in_table(kRandomTokens, tok)) {
        emit("no-raw-random", ln,
             "direct use of '" + tok +
                 "' — all randomness must flow through util/rng.h so runs "
                 "replay bit-identically");
      }
      if (scope.wall_clock &&
          (in_table(kClockTokens, tok) ||
           (in_table(kClockCallTokens, tok) &&
            next_nonspace_is_paren(code, i)))) {
        emit("wall-clock", ln,
             "wall-clock API '" + tok +
                 "' outside bench/ and src/exec/ — wall time must never "
                 "reach results");
      }
      if (scope.unordered_iter && in_table(kUnorderedTokens, tok)) {
        emit("unordered-iter", ln,
             "'std::" + tok +
                 "' in src/ — iteration order can leak into results; use a "
                 "sorted std::vector, or annotate why membership-only use "
                 "is safe");
      }
      if (scope.check_msg && tok == "RC_CHECK" &&
          next_nonspace_is_paren(code, i)) {
        emit("check-msg", ln,
             "RC_CHECK without a message — use RC_CHECK_MSG so an "
             "adversary/exec invariant failure is actionable");
      }
    }
  }

  // Pass 3: stale suppressions are findings too — an allow() that matches
  // nothing no longer documents anything and must be deleted.
  for (const auto& [target, entries] : allows) {
    (void)target;
    for (const allow_entry& a : entries) {
      if (!a.used) {
        out.push_back({"lint-annotation", path, a.annotation_line,
                       "unused suppression: no '" + a.rule +
                           "' finding on the annotated line",
                       raw_line(a.annotation_line), false, ""});
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const finding& a, const finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

int report::unsuppressed_count() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [](const finding& f) { return !f.suppressed; }));
}

int report::suppressed_count() const {
  return static_cast<int>(findings.size()) - unsuppressed_count();
}

obs::json_value report_to_json(const report& rep) {
  using obs::json_value;
  json_value doc = json_value::object();
  doc.set("schema", kSchema);
  doc.set("tool", "radiocast_lint");
  doc.set("files_scanned", rep.files_scanned);

  json_value rule_table = json_value::array();
  for (const rule_info& r : rules()) {
    json_value entry = json_value::object();
    entry.set("id", r.id);
    entry.set("summary", r.summary);
    rule_table.push_back(std::move(entry));
  }
  doc.set("rules", std::move(rule_table));

  json_value open = json_value::array();
  json_value suppressed = json_value::array();
  for (const finding& f : rep.findings) {
    json_value entry = json_value::object();
    entry.set("rule", f.rule);
    entry.set("path", f.path);
    entry.set("line", f.line);
    entry.set("message", f.message);
    entry.set("snippet", f.snippet);
    if (f.suppressed) {
      entry.set("justification", f.justification);
      suppressed.push_back(std::move(entry));
    } else {
      open.push_back(std::move(entry));
    }
  }
  doc.set("findings", std::move(open));
  doc.set("suppressed", std::move(suppressed));

  json_value summary = json_value::object();
  summary.set("findings", rep.unsuppressed_count());
  summary.set("suppressed", rep.suppressed_count());
  summary.set("clean", rep.unsuppressed_count() == 0);
  doc.set("summary", std::move(summary));
  return doc;
}

}  // namespace radiocast::lint
