// Shared lexical front end for radiocast's text-based analysis tools.
//
// Both static-analysis tools — the determinism lint (tools/lint/) and the
// semantic analyzer (tools/analyze/) — are lexers, not compilers: they
// strip comments and literals, then reason over identifier tokens and
// per-line shapes. This header owns the pieces they share so the two rule
// engines cannot drift apart on C++ lexing corner cases (raw strings,
// digit separators, unterminated literals):
//
//   * scrub()           — the comment/string/char/raw-string state machine,
//                         producing per-line code, comment, and
//                         code-with-string-contents views;
//   * collect_allows()  — the `<marker>: allow(<rule>) -- <justification>`
//                         suppression grammar (mandatory justification,
//                         trailing-line or preceding-pure-comment targeting,
//                         malformed/unknown annotations reported back);
//   * small helpers (trim, identifier classification, call detection).
//
// Everything here is deliberately dependency-free (no radiocast library)
// so the tools build in seconds and can gate CI before any compile stage.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace radiocast::lint {

bool starts_with(const std::string& s, const char* prefix);
bool is_ident_char(char c);
bool is_digit(char c);

/// Strips leading/trailing spaces, tabs, and a trailing '\r'.
std::string trim(const std::string& s);

/// True when the next non-space character at or after `from` is '(' —
/// distinguishes `time(...)` calls from `time_point` mentions.
bool next_nonspace_is_paren(const std::string& code, std::size_t from);

/// One file split into per-line views by the lexical scrub.
struct scrubbed {
  /// Code with comments removed and string/char-literal CONTENTS blanked
  /// (the delimiting quotes survive). Token rules match against this view
  /// so banned names in messages or test fixtures cannot fire.
  std::vector<std::string> code;
  /// Comment text only — where suppression annotations live.
  std::vector<std::string> comment;
  /// Code with string-literal contents KEPT (comments still removed).
  /// The semantic analyzer reads this view to see telemetry key names in
  /// sink calls like `set("wall_ms", v)`.
  std::vector<std::string> code_strings;
};

/// Lexically scrubs one file. Handles //, /*...*/, "...", '...', raw
/// strings R"delim(...)delim", and digit separators (1'000'000); an
/// unterminated ordinary literal recovers at end of line so one bad line
/// cannot swallow the rest of the file.
scrubbed scrub(const std::string& text);

/// One parsed `allow(<rule>)` suppression.
struct allow_entry {
  std::string rule;
  std::string justification;
  int annotation_line = 0;  ///< 1-based, where the annotation itself sits
  bool used = false;        ///< set by the rule engine; stale ⇒ finding
};

/// A malformed/unknown annotation, reported back to the rule engine (which
/// turns it into a finding — annotations are part of the contract).
struct annotation_issue {
  int line = 0;
  std::string message;
};

/// All suppressions of one file, keyed by the 1-based line they cover.
struct allow_set {
  std::map<int, std::vector<allow_entry>> by_line;
  std::vector<annotation_issue> issues;
};

/// Parses every `<marker>: allow(<rule>[, <rule>...]) -- <justification>`
/// annotation in `src`. An annotation must OPEN its comment; prose that
/// merely mentions the marker mid-comment is ignored. A trailing
/// annotation covers its own line; an annotation in a pure comment line
/// covers the next line that has code. `is_known_rule` validates rule ids;
/// `is_directive`, when provided, names non-allow annotation verbs (e.g.
/// region markers) that share the marker and are handled by the caller.
allow_set collect_allows(
    const scrubbed& src, const std::string& marker,
    const std::function<bool(const std::string&)>& is_known_rule,
    const std::function<bool(const std::string&)>& is_directive = {});

}  // namespace radiocast::lint
