// radiocast_analyze — semantic static-analysis suite (pass engine).
//
// The determinism lint (tools/lint/) is a token tripwire: it bans names.
// This engine reasons about STRUCTURE and FLOW on top of the same shared
// lexer (tools/lint/lexer.h), enforcing four project contracts that token
// matching cannot express (docs/STATIC_ANALYSIS.md):
//
//   P1 layering   the #include graph respects the declared layer manifest
//                 (util → obs → graph → … → campaign → harness): no upward
//                 edges, no file-level include cycles. The full DAG is
//                 emitted in the report.
//   P2 taint      wall-clock reads may only flow into wall-clock-family
//                 outputs. Values assigned from a clock API are tracked
//                 through scope-local assignments; branching on them, or
//                 sinking them into a non-wall-family telemetry key or
//                 struct member, is a finding. Every `rng` construction
//                 must derive from a seeded stream (util/rng.h): a numeric
//                 literal, a *seed*/*salt* expression, mix_seed/splitmix64,
//                 split(), or another generator.
//   P3 contract   every protocol exposing soa_runner() ships SoA traits
//                 whose `struct state` avoids owning/non-trivially-copyable
//                 members, implements the full hook set (init, on_step,
//                 on_receive, informed, halted, on_restart — restart
//                 tolerance is mandatory), and declares any begin_step hook
//                 with the exact signature the engine detects
//                 (`begin_step(std::int64_t)`).
//   P4 hot-path   no heap allocation, std::string construction, throw, or
//                 iostream inside the annotated step-loop regions
//                 (`// radiocast-analyze: hot-path-begin` … `hot-path-end`)
//                 of sim/engine_core.h, sim/soa_engine.h, simulator.cpp.
//                 Text inside RC_CHECK*/RC_REQUIRE* macro arguments is
//                 exempt — the assertion-failure path is cold by
//                 definition.
//
// Findings are suppressed per line with
//   // radiocast-analyze: allow(<pass>) -- <justification>
// with the same grammar and annotation-linting as radiocast-lint allows
// (mandatory justification; malformed, unknown, or stale annotations are
// findings themselves, under the pseudo-pass "analyze-annotation").
//
// Like the lint, the engine is dependency-free and text-based — a
// tripwire, not a compiler — so scripts/ci.sh stage 0 can run it before
// anything else compiles. Tests drive it with synthetic paths and inline
// fixtures (tests/analyze_test.cpp).
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"

namespace radiocast::analyze {

/// Schema tag of the JSON report; radiocast_inspect validates it.
inline constexpr char kSchema[] = "radiocast.analysis.v1";

/// One pass, for the report's pass table and the CLI's --passes listing.
struct pass_info {
  const char* id;       ///< annotation name, e.g. "hot-path"
  const char* summary;  ///< one-line description
};

/// The four passes P1–P4, in order.
const std::vector<pass_info>& passes();

/// True iff `id` names a known pass (valid in allow() annotations).
bool is_known_pass(const std::string& id);

/// One diagnostic. `suppressed` findings carry the annotation's
/// justification and do not affect the exit status.
struct finding {
  std::string pass;
  std::string path;
  int line = 0;
  std::string message;
  std::string snippet;        ///< offending source line, whitespace-trimmed
  bool suppressed = false;
  std::string justification;  ///< annotation text after "--"
};

/// The declared architecture: named layers in low→high order plus
/// longest-prefix path→layer assignments. Parsed from
/// tools/analyze/layers.manifest (format: `layer <name>` lines declare the
/// order, `path <prefix> <name>` lines assign files; `#` comments).
struct layer_manifest {
  std::vector<std::string> order;  ///< layer names, lowest first
  struct assignment {
    std::string prefix;  ///< repo-relative path prefix
    std::string layer;
  };
  std::vector<assignment> assignments;

  /// Rank of `layer` in the order (0 = lowest); −1 when unknown.
  int rank(const std::string& layer) const;
  /// Layer of `path` by longest matching prefix; "" when unassigned.
  std::string layer_for(const std::string& path) const;
};

/// Parses the manifest text. Malformed lines and assignments naming
/// undeclared layers are reported into `errors` (may be null).
layer_manifest parse_manifest(const std::string& text,
                              std::vector<std::string>* errors);

/// The built-in manifest (identical to tools/analyze/layers.manifest, the
/// committed source of truth the CLI prefers when present).
const layer_manifest& default_manifest();

/// One input file: repo-relative path with forward slashes, full text.
struct source_file {
  std::string path;
  std::string text;
};

/// One resolved #include edge of the include graph.
struct include_edge {
  std::string from;
  std::string to;
  int line = 0;  ///< line of the #include in `from`
};

/// Aggregated result over a scan.
struct report {
  std::vector<finding> findings;
  int files_scanned = 0;
  /// The include DAG over the scanned set (externals excluded), emitted in
  /// the JSON report: nodes are scanned files annotated with their layer.
  std::vector<std::string> nodes;
  std::vector<include_edge> edges;
  layer_manifest manifest;

  int unsuppressed_count() const;
  int suppressed_count() const;
};

/// Runs every pass over `files` (all files at once — the layering pass is
/// cross-file). Paths must be repo-relative with forward slashes; path
/// prefixes decide per-pass scoping exactly as in the lint.
report analyze_files(const std::vector<source_file>& files,
                     const layer_manifest& manifest);

/// Serializes `rep` as a radiocast.analysis.v1 document.
obs::json_value report_to_json(const report& rep);

}  // namespace radiocast::analyze
