#include "analyze/analyze.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <utility>

#include "lint/lexer.h"

namespace radiocast::analyze {

using lint::allow_entry;
using lint::allow_set;
using lint::annotation_issue;
using lint::collect_allows;
using lint::is_digit;
using lint::is_ident_char;
using lint::next_nonspace_is_paren;
using lint::scrub;
using lint::scrubbed;
using lint::starts_with;
using lint::trim;

namespace {

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

/// Walks identifier tokens of `line`, invoking fn(token, end_index). The
/// callback may return false to stop the walk.
template <typename Fn>
void for_each_token(const std::string& line, Fn fn) {
  std::size_t i = 0;
  while (i < line.size()) {
    if (!is_ident_char(line[i]) || is_digit(line[i])) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < line.size() && is_ident_char(line[i])) ++i;
    if (!fn(line.substr(start, i - start), i)) return;
  }
}

/// True when `tok` occurs in `text` as a whole identifier token.
bool contains_token(const std::string& text, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = text.find(tok, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + tok.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// The clock APIs whose values are wall-clock tainted at the source. Must
// stay a superset of the lint's R2 table: the lint bans the CALL outside
// timing sites; this pass tracks the VALUE inside them.
constexpr std::array<const char*, 9> kClockTokens = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "utc_clock",    "file_clock",   "gettimeofday",
    "clock_gettime", "timespec_get", "ftime"};

bool has_clock_token(const std::string& text) {
  for (const char* t : kClockTokens) {
    if (contains_token(text, t)) return true;
  }
  return false;
}

/// True when `name` is a sanctioned destination for wall-clock-derived
/// values: the wall_ms family of telemetry keys and the timing-plumbing
/// member names of the profiling layer. Everything else (steps, seeds,
/// counters, protocol state) must stay wall-clock-free.
bool is_wall_family(const std::string& name) {
  const std::string n = lower(name);
  if (n == "ms" || n == "ns" || n == "us" || n == "off_over_on") return true;
  auto ends = [&](const char* suf) {
    const std::size_t m = std::string(suf).size();
    return n.size() >= m && n.compare(n.size() - m, m, suf) == 0;
  };
  if (ends("_ms") || ends("_ns") || ends("_us")) return true;
  for (const char* frag :
       {"wall", "elapsed", "duration", "speedup", "per_sec", "latency",
        "timing", "runtime", "time", "clock", "start", "stop", "end",
        "now", "deadline"}) {
    if (n.find(frag) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-file context: scrub, suppressions, finding emission
// ---------------------------------------------------------------------------

struct file_ctx {
  const source_file* file = nullptr;
  scrubbed src;
  allow_set allows;
  std::vector<finding> findings;

  int line_count() const { return static_cast<int>(src.code.size()); }
  const std::string& code(int ln) const {  // 1-based
    return src.code[static_cast<std::size_t>(ln - 1)];
  }
  const std::string& code_str(int ln) const {
    return src.code_strings[static_cast<std::size_t>(ln - 1)];
  }

  std::string raw_line(int line) const {
    const std::string& text = file->text;
    std::size_t begin = 0;
    for (int l = 1; l < line; ++l) {
      const std::size_t nl = text.find('\n', begin);
      if (nl == std::string::npos) return std::string();
      begin = nl + 1;
    }
    const std::size_t end = text.find('\n', begin);
    return trim(text.substr(
        begin, end == std::string::npos ? std::string::npos : end - begin));
  }

  void emit(const std::string& pass, int ln, std::string message) {
    finding f{pass, file->path, ln, std::move(message), raw_line(ln), false,
              ""};
    auto it = allows.by_line.find(ln);
    if (it != allows.by_line.end()) {
      for (allow_entry& a : it->second) {
        if (a.rule == pass) {
          a.used = true;
          f.suppressed = true;
          f.justification = a.justification;
          break;
        }
      }
    }
    findings.push_back(std::move(f));
  }
};

/// Concatenated text of a parenthesized span starting at `open_pos` on
/// 1-based line `ln` (which must hold the '('), spanning at most
/// `max_lines` lines. Returns the text between the parens (exclusive);
/// empty when unbalanced within the window.
std::string paren_span(const std::vector<std::string>& lines, int ln,
                       std::size_t open_pos, int max_lines) {
  std::string out;
  int depth = 0;
  const int line_count = static_cast<int>(lines.size());
  for (int l = ln; l <= line_count && l < ln + max_lines; ++l) {
    const std::string& line = lines[static_cast<std::size_t>(l - 1)];
    std::size_t i = (l == ln) ? open_pos : 0;
    for (; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;  // skip the opening paren itself
      } else if (c == ')') {
        --depth;
        if (depth == 0) return out;
      }
      if (depth >= 1) out.push_back(c);
    }
    out.push_back(' ');
  }
  return std::string();  // unbalanced within the window
}

// ---------------------------------------------------------------------------
// P1: include-graph layering gate
// ---------------------------------------------------------------------------

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Extracts the quoted include target of a preprocessor line, or "".
/// Angle-bracket includes are external by definition and ignored.
std::string include_target(const std::string& code_with_strings) {
  const std::string stripped = trim(code_with_strings);
  if (stripped.empty() || stripped.front() != '#') return "";
  std::string squeezed;
  for (char c : stripped) {
    if (c != ' ' && c != '\t') squeezed.push_back(c);
    if (squeezed.size() > 9) break;  // "#include\"" is 9 chars
  }
  if (!starts_with(squeezed, "#include\"")) return "";
  const std::size_t open = stripped.find('"');
  const std::size_t close = stripped.find('"', open + 1);
  if (close == std::string::npos) return "";
  return stripped.substr(open + 1, close - open - 1);
}

void run_layering(std::vector<file_ctx>& ctxs, const layer_manifest& manifest,
                  report* rep) {
  // File set for include resolution.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    index[ctxs[i].file->path] = i;
  }

  // Unassigned files: the manifest must cover the scanned tree, or the
  // gate silently stops gating whatever a refactor moves out from under
  // it.
  for (file_ctx& ctx : ctxs) {
    if (manifest.layer_for(ctx.file->path).empty()) {
      ctx.emit("layering", 1,
               "file is not covered by the layer manifest — add a `path` "
               "assignment to tools/analyze/layers.manifest");
    }
  }

  // Parse + resolve edges.
  struct resolved_edge {
    std::size_t to;
    int line;
  };
  std::vector<std::vector<resolved_edge>> adj(ctxs.size());
  for (std::size_t fi = 0; fi < ctxs.size(); ++fi) {
    file_ctx& ctx = ctxs[fi];
    const std::string dir = dir_of(ctx.file->path);
    for (int ln = 1; ln <= ctx.line_count(); ++ln) {
      const std::string inc = include_target(ctx.code_str(ln));
      if (inc.empty()) continue;
      // Resolution mirrors the build's include dirs: the includer's own
      // directory first, then the roots src/ and tools/ export.
      std::size_t to = ctxs.size();
      for (const std::string& cand :
           {dir.empty() ? inc : dir + "/" + inc, "src/" + inc,
            "tools/" + inc, inc}) {
        const auto it = index.find(cand);
        if (it != index.end()) {
          to = it->second;
          break;
        }
      }
      if (to == ctxs.size()) continue;  // external header
      adj[fi].push_back({to, ln});
      rep->edges.push_back({ctx.file->path, ctxs[to].file->path, ln});

      const std::string from_layer = manifest.layer_for(ctx.file->path);
      const std::string to_layer = manifest.layer_for(ctxs[to].file->path);
      if (from_layer.empty() || to_layer.empty()) continue;  // reported above
      const int from_rank = manifest.rank(from_layer);
      const int to_rank = manifest.rank(to_layer);
      if (to_rank > from_rank) {
        ctx.emit("layering", ln,
                 "upward #include: " + ctx.file->path + " (layer '" +
                     from_layer + "') includes " + ctxs[to].file->path +
                     " (layer '" + to_layer +
                     "', higher) — dependencies must point down the layer "
                     "order");
      }
    }
  }

  // Cycle detection (file level): iterative DFS with colors. Any include
  // cycle is a finding regardless of layers — #pragma once merely hides
  // it until the one include order that breaks.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(ctxs.size(), kWhite);
  std::vector<std::size_t> path_stack;
  struct frame {
    std::size_t node;
    std::size_t next = 0;
  };
  for (std::size_t root = 0; root < ctxs.size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<frame> stack{{root}};
    color[root] = kGray;
    path_stack.push_back(root);
    while (!stack.empty()) {
      frame& f = stack.back();
      if (f.next < adj[f.node].size()) {
        const resolved_edge e = adj[f.node][f.next++];
        if (color[e.to] == kGray) {
          // Back edge: report the cycle path, attributed to the closing
          // include.
          std::string cycle;
          bool in_cycle = false;
          for (const std::size_t p : path_stack) {
            if (p == e.to) in_cycle = true;
            if (in_cycle) cycle += ctxs[p].file->path + " -> ";
          }
          cycle += ctxs[e.to].file->path;
          ctxs[f.node].emit("layering", e.line,
                            "#include cycle: " + cycle);
        } else if (color[e.to] == kWhite) {
          color[e.to] = kGray;
          path_stack.push_back(e.to);
          stack.push_back({e.to});
        }
      } else {
        color[f.node] = kBlack;
        path_stack.pop_back();
        stack.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// P2: determinism taint pass (wall-clock flow + rng provenance)
// ---------------------------------------------------------------------------

/// Scope-tracked set of tainted identifiers: entries die with their brace
/// depth.
class taint_scope {
 public:
  void enter() { ++depth_; }
  void leave() {
    --depth_;
    while (!entries_.empty() && entries_.back().depth > depth_) {
      names_.erase(entries_.back().name);
      entries_.pop_back();
    }
    if (depth_ < 0) depth_ = 0;
  }
  void add(const std::string& name) {
    if (names_.insert(name).second) entries_.push_back({name, depth_});
  }
  bool tainted(const std::string& name) const {
    return names_.count(name) != 0;
  }
  bool any_tainted_token(const std::string& text) const {
    if (names_.empty()) return false;
    bool hit = false;
    for_each_token(text, [&](const std::string& tok, std::size_t) {
      if (names_.count(tok) != 0) {
        hit = true;
        return false;
      }
      return true;
    });
    return hit;
  }

 private:
  struct entry {
    std::string name;
    int depth;
  };
  int depth_ = 0;
  std::vector<entry> entries_;
  std::set<std::string> names_;
};

/// Locates the top-level assignment operator of `line` (ignoring ==, !=,
/// <=, >=, text inside parens/brackets). Returns npos when there is none.
std::size_t find_assignment(const std::string& line) {
  int depth = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (depth != 0 || c != '=') continue;
    const char prev = i > 0 ? line[i - 1] : '\0';
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    if (next == '=') {
      ++i;  // '==': skip both
      continue;
    }
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
    return i;  // plain or compound assignment ('+=', '-=', …)
  }
  return std::string::npos;
}

/// Last identifier of the (bracket-stripped) assignment target, plus
/// whether it is a member access (`x.member` / `x->member`).
struct lhs_info {
  std::string name;
  bool is_member = false;
};

lhs_info parse_lhs(std::string lhs) {
  lhs_info out;
  lhs = trim(lhs);
  // Compound operators leave their op char on the LHS ("acc +"): drop it.
  while (!lhs.empty() && !is_ident_char(lhs.back()) && lhs.back() != ']') {
    lhs.pop_back();
    lhs = trim(lhs);
  }
  // Strip trailing index groups: `arrivals_[idx(v)]` targets `arrivals_`.
  while (!lhs.empty() && lhs.back() == ']') {
    int depth = 0;
    std::size_t i = lhs.size();
    while (i > 0) {
      --i;
      if (lhs[i] == ']') ++depth;
      if (lhs[i] == '[') {
        --depth;
        if (depth == 0) break;
      }
    }
    lhs = trim(lhs.substr(0, i));
  }
  if (lhs.empty() || !is_ident_char(lhs.back())) return out;
  std::size_t start = lhs.size();
  while (start > 0 && is_ident_char(lhs[start - 1])) --start;
  out.name = lhs.substr(start);
  if (start >= 1 && lhs[start - 1] == '.') out.is_member = true;
  if (start >= 2 && lhs[start - 2] == '-' && lhs[start - 1] == '>') {
    out.is_member = true;
  }
  return out;
}

/// True when the rng-construction argument text derives from a seeded
/// stream: a literal constant, a *seed*/*salt*/mix_seed/splitmix64
/// expression, a split() call, or another generator.
bool seeded_expression(const std::string& expr) {
  bool ok = false;
  for_each_token(expr, [&](const std::string& tok, std::size_t) {
    const std::string t = lower(tok);
    if (t.find("seed") != std::string::npos ||
        t.find("salt") != std::string::npos ||
        t.find("gen") != std::string::npos ||
        t.find("rng") != std::string::npos || t == "split" ||
        t == "splitmix64" || t == "mix_seed") {
      ok = true;
      return false;
    }
    return true;
  });
  if (ok) return true;
  // A standalone numeric literal (decimal or hex) counts as a fixed seed.
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (is_digit(expr[i]) && (i == 0 || !is_ident_char(expr[i - 1]))) {
      return true;
    }
  }
  return false;
}

void run_taint(file_ctx& ctx) {
  const std::string& path = ctx.file->path;
  const bool check_rng =
      path != "src/util/rng.h" && path != "src/util/rng.cpp";
  taint_scope scope;
  constexpr std::array<const char*, 4> kBranchKeywords = {"if", "while",
                                                          "for", "switch"};
  constexpr std::array<const char*, 2> kSinkCalls = {"set", "annotate"};

  for (int ln = 1; ln <= ctx.line_count(); ++ln) {
    const std::string& code = ctx.code(ln);
    const std::string stripped = trim(code);
    if (stripped.empty() || stripped.front() == '#') {
      // Still track braces on continued macro bodies? Preprocessor lines
      // carry no scopes we track.
      continue;
    }

    // 1) Control flow on tainted values. The condition span may continue
    //    over a few lines; ternaries are deliberately NOT flagged (pure
    //    data selection, e.g. `ms > 0 ? a / ms : 1.0` in wall-family
    //    ratios).
    for_each_token(code, [&](const std::string& tok, std::size_t end) {
      for (const char* kw : kBranchKeywords) {
        if (tok == kw && next_nonspace_is_paren(code, end)) {
          const std::size_t open = code.find('(', end);
          const std::string cond = paren_span(ctx.src.code, ln, open, 6);
          if (scope.any_tainted_token(cond)) {
            ctx.emit("taint", ln,
                     "wall-clock-derived value in a `" + std::string(kw) +
                         "` condition — timing must never steer control "
                         "flow that can reach results");
          }
        }
      }
      return true;
    });

    // 2) Telemetry sinks: `.set("key", …)` / `.annotate("key", …)` with a
    //    tainted argument must target a wall-clock-family key.
    for_each_token(code, [&](const std::string& tok, std::size_t end) {
      bool is_sink = false;
      for (const char* s : kSinkCalls) is_sink = is_sink || tok == s;
      if (!is_sink || !next_nonspace_is_paren(code, end)) return true;
      const std::size_t start = end - tok.size();
      const bool is_method =
          (start >= 1 && code[start - 1] == '.') ||
          (start >= 2 && code[start - 2] == '-' && code[start - 1] == '>');
      if (!is_method) return true;
      const std::size_t open = code.find('(', end);
      const std::string args = paren_span(ctx.src.code, ln, open, 8);
      if (args.empty() || !scope.any_tainted_token(args)) return true;
      // Key: the leading string literal, read from the strings-kept view.
      const std::string args_str =
          paren_span(ctx.src.code_strings, ln, open, 8);
      std::string key;
      const std::string targs = trim(args_str);
      if (!targs.empty() && targs.front() == '"') {
        const std::size_t close = targs.find('"', 1);
        if (close != std::string::npos) key = targs.substr(1, close - 1);
      }
      if (key.empty() || !is_wall_family(key)) {
        ctx.emit("taint", ln,
                 "wall-clock-derived value sunk into telemetry key '" +
                     (key.empty() ? std::string("<non-literal>") : key) +
                     "' — timing may only flow into wall_ms-family "
                     "outputs");
      }
      return true;
    });

    // 3) Assignments: propagate taint; flag tainted flows into
    //    non-wall-family members.
    const std::size_t eq = find_assignment(code);
    if (eq != std::string::npos) {
      // RHS runs to the first depth-0 ';' (spanning a bounded number of
      // continuation lines).
      std::string rhs = code.substr(eq + 1);
      {
        int depth = 0;
        bool done = false;
        std::string acc;
        for (int l = ln; l <= ctx.line_count() && l < ln + 10 && !done;
             ++l) {
          const std::string& cl = ctx.code(l);
          std::size_t i = (l == ln) ? eq + 1 : 0;
          for (; i < cl.size(); ++i) {
            const char c = cl[i];
            if (c == '(' || c == '[') ++depth;
            if (c == ')' || c == ']') --depth;
            if (c == ';' && depth <= 0) {
              done = true;
              break;
            }
            acc.push_back(c);
          }
          acc.push_back(' ');
        }
        if (done) rhs = acc;
      }
      const bool rhs_tainted =
          has_clock_token(rhs) || scope.any_tainted_token(rhs);
      if (rhs_tainted) {
        const lhs_info lhs = parse_lhs(code.substr(0, eq));
        if (!lhs.name.empty()) {
          if (lhs.is_member && !is_wall_family(lhs.name)) {
            ctx.emit("taint", ln,
                     "wall-clock-derived value assigned to member '" +
                         lhs.name +
                         "' — timing may only flow into wall_ms-family "
                         "outputs");
          } else if (!lhs.is_member) {
            scope.add(lhs.name);
          }
        }
      }
    }

    // 4) rng provenance: every construction must derive from a seeded
    //    stream.
    if (check_rng) {
      for_each_token(code, [&](const std::string& tok, std::size_t end) {
        if (tok != "rng") return true;
        // Skip qualified mentions that are not constructions: `rng>`,
        // `rng&`, `rng*`, `rng::`.
        std::size_t i = end;
        while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
        if (i >= code.size()) return true;
        if (code[i] == '(') {
          // Temporary: `rng(expr)` — also matches `= rng(expr)`.
          const std::string args = paren_span(ctx.src.code, ln, i, 4);
          // `rng()` default temporary is never seeded.
          const bool bad = trim(args).empty() || !seeded_expression(args);
          const bool tainted = scope.any_tainted_token(args);
          if (bad || tainted) {
            ctx.emit("taint", ln,
                     tainted
                         ? "rng seeded from a wall-clock-derived value — "
                           "seeds must be deterministic"
                         : "rng construction does not derive from a seeded "
                           "stream (pass a literal, a *seed*/*salt* "
                           "expression, mix_seed/splitmix64, or split())");
          }
          return true;
        }
        if (!is_ident_char(code[i])) return true;  // rng>, rng&, rng::…
        // `rng NAME …`
        std::size_t ns = i;
        while (i < code.size() && is_ident_char(code[i])) ++i;
        const std::string name = code.substr(ns, i - ns);
        while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
        const char after = i < code.size() ? code[i] : ';';
        if (after == ',' || after == ')') return true;  // parameter decl
        if (after == ';') {
          // Default construction. Members (trailing '_', project
          // convention) are seeded later by their owner (begin_run).
          if (!name.empty() && name.back() != '_') {
            ctx.emit("taint", ln,
                     "default-constructed rng '" + name +
                         "' — every generator must be explicitly seeded "
                         "(util/rng.h)");
          }
          return true;
        }
        if (after == '(' || after == '{' || after == '=') {
          std::string expr;
          if (after == '=') {
            expr = code.substr(i + 1);
          } else if (after == '(') {
            expr = paren_span(ctx.src.code, ln, i, 4);
          } else {
            // Brace init `rng name{expr}`: take the rest of the line.
            expr = code.substr(i + 1);
          }
          const bool tainted = scope.any_tainted_token(expr);
          if (tainted || !seeded_expression(expr)) {
            ctx.emit("taint", ln,
                     tainted
                         ? "rng '" + name +
                               "' seeded from a wall-clock-derived value — "
                               "seeds must be deterministic"
                         : "rng '" + name +
                               "' does not derive from a seeded stream "
                               "(pass a literal, a *seed*/*salt* "
                               "expression, mix_seed/splitmix64, or "
                               "split())");
          }
        }
        return true;
      });
    }

    // 5) Scope tracking last, so a same-line open brace scopes the NEXT
    //    lines' declarations, and close braces expire this line's scope.
    for (const char c : code) {
      if (c == '{') scope.enter();
      if (c == '}') scope.leave();
    }
  }
}

// ---------------------------------------------------------------------------
// P3: engine/protocol contract checker
// ---------------------------------------------------------------------------

/// 1-based line of the matching close brace for a block whose opening '{'
/// sits at (`ln`, `pos`); 0 when unbalanced.
int match_brace(const file_ctx& ctx, int ln, std::size_t pos) {
  int depth = 0;
  for (int l = ln; l <= ctx.line_count(); ++l) {
    const std::string& line = ctx.code(l);
    for (std::size_t i = (l == ln) ? pos : 0; i < line.size(); ++i) {
      if (line[i] == '{') ++depth;
      if (line[i] == '}') {
        --depth;
        if (depth == 0) return l;
      }
    }
  }
  return 0;
}

/// Member types that sink std::is_trivially_copyable (owning containers,
/// handles). Token match inside `struct state` blocks.
constexpr std::array<const char*, 13> kNonTrivialTokens = {
    "string",     "vector",     "deque",    "list",       "map",
    "multimap",   "multiset",   "function", "unique_ptr", "shared_ptr",
    "weak_ptr",   "unordered_map", "unordered_set"};

void run_contract(file_ctx& ctx) {
  // Trigger 1: a soa_runner() DEFINITION whose body returns an entry
  // requires SoA traits in the same translation unit.
  bool returns_entry = false;
  bool has_traits = false;
  for (int ln = 1; ln <= ctx.line_count(); ++ln) {
    const std::string& code = ctx.code(ln);
    if (contains_token(code, "soa_runner")) {
      const std::size_t tok = code.find("soa_runner");
      const std::size_t open = code.find('(', tok);
      if (open != std::string::npos) {
        // A definition has '{' after the ')' (possibly via `const {`).
        const std::size_t close = code.find(')', open);
        if (close != std::string::npos &&
            code.find('{', close) != std::string::npos) {
          const int end = match_brace(ctx, ln, code.find('{', close));
          for (int l = ln; l <= (end == 0 ? ln : end); ++l) {
            if (ctx.code(l).find("return &") != std::string::npos) {
              returns_entry = true;
            }
          }
        }
      }
    }
    if (code.find("_soa_traits") != std::string::npos &&
        contains_token(code, "struct")) {
      has_traits = true;
    }
  }
  if (returns_entry && !has_traits) {
    ctx.emit("contract", 1,
             "soa_runner() returns an SoA entry but this file declares no "
             "*_soa_traits struct to check against the engine contract");
  }

  // Trigger 2: validate every *_soa_traits struct.
  for (int ln = 1; ln <= ctx.line_count(); ++ln) {
    const std::string& code = ctx.code(ln);
    if (!contains_token(code, "struct")) continue;
    const std::size_t name_pos = code.find("_soa_traits");
    if (name_pos == std::string::npos) continue;
    const std::size_t open = code.find('{', name_pos);
    if (open == std::string::npos) continue;
    const int end = match_brace(ctx, ln, open);
    if (end == 0) continue;

    // struct state { … }: required, and its members must stay trivially
    // copyable (S1's static_asserts are the compile-time floor; this is
    // the pre-compile tripwire).
    int state_ln = 0;
    for (int l = ln + 1; l < end; ++l) {
      const std::string& cl = ctx.code(l);
      if (contains_token(cl, "struct") && contains_token(cl, "state")) {
        state_ln = l;
        break;
      }
    }
    if (state_ln == 0) {
      ctx.emit("contract", ln,
               "SoA traits without a `struct state` — the engine stores "
               "per-node protocol state as a contiguous POD array");
    } else {
      const std::size_t sopen = ctx.code(state_ln).find('{');
      const int send =
          sopen == std::string::npos ? 0 : match_brace(ctx, state_ln, sopen);
      for (int l = state_ln; send != 0 && l <= send; ++l) {
        for (const char* bad : kNonTrivialTokens) {
          if (contains_token(ctx.code(l), bad)) {
            ctx.emit("contract", l,
                     "non-trivially-copyable member type '" +
                         std::string(bad) +
                         "' in Traits::state — SoA state must be POD "
                         "(shared configuration belongs on the traits "
                         "object, not in per-node state)");
          }
        }
      }
    }

    // Required hooks. on_restart is mandatory: every SoA protocol must be
    // restart-tolerant (fault/recovery.h amnesia reboots call it).
    for (const char* hook : {"init", "on_step", "on_receive", "informed",
                             "halted", "on_restart"}) {
      bool found = false;
      for (int l = ln + 1; l < end && !found; ++l) {
        const std::string& cl = ctx.code(l);
        if (contains_token(cl, hook)) {
          const std::size_t p = cl.find(hook);
          if (next_nonspace_is_paren(cl, p + std::string(hook).size())) {
            found = true;
          }
        }
      }
      if (!found) {
        ctx.emit("contract", ln,
                 "SoA traits missing required hook '" + std::string(hook) +
                     "' (sim/soa_engine.h traits contract)");
      }
    }

    // begin_step, when present, must take exactly std::int64_t — the
    // engine detects it via `begin_step(std::int64_t{})`, and a narrower
    // parameter (int) would still be callable but silently truncate step
    // counts past 2^31.
    for (int l = ln + 1; l < end; ++l) {
      const std::string& cl = ctx.code(l);
      if (!contains_token(cl, "begin_step")) continue;
      const std::size_t p = cl.find("begin_step");
      const std::size_t bopen = cl.find('(', p);
      if (bopen == std::string::npos) continue;
      const std::string params = paren_span(ctx.src.code, l, bopen, 3);
      std::string squeezed;
      for (char c : params) {
        if (c != ' ' && c != '\t') squeezed.push_back(c);
      }
      const bool one_param = squeezed.find(',') == std::string::npos;
      const bool exact = starts_with(squeezed, "std::int64_t") ||
                         starts_with(squeezed, "conststd::int64_t") ||
                         starts_with(squeezed, "int64_t");
      if (!one_param || !exact) {
        ctx.emit("contract", l,
                 "begin_step hook must take exactly one std::int64_t (the "
                 "step number) — detected signature `begin_step(" +
                     trim(params) +
                     ")` would be callable but lossy or mismatched");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// P4: hot-path hygiene pass
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 16> kHotBannedIdents = {
    "malloc",     "calloc",      "realloc",     "make_unique",
    "make_shared", "to_string",  "cout",        "cerr",
    "clog",       "printf",      "fprintf",     "sprintf",
    "snprintf",   "endl",        "stringstream", "ostringstream"};

void run_hot_path(file_ctx& ctx) {
  int region_begin = 0;  // 0 = outside; otherwise the begin line
  bool pending_rc = false;
  int rc_depth = 0;

  for (int ln = 1; ln <= ctx.line_count(); ++ln) {
    // Region markers live in comments: `// radiocast-analyze:
    // hot-path-begin` / `hot-path-end`.
    const std::string comment =
        trim(ctx.src.comment[static_cast<std::size_t>(ln - 1)]);
    if (starts_with(comment, "radiocast-analyze")) {
      std::string rest = trim(comment.substr(sizeof("radiocast-analyze") - 1));
      if (!rest.empty() && rest.front() == ':') rest = trim(rest.substr(1));
      if (starts_with(rest, "hot-path-begin")) {
        if (region_begin != 0) {
          ctx.emit("hot-path", ln,
                   "nested hot-path-begin (region already open since line " +
                       std::to_string(region_begin) + ")");
        } else {
          region_begin = ln;
          pending_rc = false;
          rc_depth = 0;
        }
        continue;
      }
      if (starts_with(rest, "hot-path-end")) {
        if (region_begin == 0) {
          ctx.emit("hot-path", ln, "hot-path-end without a matching begin");
        }
        region_begin = 0;
        continue;
      }
    }
    if (region_begin == 0) continue;

    // Char-level walk with RC_* macro-argument skipping: the assertion
    // failure path is cold by definition, so RC_CHECK_MSG's std::to_string
    // message building is exempt.
    const std::string& code = ctx.code(ln);
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (rc_depth > 0) {
        if (c == '(') ++rc_depth;
        if (c == ')') --rc_depth;
        ++i;
        continue;
      }
      if (pending_rc) {
        if (c == '(') {
          rc_depth = 1;
          pending_rc = false;
          ++i;
          continue;
        }
        if (c != ' ' && c != '\t') pending_rc = false;
      }
      if (!is_ident_char(c) || is_digit(c)) {
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      const std::string tok = code.substr(start, i - start);
      if (starts_with(tok, "RC_")) {
        pending_rc = true;
        continue;
      }
      auto ban = [&](const std::string& what) {
        ctx.emit("hot-path", ln,
                 what + " inside a hot-path region — the step loop must "
                        "not allocate, format, throw, or touch streams "
                        "(docs/PERFORMANCE.md)");
      };
      if (tok == "new") {
        ban("heap allocation ('new')");
      } else if (tok == "throw") {
        ban("'throw'");
      } else if (tok == "string") {
        ban("std::string");
      } else {
        for (const char* b : kHotBannedIdents) {
          if (tok == b) {
            ban("'" + tok + "'");
            break;
          }
        }
      }
    }
  }
  if (region_begin != 0) {
    ctx.emit("hot-path", region_begin,
             "hot-path-begin without a matching hot-path-end before end of "
             "file");
  }
}

bool is_region_directive(const std::string& rest) {
  return starts_with(rest, "hot-path-begin") ||
         starts_with(rest, "hot-path-end");
}

}  // namespace

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

int layer_manifest::rank(const std::string& layer) const {
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == layer) return static_cast<int>(i);
  }
  return -1;
}

std::string layer_manifest::layer_for(const std::string& path) const {
  std::size_t best_len = 0;
  std::string best;
  for (const assignment& a : assignments) {
    if (a.prefix.size() >= best_len && starts_with(path, a.prefix.c_str())) {
      best_len = a.prefix.size();
      best = a.layer;
    }
  }
  return best;
}

layer_manifest parse_manifest(const std::string& text,
                              std::vector<std::string>* errors) {
  layer_manifest m;
  std::size_t pos = 0;
  int ln = 0;
  auto err = [&](const std::string& what) {
    if (errors != nullptr) {
      errors->push_back("layers.manifest:" + std::to_string(ln) + ": " +
                        what);
    }
  };
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string line = trim(text.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos));
    ++ln;
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    std::vector<std::string> words;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      const std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
      if (i > start) words.push_back(line.substr(start, i - start));
    }
    if (words[0] == "layer" && words.size() == 2) {
      if (m.rank(words[1]) != -1) {
        err("duplicate layer '" + words[1] + "'");
      } else {
        m.order.push_back(words[1]);
      }
    } else if (words[0] == "path" && words.size() == 3) {
      if (m.rank(words[2]) == -1) {
        err("path assignment names undeclared layer '" + words[2] + "'");
      } else {
        m.assignments.push_back({words[1], words[2]});
      }
    } else {
      err("malformed line (expected `layer <name>` or `path <prefix> "
          "<name>`)");
    }
  }
  return m;
}

const layer_manifest& default_manifest() {
  // Keep in sync with tools/analyze/layers.manifest (the committed source
  // of truth the CLI prefers; this copy covers synthetic-path tests and
  // running outside a checkout).
  static const layer_manifest m = [] {
    return parse_manifest(R"(
layer util
layer obs
layer graph
layer exec-base
layer fault
layer sim
layer adversary
layer core
layer chaos
layer exec
layer campaign
layer api
layer harness

path src/util/              util
path src/obs/               obs
path src/graph/             graph
path src/exec/thread_pool.  exec-base
path src/exec/sharding.     exec-base
path src/fault/             fault
path src/fault/chaos.       chaos
path src/sim/               sim
path src/adversary/         adversary
path src/core/              core
path src/exec/              exec
path src/campaign/          campaign
path src/radiocast.h        api
path bench/                 harness
path tests/                 harness
path tools/                 harness
path examples/              harness
)",
                          nullptr);
  }();
  return m;
}

// ---------------------------------------------------------------------------
// Pass table, driver, report
// ---------------------------------------------------------------------------

const std::vector<pass_info>& passes() {
  static const std::vector<pass_info> kPasses = {
      {"layering",
       "the #include graph respects the declared layer manifest: no upward "
       "edges, no include cycles"},
      {"taint",
       "wall-clock reads only flow into wall_ms-family outputs, and every "
       "rng construction derives from a seeded stream (util/rng.h)"},
      {"contract",
       "protocols exposing soa_runner() ship SoA traits with POD state, "
       "the full hook set including on_restart, and an exact "
       "begin_step(std::int64_t) signature"},
      {"hot-path",
       "no heap allocation, std::string, throw, or iostream inside "
       "annotated step-loop regions (RC_* assertion arguments exempt)"},
  };
  return kPasses;
}

bool is_known_pass(const std::string& id) {
  for (const pass_info& p : passes()) {
    if (id == p.id) return true;
  }
  return false;
}

int report::unsuppressed_count() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [](const finding& f) { return !f.suppressed; }));
}

int report::suppressed_count() const {
  return static_cast<int>(findings.size()) - unsuppressed_count();
}

report analyze_files(const std::vector<source_file>& files,
                     const layer_manifest& manifest) {
  report rep;
  rep.manifest = manifest;
  rep.files_scanned = static_cast<int>(files.size());

  std::vector<file_ctx> ctxs(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    ctxs[i].file = &files[i];
    ctxs[i].src = scrub(files[i].text);
    ctxs[i].allows = collect_allows(ctxs[i].src, "radiocast-analyze",
                                    is_known_pass, is_region_directive);
    rep.nodes.push_back(files[i].path);
  }

  run_layering(ctxs, manifest, &rep);
  for (file_ctx& ctx : ctxs) {
    run_taint(ctx);
    run_contract(ctx);
    run_hot_path(ctx);

    // Annotation hygiene: malformed annotations and stale allows are
    // findings, exactly as in the lint.
    for (const annotation_issue& issue : ctx.allows.issues) {
      ctx.findings.push_back({"analyze-annotation", ctx.file->path,
                              issue.line, issue.message,
                              ctx.raw_line(issue.line), false, ""});
    }
    for (const auto& [target, entries] : ctx.allows.by_line) {
      (void)target;
      for (const allow_entry& a : entries) {
        if (!a.used) {
          ctx.findings.push_back(
              {"analyze-annotation", ctx.file->path, a.annotation_line,
               "unused suppression: no '" + a.rule +
                   "' finding on the annotated line",
               ctx.raw_line(a.annotation_line), false, ""});
        }
      }
    }

    std::stable_sort(ctx.findings.begin(), ctx.findings.end(),
                     [](const finding& a, const finding& b) {
                       return a.line < b.line;
                     });
    rep.findings.insert(rep.findings.end(),
                        std::make_move_iterator(ctx.findings.begin()),
                        std::make_move_iterator(ctx.findings.end()));
  }

  std::sort(rep.edges.begin(), rep.edges.end(),
            [](const include_edge& a, const include_edge& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });
  return rep;
}

obs::json_value report_to_json(const report& rep) {
  using obs::json_value;
  json_value doc = json_value::object();
  doc.set("schema", kSchema);
  doc.set("tool", "radiocast_analyze");
  doc.set("files_scanned", rep.files_scanned);

  json_value pass_table = json_value::array();
  for (const pass_info& p : passes()) {
    json_value entry = json_value::object();
    entry.set("id", p.id);
    entry.set("summary", p.summary);
    pass_table.push_back(std::move(entry));
  }
  doc.set("passes", std::move(pass_table));

  json_value layers = json_value::array();
  for (const std::string& l : rep.manifest.order) layers.push_back(l);
  doc.set("layers", std::move(layers));

  json_value graph = json_value::object();
  json_value nodes = json_value::array();
  for (const std::string& n : rep.nodes) {
    json_value node = json_value::object();
    node.set("path", n);
    node.set("layer", rep.manifest.layer_for(n));
    nodes.push_back(std::move(node));
  }
  graph.set("nodes", std::move(nodes));
  json_value edges = json_value::array();
  for (const include_edge& e : rep.edges) {
    json_value edge = json_value::object();
    edge.set("from", e.from);
    edge.set("to", e.to);
    edges.push_back(std::move(edge));
  }
  graph.set("edges", std::move(edges));
  doc.set("include_graph", std::move(graph));

  json_value open = json_value::array();
  json_value suppressed = json_value::array();
  std::map<std::string, int> by_pass;
  for (const finding& f : rep.findings) {
    json_value entry = json_value::object();
    entry.set("pass", f.pass);
    entry.set("path", f.path);
    entry.set("line", f.line);
    entry.set("message", f.message);
    entry.set("snippet", f.snippet);
    if (f.suppressed) {
      entry.set("justification", f.justification);
      suppressed.push_back(std::move(entry));
    } else {
      ++by_pass[f.pass];
      open.push_back(std::move(entry));
    }
  }
  doc.set("findings", std::move(open));
  doc.set("suppressed", std::move(suppressed));

  json_value summary = json_value::object();
  summary.set("findings", rep.unsuppressed_count());
  summary.set("suppressed", rep.suppressed_count());
  summary.set("clean", rep.unsuppressed_count() == 0);
  json_value per_pass = json_value::object();
  for (const auto& [pass, count] : by_pass) per_pass.set(pass, count);
  summary.set("by_pass", std::move(per_pass));
  doc.set("summary", std::move(summary));
  return doc;
}

}  // namespace radiocast::analyze
