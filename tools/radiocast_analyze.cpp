// radiocast_analyze — semantic static-analysis CLI (passes in
// tools/analyze/).
//
//   radiocast_analyze [--root DIR] [--json FILE] [--manifest FILE]
//                     [--passes] [PATH...]
//
// Scans PATH... (default: src tools bench, relative to --root, default
// ".") for .h/.cpp files and runs the four semantic passes — layering,
// taint, contract, hot-path (docs/STATIC_ANALYSIS.md). The layer manifest
// is read from --manifest, else <root>/tools/analyze/layers.manifest, else
// the built-in copy. Optionally writes a radiocast.analysis.v1 JSON report
// that `radiocast_inspect validate` checks.
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
//
// scripts/ci.sh runs this as stage 0, next to radiocast_lint, before any
// build stage.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"

namespace radiocast {
namespace {

namespace fs = std::filesystem;

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool analyzable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

int usage() {
  std::cerr << "usage: radiocast_analyze [--root DIR] [--json FILE]"
               " [--manifest FILE] [--passes] [PATH...]\n"
               "  PATH... default: src tools bench\n";
  return 2;
}

int run(const std::vector<std::string>& args) {
  std::string root = ".";
  std::string json_out;
  std::string manifest_path;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (args[i] == "--json" && i + 1 < args.size()) {
      json_out = args[++i];
    } else if (args[i] == "--manifest" && i + 1 < args.size()) {
      manifest_path = args[++i];
    } else if (args[i] == "--passes") {
      for (const analyze::pass_info& p : analyze::passes()) {
        std::cout << p.id << "\n    " << p.summary << "\n";
      }
      return 0;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage();
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  const fs::path root_path(root);

  // Resolve the manifest: explicit flag > committed file > built-in.
  analyze::layer_manifest manifest;
  {
    std::string text;
    std::string origin;
    if (!manifest_path.empty()) {
      if (!read_file(manifest_path, &text)) {
        std::cerr << "radiocast_analyze: error: cannot read manifest "
                  << manifest_path << "\n";
        return 2;
      }
      origin = manifest_path;
    } else if (read_file(root_path / "tools/analyze/layers.manifest",
                         &text)) {
      origin = "tools/analyze/layers.manifest";
    }
    if (origin.empty()) {
      manifest = analyze::default_manifest();
    } else {
      std::vector<std::string> errors;
      manifest = analyze::parse_manifest(text, &errors);
      for (const std::string& e : errors) {
        std::cerr << "radiocast_analyze: " << origin << ": " << e << "\n";
      }
      if (!errors.empty()) return 2;
    }
  }

  // Collect files, sorted by repo-relative path so diagnostics and the
  // JSON report are deterministic across filesystems.
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path full = root_path / p;
    std::error_code ec;
    if (fs::is_regular_file(full, ec)) {
      if (analyzable(full)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(full, ec)) {
      std::cerr << "radiocast_analyze: error: no such file or directory: "
                << full.string() << "\n";
      return 2;
    }
    for (fs::recursive_directory_iterator it(full, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_regular_file() && analyzable(it->path())) {
        files.push_back(
            it->path().lexically_relative(root_path).generic_string());
      }
    }
    if (ec) {
      std::cerr << "radiocast_analyze: error walking " << full.string()
                << ": " << ec.message() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<analyze::source_file> sources;
  sources.reserve(files.size());
  for (const std::string& rel : files) {
    std::string text;
    if (!read_file(root_path / rel, &text)) {
      std::cerr << "radiocast_analyze: error: cannot read " << rel << "\n";
      return 2;
    }
    sources.push_back({rel, std::move(text)});
  }

  const analyze::report rep = analyze::analyze_files(sources, manifest);

  for (const analyze::finding& f : rep.findings) {
    if (f.suppressed) continue;
    std::cout << f.path << ":" << f.line << ": [" << f.pass << "] "
              << f.message << "\n";
    if (!f.snippet.empty()) std::cout << "    " << f.snippet << "\n";
  }
  std::cout << "radiocast_analyze: " << rep.files_scanned << " files, "
            << rep.edges.size() << " include edges, "
            << rep.unsuppressed_count() << " findings, "
            << rep.suppressed_count() << " suppressed\n";

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << "radiocast_analyze: error: cannot write " << json_out
                << "\n";
      return 2;
    }
    analyze::report_to_json(rep).write(out, 2);
    out << "\n";
  }
  return rep.unsuppressed_count() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace radiocast

int main(int argc, char** argv) {
  return radiocast::run({argv + 1, argv + argc});
}
