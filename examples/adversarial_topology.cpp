// Adversarial topology explorer: build the Theorem 2 network G_A against a
// deterministic algorithm and watch it struggle.
//
//   ./adversarial_topology [--protocol select-and-send] [--n 512] [--d 8]
//                          [--dot out.dot]
//
// The lower-bound adversary simulates the chosen algorithm while deciding
// the topology: every candidate node is treated as a potential next-layer
// member until the jamming function pins down a layer the algorithm cannot
// penetrate quickly. The example prints the layer structure, the forced
// delay, and a replay comparison against a benign network of the same
// (n, D). Optionally writes the network in Graphviz DOT format.
#include <cmath>
#include <fstream>
#include <iostream>

#include "adversary/lower_bound_builder.h"
#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/cli.h"
#include "util/table.h"

using namespace radiocast;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const std::string name = args.get_string("protocol", "select-and-send");
  const auto n = static_cast<node_id>(args.get_int("n", 512));
  const int d = static_cast<int>(args.get_int("d", 8));

  const auto proto = make_protocol(name, n - 1);
  if (!proto->deterministic()) {
    std::cerr << "the Theorem 2 adversary works against deterministic "
                 "algorithms; pick round-robin, select-and-send, or "
                 "interleaved\n";
    return 1;
  }

  std::cout << "building G_A against '" << proto->name() << "' (n=" << n
            << ", D=" << d << ") …\n";
  const adversarial_network net = build_adversarial_network(*proto, n, d);
  std::cout << "construction parameters: k=" << net.k
            << ", jammed steps per stage=" << net.jam_steps_per_stage
            << ", forced delay=" << net.forced_steps << " steps"
            << (net.stuck ? " [construction got stuck; layers were filled "
                            "arbitrarily]"
                          : "")
            << "\n";

  text_table layout("layer structure of G_A");
  layout.set_header({"layer", "contents", "size"});
  for (int i = 0; i < d / 2; ++i) {
    layout.add_row({std::to_string(2 * i), "spine node " + std::to_string(i),
                    "1"});
    const auto& odd = net.odd_layers[static_cast<std::size_t>(i)];
    const auto& star = net.star_layers[static_cast<std::size_t>(i)];
    layout.add_row({std::to_string(2 * i + 1),
                    "jammed layer (|L*|=" + std::to_string(star.size()) + ")",
                    std::to_string(odd.size())});
  }
  layout.add_row({std::to_string(d), "final layer L_D",
                  std::to_string(net.last_layer.size())});
  layout.print(std::cout);

  run_options opts;
  opts.max_steps = 500'000'000;
  const run_result adv = run_broadcast(net.g, *proto, opts);
  const graph benign = make_complete_layered_uniform(n, d);
  const run_result friendly = run_broadcast(benign, *proto, opts);

  text_table compare("replaying " + proto->name());
  compare.set_header({"network", "completion steps"});
  compare.add_row({"adversarial G_A",
                   adv.completed ? std::to_string(adv.informed_step)
                                 : "did not finish"});
  compare.add_row({"benign complete layered",
                   friendly.completed ? std::to_string(friendly.informed_step)
                                      : "did not finish"});
  compare.print(std::cout);
  if (adv.completed) {
    const double bound =
        n * std::log2(static_cast<double>(n)) /
        std::max(1.0, std::log2(static_cast<double>(n) / d));
    std::cout << "  forced delay honored: " << adv.informed_step
              << " ≥ " << net.forced_steps << " steps\n"
              << "  measured / Ω(n·log n / log(n/D)) shape: "
              << text_table::format_double(
                     static_cast<double>(adv.informed_step) / bound, 2)
              << " (the lower bound says this cannot go to 0 for any\n"
                 "   deterministic algorithm on its own G_A)\n";
    if (friendly.completed && friendly.informed_step > adv.informed_step) {
      std::cout << "  note: this algorithm is no faster on the benign\n"
                   "  network either — its cost is Θ(n log n) everywhere;\n"
                   "  the adversary matters for algorithms (like round-robin\n"
                   "  with friendly labels) that can be fast somewhere.\n";
    }
  }

  if (args.has("dot")) {
    const std::string path = args.get_string("dot", "ga.dot");
    std::ofstream out(path);
    out << net.g.to_dot("GA");
    std::cout << "wrote " << path << " (render with: dot -Tsvg " << path
              << " -o ga.svg)\n";
  }
  return 0;
}
