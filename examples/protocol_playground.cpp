// Protocol playground: run any protocol on any topology and sweep a
// parameter — the general-purpose CLI for exploring the library.
//
//   ./protocol_playground --protocol kp --topology layered --n 1024 --d 32
//   ./protocol_playground --protocol decay --topology gnp --n 500 --p 0.02
//   ./protocol_playground --list
//   ./protocol_playground --protocol kp --topology layered --sweep-d
//   ./protocol_playground --protocol decay --trials 64 --threads 4
//
// Topologies: path, cycle, star, complete, grid, tree, gnp, caterpillar,
// layered (complete layered), layered-fat, random-layered.
//
// `--threads N` shards the seeded trials over N workers (default: the
// RADIOCAST_THREADS environment variable, else serial); results are
// bit-identical to a serial run — see docs/PARALLELISM.md.
#include <iostream>

#include "core/runner.h"
#include "exec/parallel_trials.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/cli.h"
#include "util/table.h"

using namespace radiocast;

namespace {

graph build_topology(const std::string& topology, node_id n, int d, double p,
                     rng& gen) {
  if (topology == "path") return make_path(n);
  if (topology == "cycle") return make_cycle(n);
  if (topology == "star") return make_star(n);
  if (topology == "complete") return make_complete(n);
  if (topology == "grid") return make_grid(n / 16 + 1, 16);
  if (topology == "tree") return make_random_tree(n, gen);
  if (topology == "gnp") return make_gnp_connected(n, p, gen);
  if (topology == "caterpillar") return make_caterpillar(n / 4, 3);
  if (topology == "layered") return make_complete_layered_uniform(n, d);
  if (topology == "layered-fat") {
    return make_complete_layered_fat(n, d, std::max(1, d - 1));
  }
  if (topology == "random-layered") {
    std::vector<node_id> sizes{1};
    const auto rest = even_split(n - 1, d);
    sizes.insert(sizes.end(), rest.begin(), rest.end());
    return make_random_layered(sizes, p, gen);
  }
  RC_REQUIRE_MSG(false, "unknown topology '" + topology + "'");
  return make_path(2);  // unreachable
}

void run_once(const std::string& proto_name, const graph& g, int d,
              int trials, int threads) {
  const node_id n = g.node_count();
  const auto proto = make_protocol(proto_name, n - 1, d);
  trial_options topts;
  topts.trials = proto->deterministic() ? 1 : trials;
  topts.base_seed = 1;
  topts.max_steps = 100'000'000;
  topts.threads = threads;
  const trial_set batch = parallel_run_trials(g, *proto, topts);
  RC_CHECK_MSG(batch.all_completed(), "broadcast did not complete");
  const summary s = summarize(batch.completion_steps());
  std::cout << proto->name() << " on n=" << n << " D=" << radius_from(g)
            << ": mean " << text_table::format_double(s.mean, 1)
            << " steps (min " << s.min << ", max " << s.max << "), "
            << batch.trials.back().collisions << " collisions in the last run\n";
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  if (args.has("list")) {
    std::cout << "protocols:";
    for (const auto& name : protocol_names()) std::cout << ' ' << name;
    std::cout << "\ntopologies: path cycle star complete grid tree gnp "
                 "caterpillar layered layered-fat random-layered\n";
    return 0;
  }

  const std::string proto_name = args.get_string("protocol", "kp");
  const std::string topology = args.get_string("topology", "layered");
  const auto n = static_cast<node_id>(args.get_int("n", 256));
  const int d = static_cast<int>(args.get_int("d", 8));
  const double p = args.get_double("p", 0.05);
  const int trials = static_cast<int>(args.get_int("trials", 10));
  // 0 = defer to the RADIOCAST_THREADS environment default (1 when unset).
  const int threads = static_cast<int>(args.get_int("threads", 0));
  rng gen(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  if (args.has("sweep-d")) {
    text_table table(proto_name + " on " + topology + ", sweeping D at n=" +
                     std::to_string(n));
    table.set_header({"D", "mean steps"});
    for (int dd = 2; dd <= n / 4; dd *= 2) {
      graph g = build_topology(topology, n, dd, p, gen);
      const auto proto = make_protocol(proto_name, n - 1, dd);
      const measurement m =
          measure(g, *proto, trials, 1, 100'000'000, true);
      table.add(dd, m.time.mean);
    }
    if (args.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    return 0;
  }

  graph g = build_topology(topology, n, d, p, gen);
  run_once(proto_name, g, d, trials, threads);
  return 0;
}
