// Sensor field: broadcast latency across a unit-disk sensor deployment.
//
//   ./sensor_field [--n 400] [--range 0.09] [--protocol kp] [--seed 5]
//
// Drops n sensors uniformly in the unit square (radio range `range` — the
// classical unit-disk ad hoc model), broadcasts from the gateway in the
// corner, and renders an ASCII heat map of informing times: each cell
// shows the time decile at which its sensors learned the message. A direct
// visual of the paper's setting — information rippling through an unknown
// multi-hop radio topology, collisions and all.
#include <iostream>

#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/cli.h"
#include "util/table.h"

using namespace radiocast;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const auto n = static_cast<node_id>(args.get_int("n", 400));
  const double range = args.get_double("range", 0.09);
  const std::string proto_name = args.get_string("protocol", "kp");
  rng gen(static_cast<std::uint64_t>(args.get_int("seed", 5)));

  std::vector<std::pair<double, double>> pos;
  const graph g = make_random_geometric(n, range, gen, pos);
  const int d = radius_from(g);
  std::cout << "sensor field: " << n << " sensors, radio range " << range
            << ", " << g.edge_count() << " links, hop radius " << d << "\n";

  const auto proto = make_protocol(proto_name, n - 1, std::max(1, d));
  run_options opts;
  opts.seed = 42;
  opts.max_steps = 50'000'000;
  const run_result res = run_broadcast(g, *proto, opts);
  if (!res.completed) {
    std::cout << "broadcast did not complete within the step cap\n";
    return 1;
  }
  std::cout << proto->name() << ": all sensors informed after "
            << res.informed_step << " steps (" << res.collisions
            << " collisions along the way)\n\n";

  // Heat map: 24×48 grid of cells, each labeled with the informing-time
  // decile (0 = earliest tenth, 9 = last tenth) of its average sensor.
  constexpr int kRows = 24;
  constexpr int kCols = 48;
  std::vector<std::vector<double>> cell_sum(kRows,
                                            std::vector<double>(kCols, 0));
  std::vector<std::vector<int>> cell_count(kRows,
                                           std::vector<int>(kCols, 0));
  for (node_id v = 0; v < n; ++v) {
    const int row = std::min(kRows - 1,
                             static_cast<int>(pos[static_cast<std::size_t>(
                                                      v)].second * kRows));
    const int col = std::min(kCols - 1,
                             static_cast<int>(pos[static_cast<std::size_t>(
                                                      v)].first * kCols));
    cell_sum[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] +=
        static_cast<double>(res.informed_at[static_cast<std::size_t>(v)]);
    ++cell_count[static_cast<std::size_t>(row)][static_cast<std::size_t>(
        col)];
  }
  const double max_time =
      static_cast<double>(std::max<std::int64_t>(1, res.informed_step));
  std::cout << "informing-time map (0 = immediately, 9 = last; '.' = no "
               "sensor; gateway at top-left):\n";
  for (int row = 0; row < kRows; ++row) {
    for (int col = 0; col < kCols; ++col) {
      const auto r = static_cast<std::size_t>(row);
      const auto c = static_cast<std::size_t>(col);
      if (cell_count[r][c] == 0) {
        std::cout << '.';
        continue;
      }
      const double mean = cell_sum[r][c] / cell_count[r][c];
      const int decile =
          std::min(9, static_cast<int>(10.0 * mean / max_time));
      std::cout << decile;
    }
    std::cout << '\n';
  }

  std::cout << "\nTry: --protocol decay (watch the map get patchier), or\n"
               "--range 0.2 (denser network, fewer hops, faster spread).\n";
  return 0;
}
