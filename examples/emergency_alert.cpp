// Emergency alert scenario: which broadcast protocol meets a deadline?
//
//   ./emergency_alert [--blocks 12] [--per-block 24] [--deadline 600]
//                     [--trials 25] [--seed 3]
//
// Models a city-district ad hoc network: a chain of `blocks` city blocks,
// each with `per-block` devices, consecutive blocks connected by sparse
// random radio links plus occasional long-range links — the multi-hop,
// unknown-topology setting that motivates the paper. Every device knows
// only its own id and the fleet-size bound; no routing tables exist.
//
// The harness broadcasts an alert from device 0 with each algorithm and
// reports mean/p95 completion steps and the fraction of trials that meet
// the deadline — the randomized algorithms' step counts vary per run, the
// deterministic ones give hard guarantees at higher cost.
#include <iostream>

#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace radiocast;

namespace {

graph make_district(node_id blocks, node_id per_block, rng& gen) {
  const node_id n = blocks * per_block;
  graph g = graph::undirected(n);
  auto device = [per_block](node_id block, node_id i) {
    return block * per_block + i;
  };
  // Dense links within a block (everyone hears everyone).
  for (node_id b = 0; b < blocks; ++b) {
    for (node_id i = 0; i < per_block; ++i) {
      for (node_id j = i + 1; j < per_block; ++j) {
        g.add_edge_unchecked(device(b, i), device(b, j));
      }
    }
  }
  // Sparse links between adjacent blocks (edge-of-range radios).
  for (node_id b = 0; b + 1 < blocks; ++b) {
    int links = 0;
    while (links < 3) {
      const auto i = static_cast<node_id>(gen.below(
          static_cast<std::uint64_t>(per_block)));
      const auto j = static_cast<node_id>(gen.below(
          static_cast<std::uint64_t>(per_block)));
      g.add_edge(device(b, i), device(b + 1, j));
      ++links;
    }
  }
  // A couple of long-range links (rooftop repeaters).
  for (int k = 0; k < 2 && blocks > 3; ++k) {
    const auto b1 = static_cast<node_id>(gen.below(
        static_cast<std::uint64_t>(blocks / 2)));
    const auto b2 = b1 + blocks / 2;
    g.add_edge(device(b1, 0), device(b2 % blocks, 0));
  }
  g.finalize();
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const auto blocks = static_cast<node_id>(args.get_int("blocks", 12));
  const auto per_block = static_cast<node_id>(args.get_int("per-block", 24));
  const std::int64_t deadline = args.get_int("deadline", 600);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  rng gen(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  const graph g = make_district(blocks, per_block, gen);
  const node_id n = g.node_count();
  const int d = radius_from(g);
  std::cout << "emergency alert over a district network: " << n
            << " devices, " << g.edge_count() << " radio links, radius " << d
            << "\nalert deadline: " << deadline << " steps\n";

  text_table table("protocol comparison (" + std::to_string(trials) +
                   " trials each)");
  table.set_header({"protocol", "mean", "p95", "worst", "met deadline"});
  for (const std::string name :
       {"kp", "decay", "round-robin", "select-and-send", "interleaved"}) {
    const auto proto = make_protocol(name, n - 1, d);
    const int runs = proto->deterministic() ? 1 : trials;
    std::vector<double> times;
    int met = 0;
    for (int trial = 0; trial < runs; ++trial) {
      run_options opts;
      opts.seed = 1000 + static_cast<std::uint64_t>(trial);
      opts.max_steps = 10'000'000;
      const run_result res = run_broadcast(g, *proto, opts);
      RC_CHECK(res.completed);
      times.push_back(static_cast<double>(res.informed_step));
      met += res.informed_step <= deadline ? 1 : 0;
    }
    const summary s = summarize(times);
    table.add_row({proto->name(), text_table::format_double(s.mean, 1),
                   text_table::format_double(s.p95, 1),
                   text_table::format_double(s.max, 1),
                   std::to_string(met) + "/" + std::to_string(runs)});
  }
  table.print(std::cout);
  std::cout << "\nReading the table: the paper's randomized algorithm (kp)\n"
               "is built for exactly this regime — unknown topology, no\n"
               "neighborhood knowledge — and its stage schedule beats plain\n"
               "Decay; the deterministic token algorithms trade speed for\n"
               "per-run guarantees.\n";
  return 0;
}
