// Quickstart: simulate the paper's optimal randomized broadcast on a small
// ad hoc radio network and watch what happens, step by step.
//
//   ./quickstart [--n 32] [--d 4] [--seed 7] [--trace]
//
// Builds a complete layered network (the hardest family for randomized
// broadcasting), runs Randomized-Broadcasting(D), and prints per-layer
// informing times plus run statistics. With --trace, dumps the first
// transmissions/receptions so you can see collisions resolving.
#include <iostream>

#include "core/runner.h"
#include "graph/analysis.h"
#include "graph/generators.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/cli.h"
#include "util/table.h"

using namespace radiocast;

int main(int argc, char** argv) {
  const cli_args args(argc, argv);
  const auto n = static_cast<node_id>(args.get_int("n", 32));
  const int d = static_cast<int>(args.get_int("d", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const bool want_trace = args.get_bool("trace", false);

  std::cout << "radiocast quickstart — Kowalski–Pelc randomized broadcast\n"
            << "network: complete layered, n=" << n << ", D=" << d << "\n\n";

  const graph g = make_complete_layered_uniform(n, d);
  const auto proto = make_protocol("kp", n - 1, d);

  trace t;
  run_options opts;
  opts.seed = seed;
  opts.sink = want_trace ? &t : nullptr;
  const run_result res = run_broadcast(g, *proto, opts);

  if (!res.completed) {
    std::cout << "broadcast did not finish within " << opts.max_steps
              << " steps (try another seed)\n";
    return 1;
  }

  std::cout << "all " << n << " nodes informed after " << res.informed_step
            << " steps\n"
            << "transmissions: " << res.transmissions
            << ", successful receptions: " << res.deliveries
            << ", collisions observed: " << res.collisions << "\n";

  text_table layers_table("informing time per layer");
  layers_table.set_header({"layer", "nodes", "first informed", "last informed"});
  const auto layers = bfs_layers(g);
  for (std::size_t j = 0; j < layers.size(); ++j) {
    std::int64_t first = res.informed_at[static_cast<std::size_t>(
        layers[j].front())];
    std::int64_t last = first;
    for (node_id v : layers[j]) {
      first = std::min(first, res.informed_at[static_cast<std::size_t>(v)]);
      last = std::max(last, res.informed_at[static_cast<std::size_t>(v)]);
    }
    layers_table.add(j, layers[j].size(), first, last);
  }
  layers_table.print(std::cout);

  if (want_trace) {
    std::cout << "\nfirst 40 events:\n";
    int shown = 0;
    for (const auto& e : t.events()) {
      if (shown++ >= 40) break;
      std::cout << "  step " << e.step << ": node " << e.node << ' '
                << (e.what == trace_event::type::transmit    ? "transmits"
                    : e.what == trace_event::type::receive   ? "receives"
                    : e.what == trace_event::type::collision ? "collision"
                                                             : "informed")
                << '\n';
    }
  }

  std::cout << "\nTry: --n 512 --d 64 --seed 1, or --trace to watch the "
               "channel.\n";
  return 0;
}
