// Stage-by-stage construction of the Theorem 2 lower-bound network G_A.
//
// Given any DETERMINISTIC broadcasting algorithm A, the adversary builds an
// n-node network of radius D on which A is slow:
//
//   * even layers L_{2i} = {spine node i}, i = 0 … D/2−1 (we reserve labels
//     0 … D/2−1 for the spine — a legal adversarial choice of labeling);
//   * each odd layer L_{2i+1} (size ≤ 2k−2+|X*| with k = ⌊n/4D⌋) is carved
//     out of the remaining candidate pool by running A abstractly for
//     s = ⌊k·log(n/4) / (8·log k)⌋ steps against the Jamming function: every
//     candidate is treated as a potential neighbor of spine i, the jamming
//     answers decide what spine i hears, and the blocks shrink so that the
//     final choice X' ∪ X* is consistent with every answer;
//   * only nodes of L* ⊆ L_{2i+1} are also attached to spine i+1; because
//     all of X* share one transmit-trace during the jammed window, spine
//     i+1 never hears exactly one of them there, so each stage provably
//     stalls the "information front" for s steps;
//   * after the jammed window the construction keeps simulating (now with
//     real radio semantics on the built part) until spine i+1 transmits for
//     the first time, which opens the next stage;
//   * all remaining candidates become the final layer L_D, attached to
//     every node of L*_{D−1}.
//
// The returned network is a genuine graph; replaying A on it with the real
// simulator must reproduce the abstract run (the paper's Lemma 9) — the
// tests verify this by checking that A's completion time on G_A is at least
// the forced (D/2−1)·s steps.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/protocol.h"

namespace radiocast {

struct adversary_options {
  /// Cap on the steps spent waiting for a spine node's first transmission
  /// in any one stage (a correct algorithm transmits eventually; a stuck
  /// wait marks the result instead of looping forever).
  std::int64_t stage_wait_cap = 4'000'000;
};

struct adversarial_network {
  graph g = graph::undirected(1);
  int d = 0;  ///< radius parameter (the graph's radius is exactly d)
  int k = 0;  ///< layer-size parameter ⌊n/4D⌋
  std::int64_t jam_steps_per_stage = 0;  ///< s = ⌊k·log(n/4)/(8·log k)⌋
  std::int64_t forced_steps = 0;         ///< (D/2−1)·s — the proven delay
  std::vector<std::vector<node_id>> odd_layers;   ///< [i] = L_{2i+1}
  std::vector<std::vector<node_id>> star_layers;  ///< [i] = L*_{2i+1}
  std::vector<node_id> last_layer;                ///< L_D
  std::vector<std::int64_t> spine_first_tx;  ///< t_i observed per spine i
  bool stuck = false;  ///< a stage wait hit the cap (remaining layers were
                       ///< filled arbitrarily; forced_steps not guaranteed)
};

/// Runs the construction. Requires: proto.deterministic(), even D ≥ 4,
/// n ≥ 16·D (so k ≥ 4), and a pool large enough for the jamming blocks.
adversarial_network build_adversarial_network(
    const protocol& proto, node_id n, int d,
    const adversary_options& options = {});

}  // namespace radiocast
