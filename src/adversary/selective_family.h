// (m, k)-selective families (paper, Section 3; Clementi–Monti–Silvestri).
//
// A family F of subsets of {0,…,m−1} is (m,k)-selective if for every
// nonempty X ⊆ {0,…,m−1} with |X| ≤ k some F ∈ F satisfies |F ∩ X| = 1
// ("F selects X" — in radio terms: if X is the set of transmitters, the
// step scheduled by F delivers a message).
//
// Theorem 2's jamming argument leans on the CMS size lower bound: any
// (m,k)-selective family has Ω(k · log m / log k) sets — this is where the
// per-stage step count ⌊k·log(n/4)/(8·log k)⌋ comes from. This module
// provides verifiers, constructions, and the bound, both to test the
// lower-bound machinery and for experiment E10.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace radiocast {

/// A family of subsets of {0,…,m−1}; each set is sorted and duplicate-free.
using set_family = std::vector<std::vector<int>>;

/// |set ∩ x| == 1? Both inputs sorted ascending.
bool selects(const std::vector<int>& set, const std::vector<int>& x);

/// Exhaustive verification — enumerates every nonempty X with |X| ≤ k.
/// Feasible for small m (≈ m ≤ 32 with k ≤ 3); guarded by a work cap.
bool is_selective(const set_family& family, int m, int k);

/// A witness X (|X| ≤ k) that `family` fails to select, if one exists
/// within the same enumeration bounds.
std::optional<std::vector<int>> find_unselected(const set_family& family,
                                                int m, int k);

/// Greedy construction: repeatedly add the candidate set that selects the
/// most still-unselected targets. Candidate pool: all singletons plus
/// random sets of density ≈ 1/j for j = 1…k. Always terminates with a valid
/// family (singletons alone are selective). Small m, k only.
set_family greedy_selective_family(int m, int k, rng& gen);

/// Residue-class construction: sets {x ≡ a (mod q)} over consecutive primes
/// q ≥ k (a classic superimposed-code flavored family). Selective for small
/// k when enough primes are used; callers verify with is_selective.
set_family modular_selective_family(int m, int k, int prime_count);

/// The CMS-style lower bound the paper's Theorem 2 instantiates:
/// (k/8) · log₂(m) / log₂(k), for k ≥ 2.
double cms_size_lower_bound(int m, int k);

}  // namespace radiocast
