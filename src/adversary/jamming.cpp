#include "adversary/jamming.h"

#include <algorithm>

#include "util/assert.h"

namespace radiocast {

jamming::jamming(std::vector<node_id> pool, int k) : k_(k), pool_(pool) {
  RC_REQUIRE_MSG(k >= 4 && k % 2 == 0, "jamming needs even k ≥ 4");
  RC_REQUIRE_MSG(static_cast<int>(pool.size()) >= k * k / 2,
                 "pool too small: every block must start with ≥ k elements");
  const int block_count = k / 2;
  blocks_.resize(static_cast<std::size_t>(block_count));
  // Near-equal contiguous partition (the paper's B(p) are arbitrary).
  const std::size_t base = pool.size() / static_cast<std::size_t>(block_count);
  const std::size_t extra = pool.size() % static_cast<std::size_t>(block_count);
  std::size_t at = 0;
  for (std::size_t p = 0; p < blocks_.size(); ++p) {
    const std::size_t size = base + (p < extra ? 1 : 0);
    blocks_[p].assign(pool.begin() + static_cast<std::ptrdiff_t>(at),
                      pool.begin() + static_cast<std::ptrdiff_t>(at + size));
    at += size;
  }
}

jamming::outcome jamming::step(const std::vector<node_id>& y) {
  ++steps_;
  // Sorted fold of Y: membership via binary search, so the adversary's
  // decisions cannot depend on hash iteration order (determinism lint R3).
  std::vector<node_id> in_y(y);
  std::sort(in_y.begin(), in_y.end());
  auto hit = [&](node_id v) {
    return std::binary_search(in_y.begin(), in_y.end(), v);
  };
  auto intersection_size = [&](const std::vector<node_id>& block) {
    int count = 0;
    for (node_id v : block) count += hit(v) ? 1 : 0;
    return count;
  };
  auto truncate_if_small = [&](std::vector<node_id>& block) {
    if (!is_large(block) && block.size() > 2) {
      block.resize(2);  // "choose two elements v, w"
    }
  };

  // Case A: some large block intersects Y in more than a 2/k fraction.
  for (auto& block : blocks_) {
    if (!is_large(block)) continue;
    const int hits = intersection_size(block);
    if (static_cast<std::int64_t>(hits) * k_ >
        2 * static_cast<std::int64_t>(block.size())) {
      std::vector<node_id> kept;
      kept.reserve(static_cast<std::size_t>(hits));
      for (node_id v : block) {
        if (hit(v)) kept.push_back(v);
      }
      RC_CHECK_MSG(kept.size() >= 2,
                   "jamming case A must keep ≥ 2 candidates after shrinking");
      block = std::move(kept);
      truncate_if_small(block);
      return outcome{outcome::kind::collision, -1};
    }
  }

  // Case B: every large block loses its transmitters…
  for (auto& block : blocks_) {
    if (!is_large(block)) continue;
    std::erase_if(block, [&](node_id v) { return hit(v); });
    // ≥ (1 − 2/k)·k = k − 2 ≥ 2 for k ≥ 4
    RC_CHECK_MSG(block.size() >= 2,
                 "jamming case B left a large block with < 2 candidates");
    truncate_if_small(block);
  }
  // …and the answer is read off the small blocks.
  node_id unique = -1;
  int seen = 0;
  for (const auto& block : blocks_) {
    if (is_large(block)) continue;
    for (node_id v : block) {
      if (hit(v)) {
        unique = v;
        if (++seen >= 2) return outcome{outcome::kind::collision, -1};
      }
    }
  }
  if (seen == 0) return outcome{outcome::kind::silence, -1};
  return outcome{outcome::kind::unique, unique};
}

std::size_t jamming::largest_block() const {
  std::size_t best = 0;
  for (std::size_t p = 1; p < blocks_.size(); ++p) {
    if (blocks_[p].size() > blocks_[best].size()) best = p;
  }
  return best;
}

jamming::layer_choice jamming::pick_layer() const {
  const std::size_t p_star = largest_block();
  layer_choice choice;
  for (std::size_t p = 0; p < blocks_.size(); ++p) {
    if (p == p_star) continue;
    RC_CHECK_MSG(blocks_[p].size() >= 2,
                 "jamming block invariant (≥ 2 candidates) broken in "
                 "pick_layer");
    choice.layer.push_back(blocks_[p][0]);
    choice.layer.push_back(blocks_[p][1]);
  }
  const auto& star_block = blocks_[p_star];
  const std::size_t star_size =
      std::min<std::size_t>(static_cast<std::size_t>(k_), star_block.size());
  RC_CHECK_MSG(star_size >= 2,
               "star block must contribute ≥ 2 candidates to the layer");
  choice.star.assign(star_block.begin(),
                     star_block.begin() + static_cast<std::ptrdiff_t>(star_size));
  choice.layer.insert(choice.layer.end(), choice.star.begin(),
                      choice.star.end());
  return choice;
}

bool jamming::invariant_holds() const {
  // Sorted folds instead of hash sets: membership via binary search, block
  // disjointness via one sort + adjacent_find (determinism lint R3).
  std::vector<node_id> pool_sorted(pool_);
  std::sort(pool_sorted.begin(), pool_sorted.end());
  std::vector<node_id> seen;
  for (const auto& block : blocks_) {
    if (block.size() < 2) return false;
    for (node_id v : block) {
      if (!std::binary_search(pool_sorted.begin(), pool_sorted.end(), v)) {
        return false;
      }
      seen.push_back(v);
    }
  }
  std::sort(seen.begin(), seen.end());
  // Blocks must be pairwise disjoint: no value may appear twice.
  return std::adjacent_find(seen.begin(), seen.end()) == seen.end();
}

}  // namespace radiocast
