#include "adversary/selective_family.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/assert.h"
#include "util/math.h"

namespace radiocast {

bool selects(const std::vector<int>& set, const std::vector<int>& x) {
  // Sorted-merge intersection count with early exit at 2.
  std::size_t i = 0;
  std::size_t j = 0;
  int count = 0;
  while (i < set.size() && j < x.size()) {
    if (set[i] < x[j]) {
      ++i;
    } else if (set[i] > x[j]) {
      ++j;
    } else {
      if (++count >= 2) return false;
      ++i;
      ++j;
    }
  }
  return count == 1;
}

namespace {

/// Enumerates nonempty subsets X ⊆ {0..m−1}, |X| ≤ k, invoking f(X);
/// stops early if f returns true (found). Returns the first X accepted.
std::optional<std::vector<int>> enumerate_targets(
    int m, int k, const std::function<bool(const std::vector<int>&)>& f) {
  RC_REQUIRE(m >= 1 && k >= 1);
  // Work cap: sum of C(m, 1..k) must stay laptop-instant.
  double work = 0.0;
  double c = 1.0;
  for (int size = 1; size <= std::min(k, m); ++size) {
    c = c * (m - size + 1) / size;
    work += c;
  }
  RC_REQUIRE_MSG(work <= 2e7, "selective-family enumeration too large");

  std::vector<int> x;
  // Iterative combination enumeration per size.
  for (int size = 1; size <= std::min(k, m); ++size) {
    std::vector<int> idx(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) idx[static_cast<std::size_t>(i)] = i;
    for (;;) {
      if (f(idx)) return idx;
      // next combination
      int i = size - 1;
      while (i >= 0 && idx[static_cast<std::size_t>(i)] == m - size + i) --i;
      if (i < 0) break;
      ++idx[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < size; ++j) {
        idx[static_cast<std::size_t>(j)] =
            idx[static_cast<std::size_t>(j - 1)] + 1;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<int>> find_unselected(const set_family& family,
                                                int m, int k) {
  return enumerate_targets(m, k, [&](const std::vector<int>& x) {
    for (const auto& set : family) {
      if (selects(set, x)) return false;
    }
    return true;  // no set selects x — witness found
  });
}

bool is_selective(const set_family& family, int m, int k) {
  return !find_unselected(family, m, k).has_value();
}

set_family greedy_selective_family(int m, int k, rng& gen) {
  RC_REQUIRE(m >= 1 && k >= 1);

  // Collect all targets.
  std::vector<std::vector<int>> targets;
  enumerate_targets(m, k, [&](const std::vector<int>& x) {
    targets.push_back(x);
    return false;
  });

  // Candidate pool: singletons + random density-1/j sets.
  set_family pool;
  for (int v = 0; v < m; ++v) pool.push_back({v});
  const int random_candidates = 8 * k * std::max(1, ilog2_ceil(
                                        static_cast<std::uint64_t>(m)));
  for (int j = 1; j <= k; ++j) {
    for (int c = 0; c < random_candidates; ++c) {
      std::vector<int> set;
      for (int v = 0; v < m; ++v) {
        if (gen.bernoulli(1.0 / j)) set.push_back(v);
      }
      if (!set.empty()) pool.push_back(std::move(set));
    }
  }

  std::vector<bool> covered(targets.size(), false);
  std::size_t remaining = targets.size();
  set_family family;
  while (remaining > 0) {
    std::size_t best_idx = 0;
    int best_gain = -1;
    for (std::size_t p = 0; p < pool.size(); ++p) {
      int gain = 0;
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (!covered[t] && selects(pool[p], targets[t])) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = p;
      }
    }
    RC_CHECK_MSG(best_gain > 0,
                 "greedy stalled — singleton pool guarantees progress");
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (!covered[t] && selects(pool[best_idx], targets[t])) {
        covered[t] = true;
        --remaining;
      }
    }
    family.push_back(pool[best_idx]);
  }
  return family;
}

set_family modular_selective_family(int m, int k, int prime_count) {
  RC_REQUIRE(m >= 1 && k >= 1 && prime_count >= 1);
  set_family family;
  int found = 0;
  for (int q = std::max(2, k); found < prime_count; ++q) {
    bool prime = q >= 2;
    for (int d = 2; d * d <= q; ++d) {
      if (q % d == 0) {
        prime = false;
        break;
      }
    }
    if (!prime) continue;
    ++found;
    for (int a = 0; a < q && a < m; ++a) {
      std::vector<int> set;
      for (int x = a; x < m; x += q) set.push_back(x);
      if (!set.empty()) family.push_back(std::move(set));
    }
  }
  return family;
}

double cms_size_lower_bound(int m, int k) {
  RC_REQUIRE(m >= 2 && k >= 2);
  return (static_cast<double>(k) / 8.0) * std::log2(m) / std::log2(k);
}

}  // namespace radiocast
