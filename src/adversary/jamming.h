// Function (i+1)-Jamming (paper, Section 3.1).
//
// The combinatorial heart of the Theorem 2 lower bound. The adversary keeps
// the candidate pool R partitioned into k/2 blocks B(p). At each step it is
// given Y = the set of candidates that would transmit, and answers what the
// listening spine node hears — silence, a unique transmitter, or a
// collision — while shrinking blocks so that EVERY choice of the eventual
// layer X with |X ∩ B(p)| = 2 per block stays consistent with all answers
// given so far (invariant INV of the paper):
//
//   A. Some large block has |B ∩ Y| > (2/k)·|B|  ⇒ answer ⊥ (collision),
//      B := B ∩ Y (truncated to 2 survivors if it fell below k).
//   B. Otherwise every large block loses its transmitters (B := B \ Y,
//      truncated to 2 if below k), and the answer is decided by the small
//      blocks: Y ∩ (∪ small blocks) of size 0 ⇒ silence, {v} ⇒ v, ≥2 ⇒ ⊥.
//
// Because a block only ever shrinks to B∩Y or B\Y, all survivors of a
// LARGE block share one transmit-trace — which is exactly why (1) any two
// survivors of the largest block form a non-selectivity witness X* (the
// paper's point 3 of INV), and (2) the spine node above hears 0 or ≥2 of
// them, never exactly one, during the jammed window.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace radiocast {

class jamming {
 public:
  /// What the listening spine node hears from the layer under construction.
  struct outcome {
    enum class kind { silence, unique, collision };
    kind what = kind::silence;
    node_id unique = -1;  ///< valid when what == unique
  };

  /// Partitions `pool` into k/2 near-equal blocks. Requires even k ≥ 4 and
  /// |pool| ≥ k²/2 (every block must start large, i.e. ≥ k).
  jamming(std::vector<node_id> pool, int k);

  /// Processes one step with transmitter set `y` (must be ⊆ pool; sorted
  /// not required). Updates blocks and returns the jammed answer.
  outcome step(const std::vector<node_id>& y);

  int k() const noexcept { return k_; }
  int steps_processed() const noexcept { return steps_; }
  const std::vector<std::vector<node_id>>& blocks() const { return blocks_; }

  /// Index of a largest block (the paper's p*).
  std::size_t largest_block() const;

  /// The constructed layer: X' = two survivors from every block except p*
  /// (for small blocks: both), X* = up to k survivors of block p*.
  /// L_{2i+1} = X' ∪ X*, L*_{2i+1} = X*.
  struct layer_choice {
    std::vector<node_id> layer;  ///< X' ∪ X*
    std::vector<node_id> star;   ///< X*
  };
  layer_choice pick_layer() const;

  /// Paper invariant INV.0: every block has ≥ 2 elements, and blocks are
  /// pairwise disjoint subsets of the original pool. Used by tests.
  bool invariant_holds() const;

 private:
  bool is_large(const std::vector<node_id>& block) const {
    return static_cast<int>(block.size()) >= k_;
  }

  int k_;
  int steps_ = 0;
  std::vector<std::vector<node_id>> blocks_;
  std::vector<node_id> pool_;  // original pool, for invariant checking
};

}  // namespace radiocast
