#include "adversary/lower_bound_builder.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "adversary/jamming.h"
#include "util/assert.h"
#include "util/math.h"

namespace radiocast {

namespace {

/// The whole construction state: protocol instances for every label plus
/// the partially built topology.
class builder {
 public:
  builder(const protocol& proto, node_id n, int d,
          const adversary_options& options)
      : proto_(proto), n_(n), d_(d), options_(options) {
    RC_REQUIRE_MSG(proto.deterministic(),
                   "the lower-bound adversary needs a deterministic protocol");
    RC_REQUIRE_MSG(d >= 4 && d % 2 == 0, "need even D ≥ 4");
    spine_count_ = d / 2;
    k_ = static_cast<int>(n / (4 * d));
    if (k_ % 2 == 1) --k_;  // the paper assumes even k
    RC_REQUIRE_MSG(k_ >= 4, "need n ≥ 16·D so that k = ⌊n/4D⌋ ≥ 4");

    params_.r = n - 1;
    params_.d_hint = -1;

    nodes_.resize(static_cast<std::size_t>(n));
    gens_.reserve(static_cast<std::size_t>(n));
    informed_.assign(static_cast<std::size_t>(n), false);
    tx_stamp_.assign(static_cast<std::size_t>(n), -1);
    tx_msg_.resize(static_cast<std::size_t>(n));
    odd_layer_of_.assign(static_cast<std::size_t>(n), -1);
    in_star_.assign(static_cast<std::size_t>(n), false);
    for (node_id v = 0; v < n; ++v) {
      gens_.emplace_back(std::uint64_t{0x5eed0000} +
                         static_cast<std::uint64_t>(v));
      nodes_[static_cast<std::size_t>(v)] = proto.make_node(v, params_);
    }
    informed_[0] = true;  // the source

    for (node_id v = spine_count_; v < n; ++v) pool_.push_back(v);

    // s = ⌊ k·log₂(n/4) / (8·log₂ k) ⌋, at least 1.
    const double s = std::floor(static_cast<double>(k_) *
                                std::log2(static_cast<double>(n) / 4.0) /
                                (8.0 * std::log2(static_cast<double>(k_))));
    jam_steps_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(s));
  }

  adversarial_network run() {
    adversarial_network out;
    out.d = d_;
    out.k = k_;
    out.jam_steps_per_stage = jam_steps_;
    out.forced_steps = (spine_count_ - 1) * jam_steps_;
    out.odd_layers.resize(static_cast<std::size_t>(spine_count_));
    out.star_layers.resize(static_cast<std::size_t>(spine_count_));
    out.spine_first_tx.assign(static_cast<std::size_t>(spine_count_), -1);

    for (int i = 0; i < spine_count_; ++i) {
      // Wait for spine i's first transmission (stage 0: the source's).
      if (!stuck_) {
        const std::int64_t t_i = wait_for_spine_tx(i);
        if (t_i < 0) {
          stuck_ = true;
        } else {
          out.spine_first_tx[static_cast<std::size_t>(i)] = t_i;
        }
      }

      if (stuck_) {
        // Fill the layer arbitrarily to keep the topology well-formed.
        fill_layer_arbitrarily(i, out);
        continue;
      }

      // Part 2: the jammed window of s steps.
      jamming jam(pool_, k_);
      for (std::int64_t l = 0; l < jam_steps_; ++l) {
        do_step(i, &jam);
      }

      // Part 3: fix L_{2i+1} = X' ∪ X*, L* = X*; reset the losers.
      const jamming::layer_choice choice = jam.pick_layer();
      commit_layer(i, choice.layer, choice.star, out);
    }

    // All leftover candidates form L_D, attached to every node of L*_{D−1}.
    out.last_layer = pool_;
    RC_CHECK_MSG(!out.last_layer.empty(),
                 "no nodes left for the final layer; increase n");
    out.stuck = stuck_;
    out.g = materialize(out);
    return out;
  }

 private:
  // ---- simulation ----

  bool transmitted(node_id v) const {
    return tx_stamp_[static_cast<std::size_t>(v)] == step_;
  }

  /// Runs one synchronous step. In jam mode (jam != nullptr), `spine` is
  /// the node whose next layer is under construction: candidate
  /// transmissions are answered by the jamming function, and the spine's
  /// transmissions reach all non-transmitting candidates. In watch mode
  /// (jam == nullptr), `spine` is the node whose first transmission we are
  /// waiting for; returns true the step it transmits.
  bool do_step(int spine, jamming* jam) {
    // Phase 1: decisions of every informed node.
    transmitters_.clear();
    for (node_id v = 0; v < n_; ++v) {
      if (!informed_[static_cast<std::size_t>(v)]) continue;
      node_context ctx{step_, &gens_[static_cast<std::size_t>(v)]};
      auto decision = nodes_[static_cast<std::size_t>(v)]->on_step(ctx);
      if (!decision) continue;
      decision->from = v;
      tx_stamp_[static_cast<std::size_t>(v)] = step_;
      tx_msg_[static_cast<std::size_t>(v)] = *decision;
      transmitters_.push_back(v);
      if (first_tx_.size() <= static_cast<std::size_t>(v)) {
        first_tx_.resize(static_cast<std::size_t>(n_), -1);
      }
      if (first_tx_[static_cast<std::size_t>(v)] < 0) {
        first_tx_[static_cast<std::size_t>(v)] = step_;
      }
    }

    const bool spine_tx = transmitted(spine);

    // Phase 2a (jam mode): candidates — jamming + hearing the spine.
    if (jam != nullptr) {
      y_.clear();
      for (node_id c : pool_) {
        if (transmitted(c)) y_.push_back(c);
      }
      const jamming::outcome answer = jam->step(y_);

      // What spine `spine` hears: combine the jammed answer for the layer
      // under construction with its built in-neighborhood below.
      if (!transmitted(spine)) {
        const std::optional<node_id> below = unique_below_transmitter(spine);
        const bool below_any = any_below_transmitter(spine);
        if (answer.what == jamming::outcome::kind::silence && below &&
            below_count_ == 1) {
          deliver(spine, *below);
        } else if (answer.what == jamming::outcome::kind::unique &&
                   !below_any) {
          deliver(spine, answer.unique);
        }
      }

      // Candidates hear the spine when it transmits and they do not.
      if (spine_tx) {
        for (node_id c : pool_) {
          if (!transmitted(c)) deliver(c, spine);
        }
      }
    }

    // Phase 2b: built part of the network, real radio semantics.
    deliver_built(jam != nullptr ? spine : -1);

    // Watch mode: the watched spine's transmission also reaches every
    // candidate (they are its potential next layer).
    if (jam == nullptr && spine_tx) {
      for (node_id c : pool_) {
        if (!transmitted(c)) deliver(c, spine);
      }
    }

    ++step_;
    return spine_tx;
  }

  /// Deliveries over the constructed topology. `jam_spine` ≥ 0 marks the
  /// spine whose reception is governed by the jamming answer this step
  /// (already handled); −1 when none.
  void deliver_built(int jam_spine) {
    const int built = built_layers_;  // odd layers 0 … built−1 exist
    // Spine nodes.
    for (int j = 0; j < spine_count_; ++j) {
      const auto v = static_cast<node_id>(j);
      if (transmitted(v)) continue;
      if (j == jam_spine) continue;  // handled by the jamming combination
      int count = 0;
      node_id sender = -1;
      if (j >= 1 && j - 1 < built) {
        for (node_id w : star_[static_cast<std::size_t>(j - 1)]) {
          if (transmitted(w)) {
            ++count;
            sender = w;
          }
        }
      }
      if (j < built) {
        for (node_id w : layers_[static_cast<std::size_t>(j)]) {
          if (transmitted(w)) {
            ++count;
            sender = w;
          }
        }
      }
      if (count == 1) deliver(v, sender);
    }
    // Odd-layer members: neighbors are spine i (below) and spine i+1 when
    // in L* (the final layer's upper side, L_D, is attached after the
    // construction and never simulated here).
    for (int i = 0; i < built; ++i) {
      for (node_id w : layers_[static_cast<std::size_t>(i)]) {
        if (transmitted(w)) continue;
        int count = 0;
        node_id sender = -1;
        const auto below = static_cast<node_id>(i);
        if (transmitted(below)) {
          ++count;
          sender = below;
        }
        if (in_star_[static_cast<std::size_t>(w)] &&
            i + 1 < spine_count_) {
          const auto above = static_cast<node_id>(i + 1);
          if (transmitted(above)) {
            ++count;
            sender = above;
          }
        }
        if (count == 1) deliver(w, sender);
      }
    }
  }

  void deliver(node_id to, node_id sender) {
    RC_CHECK_MSG(transmitted(sender),
                 "delivery from a node that did not transmit this step");
    node_context ctx{step_, &gens_[static_cast<std::size_t>(to)]};
    nodes_[static_cast<std::size_t>(to)]->on_receive(
        ctx, tx_msg_[static_cast<std::size_t>(sender)]);
    informed_[static_cast<std::size_t>(to)] = true;
  }

  std::optional<node_id> unique_below_transmitter(int spine) {
    below_count_ = 0;
    node_id found = -1;
    if (spine >= 1 && spine - 1 < built_layers_) {
      for (node_id w : star_[static_cast<std::size_t>(spine - 1)]) {
        if (transmitted(w)) {
          ++below_count_;
          found = w;
        }
      }
    }
    return below_count_ >= 1 ? std::optional<node_id>(found) : std::nullopt;
  }

  bool any_below_transmitter(int spine) {
    // below_count_ was just refreshed by unique_below_transmitter.
    (void)spine;
    return below_count_ >= 1;
  }

  /// Waits (simulating with real semantics on the built part) until spine
  /// node i transmits for the first time. Returns its step, or −1 on cap.
  std::int64_t wait_for_spine_tx(int i) {
    const auto v = static_cast<node_id>(i);
    if (first_tx_.size() > static_cast<std::size_t>(v) &&
        first_tx_[static_cast<std::size_t>(v)] >= 0) {
      // Already transmitted during an earlier phase of the simulation.
      return first_tx_[static_cast<std::size_t>(v)];
    }
    for (std::int64_t waited = 0; waited < options_.stage_wait_cap;
         ++waited) {
      if (do_step(i, nullptr)) return step_ - 1;
    }
    return -1;
  }

  // ---- topology bookkeeping ----

  void commit_layer(int i, const std::vector<node_id>& layer,
                    const std::vector<node_id>& star,
                    adversarial_network& out) {
    layers_.push_back(layer);
    star_.push_back(star);
    built_layers_ = static_cast<int>(layers_.size());
    out.odd_layers[static_cast<std::size_t>(i)] = layer;
    out.star_layers[static_cast<std::size_t>(i)] = star;
    for (node_id w : layer) {
      odd_layer_of_[static_cast<std::size_t>(w)] = i;
    }
    for (node_id w : star) in_star_[static_cast<std::size_t>(w)] = true;

    // Remove the layer from the pool and reset every remaining candidate
    // to a fresh (empty-history) instance — the paper's point 6.
    std::vector<bool> chosen(static_cast<std::size_t>(n_), false);
    for (node_id w : layer) chosen[static_cast<std::size_t>(w)] = true;
    std::vector<node_id> next_pool;
    next_pool.reserve(pool_.size());
    for (node_id c : pool_) {
      if (chosen[static_cast<std::size_t>(c)]) continue;
      next_pool.push_back(c);
      nodes_[static_cast<std::size_t>(c)] = proto_.make_node(c, params_);
      gens_[static_cast<std::size_t>(c)] =
          rng(std::uint64_t{0x5eed0000} + static_cast<std::uint64_t>(c));
      informed_[static_cast<std::size_t>(c)] = false;
      if (first_tx_.size() > static_cast<std::size_t>(c)) {
        first_tx_[static_cast<std::size_t>(c)] = -1;
      }
    }
    pool_ = std::move(next_pool);
  }

  void fill_layer_arbitrarily(int i, adversarial_network& out) {
    const std::size_t want =
        std::min<std::size_t>(pool_.size() - 1,
                              static_cast<std::size_t>(2 * k_ - 2));
    RC_CHECK_MSG(want >= 2, "pool exhausted while filling layers");
    std::vector<node_id> layer(pool_.begin(),
                               pool_.begin() + static_cast<std::ptrdiff_t>(
                                                   want));
    std::vector<node_id> star(layer.begin(), layer.begin() + 2);
    commit_layer(i, layer, star, out);
  }

  graph materialize(const adversarial_network& out) const {
    graph g = graph::undirected(n_);
    for (int i = 0; i < spine_count_; ++i) {
      const auto spine = static_cast<node_id>(i);
      for (node_id w : out.odd_layers[static_cast<std::size_t>(i)]) {
        g.add_edge_unchecked(spine, w);
      }
      if (i + 1 < spine_count_) {
        for (node_id w : out.star_layers[static_cast<std::size_t>(i)]) {
          g.add_edge_unchecked(w, static_cast<node_id>(i + 1));
        }
      }
    }
    for (node_id w : out.star_layers.back()) {
      for (node_id u : out.last_layer) {
        g.add_edge_unchecked(w, u);
      }
    }
    g.finalize();
    return g;
  }

  const protocol& proto_;
  node_id n_;
  int d_;
  adversary_options options_;
  int spine_count_ = 0;
  int k_ = 0;
  std::int64_t jam_steps_ = 0;
  protocol_params params_;

  std::vector<std::unique_ptr<protocol_node>> nodes_;
  std::vector<rng> gens_;
  std::vector<bool> informed_;
  std::vector<std::int64_t> tx_stamp_;
  std::vector<message> tx_msg_;
  std::vector<std::int64_t> first_tx_;
  std::vector<node_id> transmitters_;
  std::vector<node_id> y_;
  int below_count_ = 0;

  std::vector<node_id> pool_;
  std::vector<std::vector<node_id>> layers_;  // built odd layers
  std::vector<std::vector<node_id>> star_;
  std::vector<int> odd_layer_of_;
  std::vector<bool> in_star_;
  int built_layers_ = 0;

  std::int64_t step_ = 0;
  bool stuck_ = false;
};

}  // namespace

adversarial_network build_adversarial_network(const protocol& proto,
                                              node_id n, int d,
                                              const adversary_options& options) {
  RC_REQUIRE(n >= 2);
  builder b(proto, n, d, options);
  return b.run();
}

}  // namespace radiocast
