#include "sim/trace.h"

#include <sstream>

namespace radiocast {

std::vector<trace_event> trace::filter(trace_event::type t) const {
  std::vector<trace_event> out;
  for (const auto& e : events_) {
    if (e.what == t) out.push_back(e);
  }
  return out;
}

std::string trace::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << "step " << e.step << ": node " << e.node << ' ';
    switch (e.what) {
      case trace_event::type::transmit:
        os << "transmits kind=" << e.msg.kind << " a=" << e.msg.a
           << " b=" << e.msg.b << " c=" << e.msg.c;
        break;
      case trace_event::type::receive:
        os << "receives kind=" << e.msg.kind << " from=" << e.msg.from;
        break;
      case trace_event::type::collision:
        os << "observes a collision (silence)";
        break;
      case trace_event::type::informed:
        os << "becomes informed";
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace radiocast
