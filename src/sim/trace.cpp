#include "sim/trace.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"

namespace radiocast {

const char* trace_event_type_name(trace_event::type t) {
  switch (t) {
    case trace_event::type::transmit: return "transmit";
    case trace_event::type::receive: return "receive";
    case trace_event::type::collision: return "collision";
    case trace_event::type::informed: return "informed";
    case trace_event::type::crash: return "crash";
    case trace_event::type::recover: return "recover";
    case trace_event::type::drop: return "drop";
    case trace_event::type::edge_down: return "edge_down";
    case trace_event::type::edge_up: return "edge_up";
  }
  return "unknown";
}

void trace::set_capacity(std::size_t capacity) {
  // Normalize to chronological order before re-binding the ring.
  std::vector<trace_event> ordered = events();
  if (capacity != 0 && ordered.size() > capacity) {
    dropped_ += ordered.size() - capacity;
    ordered.erase(ordered.begin(),
                  ordered.begin() +
                      static_cast<std::ptrdiff_t>(ordered.size() - capacity));
  }
  events_ = std::move(ordered);
  capacity_ = capacity;
  head_ = 0;
  if (capacity_ != 0) events_.reserve(capacity_);
}

void trace::reserve(std::size_t events) {
  if (capacity_ != 0) events = std::min(events, capacity_);
  events_.reserve(events);
}

void trace::record(trace_event event) {
  if (capacity_ == 0) {
    events_.emplace_back(std::move(event));
    return;
  }
  if (events_.size() < capacity_) {
    events_.emplace_back(std::move(event));
    return;
  }
  // Ring full: overwrite the oldest slot.
  events_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

template <typename Fn>
void trace::for_each_in_order(Fn&& fn) const {
  const std::size_t n = events_.size();
  for (std::size_t i = 0; i < n; ++i) {
    fn(events_[(head_ + i) % n]);
  }
}

std::vector<trace_event> trace::events() const {
  std::vector<trace_event> out;
  out.reserve(events_.size());
  for_each_in_order([&](const trace_event& e) { out.push_back(e); });
  return out;
}

std::vector<trace_event> trace::filter(trace_event::type t) const {
  std::vector<trace_event> out;
  for_each_in_order([&](const trace_event& e) {
    if (e.what == t) out.push_back(e);
  });
  return out;
}

std::string trace::to_string() const {
  std::ostringstream os;
  for_each_in_order([&](const trace_event& e) {
    os << "step " << e.step << ": node " << e.node << ' ';
    switch (e.what) {
      case trace_event::type::transmit:
        os << "transmits kind=" << e.msg.kind << " a=" << e.msg.a
           << " b=" << e.msg.b << " c=" << e.msg.c;
        break;
      case trace_event::type::receive:
        os << "receives kind=" << e.msg.kind << " from=" << e.msg.from;
        break;
      case trace_event::type::collision:
        os << "observes a collision (silence)";
        break;
      case trace_event::type::informed:
        os << "becomes informed";
        break;
      case trace_event::type::crash:
        os << "crash-stops";
        break;
      case trace_event::type::recover:
        os << (e.msg.a != 0 ? "recovers (amnesia)" : "recovers (retain)");
        break;
      case trace_event::type::drop:
        os << "loses a delivery from=" << e.msg.from
           << " kind=" << e.msg.kind;
        break;
      case trace_event::type::edge_down:
        os << "loses link to " << e.msg.a;
        break;
      case trace_event::type::edge_up:
        os << "regains link to " << e.msg.a;
        break;
    }
    os << '\n';
  });
  return os.str();
}

void trace::to_ndjson(std::ostream& os) const {
  for_each_in_order([&](const trace_event& e) {
    obs::json_value line = obs::json_value::object();
    line.set("step", e.step);
    line.set("type", trace_event_type_name(e.what));
    line.set("node", static_cast<std::int64_t>(e.node));
    if (e.what == trace_event::type::transmit ||
        e.what == trace_event::type::receive ||
        e.what == trace_event::type::drop) {
      line.set("kind", static_cast<std::int64_t>(e.msg.kind));
      line.set("from", static_cast<std::int64_t>(e.msg.from));
      line.set("a", e.msg.a);
      line.set("b", e.msg.b);
      line.set("c", e.msg.c);
      line.set("d", e.msg.d);
    } else if (e.what == trace_event::type::edge_down ||
               e.what == trace_event::type::edge_up) {
      line.set("peer", e.msg.a);
    } else if (e.what == trace_event::type::recover) {
      line.set("amnesia", e.msg.a != 0);
    } else if (e.what == trace_event::type::informed && e.msg.from >= 0) {
      // First-delivery provenance: the neighbor whose transmission informed
      // this node (absent in traces recorded before the field existed).
      line.set("from", static_cast<std::int64_t>(e.msg.from));
    }
    line.write(os);
    os << '\n';
  });
}

std::string trace::summary_json() const {
  std::int64_t first_step = -1;
  std::int64_t last_step = -1;
  std::int64_t by_type[trace_event::kTypeCount] = {};
  bool any = false;
  for_each_in_order([&](const trace_event& e) {
    if (!any) {
      first_step = e.step;
      any = true;
    }
    last_step = e.step;
    ++by_type[static_cast<int>(e.what)];
  });

  obs::json_value root = obs::json_value::object();
  root.set("events", events_.size());
  root.set("dropped", dropped_);
  root.set("first_step", first_step);
  root.set("last_step", last_step);
  obs::json_value types = obs::json_value::object();
  for (const auto t :
       {trace_event::type::transmit, trace_event::type::receive,
        trace_event::type::collision, trace_event::type::informed,
        trace_event::type::crash, trace_event::type::recover,
        trace_event::type::drop, trace_event::type::edge_down,
        trace_event::type::edge_up}) {
    types.set(trace_event_type_name(t), by_type[static_cast<int>(t)]);
  }
  root.set("by_type", std::move(types));
  return root.dump();
}

}  // namespace radiocast
