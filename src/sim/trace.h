// Optional step-by-step event recording for debugging and the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/message.h"

namespace radiocast {

/// One observable event in a simulation.
struct trace_event {
  enum class type { transmit, receive, collision, informed };

  std::int64_t step = 0;
  type what = type::transmit;
  node_id node = -1;
  message msg;  ///< for transmit/receive; default-initialized otherwise
};

/// Append-only event log.
class trace {
 public:
  void record(trace_event event) { events_.push_back(event); }
  const std::vector<trace_event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Events of one type, in order.
  std::vector<trace_event> filter(trace_event::type t) const;

  /// Human-readable rendering, one line per event.
  std::string to_string() const;

 private:
  std::vector<trace_event> events_;
};

}  // namespace radiocast
