// Optional step-by-step event recording for debugging, the examples, and
// offline analysis.
//
// Two storage modes:
//   * unbounded (default) — an append-only log of every event;
//   * ring — construct with a capacity (or call set_capacity) and the trace
//     keeps only the most recent `capacity` events, counting what it
//     dropped. Long runs can then keep "the last million events" without
//     unbounded memory.
//
// Export: `to_string` for humans, `to_ndjson` (one JSON object per line)
// for offline tooling, and `summary_json` for compact per-run roll-ups.
// The NDJSON schema is documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/message.h"

namespace radiocast {

/// One observable event in a simulation.
///
/// The last five types are fault-injection events (src/fault/), recorded
/// by the simulator when a fault model acts: `crash` (node crash-stops),
/// `recover` (a crashed node rejoins; msg.a = 1 for an amnesia restart,
/// 0 for retain — see fault/recovery.h), `drop` (a would-be delivery
/// suppressed by loss/jamming; msg = the lost frame), `edge_down`/
/// `edge_up` (churn; node = one endpoint, msg.a = the other).
struct trace_event {
  enum class type {
    transmit,
    receive,
    collision,
    informed,
    crash,
    recover,
    drop,
    edge_down,
    edge_up,
  };
  static constexpr int kTypeCount = 9;

  std::int64_t step = 0;
  type what = type::transmit;
  node_id node = -1;
  message msg;  ///< for transmit/receive/drop; endpoint for edge events
};

/// Short lowercase tag for an event type ("transmit", "receive", …).
const char* trace_event_type_name(trace_event::type t);

/// Event log; append-only or bounded-ring depending on capacity.
class trace {
 public:
  trace() = default;
  /// Ring mode from the start: keep only the latest `capacity` events.
  explicit trace(std::size_t capacity) { set_capacity(capacity); }

  /// Switches to ring mode with the given bound (0 restores unbounded
  /// mode). Shrinking below the current size discards the oldest events.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  /// Pre-allocates storage (bounded by the ring capacity when set). The
  /// simulator calls this when a sink is attached and the step cap is
  /// known, so steady-state recording never reallocates.
  void reserve(std::size_t events);

  void record(trace_event event);

  /// Retained events, oldest first. Materializes a fresh vector in ring
  /// mode (the ring stores them rotated); cheap relative to any analysis.
  std::vector<trace_event> events() const;

  /// Number of retained events.
  std::size_t size() const { return events_.size(); }
  /// Events evicted by the ring bound (0 in unbounded mode).
  std::size_t dropped() const { return dropped_; }
  /// Total events ever recorded.
  std::size_t recorded() const { return size() + dropped_; }

  /// Retained events of one type, oldest first.
  std::vector<trace_event> filter(trace_event::type t) const;

  /// Human-readable rendering, one line per event.
  std::string to_string() const;

  /// Newline-delimited JSON, one event per line:
  ///   {"step":s,"type":"transmit","node":v,"kind":k,"from":f,
  ///    "a":…,"b":…,"c":…,"d":…}
  /// (message fields only for transmit/receive events).
  void to_ndjson(std::ostream& os) const;

  /// Compact roll-up: retained/dropped counts, first/last step, and a
  /// per-type count object. Shape:
  ///   {"events":n,"dropped":n,"first_step":s,"last_step":s,
  ///    "by_type":{"transmit":n,…}}
  std::string summary_json() const;

 private:
  template <typename Fn>
  void for_each_in_order(Fn&& fn) const;  // oldest → newest

  std::vector<trace_event> events_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded
  std::size_t head_ = 0;      ///< ring mode: index of the oldest event
  std::size_t dropped_ = 0;
};

}  // namespace radiocast
