// Shared step-engine core (CRTP): setup, fault application, reception
// resolution, metrics, completion — everything a broadcast run needs except
// the protocol-state representation and phase-1 stepping strategy.
//
// Three engines derive from run_base:
//   * the virtual-dispatch engines (frontier + reference) in simulator.cpp,
//     whose per-node state is a protocol_node object; and
//   * the templated SoA engine (sim/soa_engine.h), whose per-node state is a
//     contiguous POD array and whose phase loops can shard across a thread
//     pool.
// The derived class provides the protocol hooks (proto_step, proto_receive,
// proto_informed, proto_halted, proto_restart), node construction
// (init_nodes), and the step loop (run_engine); EVERYTHING else — fault
// injection sites, collision/delivery resolution in touched order, trace
// event ordering, per-step metrics, the outcome BFS — is this one body of
// code. That is what makes the three-way differential suite meaningful: the
// engines can only disagree in the parts that actually differ.
//
// The base owns the per-node RNG pool (`gens_`, split from the root seed in
// node order 0…n−1) so every engine draws the identical per-node streams.
#pragma once

#include <algorithm>
#include <bit>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/protocol.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/assert.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace radiocast::detail {

template <class Derived>
class run_base {
 public:
  run_result run() {
    derived().run_engine();
    finalize_outcome();
    return std::move(result_);
  }

 protected:
  run_base(const graph& g, node_id r, const run_options& opts)
      : g_(g), opts_(opts), n_(g.node_count()), faults_(opts.faults) {
    RC_REQUIRE_MSG(g.finalized(),
                   "run_broadcast requires a finalized graph — call "
                   "graph::finalize() after building (generators already do)");
    RC_REQUIRE(r >= n_ - 1);
    RC_REQUIRE(opts.max_steps >= 1);

    params_.r = r;
    // d_hint is a per-protocol construction choice, not a per-run one: the
    // protocol object bakes it into the nodes it makes (see kp_randomized).
    params_.d_hint = -1;

    // Resolve the (possibly sparse) labeling.
    labels_ = opts.labels;
    if (labels_.empty()) {
      labels_.resize(static_cast<std::size_t>(n_));
      for (node_id v = 0; v < n_; ++v) {
        labels_[static_cast<std::size_t>(v)] = v;
      }
    }
    RC_REQUIRE_MSG(labels_.size() == static_cast<std::size_t>(n_),
                   "labels must cover every node");
    RC_REQUIRE_MSG(labels_[0] == 0, "the source must carry label 0");
    {
      std::vector<bool> seen(static_cast<std::size_t>(r) + 1, false);
      for (node_id label : labels_) {
        RC_REQUIRE_MSG(label >= 0 && label <= r, "label out of range");
        RC_REQUIRE_MSG(!seen[static_cast<std::size_t>(label)],
                       "labels must be distinct");
        seen[static_cast<std::size_t>(label)] = true;
      }
    }
  }

  // Second setup phase, called from the DERIVED constructor body (the base
  // constructor cannot call init_nodes — the derived members it populates
  // are not constructed yet). Splits the per-node generators from the root
  // seed in node order, builds the protocol state, and finishes the common
  // setup. The RNG stream is identical across engines by construction:
  // root.split() is called exactly n times, in node order, regardless of
  // how the derived class stores its nodes.
  void finish_setup(obs::span_profiler* profiler) {
    {
      obs::scoped_span setup_span(profiler, "setup");
      rng root(opts_.seed);
      gens_.reserve(static_cast<std::size_t>(n_));
      for (node_id v = 0; v < n_; ++v) {
        gens_.push_back(root.split());
      }
      received_any_.assign(static_cast<std::size_t>(n_), 0);
      derived().init_nodes(params_);
    }
    RC_CHECK_MSG(derived().proto_informed(0), "the source must start informed");

    if (opts_.sink != nullptr) {
      // Steady-state recording should not reallocate: reserve for the step
      // cap (a few events per step, clamped to keep pathological caps sane)
      // or the ring capacity, whichever binds.
      const auto cap_hint = static_cast<std::size_t>(std::min<std::int64_t>(
          opts_.max_steps * 2, std::int64_t{1} << 20));
      opts_.sink->reserve(cap_hint);
    }

    // Metrics: resolve every per-step series once, outside the loop. The
    // disabled path (metrics == nullptr) must cost one branch per site.
    if (opts_.metrics != nullptr) {
      sr_frontier_ = &opts_.metrics->get_series("sim.informed_frontier");
      sr_awake_ = &opts_.metrics->get_series("sim.awake");
      sr_tx_ = &opts_.metrics->get_series("sim.transmissions");
      sr_deliveries_ = &opts_.metrics->get_series("sim.deliveries");
      sr_collisions_ = &opts_.metrics->get_series("sim.collisions");
      sr_idle_ = &opts_.metrics->get_series("sim.idle_listeners");
      h_tx_per_step_ =
          &opts_.metrics->get_histogram("sim.transmitters_per_step");
      // Fault series only exist for fault-injected runs, so fault-free
      // metric exports keep their exact pre-fault shape.
      if (faults_ != nullptr) {
        sr_f_crashed_ = &opts_.metrics->get_series("sim.fault.crashed_nodes");
        sr_f_recoveries_ = &opts_.metrics->get_series("sim.fault.recoveries");
        sr_f_suppressed_ = &opts_.metrics->get_series("sim.fault.suppressed");
        sr_f_down_edges_ = &opts_.metrics->get_series("sim.fault.down_edges");
      }
    }

    result_.informed_at.assign(static_cast<std::size_t>(n_), -1);
    result_.transmissions_per_node.assign(static_cast<std::size_t>(n_), 0);
    result_.informed_at[0] = 0;

    // Reception scratch: per listener, a step-stamped counter and the last
    // transmitter seen.
    stamp_.assign(static_cast<std::size_t>(n_), -1);
    arrivals_.assign(static_cast<std::size_t>(n_), 0);
    last_sender_.assign(static_cast<std::size_t>(n_), -1);
    tx_msg_.resize(static_cast<std::size_t>(n_));
    tx_stamp_.assign(static_cast<std::size_t>(n_), -1);

    // The awake set: source + every node that has received at least one
    // message, minus crashed nodes. awake_.test(v) ⇔ v ∈ awake_list_
    // (sorted ascending, so phase 1 visits nodes in the same order as the
    // reference engine's 0…n−1 sweep). Maintained by every engine — the
    // reference loop ignores the list but still reports sim.awake.
    awake_.assign(static_cast<std::size_t>(n_), false);
    awake_.set(0);
    awake_list_.push_back(0);

    if (faults_ != nullptr) {
      crashed_.assign(static_cast<std::size_t>(n_), false);
      // Per-edge down mask over the flat CSR slots: the i-th out-neighbor
      // of u is down iff down_mask_.test(out_edge_base(u) + i). Sized once
      // from the graph; undirected edges mark both directions' slots.
      down_mask_.assign(g_.out_slot_count(), false);
      faults_->begin_run({&g_, opts_.seed, opts_.max_steps});
    }
  }

  Derived& derived() { return static_cast<Derived&>(*this); }

  static std::size_t idx(node_id v) { return static_cast<std::size_t>(v); }

  // Flat CSR slot of edge u→v (for the down mask). Churn events are rare
  // and every built-in model churns real edges only, so the linear row
  // scan off the hot path is cheaper than keeping a hash map around.
  std::size_t edge_slot(node_id u, node_id v) const {
    const auto row = g_.out_neighbors(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] == v) return g_.out_edge_base(u) + i;
    }
    RC_CHECK_MSG(false, "fault model churned a non-edge (" +
                            std::to_string(u) + " -> " + std::to_string(v) +
                            ")");
    return 0;
  }

  // Applies one edge-churn transition to the slot mask. Returns false for
  // idempotent no-ops (downing a down edge, restoring an up one) so the
  // caller counts each LOGICAL transition once — matching the old
  // normalized-key set's insert/erase result. Undirected edges flip the
  // slots of both directions together.
  bool set_edge_down(node_id u, node_id v, bool down) {
    const std::size_t s = edge_slot(u, v);
    if (down_mask_.test(s) == down) return false;
    if (down) {
      down_mask_.set(s);
      ++down_count_;
    } else {
      down_mask_.reset(s);
      --down_count_;
    }
    if (!g_.is_directed()) {
      const std::size_t t = edge_slot(v, u);
      if (down) {
        down_mask_.set(t);
      } else {
        down_mask_.reset(t);
      }
    }
    return true;
  }

  // Crashed nodes are exempt from both stop conditions: completion means
  // every *surviving* node is informed (resp. halted).
  bool all_halted() {
    for (node_id v = 0; v < n_; ++v) {
      if (faults_ != nullptr && crashed_.test(idx(v))) continue;
      if (!derived().proto_halted(v)) return false;
    }
    return true;
  }

  // radiocast-analyze: hot-path-begin -- everything from here through
  // run_reference() executes once per step (or per node per step); no
  // allocation, formatting, throwing, or stream I/O (RC_* args exempt).

  // Injection site 1: crash-stops, recoveries, and churn, applied at the
  // top of a step. A crash removes the node from the awake set
  // immediately, so phase 1 of this very step already skips it (matching
  // the reference engine's per-node crashed check); a recovery re-inserts
  // it in sorted position, so phase 1 of this very step already includes
  // it (matching the reference engine, which steps every non-crashed
  // node). Crashes are applied before recoveries — a node both crashed
  // and recovered in one step's buffers ends the step alive.
  void apply_begin_step_faults(std::int64_t step) {
    step_faults_buf_.clear();
    const fault::step_view view{step, &g_, &result_.informed_at, &crashed_};
    faults_->begin_step(view, &step_faults_buf_);
    for (const node_id v : step_faults_buf_.crashes) {
      RC_CHECK_MSG(v >= 0 && v < n_, "fault model crashed an unknown node");
      if (crashed_.test(idx(v))) continue;
      crashed_.set(idx(v));
      ++result_.crashed_nodes;
      if (result_.informed_at[idx(v)] == -1) {
        ++crashed_uninformed_;
      } else {
        ++crashed_informed_;
      }
      if (awake_.test(idx(v))) {
        awake_.reset(idx(v));
        --awake_count_;
        const auto it =
            std::lower_bound(awake_list_.begin(), awake_list_.end(), v);
        RC_CHECK(it != awake_list_.end() && *it == v);
        awake_list_.erase(it);
      }
      if (opts_.sink != nullptr) {
        opts_.sink->record({step, trace_event::type::crash, v, {}});
      }
    }
    for (const fault::node_recovery& r : step_faults_buf_.recoveries) {
      apply_recovery(r, step);
    }
    for (const auto& [u, v] : step_faults_buf_.edges_down) {
      if (!set_edge_down(u, v, true)) continue;
      ++result_.churned_edges;
      if (opts_.sink != nullptr) {
        message m;
        m.a = v;
        opts_.sink->record({step, trace_event::type::edge_down, u, m});
      }
    }
    for (const auto& [u, v] : step_faults_buf_.edges_up) {
      if (!set_edge_down(u, v, false)) continue;
      ++result_.churned_edges;
      if (opts_.sink != nullptr) {
        message m;
        m.a = v;
        opts_.sink->record({step, trace_event::type::edge_up, u, m});
      }
    }
  }

  // A crashed node rejoins (fault/recovery.h). Retain mode: volatile state
  // survived — re-enter the awake set iff the node was awake before the
  // outage. Amnesia mode: the protocol's restart hook re-initializes the
  // node, and an informed non-source is EVICTED from the informed set — it
  // must be re-informed by a fresh delivery. The source keeps its own
  // message across any reboot.
  void apply_recovery(const fault::node_recovery& r, std::int64_t step) {
    const node_id v = r.node;
    RC_CHECK_MSG(v >= 0 && v < n_, "fault model recovered an unknown node");
    if (!crashed_.test(idx(v))) return;  // recovering a live node is a no-op
    crashed_.reset(idx(v));
    ++result_.recoveries;
    const bool was_informed = result_.informed_at[idx(v)] != -1;
    if (was_informed) {
      --crashed_informed_;
    } else {
      --crashed_uninformed_;
    }
    if (r.amnesia) {
      node_context ctx{step, &gens_[idx(v)], opts_.metrics};
      const rng before = gens_[idx(v)];
      derived().proto_restart(v, ctx);
      RC_CHECK_MSG(gens_[idx(v)] == before,
                   "on_restart drew randomness (node " + std::to_string(v) +
                       ", step " + std::to_string(step) + ")");
      RC_CHECK_MSG(derived().proto_informed(v) == (v == 0),
                   "on_restart left node " + std::to_string(v) +
                       " in the wrong informed state — does the protocol "
                       "override protocol_node::on_restart?");
      received_any_[idx(v)] = 0;
      if (was_informed && v != 0) {
        result_.informed_at[idx(v)] = -1;
        --informed_count_;
        // Full informing (if ever reached) was transient, not final.
        result_.informed_step = -1;
      }
    }
    // Awake ⇔ source or has received at least one (surviving) message.
    if ((v == 0 || received_any_[idx(v)] != 0) && !awake_.test(idx(v))) {
      awake_.set(idx(v));
      ++awake_count_;
      const auto it =
          std::lower_bound(awake_list_.begin(), awake_list_.end(), v);
      awake_list_.insert(it, v);
    }
    if (opts_.sink != nullptr) {
      message m;
      m.a = r.amnesia ? 1 : 0;
      opts_.sink->record({step, trace_event::type::recover, v, m});
    }
  }

  // Phase-1 body shared by every engine: ask node v for its transmit
  // decision and record it. `check_spontaneous` is compile-time so the
  // frontier loop (where awake membership already implies the check) pays
  // nothing for it.
  template <bool check_spontaneous>
  void step_node(node_id v, std::int64_t step) {
    node_context ctx{step, &gens_[idx(v)], opts_.metrics};
    std::optional<message> decision = derived().proto_step(v, ctx);
    if (!decision) return;
    if constexpr (check_spontaneous) {
      RC_CHECK_MSG(v == 0 || received_any_[idx(v)] != 0,
                   "protocol bug: node " + std::to_string(v) +
                       " transmitted spontaneously at step " +
                       std::to_string(step));
    }
    decision->from = labels_[idx(v)];
    transmitters_.push_back(v);
    ++result_.transmissions_per_node[idx(v)];
    tx_msg_[idx(v)] = *decision;
    tx_stamp_[idx(v)] = step;
    if (opts_.sink != nullptr) {
      opts_.sink->record({step, trace_event::type::transmit, v, *decision});
    }
  }

  // Debug sweep (run_options::verify_sleepers): the dormant-node contract
  // of sim/protocol.h, verified live. Every node the engine skipped gets an
  // on_step call anyway; transmitting, or touching its generator, is a
  // protocol bug. Word-at-a-time: a 64-node block that is entirely awake
  // or crashed is skipped with one OR + compare.
  void sweep_sleepers(std::int64_t step) {
    for (std::size_t w = 0; w < awake_.word_count(); ++w) {
      std::uint64_t skip = awake_.word(w);
      if (faults_ != nullptr) skip |= crashed_.word(w);
      if (w == 0) skip |= 1;  // the source (node 0) is never swept
      // Tail bits past n_ are zero in both masks, so ~skip raises them;
      // the v >= n_ break below retires them (bits ascend within a word).
      std::uint64_t rest = ~skip;
      while (rest != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(rest));
        rest &= rest - 1;
        const auto v = static_cast<node_id>(w * util::bitset::kWordBits + b);
        if (v >= n_) break;
        sweep_one(v, step);
      }
    }
  }

  void sweep_one(node_id v, std::int64_t step) {
    const rng before = gens_[idx(v)];
    node_context ctx{step, &gens_[idx(v)], opts_.metrics};
    const std::optional<message> decision = derived().proto_step(v, ctx);
    RC_CHECK_MSG(!decision.has_value(),
                 "dormant-node contract violated: node " + std::to_string(v) +
                     " transmitted without ever receiving (step " +
                     std::to_string(step) + ")");
    RC_CHECK_MSG(gens_[idx(v)] == before,
                 "dormant-node contract violated: node " + std::to_string(v) +
                     " drew randomness while dormant (step " +
                     std::to_string(step) + ")");
  }

  void bump_arrival(node_id v, node_id t, std::int64_t step) {
    auto& s = stamp_[idx(v)];
    if (s != step) {
      s = step;
      arrivals_[idx(v)] = 0;
      touched_.push_back(v);
    }
    ++arrivals_[idx(v)];
    last_sender_[idx(v)] = t;
  }

  void deliver(node_id v, node_id sender, std::int64_t step) {
    const message* delivered = &tx_msg_[idx(sender)];
    const bool was_informed = derived().proto_informed(v);
    node_context ctx{step, &gens_[idx(v)], opts_.metrics};
    derived().proto_receive(v, ctx, *delivered);
    received_any_[idx(v)] = 1;
    // Wake on the mask, not received_any: the source is awake from setup
    // yet receives its first reply mid-run, and must not re-enter the
    // list. Wakes join the awake list at the end of the step (they were
    // not stepped in this step's phase 1 — same as the reference engine,
    // where a node's first post-reception on_step is next step's); the
    // mask flips now so the sweep and the crash path see them awake.
    if (!awake_.test(idx(v))) {
      awake_.set(idx(v));
      newly_awake_.push_back(v);
      ++awake_count_;
    }
    ++result_.deliveries;
    if (opts_.sink != nullptr) {
      opts_.sink->record({step, trace_event::type::receive, v, *delivered});
    }
    if (!was_informed && derived().proto_informed(v)) {
      result_.informed_at[idx(v)] = step;
      ++informed_count_;
      if (opts_.sink != nullptr) {
        // Carry the delivering message so informed events have provenance:
        // msg.from is the node whose transmission first informed v — the
        // parent edge of the first-delivery tree (sim/trace_analysis.h).
        opts_.sink->record({step, trace_event::type::informed, v, *delivered});
      }
    }
  }

  // Resolve the listeners touched this step: collisions, then deliveries
  // (deferred through the fault filter when a model is installed).
  void commit_receptions(std::int64_t step) {
    for (const node_id t : transmitters_) {
      if (stamp_[idx(t)] == step) {
        arrivals_[idx(t)] = -1;  // busy transmitting; cannot receive
      }
    }
    if (faults_ == nullptr) {
      for (node_id v : touched_) {
        const int count = arrivals_[idx(v)];
        if (count == -1) continue;  // v transmitted this step
        if (count >= 2) {
          ++result_.collisions;
          if (opts_.sink != nullptr) {
            opts_.sink->record({step, trace_event::type::collision, v, {}});
          }
          continue;
        }
        RC_CHECK(count == 1);
        const node_id sender = last_sender_[idx(v)];
        RC_CHECK(tx_stamp_[idx(sender)] == step);
        deliver(v, sender, step);
      }
      return;
    }

    // Injection site 4: unique-arrival listeners go through the model's
    // delivery filter before anything is committed, but the trace must
    // still interleave collision/receive/drop in touched order — a
    // zero-intensity model's trace is byte-identical to the fault-free
    // path's (the chaos harness holds us to that).
    for (node_id v : touched_) {
      const int count = arrivals_[idx(v)];
      if (count == -1 || count >= 2) continue;
      RC_CHECK(count == 1);
      const node_id sender = last_sender_[idx(v)];
      RC_CHECK(tx_stamp_[idx(sender)] == step);
      pending_.push_back({v, sender, derived().proto_informed(v), false});
    }
    if (!pending_.empty()) {
      const fault::step_view view{step, &g_, &result_.informed_at, &crashed_};
      faults_->filter_deliveries(view, &pending_);
    }
    std::size_t next = 0;  // pending_ preserves touched order
    for (node_id v : touched_) {
      const int count = arrivals_[idx(v)];
      if (count == -1) continue;
      if (count >= 2) {
        ++result_.collisions;
        if (opts_.sink != nullptr) {
          opts_.sink->record({step, trace_event::type::collision, v, {}});
        }
        continue;
      }
      const fault::delivery_candidate& c = pending_[next++];
      RC_CHECK_MSG(c.listener == v,
                   "fault model must not reorder or resize the delivery list");
      if (c.suppressed) {
        ++result_.suppressed_deliveries;
        if (opts_.sink != nullptr) {
          opts_.sink->record(
              {step, trace_event::type::drop, v, tx_msg_[idx(c.sender)]});
        }
        continue;
      }
      deliver(v, c.sender, step);
    }
    pending_.clear();
  }

  // Fold this step's wakes into the sorted awake list.
  void merge_newly_awake() {
    if (newly_awake_.empty()) return;
    std::sort(newly_awake_.begin(), newly_awake_.end());
    const auto mid = static_cast<std::ptrdiff_t>(awake_list_.size());
    awake_list_.insert(awake_list_.end(), newly_awake_.begin(),
                       newly_awake_.end());
    std::inplace_merge(awake_list_.begin(), awake_list_.begin() + mid,
                       awake_list_.end());
    newly_awake_.clear();
  }

  void push_step_metrics(std::int64_t collisions_before,
                         std::int64_t deliveries_before,
                         std::int64_t suppressed_before) {
    const auto tx_count = static_cast<std::int64_t>(transmitters_.size());
    const std::int64_t step_collisions =
        result_.collisions - collisions_before;
    const std::int64_t step_deliveries =
        result_.deliveries - deliveries_before;
    sr_frontier_->push(informed_count_);
    sr_awake_->push(awake_count_);
    sr_tx_->push(tx_count);
    sr_deliveries_->push(step_deliveries);
    sr_collisions_->push(step_collisions);
    // Listeners that heard nothing at all: everyone except transmitters
    // and the listeners resolved to a delivery or an observed collision.
    sr_idle_->push(static_cast<std::int64_t>(n_) - tx_count -
                   step_deliveries - step_collisions);
    h_tx_per_step_->observe(tx_count);
    if (sr_f_crashed_ != nullptr) {
      sr_f_crashed_->push(result_.crashed_nodes);
      sr_f_recoveries_->push(result_.recoveries);
      sr_f_suppressed_->push(result_.suppressed_deliveries - suppressed_before);
      sr_f_down_edges_->push(down_count_);
    }
  }

  // Completion bookkeeping shared by every engine; true ⇒ stop.
  bool step_epilogue(std::int64_t step) {
    result_.steps = step + 1;
    // Crashed nodes can never become informed; completion is over the
    // survivors (crashed_uninformed_ == 0 in fault-free runs).
    const bool everyone_informed =
        informed_count_ + crashed_uninformed_ == n_;
    if (everyone_informed && result_.informed_step == -1) {
      result_.informed_step = step + 1;
    }
    // The roster must settle before completion: while the model still
    // intends to bring crashed nodes back (fault/recovery.h), a returning
    // amnesiac may yet need the message, so "every surviving node is
    // informed" is not final.
    const bool settled =
        faults_ == nullptr || faults_->pending_recoveries() == 0;
    if (opts_.stop == stop_condition::all_informed) {
      if (everyone_informed && settled) {
        result_.completed = true;
        return true;
      }
    } else {
      if (everyone_informed && settled && all_halted()) {
        result_.completed = true;
        return true;
      }
    }
    // Message extinction: no live node holds the message and none of the
    // crashed holders will return — with no spontaneous transmissions the
    // broadcast can make no further progress, so burn no more steps. Only
    // a crashed source produces this state (an amnesia reboot of the
    // source keeps it informed), hence outcome source_lost.
    if (faults_ != nullptr && settled && informed_count_ == crashed_informed_) {
      return true;  // completed stays false; finalize_outcome classifies
    }
    return false;
  }

  // Partition-tolerant post-mortem (run_result::outcome): a BFS over the
  // SURVIVING graph — live nodes, up edges — as it stood when the run
  // stopped, splitting "genuinely stuck" from "unreachable" timeouts.
  // Fault-free completed runs skip the BFS: every node was reached, so
  // reachable = informed_reachable = n by construction.
  void finalize_outcome() {
    if (faults_ == nullptr && result_.completed) {
      result_.reachable_nodes = n_;
      result_.informed_reachable = n_;
      result_.outcome = run_outcome::completed;
      return;
    }
    const bool source_down = faults_ != nullptr && crashed_.test(0);
    if (!source_down) {
      bfs_seen_.assign(static_cast<std::size_t>(n_), 0);
      bfs_queue_.clear();
      bfs_seen_[0] = 1;
      bfs_queue_.push_back(0);
      for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
        const node_id u = bfs_queue_[head];
        const auto row = g_.out_neighbors(u);
        const std::size_t base = faults_ != nullptr ? g_.out_edge_base(u) : 0;
        for (std::size_t i = 0; i < row.size(); ++i) {
          const node_id v = row[i];
          if (bfs_seen_[idx(v)] != 0) continue;
          if (faults_ != nullptr &&
              (crashed_.test(idx(v)) ||
               (down_count_ != 0 && down_mask_.test(base + i)))) {
            continue;
          }
          bfs_seen_[idx(v)] = 1;
          bfs_queue_.push_back(v);
        }
      }
      result_.reachable_nodes = static_cast<std::int64_t>(bfs_queue_.size());
      for (const node_id v : bfs_queue_) {
        if (result_.informed_at[idx(v)] != -1) ++result_.informed_reachable;
      }
    }
    if (result_.completed) {
      result_.outcome = run_outcome::completed;
    } else if (source_down) {
      result_.outcome = run_outcome::source_lost;
    } else if (result_.informed_reachable == result_.reachable_nodes) {
      result_.outcome = run_outcome::unreachable;
    } else {
      result_.outcome = run_outcome::stuck;
    }
  }

  // Phase 2 with hoisted fault branches, shared by the frontier and SoA
  // engines: the loop body is selected once per step, and the per-slot
  // down-edge mask is consulted only while an edge is actually down.
  void phase_two_hoisted(std::int64_t step) {
    if (faults_ == nullptr) {
      for (const node_id t : transmitters_) {
        for (const node_id v : g_.out_neighbors(t)) {
          bump_arrival(v, t, step);
        }
      }
    } else if (down_count_ == 0) {
      for (const node_id t : transmitters_) {
        for (const node_id v : g_.out_neighbors(t)) {
          if (crashed_.test(idx(v))) continue;  // injection site 3
          bump_arrival(v, t, step);
        }
      }
    } else {
      for (const node_id t : transmitters_) {
        const auto row = g_.out_neighbors(t);
        const std::size_t base = g_.out_edge_base(t);
        for (std::size_t i = 0; i < row.size(); ++i) {
          const node_id v = row[i];
          if (crashed_.test(idx(v)) || down_mask_.test(base + i)) {
            continue;  // no signal: neither a delivery nor a collision
          }
          bump_arrival(v, t, step);
        }
      }
    }
  }

  // The frontier-driven engine: phase 1 costs O(|awake|). Crashed nodes
  // were already removed from the list, and dormant nodes are no-ops by
  // contract — so the sweep is bit-identical to stepping all n.
  void run_frontier() {
    for (std::int64_t step = 0; step < opts_.max_steps; ++step) {
      const std::int64_t collisions_before = result_.collisions;
      const std::int64_t deliveries_before = result_.deliveries;
      const std::int64_t suppressed_before = result_.suppressed_deliveries;

      if (faults_ != nullptr) apply_begin_step_faults(step);

      // Phase 1: transmit decisions from awake nodes only.
      transmitters_.clear();
      for (const node_id v : awake_list_) {
        step_node</*check_spontaneous=*/false>(v, step);
      }
      if (opts_.verify_sleepers) sweep_sleepers(step);
      result_.transmissions += static_cast<std::int64_t>(transmitters_.size());

      // Phase 2: resolve receptions — touch only transmitters'
      // out-neighbors (contiguous CSR rows).
      touched_.clear();
      phase_two_hoisted(step);

      commit_receptions(step);
      if (opts_.metrics != nullptr) {
        push_step_metrics(collisions_before, deliveries_before,
                          suppressed_before);
      }
      merge_newly_awake();
      if (step_epilogue(step)) break;
    }
  }

  // The reference engine — the pre-frontier loop, kept as the oracle the
  // differential suite runs against: phase 1 calls on_step on every node,
  // and phase 2 keeps its per-neighbor fault branch.
  void run_reference() {
    for (std::int64_t step = 0; step < opts_.max_steps; ++step) {
      const std::int64_t collisions_before = result_.collisions;
      const std::int64_t deliveries_before = result_.deliveries;
      const std::int64_t suppressed_before = result_.suppressed_deliveries;

      if (faults_ != nullptr) apply_begin_step_faults(step);

      // Phase 1: collect transmit decisions from ALL nodes.
      transmitters_.clear();
      for (node_id v = 0; v < n_; ++v) {
        if (faults_ != nullptr && crashed_.test(idx(v))) {
          continue;  // injection site 2: crashed nodes never transmit
        }
        step_node</*check_spontaneous=*/true>(v, step);
      }
      result_.transmissions += static_cast<std::int64_t>(transmitters_.size());

      // Phase 2: resolve receptions — touch only transmitters' neighbors.
      touched_.clear();
      for (const node_id t : transmitters_) {
        const auto row = g_.out_neighbors(t);
        const std::size_t base = faults_ != nullptr ? g_.out_edge_base(t) : 0;
        for (std::size_t i = 0; i < row.size(); ++i) {
          const node_id v = row[i];
          if (faults_ != nullptr &&  // injection site 3: crashes + churn
              (crashed_.test(idx(v)) ||
               (down_count_ != 0 && down_mask_.test(base + i)))) {
            continue;  // no signal: neither a delivery nor a collision
          }
          bump_arrival(v, t, step);
        }
      }

      commit_receptions(step);
      if (opts_.metrics != nullptr) {
        push_step_metrics(collisions_before, deliveries_before,
                          suppressed_before);
      }
      merge_newly_awake();
      if (step_epilogue(step)) break;
    }
  }

  // radiocast-analyze: hot-path-end

  const graph& g_;
  const run_options& opts_;
  const node_id n_;
  fault::fault_model* const faults_;
  protocol_params params_;
  std::vector<node_id> labels_;
  run_result result_;
  std::int64_t informed_count_ = 1;
  std::int64_t awake_count_ = 1;
  std::int64_t crashed_uninformed_ = 0;
  std::int64_t crashed_informed_ = 0;

  // Per-node generator pool, split from the root seed in node order. The
  // dormant-node CONTRACT (sim/protocol.h) is what makes pooling safe: a
  // dormant node's stream is never advanced, so engines that skip dormant
  // nodes leave gens_ byte-identical to engines that step all n.
  std::vector<rng> gens_;
  // received_any[v] ⇔ v has received ≥ 1 message since its last (re)start;
  // awake ⇔ source or received_any (and alive).
  std::vector<std::uint8_t> received_any_;

  // Awake set (see finish_setup comment). Packed words so the sleeper
  // sweep can retire 64 nodes per OR.
  util::bitset awake_;
  std::vector<node_id> awake_list_;
  std::vector<node_id> newly_awake_;

  // Reception scratch.
  std::vector<std::int64_t> stamp_;
  std::vector<int> arrivals_;
  std::vector<node_id> last_sender_;
  std::vector<node_id> touched_;
  std::vector<node_id> transmitters_;
  std::vector<message> tx_msg_;
  std::vector<std::int64_t> tx_stamp_;

  // Fault state, allocated only for fault-injected runs. The simulator —
  // not the models — owns the crash mask and down-edge mask, so the hot
  // loop never pays a virtual call per node or per edge. Both are packed
  // words: the crash probe is one shift+AND, and the down-edge probe
  // indexes the flat CSR slot (out_edge_base(t) + i) instead of hashing
  // an (u,v) key. down_count_ tracks LOGICAL down edges (undirected edges
  // count once) for the hoisted fast path and the metrics series.
  util::bitset crashed_;
  util::bitset down_mask_;
  std::int64_t down_count_ = 0;
  fault::step_faults step_faults_buf_;
  std::vector<fault::delivery_candidate> pending_;

  // finalize_outcome scratch (the queue doubles as the visit list).
  std::vector<std::uint8_t> bfs_seen_;
  std::vector<node_id> bfs_queue_;

  // Per-step series, resolved once at setup (null ⇒ metrics disabled).
  obs::series* sr_frontier_ = nullptr;
  obs::series* sr_awake_ = nullptr;
  obs::series* sr_tx_ = nullptr;
  obs::series* sr_deliveries_ = nullptr;
  obs::series* sr_collisions_ = nullptr;
  obs::series* sr_idle_ = nullptr;
  obs::histogram* h_tx_per_step_ = nullptr;
  obs::series* sr_f_crashed_ = nullptr;
  obs::series* sr_f_recoveries_ = nullptr;
  obs::series* sr_f_suppressed_ = nullptr;
  obs::series* sr_f_down_edges_ = nullptr;
};

}  // namespace radiocast::detail
