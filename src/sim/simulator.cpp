#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "fault/fault_model.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/assert.h"

namespace radiocast {

namespace {

/// Per-run state for one node.
struct node_slot {
  std::unique_ptr<protocol_node> node;
  rng gen{0};
  bool received_any = false;  // for the no-spontaneous-transmission check
};

}  // namespace

run_result run_broadcast_with_r(const graph& g, const protocol& proto,
                                node_id r, const run_options& opts) {
  obs::span_profiler* profiler =
      opts.profiler != nullptr ? opts.profiler : obs::global_profiler();
  obs::scoped_span run_span(profiler, "run_broadcast");

  const node_id n = g.node_count();
  RC_REQUIRE(r >= n - 1);
  RC_REQUIRE(opts.max_steps >= 1);

  protocol_params params;
  params.r = r;
  // d_hint is a per-protocol construction choice, not a per-run one: the
  // protocol object bakes it into the nodes it makes (see kp_randomized).
  params.d_hint = -1;

  // Resolve the (possibly sparse) labeling.
  std::vector<node_id> labels = opts.labels;
  if (labels.empty()) {
    labels.resize(static_cast<std::size_t>(n));
    for (node_id v = 0; v < n; ++v) labels[static_cast<std::size_t>(v)] = v;
  }
  RC_REQUIRE_MSG(labels.size() == static_cast<std::size_t>(n),
                 "labels must cover every node");
  RC_REQUIRE_MSG(labels[0] == 0, "the source must carry label 0");
  {
    std::vector<bool> seen(static_cast<std::size_t>(r) + 1, false);
    for (node_id label : labels) {
      RC_REQUIRE_MSG(label >= 0 && label <= r, "label out of range");
      RC_REQUIRE_MSG(!seen[static_cast<std::size_t>(label)],
                     "labels must be distinct");
      seen[static_cast<std::size_t>(label)] = true;
    }
  }

  rng root(opts.seed);
  std::vector<node_slot> slots(static_cast<std::size_t>(n));
  {
    obs::scoped_span setup_span(profiler, "setup");
    for (node_id v = 0; v < n; ++v) {
      auto& slot = slots[static_cast<std::size_t>(v)];
      slot.gen = root.split();
      slot.node = proto.make_node(labels[static_cast<std::size_t>(v)], params);
      RC_CHECK(slot.node != nullptr);
    }
  }
  RC_CHECK_MSG(slots[0].node->informed(), "the source must start informed");

  if (opts.sink != nullptr) {
    // Steady-state recording should not reallocate: reserve for the step
    // cap (a few events per step, clamped to keep pathological caps sane)
    // or the ring capacity, whichever binds.
    const auto cap_hint = static_cast<std::size_t>(
        std::min<std::int64_t>(opts.max_steps * 2, std::int64_t{1} << 20));
    opts.sink->reserve(cap_hint);
  }

  // Metrics: resolve every per-step series once, outside the loop. The
  // disabled path (metrics == nullptr) must cost one branch per site.
  obs::series* sr_frontier = nullptr;
  obs::series* sr_tx = nullptr;
  obs::series* sr_deliveries = nullptr;
  obs::series* sr_collisions = nullptr;
  obs::series* sr_idle = nullptr;
  obs::histogram* h_tx_per_step = nullptr;
  obs::series* sr_f_crashed = nullptr;
  obs::series* sr_f_suppressed = nullptr;
  obs::series* sr_f_down_edges = nullptr;
  if (opts.metrics != nullptr) {
    sr_frontier = &opts.metrics->get_series("sim.informed_frontier");
    sr_tx = &opts.metrics->get_series("sim.transmissions");
    sr_deliveries = &opts.metrics->get_series("sim.deliveries");
    sr_collisions = &opts.metrics->get_series("sim.collisions");
    sr_idle = &opts.metrics->get_series("sim.idle_listeners");
    h_tx_per_step = &opts.metrics->get_histogram("sim.transmitters_per_step");
    // Fault series only exist for fault-injected runs, so fault-free
    // metric exports keep their exact pre-fault shape.
    if (opts.faults != nullptr) {
      sr_f_crashed = &opts.metrics->get_series("sim.fault.crashed_nodes");
      sr_f_suppressed = &opts.metrics->get_series("sim.fault.suppressed");
      sr_f_down_edges = &opts.metrics->get_series("sim.fault.down_edges");
    }
  }

  run_result result;
  result.informed_at.assign(static_cast<std::size_t>(n), -1);
  result.transmissions_per_node.assign(static_cast<std::size_t>(n), 0);
  result.informed_at[0] = 0;
  std::int64_t informed_count = 1;

  // Scratch used to resolve receptions by iterating transmitters only:
  // per listener, a step-stamped counter and the last transmitter seen.
  std::vector<std::int64_t> stamp(static_cast<std::size_t>(n), -1);
  std::vector<int> arrivals(static_cast<std::size_t>(n), 0);
  std::vector<node_id> last_sender(static_cast<std::size_t>(n), -1);
  std::vector<node_id> touched;
  std::vector<node_id> transmitters;
  std::vector<message> tx_msg(static_cast<std::size_t>(n));
  std::vector<std::int64_t> tx_stamp(static_cast<std::size_t>(n), -1);

  // Fault state, allocated only for fault-injected runs. The simulator —
  // not the models — owns the crash mask and down-edge set, so the hot
  // loop never pays a virtual call per node or per edge.
  fault::fault_model* const faults = opts.faults;
  std::vector<std::uint8_t> crashed;
  // radiocast-lint: allow(unordered-iter) -- membership-only (insert/erase/
  // count/size); nothing ever iterates it, so hash order cannot reach results
  std::unordered_set<std::uint64_t> down_edges;
  fault::step_faults step_faults_buf;
  std::vector<fault::delivery_candidate> pending;
  std::int64_t crashed_uninformed = 0;
  const bool normalize_edges = !g.is_directed();
  auto edge_key = [normalize_edges](node_id a, node_id b) {
    if (normalize_edges && a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  };
  if (faults != nullptr) {
    crashed.assign(static_cast<std::size_t>(n), 0);
    faults->begin_run({&g, opts.seed, opts.max_steps});
  }

  // Crashed nodes are exempt from both stop conditions: completion means
  // every *surviving* node is informed (resp. halted).
  auto all_halted = [&] {
    for (node_id v = 0; v < n; ++v) {
      if (faults != nullptr && crashed[static_cast<std::size_t>(v)] != 0) {
        continue;
      }
      if (!slots[static_cast<std::size_t>(v)].node->halted()) return false;
    }
    return true;
  };

  obs::scoped_span loop_span(profiler, "step_loop");
  for (std::int64_t step = 0; step < opts.max_steps; ++step) {
    const std::int64_t collisions_before = result.collisions;
    const std::int64_t deliveries_before = result.deliveries;
    const std::int64_t suppressed_before = result.suppressed_deliveries;

    if (faults != nullptr) {  // injection site 1: crash-stops and churn
      step_faults_buf.clear();
      const fault::step_view view{step, &g, &result.informed_at, &crashed};
      faults->begin_step(view, &step_faults_buf);
      for (const node_id v : step_faults_buf.crashes) {
        RC_CHECK_MSG(v >= 0 && v < n, "fault model crashed an unknown node");
        auto& mark = crashed[static_cast<std::size_t>(v)];
        if (mark != 0) continue;
        mark = 1;
        ++result.crashed_nodes;
        if (result.informed_at[static_cast<std::size_t>(v)] == -1) {
          ++crashed_uninformed;
        }
        if (opts.sink != nullptr) {
          opts.sink->record({step, trace_event::type::crash, v, {}});
        }
      }
      for (const auto& [u, v] : step_faults_buf.edges_down) {
        if (!down_edges.insert(edge_key(u, v)).second) continue;
        ++result.churned_edges;
        if (opts.sink != nullptr) {
          message m;
          m.a = v;
          opts.sink->record({step, trace_event::type::edge_down, u, m});
        }
      }
      for (const auto& [u, v] : step_faults_buf.edges_up) {
        if (down_edges.erase(edge_key(u, v)) == 0) continue;
        ++result.churned_edges;
        if (opts.sink != nullptr) {
          message m;
          m.a = v;
          opts.sink->record({step, trace_event::type::edge_up, u, m});
        }
      }
    }

    // Phase 1: collect transmit decisions.
    transmitters.clear();
    for (node_id v = 0; v < n; ++v) {
      if (faults != nullptr && crashed[static_cast<std::size_t>(v)] != 0) {
        continue;  // injection site 2: crashed nodes never transmit
      }
      auto& slot = slots[static_cast<std::size_t>(v)];
      node_context ctx{step, &slot.gen, opts.metrics};
      std::optional<message> decision = slot.node->on_step(ctx);
      if (!decision) continue;
      RC_CHECK_MSG(v == 0 || slot.received_any,
                   "protocol bug: node " + std::to_string(v) +
                       " transmitted spontaneously at step " +
                       std::to_string(step));
      decision->from = labels[static_cast<std::size_t>(v)];
      transmitters.push_back(v);
      ++result.transmissions_per_node[static_cast<std::size_t>(v)];
      tx_msg[static_cast<std::size_t>(v)] = *decision;
      tx_stamp[static_cast<std::size_t>(v)] = step;
      if (opts.sink != nullptr) {
        opts.sink->record({step, trace_event::type::transmit, v, *decision});
      }
    }
    result.transmissions += static_cast<std::int64_t>(transmitters.size());

    // Phase 2: resolve receptions — touch only transmitters' out-neighbors.
    touched.clear();
    for (const node_id t : transmitters) {
      for (node_id v : g.out_neighbors(t)) {
        if (faults != nullptr &&  // injection site 3: crashes + churn
            (crashed[static_cast<std::size_t>(v)] != 0 ||
             (!down_edges.empty() &&
              down_edges.count(edge_key(t, v)) != 0))) {
          continue;  // no signal: neither a delivery nor a collision
        }
        auto& s = stamp[static_cast<std::size_t>(v)];
        if (s != step) {
          s = step;
          arrivals[static_cast<std::size_t>(v)] = 0;
          touched.push_back(v);
        }
        ++arrivals[static_cast<std::size_t>(v)];
        last_sender[static_cast<std::size_t>(v)] = t;
      }
    }

    // A transmitting node cannot simultaneously receive; mark them.
    for (const node_id t : transmitters) {
      if (stamp[static_cast<std::size_t>(t)] == step) {
        arrivals[static_cast<std::size_t>(t)] = -1;  // busy transmitting
      }
    }

    auto deliver = [&](node_id v, node_id sender) {
      auto& slot = slots[static_cast<std::size_t>(v)];
      const message* delivered = &tx_msg[static_cast<std::size_t>(sender)];
      const bool was_informed = slot.node->informed();
      node_context ctx{step, &slot.gen, opts.metrics};
      slot.node->on_receive(ctx, *delivered);
      slot.received_any = true;
      ++result.deliveries;
      if (opts.sink != nullptr) {
        opts.sink->record({step, trace_event::type::receive, v, *delivered});
      }
      if (!was_informed && slot.node->informed()) {
        result.informed_at[static_cast<std::size_t>(v)] = step;
        ++informed_count;
        if (opts.sink != nullptr) {
          opts.sink->record({step, trace_event::type::informed, v, {}});
        }
      }
    };

    for (node_id v : touched) {
      const int count = arrivals[static_cast<std::size_t>(v)];
      if (count == -1) continue;  // v transmitted this step
      if (count >= 2) {
        ++result.collisions;
        if (opts.sink != nullptr) {
          opts.sink->record({step, trace_event::type::collision, v, {}});
        }
        continue;
      }
      RC_CHECK(count == 1);
      const node_id sender = last_sender[static_cast<std::size_t>(v)];
      RC_CHECK(tx_stamp[static_cast<std::size_t>(sender)] == step);
      if (faults != nullptr) {  // injection site 4: defer for loss/jamming
        pending.push_back(
            {v, sender, slots[static_cast<std::size_t>(v)].node->informed(),
             false});
        continue;
      }
      deliver(v, sender);
    }

    if (faults != nullptr && !pending.empty()) {
      const fault::step_view view{step, &g, &result.informed_at, &crashed};
      faults->filter_deliveries(view, &pending);
      for (const fault::delivery_candidate& c : pending) {
        if (c.suppressed) {
          ++result.suppressed_deliveries;
          if (opts.sink != nullptr) {
            opts.sink->record(
                {step, trace_event::type::drop, c.listener,
                 tx_msg[static_cast<std::size_t>(c.sender)]});
          }
          continue;
        }
        deliver(c.listener, c.sender);
      }
      pending.clear();
    }

    if (opts.metrics != nullptr) {
      const auto tx_count = static_cast<std::int64_t>(transmitters.size());
      const std::int64_t step_collisions =
          result.collisions - collisions_before;
      const std::int64_t step_deliveries =
          result.deliveries - deliveries_before;
      sr_frontier->push(informed_count);
      sr_tx->push(tx_count);
      sr_deliveries->push(step_deliveries);
      sr_collisions->push(step_collisions);
      // Listeners that heard nothing at all: everyone except transmitters
      // and the listeners resolved to a delivery or an observed collision.
      sr_idle->push(static_cast<std::int64_t>(n) - tx_count -
                    step_deliveries - step_collisions);
      h_tx_per_step->observe(tx_count);
      if (sr_f_crashed != nullptr) {
        sr_f_crashed->push(result.crashed_nodes);
        sr_f_suppressed->push(result.suppressed_deliveries -
                              suppressed_before);
        sr_f_down_edges->push(static_cast<std::int64_t>(down_edges.size()));
      }
    }

    result.steps = step + 1;
    // Crashed nodes can never become informed; completion is over the
    // survivors (crashed_uninformed == 0 in fault-free runs).
    const bool everyone_informed = informed_count + crashed_uninformed == n;
    if (everyone_informed && result.informed_step == -1) {
      result.informed_step = step + 1;
    }
    if (opts.stop == stop_condition::all_informed) {
      if (everyone_informed) {
        result.completed = true;
        break;
      }
    } else {
      if (everyone_informed && all_halted()) {
        result.completed = true;
        break;
      }
    }
  }
  return result;
}

run_result run_broadcast(const graph& g, const protocol& proto,
                         const run_options& opts) {
  return run_broadcast_with_r(g, proto, g.node_count() - 1, opts);
}

std::size_t trial_set::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(),
                    [](const trial_record& t) { return t.completed; }));
}

double trial_set::timeout_rate() const {
  if (trials.empty()) return 0.0;
  return 1.0 - static_cast<double>(completed_count()) /
                   static_cast<double>(trials.size());
}

std::vector<double> trial_set::completion_steps() const {
  std::vector<double> out;
  out.reserve(trials.size());
  for (const trial_record& t : trials) {
    if (t.completed) out.push_back(static_cast<double>(t.informed_step));
  }
  return out;
}

double trial_set::total_wall_ms() const {
  double total = 0.0;
  for (const trial_record& t : trials) total += t.wall_ms;
  return total;
}

trial_set run_trials(const graph& g, const protocol& proto,
                     const trial_options& opts) {
  RC_REQUIRE(opts.trials >= 1);
  obs::span_profiler* profiler =
      opts.profiler != nullptr ? opts.profiler : obs::global_profiler();
  obs::scoped_span batch_span(profiler, "run_trials");

  trial_set out;
  out.trials.reserve(static_cast<std::size_t>(opts.trials));
  for (int t = 0; t < opts.trials; ++t) {
    run_options ropts;
    ropts.seed = opts.base_seed + static_cast<std::uint64_t>(t);
    ropts.max_steps = opts.max_steps;
    ropts.stop = opts.stop;
    ropts.metrics = opts.metrics;
    ropts.profiler = opts.profiler;
    ropts.faults = opts.faults;  // re-seeded per trial by begin_run
    // radiocast-lint: allow(wall-clock) -- wall_ms is reporting-only and
    // explicitly excluded from the serial/parallel bit-identity contract
    const auto start = std::chrono::steady_clock::now();
    const run_result r = run_broadcast(g, proto, ropts);
    // radiocast-lint: allow(wall-clock) -- wall_ms is reporting-only and
    // explicitly excluded from the serial/parallel bit-identity contract
    const auto end = std::chrono::steady_clock::now();

    trial_record rec;
    rec.seed = ropts.seed;
    rec.completed = r.completed;
    rec.steps = r.steps;
    rec.informed_step = r.completed ? r.informed_step : std::int64_t{-1};
    rec.transmissions = r.transmissions;
    rec.collisions = r.collisions;
    rec.deliveries = r.deliveries;
    rec.crashed_nodes = r.crashed_nodes;
    rec.suppressed_deliveries = r.suppressed_deliveries;
    rec.churned_edges = r.churned_edges;
    rec.wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            end - start)
            .count();
    out.trials.push_back(rec);
  }
  return out;
}

std::vector<double> completion_times(const graph& g, const protocol& proto,
                                     int trials, std::uint64_t base_seed,
                                     std::int64_t max_steps) {
  trial_options opts;
  opts.trials = trials;
  opts.base_seed = base_seed;
  opts.max_steps = max_steps;
  const trial_set batch = run_trials(g, proto, opts);
  if (!batch.all_completed()) {
    // Identify the first failing seed so the throw is actionable; sweeps
    // that must survive timeouts use run_trials directly.
    std::uint64_t first_failed = 0;
    for (const trial_record& t : batch.trials) {
      if (!t.completed) {
        first_failed = t.seed;
        break;
      }
    }
    const std::size_t failed = batch.trials.size() - batch.completed_count();
    RC_CHECK_MSG(false, "broadcast did not complete within " +
                            std::to_string(max_steps) +
                            " steps for protocol " + proto.name() + " (" +
                            std::to_string(failed) + "/" +
                            std::to_string(batch.trials.size()) +
                            " trials timed out; first failing seed " +
                            std::to_string(first_failed) + ")");
  }
  return batch.completion_steps();
}

}  // namespace radiocast
