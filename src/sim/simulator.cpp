#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "obs/span.h"
#include "sim/engine_core.h"
#include "util/assert.h"

namespace radiocast {

namespace {

/// The virtual-dispatch engines (frontier + reference): per-node state is a
/// heap protocol_node object and every protocol hook is a virtual call.
/// Everything else — setup, fault sites, reception resolution, metrics,
/// completion — is the shared core in sim/engine_core.h, which is exactly
/// what lets the differential suite compare this pair against the SoA
/// engine (sim/soa_engine.h): the engines can only disagree in the parts
/// that actually differ.
class virtual_run final : public detail::run_base<virtual_run> {
  using base = detail::run_base<virtual_run>;
  friend base;

 public:
  virtual_run(const graph& g, const protocol& proto, node_id r,
              const run_options& opts, obs::span_profiler* profiler)
      : base(g, r, opts), proto_(proto) {
    finish_setup(profiler);
  }

  using base::run;

 private:
  void init_nodes(const protocol_params& params) {
    nodes_.resize(static_cast<std::size_t>(n_));
    for (node_id v = 0; v < n_; ++v) {
      nodes_[idx(v)] = proto_.make_node(labels_[idx(v)], params);
      RC_CHECK(nodes_[idx(v)] != nullptr);
    }
  }

  // radiocast-analyze: hot-path-begin -- per-node dispatch, called once
  // per awake node per step.

  std::optional<message> proto_step(node_id v, const node_context& ctx) {
    return nodes_[idx(v)]->on_step(ctx);
  }
  void proto_receive(node_id v, const node_context& ctx, const message& m) {
    nodes_[idx(v)]->on_receive(ctx, m);
  }
  bool proto_informed(node_id v) { return nodes_[idx(v)]->informed(); }
  bool proto_halted(node_id v) { return nodes_[idx(v)]->halted(); }
  void proto_restart(node_id v, const node_context& ctx) {
    nodes_[idx(v)]->on_restart(ctx);
  }

  void run_engine() {
    if (opts_.engine == step_engine::frontier) {
      run_frontier();
    } else {
      run_reference();
    }
  }

  // radiocast-analyze: hot-path-end

  const protocol& proto_;
  std::vector<std::unique_ptr<protocol_node>> nodes_;
};

}  // namespace

const char* run_outcome_name(run_outcome o) {
  switch (o) {
    case run_outcome::completed: return "completed";
    case run_outcome::stuck: return "stuck";
    case run_outcome::unreachable: return "unreachable";
    case run_outcome::source_lost: return "source_lost";
  }
  return "unknown";
}

run_result run_broadcast_with_r(const graph& g, const protocol& proto,
                                node_id r, const run_options& opts) {
  obs::span_profiler* profiler =
      opts.profiler != nullptr ? opts.profiler : obs::global_profiler();
  obs::scoped_span run_span(profiler, "run_broadcast");
  if (opts.engine == step_engine::soa) {
    // One virtual call per RUN: resolve the protocol's templated SoA entry
    // and jump into it — the step loop behind it has no virtual dispatch.
    const soa_entry entry = proto.soa_runner();
    RC_REQUIRE_MSG(entry != nullptr,
                   "protocol '" + proto.name() +
                       "' has no SoA step form (protocol::soa_runner "
                       "returned null); use step_engine::frontier");
    return entry(g, proto, r, opts);
  }
  virtual_run run(g, proto, r, opts, profiler);
  obs::scoped_span loop_span(profiler, "step_loop");
  return run.run();
}

run_result run_broadcast(const graph& g, const protocol& proto,
                         const run_options& opts) {
  return run_broadcast_with_r(g, proto, g.node_count() - 1, opts);
}

std::size_t trial_set::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(trials.begin(), trials.end(),
                    [](const trial_record& t) { return t.completed; }));
}

double trial_set::timeout_rate() const {
  if (trials.empty()) return 0.0;
  return 1.0 - static_cast<double>(completed_count()) /
                   static_cast<double>(trials.size());
}

std::vector<double> trial_set::completion_steps() const {
  std::vector<double> out;
  out.reserve(trials.size());
  for (const trial_record& t : trials) {
    if (t.completed) out.push_back(static_cast<double>(t.informed_step));
  }
  return out;
}

double trial_set::total_wall_ms() const {
  double total = 0.0;
  for (const trial_record& t : trials) total += t.wall_ms;
  return total;
}

trial_set run_trials(const graph& g, const protocol& proto,
                     const trial_options& opts) {
  RC_REQUIRE(opts.trials >= 1);
  obs::span_profiler* profiler =
      opts.profiler != nullptr ? opts.profiler : obs::global_profiler();
  obs::scoped_span batch_span(profiler, "run_trials");

  trial_set out;
  out.trials.reserve(static_cast<std::size_t>(opts.trials));
  for (int t = 0; t < opts.trials; ++t) {
    run_options ropts;
    ropts.seed = opts.base_seed + static_cast<std::uint64_t>(t);
    ropts.max_steps = opts.max_steps;
    ropts.stop = opts.stop;
    ropts.metrics = opts.metrics;
    ropts.profiler = opts.profiler;
    ropts.faults = opts.faults;  // re-seeded per trial by begin_run
    ropts.engine = opts.engine;
    ropts.verify_sleepers = opts.verify_sleepers;
    ropts.step_threads = opts.step_threads;
    ropts.step_shard_grain = opts.step_shard_grain;
    // radiocast-lint: allow(wall-clock) -- wall_ms is reporting-only and
    // explicitly excluded from the serial/parallel bit-identity contract
    const auto start = std::chrono::steady_clock::now();
    const run_result r = run_broadcast(g, proto, ropts);
    // radiocast-lint: allow(wall-clock) -- wall_ms is reporting-only and
    // explicitly excluded from the serial/parallel bit-identity contract
    const auto end = std::chrono::steady_clock::now();

    trial_record rec;
    rec.seed = ropts.seed;
    rec.completed = r.completed;
    rec.steps = r.steps;
    rec.informed_step = r.completed ? r.informed_step : std::int64_t{-1};
    rec.transmissions = r.transmissions;
    rec.collisions = r.collisions;
    rec.deliveries = r.deliveries;
    rec.crashed_nodes = r.crashed_nodes;
    rec.recoveries = r.recoveries;
    rec.suppressed_deliveries = r.suppressed_deliveries;
    rec.churned_edges = r.churned_edges;
    rec.reachable_nodes = r.reachable_nodes;
    rec.informed_reachable = r.informed_reachable;
    rec.outcome = r.outcome;
    rec.wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            end - start)
            .count();
    out.trials.push_back(rec);
  }
  return out;
}

std::vector<double> completion_times(const graph& g, const protocol& proto,
                                     int trials, std::uint64_t base_seed,
                                     std::int64_t max_steps) {
  trial_options opts;
  opts.trials = trials;
  opts.base_seed = base_seed;
  opts.max_steps = max_steps;
  const trial_set batch = run_trials(g, proto, opts);
  if (!batch.all_completed()) {
    // Identify the first failing seed so the throw is actionable; sweeps
    // that must survive timeouts use run_trials directly.
    std::uint64_t first_failed = 0;
    for (const trial_record& t : batch.trials) {
      if (!t.completed) {
        first_failed = t.seed;
        break;
      }
    }
    const std::size_t failed = batch.trials.size() - batch.completed_count();
    RC_CHECK_MSG(false, "broadcast did not complete within " +
                            std::to_string(max_steps) +
                            " steps for protocol " + proto.name() + " (" +
                            std::to_string(failed) + "/" +
                            std::to_string(batch.trials.size()) +
                            " trials timed out; first failing seed " +
                            std::to_string(first_failed) + ")");
  }
  return batch.completion_steps();
}

}  // namespace radiocast
