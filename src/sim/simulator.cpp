#include "sim/simulator.h"

#include <algorithm>

#include "util/assert.h"

namespace radiocast {

namespace {

/// Per-run state for one node.
struct node_slot {
  std::unique_ptr<protocol_node> node;
  rng gen{0};
  bool received_any = false;  // for the no-spontaneous-transmission check
};

}  // namespace

run_result run_broadcast_with_r(const graph& g, const protocol& proto,
                                node_id r, const run_options& opts) {
  const node_id n = g.node_count();
  RC_REQUIRE(r >= n - 1);
  RC_REQUIRE(opts.max_steps >= 1);

  protocol_params params;
  params.r = r;
  // d_hint is a per-protocol construction choice, not a per-run one: the
  // protocol object bakes it into the nodes it makes (see kp_randomized).
  params.d_hint = -1;

  // Resolve the (possibly sparse) labeling.
  std::vector<node_id> labels = opts.labels;
  if (labels.empty()) {
    labels.resize(static_cast<std::size_t>(n));
    for (node_id v = 0; v < n; ++v) labels[static_cast<std::size_t>(v)] = v;
  }
  RC_REQUIRE_MSG(labels.size() == static_cast<std::size_t>(n),
                 "labels must cover every node");
  RC_REQUIRE_MSG(labels[0] == 0, "the source must carry label 0");
  {
    std::vector<bool> seen(static_cast<std::size_t>(r) + 1, false);
    for (node_id label : labels) {
      RC_REQUIRE_MSG(label >= 0 && label <= r, "label out of range");
      RC_REQUIRE_MSG(!seen[static_cast<std::size_t>(label)],
                     "labels must be distinct");
      seen[static_cast<std::size_t>(label)] = true;
    }
  }

  rng root(opts.seed);
  std::vector<node_slot> slots(static_cast<std::size_t>(n));
  for (node_id v = 0; v < n; ++v) {
    auto& slot = slots[static_cast<std::size_t>(v)];
    slot.gen = root.split();
    slot.node = proto.make_node(labels[static_cast<std::size_t>(v)], params);
    RC_CHECK(slot.node != nullptr);
  }
  RC_CHECK_MSG(slots[0].node->informed(), "the source must start informed");

  run_result result;
  result.informed_at.assign(static_cast<std::size_t>(n), -1);
  result.transmissions_per_node.assign(static_cast<std::size_t>(n), 0);
  result.informed_at[0] = 0;
  std::int64_t informed_count = 1;

  // Scratch used to resolve receptions by iterating transmitters only:
  // per listener, a step-stamped counter and the last transmitter seen.
  std::vector<std::int64_t> stamp(static_cast<std::size_t>(n), -1);
  std::vector<int> arrivals(static_cast<std::size_t>(n), 0);
  std::vector<node_id> last_sender(static_cast<std::size_t>(n), -1);
  std::vector<node_id> touched;
  std::vector<node_id> transmitters;
  std::vector<message> tx_msg(static_cast<std::size_t>(n));
  std::vector<std::int64_t> tx_stamp(static_cast<std::size_t>(n), -1);

  auto all_halted = [&] {
    return std::all_of(slots.begin(), slots.end(), [](const node_slot& s) {
      return s.node->halted();
    });
  };

  for (std::int64_t step = 0; step < opts.max_steps; ++step) {
    // Phase 1: collect transmit decisions.
    transmitters.clear();
    for (node_id v = 0; v < n; ++v) {
      auto& slot = slots[static_cast<std::size_t>(v)];
      node_context ctx{step, &slot.gen};
      std::optional<message> decision = slot.node->on_step(ctx);
      if (!decision) continue;
      RC_CHECK_MSG(v == 0 || slot.received_any,
                   "protocol bug: node " + std::to_string(v) +
                       " transmitted spontaneously at step " +
                       std::to_string(step));
      decision->from = labels[static_cast<std::size_t>(v)];
      transmitters.push_back(v);
      ++result.transmissions_per_node[static_cast<std::size_t>(v)];
      tx_msg[static_cast<std::size_t>(v)] = *decision;
      tx_stamp[static_cast<std::size_t>(v)] = step;
      if (opts.sink != nullptr) {
        opts.sink->record({step, trace_event::type::transmit, v, *decision});
      }
    }
    result.transmissions += static_cast<std::int64_t>(transmitters.size());

    // Phase 2: resolve receptions — touch only transmitters' out-neighbors.
    touched.clear();
    for (const node_id t : transmitters) {
      for (node_id v : g.out_neighbors(t)) {
        auto& s = stamp[static_cast<std::size_t>(v)];
        if (s != step) {
          s = step;
          arrivals[static_cast<std::size_t>(v)] = 0;
          touched.push_back(v);
        }
        ++arrivals[static_cast<std::size_t>(v)];
        last_sender[static_cast<std::size_t>(v)] = t;
      }
    }

    // A transmitting node cannot simultaneously receive; mark them.
    for (const node_id t : transmitters) {
      if (stamp[static_cast<std::size_t>(t)] == step) {
        arrivals[static_cast<std::size_t>(t)] = -1;  // busy transmitting
      }
    }

    for (node_id v : touched) {
      const int count = arrivals[static_cast<std::size_t>(v)];
      if (count == -1) continue;  // v transmitted this step
      auto& slot = slots[static_cast<std::size_t>(v)];
      if (count >= 2) {
        ++result.collisions;
        if (opts.sink != nullptr) {
          opts.sink->record({step, trace_event::type::collision, v, {}});
        }
        continue;
      }
      RC_CHECK(count == 1);
      const node_id sender = last_sender[static_cast<std::size_t>(v)];
      RC_CHECK(tx_stamp[static_cast<std::size_t>(sender)] == step);
      const message* delivered = &tx_msg[static_cast<std::size_t>(sender)];
      const bool was_informed = slot.node->informed();
      node_context ctx{step, &slot.gen};
      slot.node->on_receive(ctx, *delivered);
      slot.received_any = true;
      ++result.deliveries;
      if (opts.sink != nullptr) {
        opts.sink->record({step, trace_event::type::receive, v, *delivered});
      }
      if (!was_informed && slot.node->informed()) {
        result.informed_at[static_cast<std::size_t>(v)] = step;
        ++informed_count;
        if (opts.sink != nullptr) {
          opts.sink->record({step, trace_event::type::informed, v, {}});
        }
      }
    }

    result.steps = step + 1;
    if (informed_count == n && result.informed_step == -1) {
      result.informed_step = step + 1;
    }
    if (opts.stop == stop_condition::all_informed) {
      if (informed_count == n) {
        result.completed = true;
        break;
      }
    } else {
      if (informed_count == n && all_halted()) {
        result.completed = true;
        break;
      }
    }
  }
  return result;
}

run_result run_broadcast(const graph& g, const protocol& proto,
                         const run_options& opts) {
  return run_broadcast_with_r(g, proto, g.node_count() - 1, opts);
}

std::vector<double> completion_times(const graph& g, const protocol& proto,
                                     int trials, std::uint64_t base_seed,
                                     std::int64_t max_steps) {
  RC_REQUIRE(trials >= 1);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    run_options opts;
    opts.seed = base_seed + static_cast<std::uint64_t>(t);
    opts.max_steps = max_steps;
    const run_result r = run_broadcast(g, proto, opts);
    RC_CHECK_MSG(r.completed, "broadcast did not complete within the step "
                              "cap for protocol " + proto.name());
    times.push_back(static_cast<double>(r.informed_step));
  }
  return times;
}

}  // namespace radiocast
