// Struct-of-arrays step engine: million-node single runs.
//
// The virtual engines (sim/simulator.cpp) pay three taxes per awake node
// per step: a unique_ptr chase to a heap-scattered node object, a virtual
// on_step call the compiler cannot inline, and the cache misses both imply
// once n outgrows the LLC. This engine removes all three:
//
//   * STATE: per-node protocol state is one contiguous std::vector of a POD
//     `Traits::state` (plus the flat awake/crashed/received masks and the
//     per-node RNG pool the shared core already keeps as arrays) — phase 1
//     is a linear walk over dense arrays;
//   * DISPATCH: the step loop is templated on the protocol's Traits, so
//     traits.on_step inlines into the loop body. Runtime protocol selection
//     happens ONCE per run (protocol::soa_runner returns the entry function
//     pointer for this translation unit's instantiation), not per step;
//   * SHARDING: phase 1 (transmit decisions) and phase 2 (reception scan)
//     of a SINGLE step can fan out over an exec::thread_pool
//     (run_options::step_threads) and still produce bit-identical results.
//
// THE ORDERED-MERGE ARGUMENT (why sharded ≡ serial, bit for bit):
//
//   Phase 1 cuts the sorted awake list into contiguous shards. Each worker
//   writes only per-node-disjoint slots (states_[v], gens_[v], tx_msg_[v],
//   tx_stamp_[v]) plus a shard-private transmitter list; per-node RNG
//   streams make the draws independent of the sharding. The merge walks
//   shards IN ORDER appending transmitters — and since shard s covers an
//   ascending contiguous slice, the concatenation IS the serial visit
//   order: transmitters_, trace transmit events, and transmissions_per_node
//   come out byte-identical.
//
//   Phase 2 cuts the transmitter list (already in serial order, by phase
//   1) into contiguous shards balanced by out-degree sum. Each worker
//   scans its transmitters' neighborhoods into SHARD-PRIVATE scratch
//   (stamp/arrivals/last_sender/touched). The merge walks shards in order:
//   a listener first touched in shard s joins the global touched list
//   while merging shard s. Serial first-touch order sorts listeners by the
//   index of the first transmitter that reaches them; every listener first
//   touched in shard s has that index inside shard s's contiguous range,
//   so shard-order concatenation of per-shard first-touch orders equals
//   the serial order. Arrival counts add across shards (same sum as
//   serial), and last_sender resolves by shard-order overwrite — the last
//   shard touching v holds the globally last transmitter index, exactly
//   serial's last-write. (run_options::debug_unordered_merge reverses the
//   merge to prove the chaos engine-bit-identity invariant catches a
//   broken reduction.)
//
//   Everything downstream of the merge — commit_receptions, the fault
//   delivery filter, traces, metrics, the awake-list fold — is the shared
//   serial code in sim/engine_core.h, operating on merged state that is
//   byte-identical to what a serial phase produced.
//
// Metrics-enabled runs pin phase 1 serial: protocols write gauges from
// on_step, and a gauge's last-write-wins value is only reproducible in
// serial order (counters and histograms would merge fine; gauges cannot).
// Phase 2 never calls protocol code, so it shards regardless.
//
// Traits requirements (see core/decay.cpp for the worked pattern):
//   struct state;                       // POD per-node protocol state
//   void init(state*, node_id label, const protocol_params&) const;
//   std::optional<message> on_step(state*, const node_context&) const;
//   void on_receive(state*, const node_context&, const message&) const;
//   bool informed(const state&) const;
//   bool halted(const state&) const;
//   void on_restart(state*, const node_context&) const;
// Optionally:
//   void begin_step(std::int64_t step);  // per-step hoist, see below
// begin_step is called ONCE per step, serially, before phase 1 (and before
// the verify_sleepers sweep). Schedule arithmetic that depends only on the
// step number — phase/offset divisions, block lookups, stage probabilities
// — is identical for every node, so traits cache it here and on_step reads
// the cache; during the sharded region workers only READ the traits
// object, so the hoist is race-free. Every hook must replicate the
// protocol's virtual node EXACTLY — same decisions, same ctx.gen draw
// sequence, same metrics writes. The three-way differential suite and the
// chaos invariants enforce this.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "exec/sharding.h"
#include "exec/thread_pool.h"
#include "sim/engine_core.h"

namespace radiocast {

namespace detail {
template <class T, class = void>
struct traits_have_begin_step : std::false_type {};
template <class T>
struct traits_have_begin_step<
    T, std::void_t<decltype(std::declval<T&>().begin_step(std::int64_t{}))>>
    : std::true_type {};
}  // namespace detail

template <class Traits>
class soa_run final : public detail::run_base<soa_run<Traits>> {
  using base = detail::run_base<soa_run<Traits>>;
  friend base;

  // The SoA layout stores per-node state as one contiguous array and
  // copies it wholesale across shard boundaries; a non-trivially-copyable
  // member would silently break that, and a fat state defeats the layout's
  // cache-density point. Shared configuration (schedules, tables) belongs
  // on the traits object, not in per-node state.
  static_assert(std::is_trivially_copyable_v<typename Traits::state>,
                "SoA Traits::state must be trivially copyable");
  static_assert(sizeof(typename Traits::state) <= 64,
                "SoA Traits::state must fit one cache line (<= 64 bytes); "
                "move shared data onto the traits object");

 public:
  soa_run(const graph& g, const Traits& traits, node_id r,
          const run_options& opts, obs::span_profiler* profiler)
      : base(g, r, opts),
        traits_(traits),
        step_threads_(exec::resolve_threads(opts.step_threads)),
        grain_(opts.step_shard_grain > 0 ? opts.step_shard_grain
                                         : kDefaultGrain) {
    this->finish_setup(profiler);
    if (step_threads_ > 1) {
      // Pool and shard arenas are run-lifetime, sized once from the graph
      // here (still inside the "setup" span's wall-clock): the sharded
      // step loop below never allocates. Serial runs (step_threads == 1)
      // never shard and skip all of it.
      pool_ = std::make_unique<exec::thread_pool>(step_threads_ - 1);
      const auto n = static_cast<std::size_t>(this->n_);
      p1_tx_arena_.resize(n);
      p1_counts_.assign(static_cast<std::size_t>(step_threads_), 0);
      p2_scratch_.resize(static_cast<std::size_t>(step_threads_));
      for (shard_scratch& sc : p2_scratch_) {
        sc.stamp.assign(n, -1);
        sc.arrivals.assign(n, 0);
        sc.last_sender.assign(n, -1);
        sc.touched.reserve(n);
      }
      p2_bounds_.reserve(static_cast<std::size_t>(step_threads_) + 1);
    }
  }

  using base::run;

 private:
  // Work below this many units (phase 1: awake nodes; phase 2: scanned
  // out-edges) per shard is cheaper to run serially than to fork/join.
  static constexpr std::int64_t kDefaultGrain = 4096;

  using base::idx;

  void init_nodes(const protocol_params& params) {
    states_.resize(static_cast<std::size_t>(this->n_));
    for (node_id v = 0; v < this->n_; ++v) {
      traits_.init(&states_[idx(v)], this->labels_[idx(v)], params);
    }
  }

  std::optional<message> proto_step(node_id v, const node_context& ctx) {
    return traits_.on_step(&states_[idx(v)], ctx);
  }
  void proto_receive(node_id v, const node_context& ctx, const message& m) {
    traits_.on_receive(&states_[idx(v)], ctx, m);
  }
  bool proto_informed(node_id v) { return traits_.informed(states_[idx(v)]); }
  bool proto_halted(node_id v) { return traits_.halted(states_[idx(v)]); }
  void proto_restart(node_id v, const node_context& ctx) {
    traits_.on_restart(&states_[idx(v)], ctx);
  }

  // radiocast-analyze: hot-path-begin -- the sharded step loop; no
  // allocation, formatting, throwing, or stream I/O (RC_* args exempt).
  // The pool and every shard arena are built once in the constructor.

  // Phase 1: transmit decisions over the awake list — sharded when there
  // is enough work, serial otherwise (and always serial when metrics are
  // on; see the header comment). Both paths are bit-identical.
  void phase_one(std::int64_t step) {
    const auto awake_sz = static_cast<std::int64_t>(this->awake_list_.size());
    int shards = 1;
    if (step_threads_ > 1 && this->opts_.metrics == nullptr &&
        awake_sz >= 2 * grain_) {
      shards = static_cast<int>(
          std::min<std::int64_t>(step_threads_, awake_sz / grain_));
    }
    if (shards < 2) {
      for (const node_id v : this->awake_list_) {
        this->template step_node</*check_spontaneous=*/false>(v, step);
      }
      return;
    }
    exec::run_shards(*pool_, shards, [&](int s) {
      const auto lo =
          static_cast<std::size_t>(awake_sz * s / shards);
      const auto hi =
          static_cast<std::size_t>(awake_sz * (s + 1) / shards);
      // Shard s's transmitters land at arena offset lo — its slice of the
      // awake list emits at most hi − lo of them, so slices never overlap.
      std::size_t count = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        const node_id v = this->awake_list_[i];
        // ctx.metrics is null by the gate above — identical to what the
        // serial path would pass.
        node_context ctx{step, &this->gens_[idx(v)], nullptr};
        std::optional<message> decision = traits_.on_step(&states_[idx(v)], ctx);
        if (!decision) continue;
        decision->from = this->labels_[idx(v)];
        this->tx_msg_[idx(v)] = *decision;
        this->tx_stamp_[idx(v)] = step;
        p1_tx_arena_[lo + count] = v;
        ++count;
      }
      p1_counts_[static_cast<std::size_t>(s)] = count;
    });
    // Ordered merge: shard s covered an ascending contiguous slice of the
    // awake list, so shard-order concatenation is the serial visit order —
    // transmitters_, the energy counts, and the trace all match serial.
    for (int s = 0; s < shards; ++s) {
      const auto lo = static_cast<std::size_t>(awake_sz * s / shards);
      const std::size_t count = p1_counts_[static_cast<std::size_t>(s)];
      for (std::size_t i = 0; i < count; ++i) {
        const node_id v = p1_tx_arena_[lo + i];
        this->transmitters_.push_back(v);
        ++this->result_.transmissions_per_node[idx(v)];
        if (this->opts_.sink != nullptr) {
          this->opts_.sink->record(
              {step, trace_event::type::transmit, v, this->tx_msg_[idx(v)]});
        }
      }
    }
  }

  // Phase 2: reception scan over transmitters' neighborhoods — sharded by
  // out-degree sum when there is enough work. See the header comment for
  // the ordered-merge bit-identity argument.
  void phase_two(std::int64_t step) {
    std::int64_t work = 0;
    int shards = 1;
    if (step_threads_ > 1 && !this->transmitters_.empty()) {
      for (const node_id t : this->transmitters_) {
        work += static_cast<std::int64_t>(this->g_.out_neighbors(t).size());
      }
      if (work >= 2 * grain_) {
        shards = static_cast<int>(
            std::min<std::int64_t>(step_threads_, work / grain_));
      }
    }
    if (shards < 2) {
      this->phase_two_hoisted(step);
      return;
    }

    // Greedy contiguous partition of the transmitter list, balanced by
    // out-degree sum. Deterministic: a function of transmitters_ and the
    // graph only.
    p2_bounds_.clear();
    p2_bounds_.push_back(0);
    const std::int64_t target = (work + shards - 1) / shards;
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < this->transmitters_.size(); ++i) {
      acc += static_cast<std::int64_t>(
          this->g_.out_neighbors(this->transmitters_[i]).size());
      if (acc >= target && i + 1 < this->transmitters_.size() &&
          static_cast<int>(p2_bounds_.size()) < shards) {
        p2_bounds_.push_back(i + 1);
        acc = 0;
      }
    }
    p2_bounds_.push_back(this->transmitters_.size());
    const auto used = static_cast<int>(p2_bounds_.size()) - 1;

    // Select the fault branch once per step, like phase_two_hoisted.
    const int mode = this->faults_ == nullptr
                         ? 0
                         : (this->down_count_ == 0 ? 1 : 2);
    exec::run_shards(*pool_, used, [&](int s) {
      // used ≤ shards ≤ step_threads_, so the constructor-built scratch
      // set always covers s; nothing here allocates.
      auto& sc = p2_scratch_[static_cast<std::size_t>(s)];
      sc.touched.clear();
      const auto bump = [&sc, step](node_id v, node_id t) {
        auto& st = sc.stamp[idx(v)];
        if (st != step) {
          st = step;
          sc.arrivals[idx(v)] = 0;
          sc.touched.push_back(v);
        }
        ++sc.arrivals[idx(v)];
        sc.last_sender[idx(v)] = t;
      };
      const std::size_t lo = p2_bounds_[static_cast<std::size_t>(s)];
      const std::size_t hi = p2_bounds_[static_cast<std::size_t>(s) + 1];
      if (mode == 0) {
        for (std::size_t i = lo; i < hi; ++i) {
          const node_id t = this->transmitters_[i];
          for (const node_id v : this->g_.out_neighbors(t)) bump(v, t);
        }
      } else if (mode == 1) {
        for (std::size_t i = lo; i < hi; ++i) {
          const node_id t = this->transmitters_[i];
          for (const node_id v : this->g_.out_neighbors(t)) {
            if (this->crashed_.test(idx(v))) continue;  // injection site 3
            bump(v, t);
          }
        }
      } else {
        for (std::size_t i = lo; i < hi; ++i) {
          const node_id t = this->transmitters_[i];
          const auto row = this->g_.out_neighbors(t);
          const std::size_t slot0 = this->g_.out_edge_base(t);
          for (std::size_t j = 0; j < row.size(); ++j) {
            const node_id v = row[j];
            if (this->crashed_.test(idx(v)) ||
                this->down_mask_.test(slot0 + j)) {
              continue;  // no signal: neither a delivery nor a collision
            }
            bump(v, t);
          }
        }
      }
    });

    // Ordered merge into the global reception scratch (see header comment;
    // debug_unordered_merge deliberately reverses the order so the chaos
    // harness can prove the bit-identity invariant bites).
    for (int k = 0; k < used; ++k) {
      const int s = this->opts_.debug_unordered_merge ? used - 1 - k : k;
      const auto& sc = p2_scratch_[static_cast<std::size_t>(s)];
      for (const node_id v : sc.touched) {
        auto& st = this->stamp_[idx(v)];
        if (st != step) {
          st = step;
          this->arrivals_[idx(v)] = 0;
          this->touched_.push_back(v);
        }
        this->arrivals_[idx(v)] += sc.arrivals[idx(v)];
        this->last_sender_[idx(v)] = sc.last_sender[idx(v)];
      }
    }
  }

  // The step loop — structurally run_frontier with shardable phases.
  void run_engine() {
    for (std::int64_t step = 0; step < this->opts_.max_steps; ++step) {
      const std::int64_t collisions_before = this->result_.collisions;
      const std::int64_t deliveries_before = this->result_.deliveries;
      const std::int64_t suppressed_before =
          this->result_.suppressed_deliveries;

      if (this->faults_ != nullptr) this->apply_begin_step_faults(step);

      if constexpr (detail::traits_have_begin_step<Traits>::value) {
        traits_.begin_step(step);
      }
      this->transmitters_.clear();
      phase_one(step);
      if (this->opts_.verify_sleepers) this->sweep_sleepers(step);
      this->result_.transmissions +=
          static_cast<std::int64_t>(this->transmitters_.size());

      this->touched_.clear();
      phase_two(step);

      this->commit_receptions(step);
      if (this->opts_.metrics != nullptr) {
        this->push_step_metrics(collisions_before, deliveries_before,
                                suppressed_before);
      }
      this->merge_newly_awake();
      if (this->step_epilogue(step)) break;
    }
  }

  // radiocast-analyze: hot-path-end

  Traits traits_;
  std::vector<typename Traits::state> states_;
  const int step_threads_;
  const std::int64_t grain_;

  // Intra-step pool and shard arenas, built once in the constructor when
  // step_threads_ > 1 (serial runs never pay for them) and reused for the
  // run's lifetime — the step loop itself never allocates. Phase 1 shard s
  // writes its transmitters at arena offset lo(s): its awake-list slice is
  // [lo, hi) so slices cannot overlap, and the ordered merge reads them
  // back in shard order.
  std::unique_ptr<exec::thread_pool> pool_;
  std::vector<node_id> p1_tx_arena_;
  std::vector<std::size_t> p1_counts_;
  struct shard_scratch {
    std::vector<std::int64_t> stamp;
    std::vector<int> arrivals;
    std::vector<node_id> last_sender;
    std::vector<node_id> touched;
  };
  std::vector<shard_scratch> p2_scratch_;
  std::vector<std::size_t> p2_bounds_;
};

/// Runs one broadcast with the SoA engine instantiated for `Traits`.
/// Protocol soa_runner entries call this; the "run_broadcast" span is
/// already open (run_broadcast_with_r), so this opens only setup/step_loop.
template <class Traits>
run_result run_broadcast_soa(const graph& g, const Traits& traits, node_id r,
                             const run_options& opts) {
  obs::span_profiler* profiler =
      opts.profiler != nullptr ? opts.profiler : obs::global_profiler();
  soa_run<Traits> run(g, traits, r, opts, profiler);
  obs::scoped_span loop_span(profiler, "step_loop");
  return run.run();
}

}  // namespace radiocast
