// Synchronous radio network simulator.
//
// Implements the paper's communication model exactly (§1):
//   * time proceeds in synchronous steps;
//   * in every step each node acts either as a transmitter or as a receiver;
//   * a receiver gets a message iff EXACTLY ONE of its in-neighbors
//     transmits in that step; with ≥ 2 transmitting neighbors a collision
//     occurs and is indistinguishable from silence (no collision detection);
//   * only nodes that already hold the source message may transmit — no
//     spontaneous transmissions (enforced; a violation throws).
//
// Supports undirected and directed graphs (Section 2 of the paper analyzes
// the randomized algorithm on directed graphs).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "sim/protocol.h"
#include "sim/trace.h"

namespace radiocast::obs {
class metrics_registry;
class span_profiler;
}  // namespace radiocast::obs

namespace radiocast::fault {
class fault_model;
}  // namespace radiocast::fault

namespace radiocast {

/// When the run loop stops.
enum class stop_condition {
  all_informed,  ///< stop once every node holds the source message
  all_halted,    ///< stop once every node reports halted() (token protocols)
};

/// Which step loop runs the broadcast (see docs/PERFORMANCE.md).
enum class step_engine {
  /// Frontier-driven: phase 1 iterates only the awake set (source + every
  /// node that has received at least one message; crashed nodes leave it),
  /// making per-step cost O(|awake|) instead of O(n). Bit-identical to
  /// `reference` by the dormant-node contract in sim/protocol.h — trial
  /// records, metrics dumps, and traces all match. The default.
  frontier,
  /// The pre-frontier loop, retained as the differential-testing oracle:
  /// phase 1 calls on_step on all n nodes every step.
  reference,
  /// Struct-of-arrays engine (sim/soa_engine.h): per-node protocol state
  /// lives in one contiguous POD array, the step loop is templated on the
  /// protocol's traits so on_step inlines (no virtual call per node), and
  /// phase 1 / phase 2 of a single step can shard across a thread pool
  /// (run_options::step_threads) with an ordered-merge reduction. Trial
  /// records, metrics dumps, and traces are bit-identical to frontier and
  /// reference — the three-way differential suite holds it to that. Only
  /// protocols that publish a SoA form (protocol::soa_runner) support it;
  /// selecting it for any other protocol is a checked error.
  soa,
};

struct run_options {
  std::int64_t max_steps = 1'000'000;  ///< hard cap; hitting it ⇒ incomplete
  stop_condition stop = stop_condition::all_informed;
  std::uint64_t seed = 1;      ///< root seed; split per node
  trace* sink = nullptr;       ///< optional event recording
  /// Optional metrics collection (see src/obs/metrics.h). When set, the
  /// simulator records per-step series — informed-frontier size, awake-set
  /// size (`sim.awake`: source + nodes that have received at least one
  /// message, minus crashed), transmissions, deliveries, collisions, idle
  /// listeners — under
  /// `sim.*`, and protocols receive the registry through node_context to
  /// tag per-phase counters. Null ⇒ the step loop's only overhead is one
  /// branch per instrumentation site.
  obs::metrics_registry* metrics = nullptr;
  /// Optional wall-clock span collection for this run. When null, the
  /// process-wide obs::global_profiler() (also null by default) is used.
  obs::span_profiler* profiler = nullptr;
  /// Optional fault injection (see src/fault/fault_model.h). When set, the
  /// simulator consults the model at the top of every step (crash-stops,
  /// edge churn) and before committing deliveries (loss, jamming), records
  /// `sim.fault.*` metric series and crash/drop/edge trace events, and
  /// fills the fault-accounting fields of run_result. Crashed nodes are
  /// exempt from the stop condition: "completed" then means every
  /// SURVIVING node is informed (resp. halted) — AND the roster has
  /// settled: while the model reports pending_recoveries() > 0, nodes are
  /// still destined to rejoin (possibly with amnesia, needing the message
  /// again), so completion is withheld. Null ⇒ the fault-free step
  /// loop pays exactly one branch per injection site, and results are
  /// bit-identical to a run where the model suppresses nothing.
  fault::fault_model* faults = nullptr;
  /// Optional sparse labeling: labels[v] is the label of graph node v
  /// (distinct, within {0,…,r}, labels[0] == 0 — the source's label).
  /// Empty ⇒ identity (label = node id). The paper's model only fixes
  /// r = O(n); protocols whose schedules scan the label space (round-robin
  /// slots, presence announcements, binary selection) genuinely slow down
  /// under sparse labels — see experiment E14.
  std::vector<node_id> labels;
  /// Step-loop implementation. `frontier` (default) skips dormant nodes;
  /// `reference` steps every node, serving as the differential oracle.
  step_engine engine = step_engine::frontier;
  /// Debug sweep (frontier/soa engines): every step, call on_step on every
  /// dormant node anyway and RC_CHECK that it returns std::nullopt and
  /// leaves its rng untouched — the dormant-node contract of
  /// sim/protocol.h, verified rather than assumed. Restores O(n) per-step
  /// cost; for tests, not production runs.
  bool verify_sleepers = false;
  /// Intra-step worker threads (soa engine only; the other engines ignore
  /// these fields): 0 = the RADIOCAST_THREADS environment default, 1 =
  /// serial, N ≥ 2 = shard each step's phase 1 (transmit decisions over
  /// the awake list) and phase 2 (reception scan over transmitters'
  /// neighborhoods) into N contiguous shards merged in shard order —
  /// bit-identical to serial at every thread count (docs/PERFORMANCE.md
  /// gives the ordered-merge argument). Metrics-enabled runs pin phase 1
  /// serial (protocols write gauges from on_step whose last-write-wins
  /// semantics only serial order reproduces); phase 2 still shards.
  int step_threads = 0;
  /// Minimum work per intra-step shard before sharding engages: phase 1
  /// counts awake nodes, phase 2 counts transmitter out-edges. 0 = a
  /// default tuned so tiny steps never pay fork/join overhead; tests set 1
  /// to force sharding on small graphs. Gating never affects results —
  /// sharded and serial steps are bit-identical — only wall-clock.
  std::int64_t step_shard_grain = 0;
  /// TEST-ONLY sabotage knob: merge phase-2 shards in REVERSE order,
  /// deliberately breaking the ordered-merge reduction the soa engine's
  /// bit-identity rests on. Exists so the chaos harness can prove the
  /// engine-bit-identity invariant actually catches a broken merge
  /// (tests/chaos_test.cpp); never set it in real runs.
  bool debug_unordered_merge = false;
};

/// How a run ended, beyond the completed flag. Partition-tolerant
/// semantics: a run that times out because the uninformed remainder was
/// CUT OFF (no live path from the source at the final step) is not the
/// same failure as one where progress was possible but not made. The
/// reachability BFS runs over the surviving graph — live (non-crashed)
/// nodes and up edges — at the moment the run stopped.
enum class run_outcome {
  completed,    ///< stop condition reached within the cap
  stuck,        ///< timed out with reachable-but-uninformed nodes left
  unreachable,  ///< timed out; every reachable survivor IS informed —
                ///< the rest are cut off behind crashes/down edges
  source_lost,  ///< the source itself is crashed at the end of the run
};

/// Short lowercase tag ("completed", "stuck", "unreachable", "source_lost").
const char* run_outcome_name(run_outcome o);

struct run_result {
  bool completed = false;         ///< stop condition reached within the cap
  std::int64_t steps = 0;         ///< steps executed
  std::int64_t informed_step = -1;  ///< first step after which all informed
  std::int64_t transmissions = 0;   ///< total transmit actions
  std::int64_t collisions = 0;      ///< listener-steps with ≥2 transmitters
  std::int64_t deliveries = 0;      ///< successful receptions
  std::vector<std::int64_t> informed_at;  ///< per node; −1 = never
  /// Per-node transmission counts — the energy metric of the radio
  /// literature (transmitting dominates a node's power budget).
  std::vector<std::int64_t> transmissions_per_node;
  // Fault accounting (all zero when run_options::faults is null).
  std::int64_t crashed_nodes = 0;  ///< crash EVENTS applied (a node that
                                   ///< recovers and re-crashes counts twice)
  std::int64_t recoveries = 0;     ///< crashed nodes that rejoined
  std::int64_t suppressed_deliveries = 0;  ///< receptions silenced (loss/jam)
  std::int64_t churned_edges = 0;  ///< edge up/down transitions applied
  // Partition-tolerant accounting (fault-free completed runs report
  // reachable_nodes = informed_reachable = n without running the BFS).
  std::int64_t reachable_nodes = 0;  ///< survivors reachable from the source
                                     ///< over the final surviving graph
                                     ///< (0 when the source is down)
  std::int64_t informed_reachable = 0;  ///< of those, how many are informed
  run_outcome outcome = run_outcome::completed;
};

/// Runs `proto` on `g` with node 0 as source until the stop condition or the
/// step cap. Node labels are the graph's node ids; r = n − 1.
run_result run_broadcast(const graph& g, const protocol& proto,
                         const run_options& opts = {});

/// As run_broadcast, but with an explicit label bound r ≥ n − 1 (the paper
/// only assumes labels come from {0,…,r} with r linear in n).
run_result run_broadcast_with_r(const graph& g, const protocol& proto,
                                node_id r, const run_options& opts = {});

// ---------------------------------------------------------------------------
// Trial batches — the measurement substrate of every bench and experiment.
// ---------------------------------------------------------------------------

/// One contiguous seed-range slice of a trial batch, as reported to shard
/// lifecycle hooks by parallel_run_trials (src/exec/parallel_trials.h).
struct shard_info {
  int index = 0;            ///< shard position within the batch (seed order)
  int first = 0;            ///< index of the shard's first trial
  int count = 0;            ///< trials in this shard
  std::uint64_t base_seed = 0;  ///< seed of the shard's first trial
};

/// Lifecycle hooks for sharded trial execution. Honored ONLY by
/// parallel_run_trials (run_trials is always plain-serial and ignores
/// them, exactly like trial_options::threads). They are what lets a
/// campaign stream trial records to durable artifacts instead of folding
/// every shard back through process memory (docs/CAMPAIGNS.md):
///
///   * on_start fires from WORKER threads as shards begin, in no
///     particular order — the callback must be thread-safe;
///   * on_done fires on the CALLING thread, strictly in seed order, as
///     each next-in-order shard finishes — a shard's records stream out
///     (and its memory is released when discard_records is set) while
///     later shards are still running;
///   * discard_records = true drops each shard's trial records after its
///     on_done returns instead of folding them into the returned
///     trial_set, which then comes back empty. Metrics and span merges
///     are unaffected.
struct trial_set;  // defined below

struct shard_hooks {
  std::function<void(const shard_info&)> on_start;
  std::function<void(const shard_info&, const trial_set&)> on_done;
  bool discard_records = false;

  bool any() const {
    return on_start != nullptr || on_done != nullptr || discard_records;
  }
};

/// Options for a seeded trial batch.
struct trial_options {
  int trials = 1;
  std::uint64_t base_seed = 1;  ///< trial t runs with seed base_seed + t
  std::int64_t max_steps = 1'000'000;
  stop_condition stop = stop_condition::all_informed;
  /// Metrics registry shared across all trials (phase counters accumulate;
  /// per-step series are only meaningful for single-trial batches).
  obs::metrics_registry* metrics = nullptr;
  obs::span_profiler* profiler = nullptr;
  /// Optional fault injection, shared by every trial: the model is re-seeded
  /// per trial through fault_model::begin_run (trial t runs with seed
  /// base_seed + t), so each trial draws an independent fault schedule.
  fault::fault_model* faults = nullptr;
  /// Worker threads for parallel_run_trials (src/exec/parallel_trials.h):
  /// 0 = the RADIOCAST_THREADS environment default (1 when unset), 1 =
  /// serial, N ≥ 2 = shard the seed range over N workers. run_trials
  /// ignores this field — it is ALWAYS serial; parallel_run_trials with a
  /// resolved count ≤ 1 takes that serial path untouched, and with more
  /// threads produces bit-identical trial records and merged metrics
  /// (wall_ms aside; see docs/PARALLELISM.md).
  int threads = 0;
  /// Explicit shard size for parallel_run_trials: 0 = auto (a few shards
  /// per worker, balanced), N ≥ 1 = contiguous shards of exactly N trials
  /// in seed order (the last one smaller when N does not divide trials).
  /// Campaigns pin this so shard boundaries — and therefore artifact
  /// files — are a function of the manifest alone, not the host's core
  /// count. run_trials ignores this field, like `threads`.
  int shard_size = 0;
  /// Shard lifecycle hooks (see shard_hooks above). parallel_run_trials
  /// only; run_trials ignores them.
  shard_hooks hooks;
  /// Step-loop implementation for every trial (see run_options::engine).
  step_engine engine = step_engine::frontier;
  /// Per-trial dormant-node contract sweep (see run_options::verify_sleepers).
  bool verify_sleepers = false;
  /// Intra-step worker threads per trial (see run_options::step_threads;
  /// soa engine only). Independent of `threads`, which shards ACROSS
  /// trials: a campaign typically picks one or the other, not both.
  int step_threads = 0;
  /// Minimum work per intra-step shard (see run_options::step_shard_grain).
  std::int64_t step_shard_grain = 0;
};

/// Outcome of one trial, the unit record of bench telemetry.
struct trial_record {
  std::uint64_t seed = 0;
  bool completed = false;   ///< stop condition reached within the cap
  std::int64_t steps = 0;
  std::int64_t informed_step = -1;  ///< −1 when the trial timed out
  std::int64_t transmissions = 0;
  std::int64_t collisions = 0;
  std::int64_t deliveries = 0;
  // Fault accounting (zero for fault-free batches); turns trial batches
  // into resilience curves — timeout_rate vs fault intensity.
  std::int64_t crashed_nodes = 0;
  std::int64_t recoveries = 0;
  std::int64_t suppressed_deliveries = 0;
  std::int64_t churned_edges = 0;
  // Partition-tolerant accounting (see run_result).
  std::int64_t reachable_nodes = 0;
  std::int64_t informed_reachable = 0;
  run_outcome outcome = run_outcome::completed;
  double wall_ms = 0.0;  ///< wall-clock of this trial's run_broadcast
};

/// A batch of seeded trials. Unlike completion_times, incomplete trials are
/// DATA, not errors — benches near the step cap report timeout rates
/// instead of aborting the sweep.
struct trial_set {
  std::vector<trial_record> trials;

  std::size_t completed_count() const;
  bool all_completed() const { return completed_count() == trials.size(); }
  /// Fraction of trials that hit the step cap, in [0, 1].
  double timeout_rate() const;
  /// informed_step of each COMPLETED trial, in trial order.
  std::vector<double> completion_steps() const;
  double total_wall_ms() const;
};

/// Runs `opts.trials` seeded broadcasts and records one trial_record each.
/// Never throws on timeout — inspect trial_set::timeout_rate().
trial_set run_trials(const graph& g, const protocol& proto,
                     const trial_options& opts);

/// Convenience for experiments: completion time over `trials` seeded runs
/// (each seed = base_seed + trial index). Throws if any trial fails to
/// complete within the cap; sweeps that must survive timeouts use
/// run_trials instead.
std::vector<double> completion_times(const graph& g, const protocol& proto,
                                     int trials, std::uint64_t base_seed,
                                     std::int64_t max_steps = 1'000'000);

}  // namespace radiocast
