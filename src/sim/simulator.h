// Synchronous radio network simulator.
//
// Implements the paper's communication model exactly (§1):
//   * time proceeds in synchronous steps;
//   * in every step each node acts either as a transmitter or as a receiver;
//   * a receiver gets a message iff EXACTLY ONE of its in-neighbors
//     transmits in that step; with ≥ 2 transmitting neighbors a collision
//     occurs and is indistinguishable from silence (no collision detection);
//   * only nodes that already hold the source message may transmit — no
//     spontaneous transmissions (enforced; a violation throws).
//
// Supports undirected and directed graphs (Section 2 of the paper analyzes
// the randomized algorithm on directed graphs).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/protocol.h"
#include "sim/trace.h"

namespace radiocast {

/// When the run loop stops.
enum class stop_condition {
  all_informed,  ///< stop once every node holds the source message
  all_halted,    ///< stop once every node reports halted() (token protocols)
};

struct run_options {
  std::int64_t max_steps = 1'000'000;  ///< hard cap; hitting it ⇒ incomplete
  stop_condition stop = stop_condition::all_informed;
  std::uint64_t seed = 1;      ///< root seed; split per node
  trace* sink = nullptr;       ///< optional event recording
  /// Optional sparse labeling: labels[v] is the label of graph node v
  /// (distinct, within {0,…,r}, labels[0] == 0 — the source's label).
  /// Empty ⇒ identity (label = node id). The paper's model only fixes
  /// r = O(n); protocols whose schedules scan the label space (round-robin
  /// slots, presence announcements, binary selection) genuinely slow down
  /// under sparse labels — see experiment E14.
  std::vector<node_id> labels;
};

struct run_result {
  bool completed = false;         ///< stop condition reached within the cap
  std::int64_t steps = 0;         ///< steps executed
  std::int64_t informed_step = -1;  ///< first step after which all informed
  std::int64_t transmissions = 0;   ///< total transmit actions
  std::int64_t collisions = 0;      ///< listener-steps with ≥2 transmitters
  std::int64_t deliveries = 0;      ///< successful receptions
  std::vector<std::int64_t> informed_at;  ///< per node; −1 = never
  /// Per-node transmission counts — the energy metric of the radio
  /// literature (transmitting dominates a node's power budget).
  std::vector<std::int64_t> transmissions_per_node;
};

/// Runs `proto` on `g` with node 0 as source until the stop condition or the
/// step cap. Node labels are the graph's node ids; r = n − 1.
run_result run_broadcast(const graph& g, const protocol& proto,
                         const run_options& opts = {});

/// As run_broadcast, but with an explicit label bound r ≥ n − 1 (the paper
/// only assumes labels come from {0,…,r} with r linear in n).
run_result run_broadcast_with_r(const graph& g, const protocol& proto,
                                node_id r, const run_options& opts = {});

/// Convenience for experiments: mean completion time over `trials` seeded
/// runs (each seed = base_seed + trial index). Throws if any trial fails to
/// complete within the cap.
std::vector<double> completion_times(const graph& g, const protocol& proto,
                                     int trials, std::uint64_t base_seed,
                                     std::int64_t max_steps = 1'000'000);

}  // namespace radiocast
