// Protocol interface: how broadcasting algorithms plug into the radio model.
//
// The paper models an algorithm as an action function π(v, H_{k−1}(v)) — the
// decision of node v at step k depends only on v's label and the messages it
// has received so far. We mirror that: each node is an object whose
// `on_step` returns its transmit decision for the current step and whose
// `on_receive` extends its history.
//
// Knowledge model (paper §1.3): a node knows a priori only its own label and
// the bound r on labels. Procedures explicitly parameterized by D (such as
// Randomized-Broadcasting(D)) receive it through `protocol_params::d_hint`;
// the top-level algorithms leave it at −1.
//
// CONTRACT (dormant nodes are pure no-ops): a node other than the source
// that has never received a message MUST, from on_step, (a) return
// std::nullopt — no spontaneous transmissions, (b) draw NOTHING from
// ctx.gen, and (c) mutate no internal state. Equivalently: an uninformed
// node's behavior is independent of time, and calling — or not calling —
// on_step on it is unobservable. The frontier-driven simulator relies on
// this to skip dormant nodes entirely (docs/PERFORMANCE.md): phase 1
// iterates only the awake set (source + every node that has received at
// least one message), which is bit-identical to stepping all n nodes
// exactly because dormant on_step is a no-op. The contract is enforced
// three ways: the reference engine's spontaneous-transmission check, the
// run_options::verify_sleepers sweep (calls dormant on_step and RC_CHECKs
// nullopt + untouched rng state), and the reference-vs-frontier-vs-soa
// differential suite (any dormant state mutation diverges there). The
// lower-bound adversary also relies on it to keep dormant candidate nodes
// fresh.
//
// POOLED PER-NODE RNG (the CONTRACT's second beneficiary): every engine
// now draws per-node randomness from one contiguous pool, `gens_` in
// sim/engine_core.h, split from the root seed in node order 0…n−1 — the
// generator is no longer embedded in the node object. This is only sound
// BECAUSE of the dormant-node contract: a dormant node never advances its
// pool slot, so an engine that skips dormant nodes (frontier, soa) leaves
// the pool byte-identical to one that steps all n (reference), and the
// sharded soa engine can hand each intra-step shard its contiguous slice
// of the pool — per-shard RNG streams with no cross-shard draws — while
// still producing the serial streams exactly. A protocol that drew from
// ctx.gen while dormant would break pool identity across engines AND make
// shard boundaries observable; verify_sleepers exists to catch exactly
// that before the differential suite has to.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/message.h"
#include "util/rng.h"

namespace radiocast::obs {
class metrics_registry;
}  // namespace radiocast::obs

namespace radiocast {

class graph;
struct run_options;  // sim/simulator.h
struct run_result;   // sim/simulator.h
class protocol;

/// Entry point of a protocol's struct-of-arrays step engine: runs one full
/// broadcast of `proto` on `g` with the given label bound and options,
/// using the templated SoA loop instantiated for that protocol's POD state
/// (see sim/soa_engine.h). A plain function pointer, not a virtual per-step
/// call: run_broadcast_with_r resolves it ONCE per run through
/// protocol::soa_runner, and the step loop it jumps into has no virtual
/// dispatch at all — on_step is inlined into the loop body.
using soa_entry = run_result (*)(const graph& g, const protocol& proto,
                                 node_id r, const run_options& opts);

/// Static parameters handed to every node at creation.
struct protocol_params {
  node_id r = 0;    ///< labels are drawn from {0, …, r}; r = O(n)
  int d_hint = -1;  ///< radius for D-parameterized procedures; −1 = unknown
};

/// Per-step information available to a node.
struct node_context {
  std::int64_t step = 0;  ///< global synchronous step number (0-based)
  rng* gen = nullptr;     ///< per-node generator (unused by deterministic
                          ///< protocols; never null inside the simulator)
  /// Observability hook: null unless the run enables metrics
  /// (run_options::metrics). Protocols use it to tag phase markers —
  /// decay stage draws, kp block/stage indices, DFS token hops, echo
  /// rounds — and MUST guard every use with a null check so that
  /// metrics-disabled runs stay free of instrumentation cost. The
  /// registry carries no protocol semantics; it never feeds decisions.
  obs::metrics_registry* metrics = nullptr;
};

/// One node's running protocol instance.
class protocol_node {
 public:
  virtual ~protocol_node() = default;

  /// The node's action at this step: a message to transmit, or std::nullopt
  /// to act as a receiver. Called exactly once per step, in step order.
  virtual std::optional<message> on_step(const node_context& ctx) = 0;

  /// Delivery: called after on_step in the same step, iff this node acted
  /// as a receiver and exactly one of its in-neighbors transmitted.
  virtual void on_receive(const node_context& ctx, const message& msg) = 0;

  /// True once this node holds the source message.
  virtual bool informed() const = 0;

  /// True once this node has permanently stopped (it will never transmit
  /// again). Used to detect full protocol termination for token algorithms.
  virtual bool halted() const { return false; }

  /// Amnesia restart (crash-recovery fault model, src/fault/recovery.h):
  /// the node rebooted with volatile state lost. Implementations MUST
  /// return to their freshly-constructed state — exactly what make_node
  /// produced for this label — and MUST NOT draw from ctx.gen (a restart
  /// never perturbs the per-node coin-flip stream; guarded by the
  /// frontier/reference differential suite). After on_restart the source
  /// (label 0) is informed() again — the message is its own — and every
  /// other node is uninformed and dormant, subject to the dormant-node
  /// contract above, until re-informed by a fresh delivery. The default
  /// is a no-op so protocols outside src/core (tests, adversary fixtures)
  /// stay source-compatible; the simulator RC_CHECKs the informed() state
  /// after every amnesia restart, so a protocol relying on the default
  /// while holding state fails loudly rather than silently diverging.
  virtual void on_restart(const node_context& ctx) { (void)ctx; }
};

/// Factory for protocol nodes; one per algorithm.
class protocol {
 public:
  virtual ~protocol() = default;

  /// Human-readable algorithm name for tables and traces.
  virtual std::string name() const = 0;

  /// True for deterministic algorithms (required by the lower-bound
  /// adversary, which replays node decisions).
  virtual bool deterministic() const = 0;

  /// Creates the protocol instance for the node with the given label.
  /// Label 0 is the source and starts informed.
  virtual std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const = 0;

  /// The protocol's struct-of-arrays step-engine entry, or nullptr when the
  /// protocol has no SoA form (the default — protocols opt in by keeping a
  /// POD mirror of their node state in sync with make_node; see
  /// core/decay.cpp for the pattern). The returned entry must replicate the
  /// virtual node's behavior EXACTLY — same decisions, same ctx.gen draw
  /// sequence, same metrics writes — which the three-way differential suite
  /// (tests/differential_test.cpp) and the chaos engine-bit-identity
  /// invariant verify. Selecting step_engine::soa for a protocol that
  /// returns nullptr is a checked error in run_broadcast_with_r.
  virtual soa_entry soa_runner() const { return nullptr; }
};

}  // namespace radiocast
