#include "sim/trace_analysis.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/ndjson.h"

namespace radiocast {

namespace {

/// Per-node scratch grown on demand (traces do not carry the node count).
template <typename T>
void ensure(std::vector<T>* v, node_id node, T fill) {
  if (static_cast<std::size_t>(node) >= v->size()) {
    v->resize(static_cast<std::size_t>(node) + 1, fill);
  }
}

std::vector<node_count> ranked(const std::vector<std::int64_t>& counts) {
  std::vector<node_count> out;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    if (counts[v] > 0) {
      out.push_back({static_cast<node_id>(v), counts[v]});
    }
  }
  std::sort(out.begin(), out.end(), [](const node_count& a,
                                       const node_count& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.node < b.node;
  });
  return out;
}

}  // namespace

trace_analysis analyze_events(const std::vector<trace_event>& events) {
  trace_analysis a;
  std::vector<std::int64_t> tx_counts, collision_counts;
  // Fallback provenance for informed events without a "from" field: the
  // simulator records the receive immediately before the informed event of
  // the same (node, step).
  std::vector<node_id> last_rx_from;
  std::vector<std::int64_t> last_rx_step;

  for (const trace_event& e : events) {
    if (e.node < 0) continue;
    ensure(&a.parent, e.node, node_id{-1});
    ensure(&a.informed_step, e.node, std::int64_t{-1});
    switch (e.what) {
      case trace_event::type::transmit:
        ++a.transmissions;
        ensure(&tx_counts, e.node, std::int64_t{0});
        ++tx_counts[static_cast<std::size_t>(e.node)];
        break;
      case trace_event::type::receive:
        ++a.deliveries;
        ensure(&last_rx_from, e.node, node_id{-1});
        ensure(&last_rx_step, e.node, std::int64_t{-1});
        last_rx_from[static_cast<std::size_t>(e.node)] = e.msg.from;
        last_rx_step[static_cast<std::size_t>(e.node)] = e.step;
        break;
      case trace_event::type::collision:
        ++a.collisions;
        ensure(&collision_counts, e.node, std::int64_t{0});
        ++collision_counts[static_cast<std::size_t>(e.node)];
        break;
      case trace_event::type::informed: {
        const auto v = static_cast<std::size_t>(e.node);
        if (a.informed_step[v] != -1) break;  // first delivery only
        a.informed_step[v] = e.step;
        a.last_informed_step = std::max(a.last_informed_step, e.step);
        node_id from = e.msg.from;
        if (from < 0 && v < last_rx_step.size() &&
            last_rx_step[v] == e.step) {
          from = last_rx_from[v];
        }
        a.parent[v] = from;
        break;
      }
      case trace_event::type::drop:
        ++a.drops;
        break;
      case trace_event::type::crash:
        ++a.crashes;
        break;
      case trace_event::type::recover:
        // Recoveries do not disturb the first-delivery tree: the FIRST
        // informing delivery stands even if the node later reboots with
        // amnesia and is re-informed along a different edge.
        ++a.recoveries;
        break;
      case trace_event::type::edge_down:
      case trace_event::type::edge_up:
        break;
    }
  }

  // The source never receives an informed event — it starts informed.
  if (!a.informed_step.empty() && a.informed_step[0] == -1) {
    a.informed_step[0] = 0;
    a.parent[0] = -1;
  }

  // Depths by chasing parent links, memoized. Parents were informed
  // strictly earlier than their children, so chains terminate at the
  // source (or at a node with unknown provenance, depth −1).
  const std::size_t n = a.informed_step.size();
  a.depth.assign(n, -2);  // −2 = not yet computed
  for (std::size_t v = 0; v < n; ++v) {
    if (a.informed_step[v] == -1) {
      a.depth[v] = -1;
      continue;
    }
    std::vector<std::size_t> chain;
    std::size_t u = v;
    while (a.depth[u] == -2) {
      chain.push_back(u);
      const node_id p = a.parent[u];
      if (u == 0 || p < 0) {
        a.depth[u] = u == 0 ? 0 : -1;  // root, or provenance lost
        if (u != 0) a.missing_provenance = true;
        break;
      }
      const auto pu = static_cast<std::size_t>(p);
      // Parents are informed strictly before their children — except the
      // source, whose synthetic informed_step 0 may tie with layer 1.
      if (pu >= n || a.informed_step[pu] == -1 ||
          (pu != 0 && a.informed_step[pu] >= a.informed_step[u])) {
        a.depth[u] = -1;  // inconsistent provenance (e.g. label ≠ id)
        a.missing_provenance = true;
        break;
      }
      u = pu;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (a.depth[*it] != -2) continue;
      const auto pu = static_cast<std::size_t>(a.parent[*it]);
      a.depth[*it] = a.depth[pu] >= 0 ? a.depth[pu] + 1 : -1;
    }
  }

  std::int64_t max_depth = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (a.informed_step[v] != -1) ++a.nodes_informed;
    max_depth = std::max(max_depth, a.depth[v]);
  }
  a.tree_depth = max_depth;

  a.layers.assign(static_cast<std::size_t>(max_depth) + 1, {});
  for (std::size_t v = 0; v < n; ++v) {
    if (a.depth[v] < 0) continue;
    layer_timeline& layer = a.layers[static_cast<std::size_t>(a.depth[v])];
    if (layer.nodes == 0) {
      layer.first_step = a.informed_step[v];
      layer.last_step = a.informed_step[v];
    } else {
      layer.first_step = std::min(layer.first_step, a.informed_step[v]);
      layer.last_step = std::max(layer.last_step, a.informed_step[v]);
    }
    ++layer.nodes;
  }
  for (std::size_t d = 0; d < a.layers.size(); ++d) {
    a.layers[d].depth = static_cast<std::int64_t>(d);
  }

  a.collision_hotspots = ranked(collision_counts);
  a.transmitters = ranked(tx_counts);
  return a;
}

trace_analysis analyze_trace(const trace& t) {
  return analyze_events(t.events());
}

std::optional<trace_analysis> analyze_ndjson(std::istream& in,
                                             std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<trace_analysis> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::vector<trace_event> events;
  obs::ndjson_reader reader(in);
  while (std::optional<obs::json_value> doc = reader.next()) {
    trace_event e;
    const obs::json_value* step = doc->find("step");
    const obs::json_value* type = doc->find("type");
    const obs::json_value* node = doc->find("node");
    if (step == nullptr || !step->is_number() || type == nullptr ||
        !type->is_string() || node == nullptr || !node->is_number()) {
      return fail("line " + std::to_string(reader.line()) +
                  ": not a trace event (needs step/type/node)");
    }
    e.step = step->as_int();
    e.node = static_cast<node_id>(node->as_int());
    bool known = false;
    for (int t = 0; t < trace_event::kTypeCount; ++t) {
      const auto kind = static_cast<trace_event::type>(t);
      if (type->as_string() == trace_event_type_name(kind)) {
        e.what = kind;
        known = true;
        break;
      }
    }
    if (!known) {
      return fail("line " + std::to_string(reader.line()) +
                  ": unknown event type \"" + type->as_string() + "\"");
    }
    const obs::json_value* from = doc->find("from");
    if (from != nullptr && from->is_number()) {
      e.msg.from = static_cast<node_id>(from->as_int());
    }
    events.push_back(e);
  }
  if (reader.failed()) return fail(reader.error());
  if (reader.truncated()) return fail("truncated final line");
  return analyze_events(events);
}

obs::json_value analysis_to_json(const trace_analysis& a, int top) {
  obs::json_value doc = obs::json_value::object();
  doc.set("schema", "radiocast.trace-analysis.v1");
  doc.set("nodes_informed", a.nodes_informed);
  doc.set("tree_depth", a.tree_depth);
  doc.set("last_informed_step", a.last_informed_step);
  doc.set("missing_provenance", a.missing_provenance);
  obs::json_value totals = obs::json_value::object();
  totals.set("transmissions", a.transmissions);
  totals.set("collisions", a.collisions);
  totals.set("deliveries", a.deliveries);
  totals.set("drops", a.drops);
  totals.set("crashes", a.crashes);
  totals.set("recoveries", a.recoveries);
  doc.set("totals", std::move(totals));
  obs::json_value layers = obs::json_value::array();
  for (const layer_timeline& layer : a.layers) {
    obs::json_value l = obs::json_value::object();
    l.set("depth", layer.depth);
    l.set("nodes", layer.nodes);
    l.set("first_step", layer.first_step);
    l.set("last_step", layer.last_step);
    layers.push_back(std::move(l));
  }
  doc.set("layers", std::move(layers));
  auto profile = [top](const std::vector<node_count>& ranked_counts) {
    obs::json_value arr = obs::json_value::array();
    const auto limit =
        std::min<std::size_t>(ranked_counts.size(),
                              top < 0 ? ranked_counts.size()
                                      : static_cast<std::size_t>(top));
    for (std::size_t i = 0; i < limit; ++i) {
      obs::json_value e = obs::json_value::object();
      e.set("node", static_cast<std::int64_t>(ranked_counts[i].node));
      e.set("count", ranked_counts[i].count);
      arr.push_back(std::move(e));
    }
    return arr;
  };
  doc.set("collision_hotspots", profile(a.collision_hotspots));
  doc.set("ranked_nodes_collisions",
          static_cast<std::int64_t>(a.collision_hotspots.size()));
  doc.set("top_transmitters", profile(a.transmitters));
  doc.set("ranked_nodes_transmitters",
          static_cast<std::int64_t>(a.transmitters.size()));
  return doc;
}

}  // namespace radiocast
