// Offline trace analytics — turns an event log (in-memory trace or the
// NDJSON export of one) into the structures an operator actually asks for:
//
//   * the FIRST-DELIVERY TREE: for every informed node, the neighbor whose
//     transmission first informed it (the "from" field of informed events;
//     for traces recorded before that field existed, the receive event of
//     the same step supplies the parent). Its depth is the broadcast's
//     critical path — on a fault-free layered graph it equals the run's
//     completion step count divided by the per-layer cost;
//   * the per-layer WAKE TIMELINE: node count and first/last informed step
//     of every tree depth;
//   * COLLISION HOTSPOTS: listeners ranked by how often ≥2 neighbors
//     transmitted at them simultaneously;
//   * the per-node TRANSMISSION (energy) PROFILE: transmit counts ranked —
//     the radio literature's power-budget metric.
//
// `radiocast_inspect analyze` is the CLI face (docs/OBSERVABILITY.md).
//
// Caveat: message `from` fields carry the transmitter's LABEL. Under the
// default identity labeling (every run except the sparse-label
// experiments) labels ARE node ids, which is what the tree builder
// assumes; sparse-label traces analyze fine but parent ids are labels.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "obs/json.h"
#include "sim/trace.h"

namespace radiocast {

/// One (node, count) entry of a ranked profile.
struct node_count {
  node_id node = -1;
  std::int64_t count = 0;
};

/// One depth layer of the first-delivery tree.
struct layer_timeline {
  std::int64_t depth = 0;
  std::int64_t nodes = 0;
  std::int64_t first_step = 0;  ///< earliest informed step in the layer
  std::int64_t last_step = 0;   ///< latest informed step in the layer
};

struct trace_analysis {
  // First-delivery tree, indexed by node id (size = max node seen + 1).
  std::vector<node_id> parent;             ///< −1 = root or unknown
  std::vector<std::int64_t> informed_step; ///< −1 = never informed
  std::vector<std::int64_t> depth;         ///< −1 = unknown (no provenance)
  std::int64_t nodes_informed = 0;   ///< informed nodes incl. the source
  std::int64_t tree_depth = 0;       ///< max known depth
  std::int64_t last_informed_step = -1;
  /// True when some informed event carried no provenance and no same-step
  /// receive supplied it (old traces, ring-evicted prefixes).
  bool missing_provenance = false;

  std::vector<layer_timeline> layers;       ///< by depth, ascending
  std::vector<node_count> collision_hotspots;  ///< desc count, asc node
  std::vector<node_count> transmitters;        ///< desc count, asc node

  // Event totals.
  std::int64_t transmissions = 0;
  std::int64_t collisions = 0;
  std::int64_t deliveries = 0;
  std::int64_t drops = 0;
  std::int64_t crashes = 0;
  std::int64_t recoveries = 0;
};

/// Analyzes an ordered event list (oldest first). Node 0 is the source.
trace_analysis analyze_events(const std::vector<trace_event>& events);

/// Convenience over a live trace (ring mode analyzes the retained tail).
trace_analysis analyze_trace(const trace& t);

/// Parses a trace NDJSON stream (the `trace::to_ndjson` format) and
/// analyzes it. std::nullopt with a diagnostic on malformed input.
std::optional<trace_analysis> analyze_ndjson(std::istream& in,
                                             std::string* error = nullptr);

/// JSON rendering (schema "radiocast.trace-analysis.v1"): totals, the
/// layer timeline, and the top `top` entries of each ranked profile.
obs::json_value analysis_to_json(const trace_analysis& a, int top = 10);

}  // namespace radiocast
