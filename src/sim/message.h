// Radio message representation.
//
// In the paper's formal model a message carries the transmitter's label and
// its entire history. Functionally, every protocol in this library needs
// only a handful of integer fields (the source payload is implicit — a node
// is "informed" once it has received any message derived from the source).
// A small POD keeps the simulator's hot path allocation-free.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace radiocast {

/// Protocol-defined message tag. Each protocol defines its own kinds in its
/// own header; kinds never cross protocol boundaries.
using message_kind = std::int32_t;

/// A transmitted frame. `from` is stamped by the simulator on delivery with
/// the transmitter's label (the paper's messages always carry it).
struct message {
  message_kind kind = 0;
  node_id from = -1;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::int64_t d = 0;  ///< extra slot (e.g. the sender's layer number)

  friend bool operator==(const message&, const message&) = default;
};

}  // namespace radiocast
