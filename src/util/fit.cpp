#include "util/fit.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace radiocast {

namespace {

/// Solves A·x = b in place (A is k×k row-major) by Gaussian elimination with
/// partial pivoting. Returns the solution vector.
std::vector<double> solve(std::vector<std::vector<double>> a,
                          std::vector<double> b) {
  const std::size_t k = b.size();
  // Singularity threshold relative to the matrix magnitude: an absolute
  // cutoff misclassifies both ways once features are rescaled — a
  // well-conditioned system of tiny values (entries ~1e-14) trips it, and
  // an ill-conditioned system of large values (rank-deficient up to
  // rounding, entries ~1e16) sails past it and emits garbage coefficients.
  double scale = 0.0;
  for (const auto& row : a) {
    for (double v : row) scale = std::max(scale, std::fabs(v));
  }
  const double tol = scale > 0.0 ? scale * 1e-12 : 1e-12;
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < k; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    RC_CHECK_MSG(std::fabs(a[pivot][col]) > tol,
                 "singular or ill-conditioned normal equations in "
                 "least-squares fit");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < k; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t j = col; j < k; ++j) a[row][j] -= factor * a[col][j];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(k, 0.0);
  for (std::size_t i = k; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < k; ++j) sum -= a[i][j] * x[j];
    x[i] = sum / a[i][i];
  }
  return x;
}

}  // namespace

fit_result fit_features(const std::vector<std::vector<double>>& features,
                        const std::vector<double>& ys) {
  RC_REQUIRE(!features.empty());
  RC_REQUIRE(features.size() == ys.size());
  const std::size_t k = features.front().size();
  RC_REQUIRE(k >= 1);
  RC_REQUIRE(features.size() >= k);
  for (const auto& row : features) RC_REQUIRE(row.size() == k);

  // Normal equations: (FᵀF) c = Fᵀ y.
  std::vector<std::vector<double>> ftf(k, std::vector<double>(k, 0.0));
  std::vector<double> fty(k, 0.0);
  for (std::size_t i = 0; i < features.size(); ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      fty[p] += features[i][p] * ys[i];
      for (std::size_t q = 0; q < k; ++q) {
        ftf[p][q] += features[i][p] * features[i][q];
      }
    }
  }

  fit_result result;
  result.coefficients = solve(std::move(ftf), std::move(fty));

  double y_mean = 0.0;
  for (double y : ys) y_mean += y;
  y_mean /= static_cast<double>(ys.size());

  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    double predicted = 0.0;
    for (std::size_t p = 0; p < k; ++p) {
      predicted += result.coefficients[p] * features[i][p];
    }
    const double residual = ys[i] - predicted;
    ss_res += residual * residual;
    ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
    const double rel =
        std::fabs(residual) / std::max(std::fabs(ys[i]), 1.0);
    result.max_relative_error = std::max(result.max_relative_error, rel);
  }
  result.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot
                                  : (ss_res == 0.0 ? 1.0 : 0.0);
  return result;
}

fit_result fit_linear(
    const std::vector<double>& xs, const std::vector<double>& ys,
    const std::vector<std::function<double(double)>>& basis) {
  RC_REQUIRE(xs.size() == ys.size());
  RC_REQUIRE(!basis.empty());
  std::vector<std::vector<double>> features(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    features[i].reserve(basis.size());
    for (const auto& f : basis) features[i].push_back(f(xs[i]));
  }
  return fit_features(features, ys);
}

fit_result fit_scaled(const std::vector<double>& xs,
                      const std::vector<double>& ys,
                      const std::function<double(double)>& f) {
  return fit_linear(xs, ys, {f});
}

}  // namespace radiocast
