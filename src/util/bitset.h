// Packed bit mask for the hot-path membership tests (crash masks, awake
// masks, down-edge masks — sim/engine_core.h, sim/soa_engine.h).
//
// std::vector<std::uint8_t> answers "is v crashed?" one byte at a time;
// std::vector<bool> packs bits but hides the words, so a sweep that wants
// to skip 64 dormant nodes at once cannot. This container exposes both
// views: branchy per-bit test/set/reset for the fault bookkeeping, and the
// raw words for word-at-a-time scans ("any crashed in this shard?",
// "which of these 64 nodes are neither awake nor crashed?") via word() +
// std::countr_zero.
//
// Bits past size() in the last word are guaranteed zero (assign, set and
// reset keep the invariant), so word-level consumers may OR whole words
// without masking the tail — only bit INDICES need bounds care.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace radiocast::util {

class bitset {
 public:
  static constexpr std::size_t kWordBits = 64;

  bitset() = default;

  /// Resizes to `n` bits, all set to `value` (tail bits of the last word
  /// stay zero regardless). Mirrors std::vector::assign — every run
  /// re-assigns its masks from scratch.
  void assign(std::size_t n, bool value) {
    size_ = n;
    const std::size_t words = (n + kWordBits - 1) / kWordBits;
    words_.assign(words, value ? ~std::uint64_t{0} : 0);
    if (value && n % kWordBits != 0) {
      words_.back() >>= kWordBits - (n % kWordBits);
    }
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool test(std::size_t i) const {
    RC_REQUIRE(i < size_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
  }

  void set(std::size_t i) {
    RC_REQUIRE(i < size_);
    words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
  }

  void reset(std::size_t i) {
    RC_REQUIRE(i < size_);
    words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
  }

  /// True iff any bit is set. Word-at-a-time: O(size/64).
  bool any() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  bool none() const noexcept { return !any(); }

  /// Number of set bits (popcount over words).
  std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::size_t>(std::popcount(w));
    }
    return total;
  }

  /// Word-level view for bulk scans. Bit i lives in word(i / kWordBits) at
  /// position i % kWordBits; tail bits past size() are zero.
  std::size_t word_count() const noexcept { return words_.size(); }
  std::uint64_t word(std::size_t w) const {
    RC_REQUIRE(w < words_.size());
    return words_[w];
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace radiocast::util
