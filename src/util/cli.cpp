#include "util/cli.h"

#include <cstdlib>

#include "util/assert.h"

namespace radiocast {

cli_args::cli_args(int argc, const char* const* argv) {
  RC_REQUIRE(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    RC_REQUIRE_MSG(!arg.empty(), "bare '--' is not a valid flag");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // boolean flag
    }
  }
}

bool cli_args::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string cli_args::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t cli_args::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  RC_REQUIRE_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
                 "flag --" + name + " expects an integer, got '" +
                     it->second + "'");
  return value;
}

double cli_args::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  RC_REQUIRE_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
                 "flag --" + name + " expects a number, got '" + it->second +
                     "'");
  return value;
}

bool cli_args::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  RC_REQUIRE_MSG(false, "flag --" + name + " expects a boolean, got '" + v +
                            "'");
  return fallback;  // unreachable
}

}  // namespace radiocast
