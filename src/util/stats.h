// Summary statistics over samples of broadcast times.
#pragma once

#include <cstddef>
#include <vector>

namespace radiocast {

/// Order statistics + moments of a sample.
struct summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;  ///< 90th percentile (linear interpolation)
  double p95 = 0.0;  ///< 95th percentile (linear interpolation)
  double p99 = 0.0;  ///< 99th percentile (linear interpolation)
};

/// Computes a summary of `samples`. Requires a nonempty sample.
summary summarize(std::vector<double> samples);

/// Percentile in [0, 100] by linear interpolation between closest ranks.
/// `sorted` must be nonempty and ascending.
double percentile(const std::vector<double>& sorted, double pct);

/// Batch percentiles over an UNSORTED sample (sorts a copy once). Returns
/// one value per requested pct, in request order. Requires nonempty
/// samples. This is the helper bench telemetry uses for its p50/p90/p95/
/// p99 blocks.
std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& pcts);

/// Streaming accumulator (Welford) for when samples need not be retained.
class accumulator {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace radiocast
