// Deterministic, splittable pseudo-random number generation.
//
// All randomness in radiocast flows from a single seeded `rng` (xoshiro256**
// seeded via splitmix64). Simulations split one child generator per node so
// that results are reproducible bit-for-bit regardless of iteration order,
// and so that adding instrumentation does not perturb protocol coin flips.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.h"

namespace radiocast {

/// xoshiro256** generator with splitmix64 seeding.
///
/// Satisfies std::uniform_random_bit_generator, so it can also drive
/// <random> distributions where convenient.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from a 64-bit seed via splitmix64.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Derives an independent child generator. Deterministic: the same parent
  /// state yields the same sequence of children.
  rng split() noexcept;

  /// Uniform integer in [0, bound) for bound ≥ 1 (unbiased, via rejection).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] (inclusive), lo ≤ hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Coin flip: true with probability 1/2.
  bool flip() noexcept { return (next() >> 63) != 0; }

  /// State equality — two generators compare equal iff they will produce
  /// identical streams. The simulator's sleeper sweep (run_options::
  /// verify_sleepers) uses this to prove a dormant node drew no randomness.
  friend bool operator==(const rng& a, const rng& b) noexcept = default;

 private:
  std::array<std::uint64_t, 4> state_;
};

/// splitmix64 step — exposed because tests and seed-mixing use it directly.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace radiocast
