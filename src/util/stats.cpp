#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace radiocast {

double percentile(const std::vector<double>& sorted, double pct) {
  RC_REQUIRE(!sorted.empty());
  RC_REQUIRE(pct >= 0.0 && pct <= 100.0);
  if (sorted.size() == 1) return sorted.front();
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> percentiles(std::vector<double> samples,
                                const std::vector<double>& pcts) {
  RC_REQUIRE(!samples.empty());
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(pcts.size());
  for (const double pct : pcts) out.push_back(percentile(samples, pct));
  return out;
}

summary summarize(std::vector<double> samples) {
  RC_REQUIRE(!samples.empty());
  std::sort(samples.begin(), samples.end());
  summary s;
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.median = percentile(samples, 50.0);
  s.p90 = percentile(samples, 90.0);
  s.p95 = percentile(samples, 95.0);
  s.p99 = percentile(samples, 99.0);
  accumulator acc;
  for (double x : samples) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  return s;
}

void accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double accumulator::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace radiocast
