// Small integer math helpers used across the library.
//
// The paper's procedures are phrased in terms of log₂ over powers of two
// (r, D are rounded up to powers of two by the algorithms). These helpers
// keep that arithmetic exact — no floating point on protocol-critical paths.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assert.h"

namespace radiocast {

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// ⌊log₂ x⌋ for x ≥ 1.
constexpr int ilog2_floor(std::uint64_t x) {
  RC_REQUIRE(x >= 1);
  return 63 - std::countl_zero(x);
}

/// ⌈log₂ x⌉ for x ≥ 1.
constexpr int ilog2_ceil(std::uint64_t x) {
  RC_REQUIRE(x >= 1);
  return x == 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// Smallest power of two ≥ x (x ≥ 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  RC_REQUIRE(x >= 1);
  return std::uint64_t{1} << ilog2_ceil(x);
}

/// ⌈a / b⌉ for b ≥ 1.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  RC_REQUIRE(b >= 1);
  return (a + b - 1) / b;
}

/// Integer exponentiation (no overflow checks; callers keep values small).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) noexcept {
  std::uint64_t result = 1;
  while (exp-- > 0) result *= base;
  return result;
}

}  // namespace radiocast
