// Checked assertions for radiocast.
//
// RC_CHECK   — internal invariant; always on (also in Release builds).
//              Violations indicate a bug in this library.
// RC_REQUIRE — precondition on caller-supplied arguments; always on.
//
// Both throw rather than abort so that tests can assert on failures and so
// that example programs fail with a readable diagnostic.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace radiocast {

/// Thrown when an internal invariant is violated (a bug in radiocast).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'R' && kind[3] == 'R') {  // RC_REQUIRE
    throw precondition_error(os.str());
  }
  throw invariant_error(os.str());
}

}  // namespace detail

#define RC_CHECK(expr)                                                      \
  do {                                                                      \
    if (!(expr))                                                            \
      ::radiocast::detail::throw_check_failure("RC_CHECK", #expr, __FILE__, \
                                               __LINE__, "");               \
  } while (0)

#define RC_CHECK_MSG(expr, msg)                                             \
  do {                                                                      \
    if (!(expr))                                                            \
      ::radiocast::detail::throw_check_failure("RC_CHECK", #expr, __FILE__, \
                                               __LINE__, (msg));            \
  } while (0)

#define RC_REQUIRE(expr)                                                      \
  do {                                                                        \
    if (!(expr))                                                              \
      ::radiocast::detail::throw_check_failure("RC_REQUIRE", #expr, __FILE__, \
                                               __LINE__, "");                 \
  } while (0)

#define RC_REQUIRE_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr))                                                              \
      ::radiocast::detail::throw_check_failure("RC_REQUIRE", #expr, __FILE__, \
                                               __LINE__, (msg));              \
  } while (0)

}  // namespace radiocast
