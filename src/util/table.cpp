#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.h"

namespace radiocast {

void text_table::set_header(std::vector<std::string> header) {
  RC_REQUIRE(rows_.empty());
  RC_REQUIRE(!header.empty());
  header_ = std::move(header);
}

void text_table::add_row(std::vector<std::string> row) {
  RC_REQUIRE_MSG(row.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string text_table::format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void text_table::print_csv(std::ostream& os) const {
  RC_CHECK(!header_.empty());
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  os.flush();
}

void text_table::print(std::ostream& os) const {
  RC_CHECK(!header_.empty());
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c] << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace radiocast
