#include "util/rng.h"

namespace radiocast {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro requires a nonzero state; splitmix64 output of any seed is
  // astronomically unlikely to be all-zero, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

rng rng::split() noexcept { return rng(next()); }

std::uint64_t rng::below(std::uint64_t bound) {
  RC_REQUIRE(bound >= 1);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint64_t value = next();
    if (value >= threshold) return value % bound;
  }
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RC_REQUIRE(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

double rng::uniform01() noexcept {
  // 53 random mantissa bits → uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace radiocast
