// Minimal command-line flag parsing for the example programs.
//
// Supports `--name=value`, `--name value`, and boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace radiocast {

/// Parsed command line: named flags plus positional arguments.
class cli_args {
 public:
  /// Parses argv. Throws precondition_error on malformed flags.
  cli_args(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Typed getters; fall back to `fallback` when the flag is absent and
  /// throw precondition_error when a present value fails to parse.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace radiocast
