// Plain-text table rendering for benchmark and example output.
//
// Every bench binary prints one table per reproduced "figure"/"table"; a
// shared renderer keeps the output uniform and diffable across runs.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace radiocast {

/// Column-aligned text table with a title, a header row, and data rows.
class text_table {
 public:
  explicit text_table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; its width must match the header's.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arbitrary streamable cells.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({format_cell(cells)...});
  }

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders to `os` with padded, right-aligned numeric-looking columns.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-style CSV (header row first; cells containing
  /// commas or quotes are quoted) — for feeding experiment sweeps into
  /// plotting tools.
  void print_csv(std::ostream& os) const;

  /// Formats a double with sensible precision for table cells.
  static std::string format_double(double value, int precision = 2);

 private:
  template <typename T>
  static std::string format_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      return format_double(static_cast<double>(value));
    } else {
      return std::to_string(value);
    }
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace radiocast
