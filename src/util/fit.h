// Least-squares fitting of measured broadcast times against complexity
// models (e.g. T ≈ c · n log n, or T ≈ a·D log(n/D) + b·log²n).
//
// The experiment harnesses use these fits to report "shape" agreement with
// the paper's bounds: a good single-coefficient fit (high R²) of T against
// the claimed bound is the reproduction criterion for a theory paper.
#pragma once

#include <functional>
#include <vector>

namespace radiocast {

/// Result of a least-squares fit.
struct fit_result {
  std::vector<double> coefficients;  ///< one per basis function
  double r_squared = 0.0;            ///< 1 − SS_res / SS_tot
  double max_relative_error = 0.0;   ///< max |ŷ−y|/max(|y|,1)
};

/// Fits y ≈ Σ_j c_j · basis[j](x) by ordinary least squares over the given
/// (x, y) samples. Requires ≥ 1 basis function and ≥ #basis samples; solves
/// the normal equations by Gaussian elimination with partial pivoting.
fit_result fit_linear(const std::vector<double>& xs,
                      const std::vector<double>& ys,
                      const std::vector<std::function<double(double)>>& basis);

/// Convenience: single-coefficient fit y ≈ c · f(x).
fit_result fit_scaled(const std::vector<double>& xs,
                      const std::vector<double>& ys,
                      const std::function<double(double)>& f);

/// Fits y ≈ Σ_j c_j · features[i][j] where features[i] is the design-matrix
/// row of sample i. This is the general entry point used when the model
/// depends on several parameters (e.g. both n and D).
fit_result fit_features(const std::vector<std::vector<double>>& features,
                        const std::vector<double>& ys);

}  // namespace radiocast
