// Streaming reader for newline-delimited JSON artifacts.
//
// obs::ndjson_parse (json.h) materializes a whole NDJSON document at once,
// which is the wrong shape for campaign shard artifacts: a million-trial
// shard file is read record by record, and a file torn mid-line by an
// interrupted writer must yield every complete record rather than nothing.
// `ndjson_reader` wraps any std::istream and hands back one parsed
// json_value per nonempty line:
//
//   * blank lines and CRLF line endings are tolerated (a '\r' before the
//     newline is stripped);
//   * line length is unbounded — multi-megabyte records stream fine;
//   * a malformed line that ends in '\n' is a hard error (failed());
//   * a malformed FINAL line with no trailing newline is reported as
//     truncation (truncated()), not as an error — that is exactly what an
//     interrupted writer leaves behind, and resumable-campaign readers
//     treat the complete prefix as valid (docs/CAMPAIGNS.md).
#pragma once

#include <istream>
#include <optional>
#include <string>

#include "obs/json.h"

namespace radiocast::obs {

class ndjson_reader {
 public:
  explicit ndjson_reader(std::istream& in) : in_(in) {}

  ndjson_reader(const ndjson_reader&) = delete;
  ndjson_reader& operator=(const ndjson_reader&) = delete;

  /// Parses and returns the next nonempty line's document. Returns
  /// std::nullopt at end of input, on a hard parse error (failed() turns
  /// true, error() describes it) and on a torn final line (truncated()
  /// turns true). Once nullopt has been returned, further calls keep
  /// returning nullopt.
  std::optional<json_value> next();

  /// True after a malformed line that was properly newline-terminated —
  /// the input is corrupt, not merely torn.
  bool failed() const { return failed_; }

  /// Diagnostic for failed(): "line N: <parser error>".
  const std::string& error() const { return error_; }

  /// True when the final line had no trailing newline and did not parse —
  /// the signature of a writer interrupted mid-record.
  bool truncated() const { return truncated_; }

  /// Documents successfully returned so far.
  int documents() const { return documents_; }

  /// 1-based number of the line most recently read (0 before any read).
  int line() const { return line_; }

 private:
  std::istream& in_;
  bool done_ = false;
  bool failed_ = false;
  bool truncated_ = false;
  std::string error_;
  int documents_ = 0;
  int line_ = 0;
};

}  // namespace radiocast::obs
