#include "obs/span.h"

#include <sstream>

#include "util/assert.h"

namespace radiocast::obs {

namespace {
span_profiler* g_profiler = nullptr;
}  // namespace

span_profiler* global_profiler() { return g_profiler; }
void set_global_profiler(span_profiler* profiler) { g_profiler = profiler; }

span_profiler::span_profiler() : root_(std::make_unique<span_stats>()) {
  root_->name = "<root>";
}

void span_profiler::begin_span(const std::string& name) {
  span_stats* parent = open_.empty() ? root_.get() : open_.back().node;
  span_stats* node = nullptr;
  for (const auto& child : parent->children) {
    if (child->name == name) {
      node = child.get();
      break;
    }
  }
  if (node == nullptr) {
    parent->children.push_back(std::make_unique<span_stats>());
    node = parent->children.back().get();
    node->name = name;
  }
  // radiocast-lint: allow(wall-clock) -- span timing is diagnostic output
  // only and never reaches simulation results
  open_.push_back({node, std::chrono::steady_clock::now()});
}

void span_profiler::end_span() {
  RC_REQUIRE_MSG(!open_.empty(), "end_span without a matching begin_span");
  // radiocast-lint: allow(wall-clock) -- span timing is diagnostic output
  // only and never reaches simulation results
  const auto now = std::chrono::steady_clock::now();
  open_frame frame = open_.back();
  open_.pop_back();
  frame.node->total_ns +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - frame.start)
          .count();
  ++frame.node->count;
}

namespace {

const span_stats* find_in(const span_stats& node, const std::string& name) {
  for (const auto& child : node.children) {
    if (child->name == name) return child.get();
    if (const span_stats* hit = find_in(*child, name)) return hit;
  }
  return nullptr;
}

json_value spans_to_json(const span_stats& node) {
  json_value arr = json_value::array();
  for (const auto& child : node.children) {
    json_value one = json_value::object();
    one.set("name", child->name);
    one.set("total_ms", child->total_ms());
    one.set("count", child->count);
    if (!child->children.empty()) {
      one.set("children", spans_to_json(*child));
    }
    arr.push_back(std::move(one));
  }
  return arr;
}

void render(const span_stats& node, int depth, std::ostream& os) {
  for (const auto& child : node.children) {
    for (int i = 0; i < depth; ++i) os << "  ";
    os << child->name << ": " << child->total_ms() << " ms over "
       << child->count << (child->count == 1 ? " call" : " calls") << '\n';
    render(*child, depth + 1, os);
  }
}

}  // namespace

const span_stats* span_profiler::find(const std::string& name) const {
  return find_in(*root_, name);
}

void span_profiler::clear() {
  RC_REQUIRE_MSG(open_.empty(), "clear() with spans still open");
  root_->children.clear();
}

namespace {

void merge_children(span_stats* dst, const span_stats& src) {
  for (const auto& from : src.children) {
    span_stats* into = nullptr;
    for (const auto& child : dst->children) {
      if (child->name == from->name) {
        into = child.get();
        break;
      }
    }
    if (into == nullptr) {
      dst->children.push_back(std::make_unique<span_stats>());
      into = dst->children.back().get();
      into->name = from->name;
    }
    into->total_ns += from->total_ns;
    into->count += from->count;
    merge_children(into, *from);
  }
}

}  // namespace

void span_profiler::merge(const span_profiler& other) {
  RC_REQUIRE_MSG(other.open_.empty(), "merge() of a profiler with open spans");
  span_stats* dst = open_.empty() ? root_.get() : open_.back().node;
  merge_children(dst, *other.root_);
}

json_value span_profiler::to_json() const { return spans_to_json(*root_); }

std::string span_profiler::report() const {
  std::ostringstream os;
  render(*root_, 0, os);
  return os.str();
}

}  // namespace radiocast::obs
