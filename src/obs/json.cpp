#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace radiocast::obs {

void json_value::set(const std::string& key, json_value v) {
  kind_ = kind::object;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const json_value* json_value::find(const std::string& key) const {
  if (kind_ != kind::object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const json_value* json_value::find_path(const std::string& dotted) const {
  const json_value* cur = this;
  std::size_t pos = 0;
  while (cur != nullptr && pos < dotted.size()) {
    const std::size_t dot = dotted.find('.', pos);
    const std::string key = dotted.substr(
        pos, dot == std::string::npos ? std::string::npos : dot - pos);
    cur = cur->find(key);
    if (dot == std::string::npos) return cur;
    pos = dot + 1;
  }
  return cur;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

void write_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no inf/nan; null keeps readers honest
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << d;
  std::string s = tmp.str();
  // Shorten when a lower precision round-trips identically.
  for (int prec = 1; prec < 17; ++prec) {
    std::ostringstream probe;
    probe.precision(prec);
    probe << d;
    if (std::stod(probe.str()) == d) {
      s = probe.str();
      break;
    }
  }
  os << s;
}

void write_indent(std::ostream& os, int indent, int depth) {
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void json_value::write_impl(std::ostream& os, int indent, int depth) const {
  const bool pretty = indent >= 0;
  switch (kind_) {
    case kind::null: os << "null"; break;
    case kind::boolean: os << (bool_ ? "true" : "false"); break;
    case kind::integer: os << int_; break;
    case kind::number: write_number(os, num_); break;
    case kind::string: write_json_string(os, str_); break;
    case kind::array: {
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << (pretty ? "," : ",");
        if (pretty) write_indent(os, indent, depth + 1);
        items_[i].write_impl(os, indent, depth + 1);
      }
      if (pretty && !items_.empty()) write_indent(os, indent, depth);
      os << ']';
      break;
    }
    case kind::object: {
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        if (pretty) write_indent(os, indent, depth + 1);
        write_json_string(os, members_[i].first);
        os << (pretty ? ": " : ":");
        members_[i].second.write_impl(os, indent, depth + 1);
      }
      if (pretty && !members_.empty()) write_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void json_value::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string json_value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

bool operator==(const json_value& a, const json_value& b) {
  if (a.is_number() && b.is_number()) {
    if (a.kind_ == json_value::kind::integer &&
        b.kind_ == json_value::kind::integer) {
      return a.int_ == b.int_;
    }
    return a.as_double() == b.as_double();
  }
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case json_value::kind::null: return true;
    case json_value::kind::boolean: return a.bool_ == b.bool_;
    case json_value::kind::string: return a.str_ == b.str_;
    case json_value::kind::array: return a.items_ == b.items_;
    case json_value::kind::object: return a.members_ == b.members_;
    default: return false;  // numbers handled above
  }
}

// ---------------------------------------------------------------- parsing

namespace {

struct parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool consume(char c) {
    if (at_end() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool parse_value(json_value& out) {
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (text.compare(pos, len, lit) != 0) {
      return fail(std::string("expected '") + lit + "'");
    }
    pos += len;
    return true;
  }

  bool parse_null(json_value& out) {
    if (!parse_literal("null")) return false;
    out = json_value(nullptr);
    return true;
  }

  bool parse_bool(json_value& out) {
    if (peek() == 't') {
      if (!parse_literal("true")) return false;
      out = json_value(true);
    } else {
      if (!parse_literal("false")) return false;
      out = json_value(false);
    }
    return true;
  }

  bool parse_number(json_value& out) {
    const std::size_t start = pos;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos;
    bool is_integer = true;
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(peek())) ||
            peek() == '.' || peek() == 'e' || peek() == 'E' ||
            peek() == '+' || peek() == '-')) {
      if (peek() == '.' || peek() == 'e' || peek() == 'E') is_integer = false;
      ++pos;
    }
    if (pos == start) return fail("expected a number");
    const std::string tok = text.substr(start, pos - start);
    if (is_integer) {
      std::int64_t v = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        out = json_value(v);
        return true;
      }
    }
    try {
      out = json_value(std::stod(tok));
    } catch (...) {
      return fail("malformed number '" + tok + "'");
    }
    return true;
  }

  bool parse_string_raw(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!at_end() && peek() != '"') {
      char c = text[pos++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("dangling escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Our writers only escape control chars; decode BMP code points
          // to UTF-8 for completeness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return consume('"');
  }

  bool parse_string_value(json_value& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = json_value(std::move(s));
    return true;
  }

  bool parse_array(json_value& out) {
    if (!consume('[')) return false;
    out = json_value::array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      json_value item;
      if (!parse_value(item)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_object(json_value& out) {
    if (!consume('{')) return false;
    out = json_value::object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      json_value val;
      if (!parse_value(val)) return false;
      out.set(key, std::move(val));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }
};

}  // namespace

std::optional<json_value> json_parse(const std::string& text,
                                     std::string* error) {
  parser p{text, 0, {}};
  json_value out;
  if (!p.parse_value(out)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return out;
}

std::optional<std::vector<json_value>> ndjson_parse(const std::string& text,
                                                    std::string* error) {
  std::vector<json_value> docs;
  std::size_t line_start = 0;
  int line_no = 1;
  while (line_start <= text.size()) {
    std::size_t nl = text.find('\n', line_start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(line_start, nl - line_start);
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      std::string line_error;
      auto doc = json_parse(line, &line_error);
      if (!doc) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) + ": " + line_error;
        }
        return std::nullopt;
      }
      docs.push_back(std::move(*doc));
    }
    line_start = nl + 1;
    ++line_no;
  }
  return docs;
}

}  // namespace radiocast::obs
