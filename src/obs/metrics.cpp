#include "obs/metrics.h"

#include <bit>

namespace radiocast::obs {

int histogram::bucket_index(std::int64_t v) {
  if (v <= 1) return 0;
  // i with 2^{i-1} < v ≤ 2^i  ⇔  i = bit_width(v - 1).
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v - 1)));
}

std::int64_t histogram::bucket_upper_bound(int i) {
  if (i >= 63) return std::int64_t{1} << 62;  // saturated top bucket
  return std::int64_t{1} << i;
}

void histogram::observe(std::int64_t v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucket_index(v)];
}

void histogram::merge_from(const histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

std::int64_t histogram::percentile_bound(double pct) const {
  if (count_ == 0) return 0;
  const double target = pct / 100.0 * static_cast<double>(count_);
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBuckets - 1);
}

std::string metrics_registry::key(const std::string& name,
                                  const std::string& label) {
  if (label.empty()) return name;
  return name + "{" + label + "}";
}

counter& metrics_registry::get_counter(const std::string& name,
                                       const std::string& label) {
  return counters_[key(name, label)];
}

gauge& metrics_registry::get_gauge(const std::string& name,
                                   const std::string& label) {
  return gauges_[key(name, label)];
}

histogram& metrics_registry::get_histogram(const std::string& name,
                                           const std::string& label) {
  return histograms_[key(name, label)];
}

series& metrics_registry::get_series(const std::string& name,
                                     const std::string& label) {
  return series_[key(name, label)];
}

namespace {

template <typename Map, typename T = typename Map::mapped_type>
const T* find_in(const Map& m, const std::string& k) {
  const auto it = m.find(k);
  return it == m.end() ? nullptr : &it->second;
}

}  // namespace

const counter* metrics_registry::find_counter(const std::string& name,
                                              const std::string& label) const {
  return find_in(counters_, key(name, label));
}

const gauge* metrics_registry::find_gauge(const std::string& name,
                                          const std::string& label) const {
  return find_in(gauges_, key(name, label));
}

const histogram* metrics_registry::find_histogram(
    const std::string& name, const std::string& label) const {
  return find_in(histograms_, key(name, label));
}

const series* metrics_registry::find_series(const std::string& name,
                                            const std::string& label) const {
  return find_in(series_, key(name, label));
}

void metrics_registry::merge(const metrics_registry& other) {
  for (const auto& [k, c] : other.counters_) counters_[k].merge_from(c);
  for (const auto& [k, g] : other.gauges_) gauges_[k].merge_from(g);
  for (const auto& [k, h] : other.histograms_) histograms_[k].merge_from(h);
  for (const auto& [k, s] : other.series_) series_[k].append_from(s);
}

void metrics_registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

json_value metrics_registry::to_json() const {
  json_value root = json_value::object();

  json_value jc = json_value::object();
  for (const auto& [k, c] : counters_) jc.set(k, c.value());
  root.set("counters", std::move(jc));

  json_value jg = json_value::object();
  for (const auto& [k, g] : gauges_) {
    json_value one = json_value::object();
    one.set("value", g.value());
    one.set("writes", g.writes());
    jg.set(k, std::move(one));
  }
  root.set("gauges", std::move(jg));

  json_value jh = json_value::object();
  for (const auto& [k, h] : histograms_) {
    json_value one = json_value::object();
    one.set("count", h.count());
    one.set("sum", h.sum());
    one.set("min", h.min());
    one.set("max", h.max());
    one.set("mean", h.mean());
    json_value bounds = json_value::array();
    json_value counts = json_value::array();
    for (int i = 0; i < histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      bounds.push_back(histogram::bucket_upper_bound(i));
      counts.push_back(h.bucket(i));
    }
    one.set("bucket_le", std::move(bounds));
    one.set("bucket_counts", std::move(counts));
    jh.set(k, std::move(one));
  }
  root.set("histograms", std::move(jh));

  json_value js = json_value::object();
  for (const auto& [k, s] : series_) {
    json_value vals = json_value::array();
    for (const std::int64_t v : s.values()) vals.push_back(v);
    js.set(k, std::move(vals));
  }
  root.set("series", std::move(js));

  return root;
}

}  // namespace radiocast::obs
