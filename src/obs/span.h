// Span-based wall-clock profiler.
//
// `scoped_span` is an RAII timer over a monotonic clock. Spans nest: a span
// opened while another is active becomes its child, and repeated spans with
// the same name at the same position in the tree accumulate (count +
// total time), so a span around each trial of a 100-trial sweep costs one
// node, not one hundred.
//
// A null profiler pointer makes every operation a no-op, so call sites can
// be left in hot paths unconditionally:
//
//   obs::scoped_span span(profiler, "run_broadcast");   // profiler may be null
//
// The process-wide default profiler (`global_profiler()`) exists for the
// bench harness, which wants `run_broadcast` timed without threading a
// pointer through every helper; it is disabled (null) until
// `set_global_profiler` is called. Single-threaded by design, like the
// simulator.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"

namespace radiocast::obs {

/// One node of the span tree: aggregated timings for a span name at a
/// fixed position under its parent.
struct span_stats {
  std::string name;
  std::int64_t total_ns = 0;  ///< summed wall-clock across invocations
  std::int64_t count = 0;     ///< completed invocations
  std::vector<std::unique_ptr<span_stats>> children;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
};

/// Collects a hierarchy of named wall-clock spans.
class span_profiler {
 public:
  span_profiler();

  /// Opens a span as a child of the innermost open span. Balanced by
  /// end_span(); scoped_span is the intended interface.
  void begin_span(const std::string& name);
  void end_span();

  /// The root's children (top-level spans). Stable order of first opening.
  const std::vector<std::unique_ptr<span_stats>>& roots() const {
    return root_->children;
  }

  /// Depth-first lookup by name; nullptr when absent (first match wins).
  const span_stats* find(const std::string& name) const;

  /// Drops all recorded spans (open spans must be closed first).
  void clear();

  /// Merges another profiler's span tree into this one, under the
  /// innermost currently-open span (the root when none is open). Nodes
  /// match by name and position, as if `other`'s spans had been recorded
  /// here: totals and counts accumulate, unseen names append in `other`'s
  /// order. `other` must have no open spans. Parallel trial execution uses
  /// this to fold per-worker profilers back into the caller's tree.
  void merge(const span_profiler& other);

  /// Nested array form: [{"name", "total_ms", "count", "children": [...]}].
  json_value to_json() const;

  /// Indented text rendering for terminal output.
  std::string report() const;

 private:
  std::unique_ptr<span_stats> root_;
  struct open_frame {
    span_stats* node;
    // radiocast-lint: allow(wall-clock) -- profiler timestamps feed span
    // durations only; spans are diagnostics and never reach results
    std::chrono::steady_clock::time_point start;
  };
  std::vector<open_frame> open_;
};

/// RAII span handle; tolerates a null profiler.
class scoped_span {
 public:
  scoped_span(span_profiler* profiler, const std::string& name)
      : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->begin_span(name);
  }
  ~scoped_span() {
    if (profiler_ != nullptr) profiler_->end_span();
  }

  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

 private:
  span_profiler* profiler_;
};

/// Process-wide default profiler; null (disabled) until set. Not owned.
span_profiler* global_profiler();
void set_global_profiler(span_profiler* profiler);

}  // namespace radiocast::obs
