#include "obs/ndjson.h"

#include <utility>

namespace radiocast::obs {

std::optional<json_value> ndjson_reader::next() {
  if (done_) return std::nullopt;
  std::string raw;
  while (std::getline(in_, raw)) {
    ++line_;
    // getline consumed the '\n' unless it stopped at end of stream; a line
    // that hit EOF without a delimiter is the candidate torn tail.
    const bool newline_terminated = !in_.eof();
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    if (raw.find_first_not_of(" \t") == std::string::npos) continue;
    std::string parse_error;
    std::optional<json_value> doc = json_parse(raw, &parse_error);
    if (!doc) {
      done_ = true;
      if (newline_terminated) {
        failed_ = true;
        error_ = "line " + std::to_string(line_) + ": " + parse_error;
      } else {
        truncated_ = true;
      }
      return std::nullopt;
    }
    ++documents_;
    return doc;
  }
  done_ = true;
  return std::nullopt;
}

}  // namespace radiocast::obs
