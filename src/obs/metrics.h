// Metrics registry: counters, gauges, log₂-bucketed histograms, and
// per-step series for observing simulator runs.
//
// Design goals, in order:
//   1. Zero cost when disabled. Instrumentation sites hold a
//      `metrics_registry*` that is null by default; the only overhead of a
//      disabled run is one pointer test per site (guarded by a bench
//      assertion in bench_simulator_throughput).
//   2. Cheap when enabled. Lookups return stable references (the registry
//      is node-based), so hot loops resolve a metric once and then touch a
//      single int64. The simulator's per-step series append is an
//      amortized O(1) vector push.
//   3. Everything exports. The whole registry serializes to one JSON
//      object with deterministic (sorted) key order, so artifacts diff
//      cleanly across runs.
//
// Instruments:
//   * counter   — monotone int64 (transmissions, token hops, echo rounds);
//   * gauge     — last-write-wins int64 (current decay phase, kp stage);
//   * histogram — fixed log₂ buckets: bucket 0 counts values ≤ 1, bucket i
//                 counts values in (2^{i-1}, 2^i]; 64 buckets cover int64;
//   * series    — one int64 per simulator step (frontier size, collisions).
//
// Labeled lookup: every accessor takes an optional label; (name, label)
// pairs are distinct instruments, exported as `name{label}`. Protocols use
// labels for phase markers, e.g. counter("kp.stage_tx", "2").
//
// Not thread-safe: one registry per run (the simulator is single-threaded).
// Parallel trial execution (src/exec/parallel_trials.h) follows from this:
// every worker owns a private registry and the shards are combined
// afterwards with `metrics_registry::merge`, whose semantics are defined so
// that merging per-shard registries in seed order reproduces the registry a
// serial run would have produced bit for bit (counters/histograms add,
// gauges keep the last written value, series concatenate).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace radiocast::obs {

/// Monotone event count.
class counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }

  /// Accumulates another counter (merge = addition; order-independent).
  void merge_from(const counter& other) { value_ += other.value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-written value plus the number of writes.
class gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    ++writes_;
  }
  std::int64_t value() const { return value_; }
  std::int64_t writes() const { return writes_; }

  /// Merges a LATER gauge into this one: `other`'s value wins iff it was
  /// ever written (last-write-wins composes left to right), and write
  /// counts add. Merging shards in seed order reproduces the serial value.
  void merge_from(const gauge& other) {
    if (other.writes_ > 0) value_ = other.value_;
    writes_ += other.writes_;
  }

 private:
  std::int64_t value_ = 0;
  std::int64_t writes_ = 0;
};

/// Fixed log₂-bucket histogram over non-negative int64 values.
class histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index for `v`: 0 for v ≤ 1, otherwise the unique i ≥ 1 with
  /// 2^{i-1} < v ≤ 2^i (i.e. upper bounds 1, 2, 4, 8, …).
  static int bucket_index(std::int64_t v);

  /// Inclusive upper bound of bucket i (2^i; bucket 0 ⇒ 1).
  static std::int64_t bucket_upper_bound(int i);

  void observe(std::int64_t v);

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::int64_t bucket(int i) const { return buckets_[i]; }

  /// Smallest bucket upper bound at or above the pct-th percentile of the
  /// recorded distribution (an upper estimate, as buckets are coarse).
  std::int64_t percentile_bound(double pct) const;

  /// Accumulates another histogram: buckets, count and sum add; min/max
  /// combine. Order-independent.
  void merge_from(const histogram& other);

 private:
  std::int64_t buckets_[kBuckets] = {};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// One value per simulator step. The registry does not enforce alignment;
/// the simulator pushes exactly once per step for every series it owns.
class series {
 public:
  void push(std::int64_t v) { values_.push_back(v); }
  void reserve(std::size_t n) { values_.reserve(n); }
  const std::vector<std::int64_t>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }

  /// Appends another series' values after this one's. Merging shards in
  /// seed order reproduces the concatenation a serial batch would push.
  void append_from(const series& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

 private:
  std::vector<std::int64_t> values_;
};

/// Owner of all instruments for one run (or one bench process).
///
/// References returned by the accessors are stable for the registry's
/// lifetime; callers on hot paths should resolve once and reuse.
class metrics_registry {
 public:
  counter& get_counter(const std::string& name,
                       const std::string& label = {});
  gauge& get_gauge(const std::string& name, const std::string& label = {});
  histogram& get_histogram(const std::string& name,
                           const std::string& label = {});
  series& get_series(const std::string& name, const std::string& label = {});

  /// Lookup without creation; nullptr when the instrument does not exist.
  const counter* find_counter(const std::string& name,
                              const std::string& label = {}) const;
  const gauge* find_gauge(const std::string& name,
                          const std::string& label = {}) const;
  const histogram* find_histogram(const std::string& name,
                                  const std::string& label = {}) const;
  const series* find_series(const std::string& name,
                            const std::string& label = {}) const;

  const std::map<std::string, counter>& counters() const { return counters_; }
  const std::map<std::string, gauge>& gauges() const { return gauges_; }
  const std::map<std::string, histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, series>& all_series() const { return series_; }

  /// Export key for a (name, label) pair: `name` or `name{label}`.
  static std::string key(const std::string& name, const std::string& label);

  /// Drops every instrument.
  void clear();

  /// Merges `other` into this registry, instrument by instrument (matched
  /// by export key; missing instruments are created). Counters and
  /// histograms add, gauges take `other`'s value when it was written,
  /// series concatenate — so folding per-shard registries **in seed
  /// order** over an empty registry yields a registry bit-identical to the
  /// one a serial pass over the same trials would fill. The workhorse of
  /// parallel_run_trials (src/exec/parallel_trials.h).
  void merge(const metrics_registry& other);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "series": {...}} with sorted keys. Histograms export count/sum/min/
  /// max/mean plus the non-empty bucket upper bounds and counts.
  json_value to_json() const;

 private:
  std::map<std::string, counter> counters_;
  std::map<std::string, gauge> gauges_;
  std::map<std::string, histogram> histograms_;
  std::map<std::string, series> series_;
};

}  // namespace radiocast::obs
