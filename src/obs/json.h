// Minimal JSON document model for the observability layer.
//
// The bench artifacts (BENCH_<name>.json), the NDJSON trace export, and the
// radiocast_inspect tool all need to build, serialize, and read back small
// JSON documents without third-party dependencies. `json_value` is a plain
// tagged union over the seven JSON shapes with an order-preserving object
// representation (so emitted files diff cleanly run-to-run).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace radiocast::obs {

/// One JSON value. Objects preserve insertion order; numbers distinguish
/// integers from doubles so step counts round-trip exactly.
class json_value {
 public:
  enum class kind { null, boolean, integer, number, string, array, object };

  json_value() : kind_(kind::null) {}
  json_value(std::nullptr_t) : kind_(kind::null) {}
  json_value(bool b) : kind_(kind::boolean), bool_(b) {}
  json_value(std::int64_t i) : kind_(kind::integer), int_(i) {}
  json_value(int i) : kind_(kind::integer), int_(i) {}
  json_value(std::size_t i)
      : kind_(kind::integer), int_(static_cast<std::int64_t>(i)) {}
  json_value(double d) : kind_(kind::number), num_(d) {}
  json_value(std::string s) : kind_(kind::string), str_(std::move(s)) {}
  json_value(const char* s) : kind_(kind::string), str_(s) {}

  static json_value array() {
    json_value v;
    v.kind_ = kind::array;
    return v;
  }
  static json_value object() {
    json_value v;
    v.kind_ = kind::object;
    return v;
  }

  kind type() const { return kind_; }
  bool is_null() const { return kind_ == kind::null; }
  bool is_object() const { return kind_ == kind::object; }
  bool is_array() const { return kind_ == kind::array; }
  bool is_number() const {
    return kind_ == kind::integer || kind_ == kind::number;
  }
  bool is_string() const { return kind_ == kind::string; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return kind_ == kind::number ? static_cast<std::int64_t>(num_) : int_;
  }
  double as_double() const {
    return kind_ == kind::integer ? static_cast<double>(int_) : num_;
  }
  const std::string& as_string() const { return str_; }

  // ----- array interface -----
  std::vector<json_value>& items() { return items_; }
  const std::vector<json_value>& items() const { return items_; }
  void push_back(json_value v) {
    kind_ = kind::array;
    items_.push_back(std::move(v));
  }

  // ----- object interface (order-preserving) -----
  const std::vector<std::pair<std::string, json_value>>& members() const {
    return members_;
  }
  /// Sets key → value, replacing an existing entry in place.
  void set(const std::string& key, json_value v);
  /// Member lookup; nullptr when the key is absent (or not an object).
  const json_value* find(const std::string& key) const;
  /// find() but descending a dotted path ("config.n").
  const json_value* find_path(const std::string& dotted) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }

  std::size_t size() const {
    return kind_ == kind::object ? members_.size() : items_.size();
  }

  /// Serializes. indent < 0 ⇒ compact single line (NDJSON-friendly);
  /// indent ≥ 0 ⇒ pretty-printed with that step.
  void write(std::ostream& os, int indent = -1) const;
  std::string dump(int indent = -1) const;

  friend bool operator==(const json_value&, const json_value&);

 private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  kind kind_ = kind::null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<json_value> items_;
  std::vector<std::pair<std::string, json_value>> members_;
};

/// Escapes and quotes `s` as a JSON string literal.
void write_json_string(std::ostream& os, const std::string& s);

/// Parses one JSON document. Returns nullopt (with a position/diagnostic in
/// `*error` when provided) on malformed input; trailing whitespace is
/// allowed, trailing garbage is not.
std::optional<json_value> json_parse(const std::string& text,
                                     std::string* error = nullptr);

/// Parses newline-delimited JSON: one document per nonempty line. Stops and
/// reports on the first malformed line.
std::optional<std::vector<json_value>> ndjson_parse(
    const std::string& text, std::string* error = nullptr);

}  // namespace radiocast::obs
