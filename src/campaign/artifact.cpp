#include "campaign/artifact.h"

#include <fstream>
#include <utility>

#include "obs/ndjson.h"

namespace radiocast::campaign {

namespace {

bool get_int(const obs::json_value& doc, const std::string& key,
             std::int64_t* out) {
  const obs::json_value* v = doc.find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->as_int();
  return true;
}

}  // namespace

obs::json_value header_record(const shard_header& h) {
  obs::json_value doc = obs::json_value::object();
  doc.set("record", "header");
  doc.set("schema", kShardSchema);
  doc.set("campaign", h.campaign);
  doc.set("shard", h.shard);
  doc.set("point", h.point);
  doc.set("case", h.case_name);
  doc.set("params", h.params);
  doc.set("first_trial", h.first_trial);
  doc.set("trials", h.trials);
  doc.set("base_seed", static_cast<std::int64_t>(h.base_seed));
  return doc;
}

obs::json_value trial_record_json(const trial_record& t) {
  obs::json_value doc = obs::json_value::object();
  doc.set("record", "trial");
  doc.set("seed", static_cast<std::int64_t>(t.seed));
  doc.set("completed", t.completed);
  doc.set("steps", t.steps);
  doc.set("informed_step", t.informed_step);
  doc.set("transmissions", t.transmissions);
  doc.set("collisions", t.collisions);
  doc.set("deliveries", t.deliveries);
  doc.set("crashed_nodes", t.crashed_nodes);
  doc.set("suppressed_deliveries", t.suppressed_deliveries);
  doc.set("churned_edges", t.churned_edges);
  doc.set("recoveries", t.recoveries);
  doc.set("reachable_nodes", t.reachable_nodes);
  doc.set("informed_reachable", t.informed_reachable);
  doc.set("outcome", run_outcome_name(t.outcome));
  doc.set("wall_ms", t.wall_ms);
  return doc;
}

obs::json_value footer_record(int shard, int trials_written) {
  obs::json_value doc = obs::json_value::object();
  doc.set("record", "footer");
  doc.set("shard", shard);
  doc.set("trials_written", trials_written);
  return doc;
}

std::optional<shard_header> parse_header(const obs::json_value& doc,
                                         std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<shard_header> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const obs::json_value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kShardSchema) {
    return fail(std::string("shard header schema must be \"") + kShardSchema +
                "\"");
  }
  shard_header h;
  const obs::json_value* campaign = doc.find("campaign");
  const obs::json_value* case_name = doc.find("case");
  const obs::json_value* params = doc.find("params");
  if (campaign == nullptr || !campaign->is_string() || case_name == nullptr ||
      !case_name->is_string() || params == nullptr || !params->is_object()) {
    return fail("shard header needs campaign/case strings and a params object");
  }
  h.campaign = campaign->as_string();
  h.case_name = case_name->as_string();
  h.params = *params;
  std::int64_t shard = 0, point = 0, first = 0, trials = 0, base_seed = 0;
  if (!get_int(doc, "shard", &shard) || !get_int(doc, "point", &point) ||
      !get_int(doc, "first_trial", &first) ||
      !get_int(doc, "trials", &trials) ||
      !get_int(doc, "base_seed", &base_seed)) {
    return fail("shard header is missing an integer field");
  }
  h.shard = static_cast<int>(shard);
  h.point = static_cast<int>(point);
  h.first_trial = static_cast<int>(first);
  h.trials = static_cast<int>(trials);
  h.base_seed = static_cast<std::uint64_t>(base_seed);
  if (h.shard < 0 || h.point < 0 || h.first_trial < 0 || h.trials < 1) {
    return fail("shard header fields out of range");
  }
  return h;
}

std::optional<trial_record> parse_trial(const obs::json_value& doc,
                                        std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<trial_record> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  trial_record t;
  std::int64_t seed = 0;
  if (!get_int(doc, "seed", &seed)) return fail("trial record missing seed");
  t.seed = static_cast<std::uint64_t>(seed);
  const obs::json_value* completed = doc.find("completed");
  if (completed == nullptr ||
      completed->type() != obs::json_value::kind::boolean) {
    return fail("trial record missing boolean completed");
  }
  t.completed = completed->as_bool();
  if (!get_int(doc, "steps", &t.steps) ||
      !get_int(doc, "informed_step", &t.informed_step) ||
      !get_int(doc, "transmissions", &t.transmissions) ||
      !get_int(doc, "collisions", &t.collisions) ||
      !get_int(doc, "deliveries", &t.deliveries) ||
      !get_int(doc, "crashed_nodes", &t.crashed_nodes) ||
      !get_int(doc, "suppressed_deliveries", &t.suppressed_deliveries) ||
      !get_int(doc, "churned_edges", &t.churned_edges)) {
    return fail("trial record is missing an integer field");
  }
  // Recovery/partition accounting arrived after the shard schema shipped:
  // absent keys default (pre-recovery shards resume cleanly), present keys
  // must still be well-formed.
  if (doc.contains("recoveries") && !get_int(doc, "recoveries", &t.recoveries)) {
    return fail("trial record recoveries must be an integer");
  }
  if (doc.contains("reachable_nodes") &&
      !get_int(doc, "reachable_nodes", &t.reachable_nodes)) {
    return fail("trial record reachable_nodes must be an integer");
  }
  if (doc.contains("informed_reachable") &&
      !get_int(doc, "informed_reachable", &t.informed_reachable)) {
    return fail("trial record informed_reachable must be an integer");
  }
  if (const obs::json_value* outcome = doc.find("outcome");
      outcome != nullptr) {
    if (!outcome->is_string()) {
      return fail("trial record outcome must be a string");
    }
    const std::string& tag = outcome->as_string();
    if (tag == "completed") {
      t.outcome = run_outcome::completed;
    } else if (tag == "stuck") {
      t.outcome = run_outcome::stuck;
    } else if (tag == "unreachable") {
      t.outcome = run_outcome::unreachable;
    } else if (tag == "source_lost") {
      t.outcome = run_outcome::source_lost;
    } else {
      return fail("trial record has unknown outcome \"" + tag + "\"");
    }
  } else {
    // Old shards: infer the only distinction they could express.
    t.outcome = t.completed ? run_outcome::completed : run_outcome::stuck;
  }
  const obs::json_value* wall = doc.find("wall_ms");
  if (wall == nullptr || !wall->is_number()) {
    return fail("trial record missing numeric wall_ms");
  }
  t.wall_ms = wall->as_double();
  return t;
}

std::optional<shard_artifact> read_shard_file(const std::string& path,
                                              std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<shard_artifact> {
    if (error != nullptr) *error = path + ": " + why;
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot read");
  obs::ndjson_reader reader(in);
  shard_artifact out;
  bool saw_header = false;
  int footer_trials = -1;
  while (std::optional<obs::json_value> doc = reader.next()) {
    const obs::json_value* record = doc->find("record");
    if (record == nullptr || !record->is_string()) {
      return fail("line " + std::to_string(reader.line()) +
                  ": missing \"record\" discriminator");
    }
    const std::string& kind = record->as_string();
    std::string detail;
    if (kind == "header") {
      if (saw_header) return fail("duplicate header record");
      std::optional<shard_header> h = parse_header(*doc, &detail);
      if (!h) return fail(detail);
      out.header = std::move(*h);
      saw_header = true;
    } else if (kind == "trial") {
      if (!saw_header) return fail("trial record before the header");
      if (footer_trials != -1) return fail("trial record after the footer");
      std::optional<trial_record> t = parse_trial(*doc, &detail);
      if (!t) return fail(detail);
      // Seeds must be the header's contiguous range, in order.
      const std::uint64_t expected =
          out.header.base_seed + out.trials.size();
      if (t->seed != expected) {
        return fail("trial seed " + std::to_string(t->seed) +
                    " out of order (expected " + std::to_string(expected) +
                    ")");
      }
      out.trials.push_back(*t);
    } else if (kind == "footer") {
      if (!saw_header) return fail("footer record before the header");
      std::int64_t written = 0;
      if (!get_int(*doc, "trials_written", &written)) {
        return fail("footer missing trials_written");
      }
      footer_trials = static_cast<int>(written);
    } else {
      return fail("unknown record type \"" + kind + "\"");
    }
  }
  if (reader.failed()) return fail(reader.error());
  if (!saw_header) return fail("no header record");
  // Torn tail (reader.truncated()) or missing/short footer ⇒ incomplete,
  // but the intact prefix is still returned for inspection.
  out.complete = !reader.truncated() && footer_trials != -1 &&
                 footer_trials == static_cast<int>(out.trials.size()) &&
                 footer_trials == out.header.trials;
  return out;
}

bool is_wall_clock_key(const std::string& key) {
  // Any "*speedup" ratio (speedup, soa_speedup, det_soa_speedup, …) is
  // derived from same-process wall-clock pairs, like off_over_on.
  if (key.size() >= 7 &&
      key.compare(key.size() - 7, 7, "speedup") == 0) {
    return true;
  }
  if (key == "off_over_on") return true;
  if (key.rfind("steps_per_sec", 0) == 0) return true;
  return key.size() >= 3 && key.compare(key.size() - 3, 3, "_ms") == 0;
}

obs::json_value strip_wall_clock_keys(const obs::json_value& v) {
  if (v.is_array()) {
    obs::json_value out = obs::json_value::array();
    for (const obs::json_value& item : v.items()) {
      out.push_back(strip_wall_clock_keys(item));
    }
    return out;
  }
  if (v.is_object()) {
    obs::json_value out = obs::json_value::object();
    for (const auto& [key, member] : v.members()) {
      if (is_wall_clock_key(key)) continue;
      out.set(key, strip_wall_clock_keys(member));
    }
    return out;
  }
  return v;
}

}  // namespace radiocast::campaign
