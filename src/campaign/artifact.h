// Shard artifacts — the durable telemetry unit of a campaign.
//
// Each shard (a contiguous seed sub-range of one grid point) streams its
// trial records to `shards/shard_NNNN.ndjson` as they complete, one JSON
// document per line (schema "radiocast.shard.v1"). Three record types,
// discriminated by the "record" key:
//
//   header  {"record":"header","schema":"radiocast.shard.v1",
//            "campaign":…,"shard":id,"point":i,"case":…,"params":{…},
//            "first_trial":f,"trials":k,"base_seed":s}
//   trial   {"record":"trial","seed":…,"completed":…,"steps":…,
//            "informed_step":…,"transmissions":…,"collisions":…,
//            "deliveries":…,"crashed_nodes":…,"suppressed_deliveries":…,
//            "churned_edges":…,"wall_ms":…}
//   footer  {"record":"footer","shard":id,"trials_written":k}
//
// The footer doubles as a completeness marker: a reader that never sees it
// (or sees a trial count that disagrees) is looking at a torn file. Trial
// lines are byte-stable across thread counts and across interruption —
// only the wall_ms value is host noise — which is what makes the merge
// deterministic (docs/CAMPAIGNS.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/simulator.h"

namespace radiocast::campaign {

/// Schema tag carried by every shard header.
inline constexpr char kShardSchema[] = "radiocast.shard.v1";

/// Parsed shard header.
struct shard_header {
  std::string campaign;
  int shard = -1;        ///< campaign-global shard id
  int point = -1;        ///< index into the manifest grid
  std::string case_name;
  obs::json_value params;
  int first_trial = 0;   ///< index of the shard's first trial in its point
  int trials = 0;
  std::uint64_t base_seed = 0;  ///< seed of the shard's first trial
};

// ----- record encoding (writer side) -----

obs::json_value header_record(const shard_header& h);
obs::json_value trial_record_json(const trial_record& t);
obs::json_value footer_record(int shard, int trials_written);

// ----- record decoding (reader side) -----

std::optional<shard_header> parse_header(const obs::json_value& doc,
                                         std::string* error = nullptr);
std::optional<trial_record> parse_trial(const obs::json_value& doc,
                                        std::string* error = nullptr);

/// A shard file read back: header, the trial records in seed order, and
/// whether the footer confirmed the file is complete.
struct shard_artifact {
  shard_header header;
  std::vector<trial_record> trials;
  bool complete = false;  ///< footer seen and counts agree
};

/// Reads one shard NDJSON file. Returns std::nullopt (with a diagnostic)
/// only on hard corruption — unreadable file, malformed interior line,
/// records out of order. A torn tail (interrupted writer) yields the
/// complete prefix with complete == false.
std::optional<shard_artifact> read_shard_file(const std::string& path,
                                              std::string* error = nullptr);

/// True for key names that carry host wall-clock (or quantities derived
/// from it): "wall_ms", "batch_wall_ms", any "*_ms", "speedup",
/// "off_over_on", "steps_per_sec_*". These are the keys excluded from
/// bit-identity comparisons and from `radiocast_inspect diff` by default.
bool is_wall_clock_key(const std::string& key);

/// Deep-copies `v` with every object member whose key satisfies
/// is_wall_clock_key removed — the canonical "wall-clock keys excepted"
/// form used by the resume bit-identity test and CI stage.
obs::json_value strip_wall_clock_keys(const obs::json_value& v);

}  // namespace radiocast::campaign
