// Perf-regression gate — compares a fresh bench artifact against a
// committed baseline (bench/baselines/, written by
// scripts/update_baselines.sh) and reports every case/key that moved past
// its tolerance. `radiocast_inspect regress` is the CLI face; scripts/ci.sh
// runs it as a failing gate over the smoke-mode telemetry artifacts.
//
// The comparison is a WHITELIST, not a generic diff — only keys with a
// defined "better" direction participate:
//
//   key              direction       default tolerance
//   steps.mean       lower better    0%   (trial records are deterministic)
//   timeout_rate     lower better    0%
//   values.steps     exact           —    (a step-count drift is a bug)
//   *speedup, off_over_on,
//   steps_per_sec_*  higher better   50%  (wall-clock derived: host noise)
//
// Every other key — wall_ms and friends in particular — is ignored: host
// wall-clock is not comparable across machines, only the RATIOS derived
// from same-process measurements are, and those get the wide tolerance.
// Per-key overrides (the CLI's `--tolerance key=pct`) replace the default;
// keys are matched by the label shown in the report ("steps.mean",
// "timeout_rate", or the bare values key like "steps_per_sec_frontier").
//
// A case present in the baseline but missing from the fresh artifact is a
// regression (a silently dropped case must not pass the gate); a NEW case
// in the fresh artifact is fine — baselines update on the next refresh.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace radiocast::campaign {

struct regress_options {
  /// Per-key tolerance overrides, in PERCENT, replacing the defaults
  /// above. Matched by report label (see the header comment).
  std::vector<std::pair<std::string, double>> tolerances;
};

struct regress_report {
  bool ok = true;
  int comparisons = 0;  ///< whitelist keys actually compared
  /// One line per violation: "case: key baseline=… fresh=… (limit …)".
  std::vector<std::string> problems;
};

/// Compares `fresh` against `baseline` (both "radiocast.bench.v1" docs).
regress_report run_regress(const obs::json_value& baseline,
                           const obs::json_value& fresh,
                           const regress_options& opts = {});

}  // namespace radiocast::campaign
