// Campaign checkpoints — crash-safe progress records.
//
// After every shard lands (its NDJSON file renamed into place), the runner
// rewrites `checkpoint.json` (schema "radiocast.checkpoint.v1") listing the
// completed shard ids:
//
//   {"schema":"radiocast.checkpoint.v1","campaign":…,
//    "manifest_fingerprint":…, "total_shards":N,
//    "completed":[0,1,5], "updated_unix_ms":…}
//
// Updates are atomic (write to `checkpoint.json.tmp`, then rename), so the
// file on disk is always a complete, parseable document — an interrupted
// campaign resumes by loading it and skipping every listed shard. The
// fingerprint ties the checkpoint to one manifest: resuming with an edited
// manifest is a hard error, never a silent mix of incompatible shards.
//
// `updated_unix_ms` is wall clock — the ONE sanctioned, lint-annotated
// wall-clock read in src/campaign/ (rule R2, docs/STATIC_ANALYSIS.md). It
// is operator telemetry ("when did this campaign last make progress?") and
// never feeds back into results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace radiocast::campaign {

/// Schema tag of the checkpoint document.
inline constexpr char kCheckpointSchema[] = "radiocast.checkpoint.v1";

struct checkpoint {
  std::string campaign;
  std::uint64_t manifest_fingerprint = 0;
  int total_shards = 0;
  std::vector<int> completed;  ///< sorted, unique shard ids
  std::int64_t updated_unix_ms = 0;

  bool is_completed(int shard) const;
  /// Records `shard` as done (idempotent; keeps `completed` sorted).
  void mark_completed(int shard);

  obs::json_value to_json() const;
};

/// Parses a checkpoint document; nullopt + diagnostic on schema violations.
std::optional<checkpoint> parse_checkpoint(const obs::json_value& doc,
                                           std::string* error = nullptr);

/// Loads `path`; nullopt with an EMPTY error when the file simply does not
/// exist (a fresh campaign), nullopt with a diagnostic on corruption.
std::optional<checkpoint> load_checkpoint(const std::string& path,
                                          std::string* error = nullptr);

/// Atomically rewrites `path`: serializes to `path + ".tmp"`, then renames
/// over the destination. Stamps updated_unix_ms. Throws on I/O failure.
void save_checkpoint(const checkpoint& cp, const std::string& path);

}  // namespace radiocast::campaign
