#include "campaign/campaign.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>

#include "campaign/artifact.h"
#include "campaign/checkpoint.h"
#include "exec/parallel_trials.h"
#include "util/assert.h"
#include "util/stats.h"

namespace radiocast::campaign {

namespace fs = std::filesystem;

std::vector<shard_plan> plan_shards(const manifest& m) {
  RC_REQUIRE(m.trials_per_point >= 1);
  const int slice = m.shard_size > 0 ? m.shard_size : m.trials_per_point;
  std::vector<shard_plan> plan;
  int id = 0;
  for (int point = 0; point < static_cast<int>(m.grid.size()); ++point) {
    for (int first = 0; first < m.trials_per_point; first += slice) {
      shard_plan s;
      s.shard = id++;
      s.point = point;
      s.first_trial = first;
      s.count = std::min(slice, m.trials_per_point - first);
      s.base_seed = m.base_seed + static_cast<std::uint64_t>(first);
      plan.push_back(s);
    }
  }
  return plan;
}

std::string shard_file_name(int shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%04d.ndjson", shard);
  return buf;
}

namespace {

std::string shard_path(const std::string& out_dir, int shard) {
  return out_dir + "/shards/" + shard_file_name(shard);
}

shard_header make_header(const manifest& m, const shard_plan& s) {
  shard_header h;
  h.campaign = m.name;
  h.shard = s.shard;
  h.point = s.point;
  h.case_name = m.grid[static_cast<std::size_t>(s.point)].case_name();
  h.params = m.grid[static_cast<std::size_t>(s.point)].to_json();
  h.first_trial = s.first_trial;
  h.trials = s.count;
  h.base_seed = s.base_seed;
  return h;
}

/// Executes one shard: streams header + trial lines + footer to a `.tmp`
/// file (records retire in seed order through the exec hooks and are
/// discarded from memory), then renames the artifact into place.
void execute_shard(const manifest& m, const shard_plan& s,
                   const std::string& out_dir, const graph& g,
                   const protocol& proto) {
  const std::string final_path = shard_path(out_dir, s.shard);
  const std::string tmp_path = final_path + ".tmp";
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  RC_CHECK_MSG(static_cast<bool>(out),
               "cannot open shard temp file " + tmp_path);
  header_record(make_header(m, s)).write(out);
  out << '\n';

  int written = 0;
  trial_options topts;
  topts.trials = s.count;
  topts.base_seed = s.base_seed;
  topts.max_steps = m.max_steps;
  topts.threads = m.threads;
  topts.hooks.discard_records = true;
  topts.hooks.on_done = [&out, &written](const shard_info&,
                                         const trial_set& batch) {
    for (const trial_record& t : batch.trials) {
      trial_record_json(t).write(out);
      out << '\n';
      ++written;
    }
  };
  parallel_run_trials(g, proto, topts);
  RC_CHECK_MSG(written == s.count, "shard streamed a partial trial batch");

  footer_record(s.shard, written).write(out);
  out << '\n';
  out.flush();
  RC_CHECK_MSG(static_cast<bool>(out),
               "short write to shard temp file " + tmp_path);
  out.close();
  RC_CHECK_MSG(std::rename(tmp_path.c_str(), final_path.c_str()) == 0,
               "cannot rename " + tmp_path + " over " + final_path);
}

}  // namespace

campaign_result run_campaign(const manifest& m,
                             const campaign_options& opts) {
  campaign_result result;
  auto fail = [&result](const std::string& why) {
    result.ok = false;
    result.error = why;
    return result;
  };
  try {
    const std::vector<shard_plan> plan = plan_shards(m);
    result.total_shards = static_cast<int>(plan.size());

    fs::create_directories(fs::path(opts.out_dir) / "shards");
    const std::string cp_path = opts.out_dir + "/checkpoint.json";

    checkpoint cp;
    cp.campaign = m.name;
    cp.manifest_fingerprint = m.fingerprint();
    cp.total_shards = result.total_shards;
    if (opts.fresh) {
      std::error_code ec;
      fs::remove(cp_path, ec);
      for (const shard_plan& s : plan) {
        fs::remove(shard_path(opts.out_dir, s.shard), ec);
      }
    } else {
      std::string cp_error;
      std::optional<checkpoint> loaded = load_checkpoint(cp_path, &cp_error);
      if (!loaded && !cp_error.empty()) return fail(cp_error);
      if (loaded) {
        if (loaded->manifest_fingerprint != cp.manifest_fingerprint) {
          return fail(
              "checkpoint was written by a different manifest "
              "(fingerprint mismatch) — rerun with --fresh to discard it");
        }
        if (loaded->total_shards != cp.total_shards) {
          return fail("checkpoint shard count disagrees with the plan");
        }
        cp = std::move(*loaded);
      }
    }

    // Cache the point's topology/protocol across its consecutive shards.
    int built_point = -1;
    std::optional<graph> g;
    std::unique_ptr<protocol> proto;

    for (const shard_plan& s : plan) {
      // A shard counts as done only when BOTH the checkpoint lists it and
      // its artifact file survives — a deleted artifact is re-run.
      if (cp.is_completed(s.shard) &&
          fs::exists(shard_path(opts.out_dir, s.shard))) {
        ++result.skipped;
        continue;
      }
      if (opts.stop_after >= 0 && result.executed >= opts.stop_after) {
        result.ok = true;
        return result;  // clean interruption: checkpoint already durable
      }
      if (s.point != built_point) {
        const grid_point& point = m.grid[static_cast<std::size_t>(s.point)];
        g.emplace(build_graph(point));
        proto = build_protocol(point);
        built_point = s.point;
      }
      execute_shard(m, s, opts.out_dir, *g, *proto);
      cp.mark_completed(s.shard);
      save_checkpoint(cp, cp_path);
      ++result.executed;
      if (opts.log != nullptr) {
        *opts.log << "[campaign] shard " << s.shard + 1 << "/"
                  << result.total_shards << " done ("
                  << m.grid[static_cast<std::size_t>(s.point)].case_name()
                  << " trials " << s.first_trial << ".."
                  << s.first_trial + s.count - 1 << ")\n";
      }
    }
    result.ok = true;
    result.finished =
        result.skipped + result.executed == result.total_shards;
    return result;
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

std::optional<obs::json_value> merge_campaign(const manifest& m,
                                              const std::string& out_dir,
                                              std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<obs::json_value> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const std::vector<shard_plan> plan = plan_shards(m);

  obs::json_value cases = obs::json_value::array();
  std::size_t next = 0;
  for (int point = 0; point < static_cast<int>(m.grid.size()); ++point) {
    const grid_point& gp = m.grid[static_cast<std::size_t>(point)];
    trial_set merged;
    merged.trials.reserve(static_cast<std::size_t>(m.trials_per_point));
    // Fold this point's shards in seed order — the same order the serial
    // fold of parallel_run_trials uses, which is what makes the merged
    // document independent of interruption history and thread count.
    for (; next < plan.size() && plan[next].point == point; ++next) {
      const shard_plan& s = plan[next];
      const std::string path = out_dir + "/shards/" + shard_file_name(s.shard);
      std::string detail;
      std::optional<shard_artifact> art = read_shard_file(path, &detail);
      if (!art) return fail(detail);
      if (!art->complete) {
        return fail(path + ": shard is incomplete (no confirming footer) — "
                    "rerun the campaign before merging");
      }
      if (art->header.point != s.point ||
          art->header.first_trial != s.first_trial ||
          art->header.trials != s.count ||
          art->header.base_seed != s.base_seed ||
          art->header.case_name != gp.case_name()) {
        return fail(path + ": shard header disagrees with the manifest plan");
      }
      merged.trials.insert(merged.trials.end(), art->trials.begin(),
                           art->trials.end());
    }
    if (static_cast<int>(merged.trials.size()) != m.trials_per_point) {
      return fail(gp.case_name() + ": merged " +
                  std::to_string(merged.trials.size()) + " trials, expected " +
                  std::to_string(m.trials_per_point));
    }

    // One case per grid point, in bench::reporter's exact key layout.
    obs::json_value c = obs::json_value::object();
    c.set("name", gp.case_name());
    c.set("params", gp.to_json());
    obs::json_value trials = obs::json_value::array();
    for (const trial_record& t : merged.trials) {
      obs::json_value one = obs::json_value::object();
      one.set("seed", static_cast<std::int64_t>(t.seed));
      one.set("completed", t.completed);
      one.set("steps", t.steps);
      one.set("informed_step", t.informed_step);
      one.set("transmissions", t.transmissions);
      one.set("collisions", t.collisions);
      one.set("deliveries", t.deliveries);
      one.set("wall_ms", t.wall_ms);
      one.set("crashed_nodes", t.crashed_nodes);
      one.set("suppressed_deliveries", t.suppressed_deliveries);
      one.set("churned_edges", t.churned_edges);
      trials.push_back(std::move(one));
    }
    c.set("trials", std::move(trials));
    c.set("timeout_rate", merged.timeout_rate());
    c.set("wall_ms", merged.total_wall_ms());
    obs::json_value stats = obs::json_value::object();
    const std::vector<double> steps = merged.completion_steps();
    if (!steps.empty()) {
      const summary s = summarize(steps);
      stats.set("mean", s.mean);
      stats.set("stddev", s.stddev);
      stats.set("min", s.min);
      stats.set("p50", s.median);
      stats.set("p90", s.p90);
      stats.set("p95", s.p95);
      stats.set("p99", s.p99);
      stats.set("max", s.max);
    }
    c.set("steps", std::move(stats));
    cases.push_back(std::move(c));
  }

  obs::json_value doc = obs::json_value::object();
  doc.set("schema", "radiocast.bench.v1");
  doc.set("bench", m.name);
  obs::json_value config = obs::json_value::object();
  config.set("campaign", m.name);
  config.set("base_seed", static_cast<std::int64_t>(m.base_seed));
  config.set("trials_per_point", m.trials_per_point);
  config.set("shard_size",
             m.shard_size > 0 ? m.shard_size : m.trials_per_point);
  config.set("threads", m.threads);
  config.set("max_steps", m.max_steps);
  config.set("points", static_cast<std::int64_t>(m.grid.size()));
  config.set("shards", static_cast<std::int64_t>(plan.size()));
  doc.set("config", std::move(config));
  doc.set("cases", std::move(cases));
  doc.set("spans", obs::json_value::array());
  return doc;
}

}  // namespace radiocast::campaign
