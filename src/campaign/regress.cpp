#include "campaign/regress.h"

#include <cmath>
#include <sstream>

namespace radiocast::campaign {

namespace {

bool higher_better_key(const std::string& key) {
  // Every "*speedup" ratio (speedup, soa_speedup, det_soa_speedup, the
  // per-protocol legs) is a wall-clock-derived higher-is-better value.
  if (key.size() >= 7 &&
      key.compare(key.size() - 7, 7, "speedup") == 0) {
    return true;
  }
  return key == "off_over_on" || key.rfind("steps_per_sec", 0) == 0;
}

double default_tolerance(const std::string& label) {
  return higher_better_key(label) ? 50.0 : 0.0;
}

double tolerance_for(const regress_options& opts, const std::string& label) {
  for (const auto& [key, pct] : opts.tolerances) {
    if (key == label) return pct;
  }
  return default_tolerance(label);
}

std::string format_number(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

const obs::json_value* find_case(const obs::json_value& doc,
                                 const std::string& name) {
  const obs::json_value* cases = doc.find("cases");
  if (cases == nullptr || !cases->is_array()) return nullptr;
  for (const obs::json_value& c : cases->items()) {
    const obs::json_value* n = c.find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return &c;
  }
  return nullptr;
}

struct checker {
  const regress_options& opts;
  regress_report& report;
  const std::string& case_name;

  void problem(const std::string& label, const std::string& what) {
    report.ok = false;
    report.problems.push_back(case_name + ": " + label + " " + what);
  }

  /// Directional comparison with a percent tolerance. `lower_better`
  /// flips the direction; a missing fresh value is always a violation.
  void directional(const std::string& label, const obs::json_value* base,
                   const obs::json_value* fresh, bool lower_better) {
    if (base == nullptr || !base->is_number()) return;  // nothing to gate on
    const double b = base->as_double();
    if (std::isnan(b)) return;
    if (fresh == nullptr || !fresh->is_number() ||
        std::isnan(fresh->as_double())) {
      problem(label, "present in the baseline but missing from the fresh run");
      return;
    }
    const double f = fresh->as_double();
    const double pct = tolerance_for(opts, label);
    ++report.comparisons;
    const double limit =
        lower_better ? b * (1.0 + pct / 100.0) : b * (1.0 - pct / 100.0);
    const bool violated = lower_better ? f > limit : f < limit;
    if (violated) {
      problem(label, "regressed: baseline=" + format_number(b) +
                         " fresh=" + format_number(f) + " (limit " +
                         format_number(limit) + ", tolerance " +
                         format_number(pct) + "%)");
    }
  }

  void exact(const std::string& label, const obs::json_value* base,
             const obs::json_value* fresh) {
    if (base == nullptr || !base->is_number()) return;
    if (fresh == nullptr || !fresh->is_number()) {
      problem(label, "present in the baseline but missing from the fresh run");
      return;
    }
    ++report.comparisons;
    if (base->as_int() != fresh->as_int()) {
      problem(label, "drifted: baseline=" + std::to_string(base->as_int()) +
                         " fresh=" + std::to_string(fresh->as_int()) +
                         " (must match exactly)");
    }
  }
};

}  // namespace

regress_report run_regress(const obs::json_value& baseline,
                           const obs::json_value& fresh,
                           const regress_options& opts) {
  regress_report report;
  const obs::json_value* base_cases = baseline.find("cases");
  if (base_cases == nullptr || !base_cases->is_array()) {
    report.ok = false;
    report.problems.push_back("baseline has no cases array");
    return report;
  }
  for (const obs::json_value& base_case : base_cases->items()) {
    const obs::json_value* name = base_case.find("name");
    if (name == nullptr || !name->is_string()) continue;
    const std::string case_name = name->as_string();
    const obs::json_value* fresh_case = find_case(fresh, case_name);
    if (fresh_case == nullptr) {
      report.ok = false;
      report.problems.push_back(case_name +
                                ": present in the baseline but missing from "
                                "the fresh run");
      continue;
    }
    checker chk{opts, report, case_name};
    chk.directional("steps.mean", base_case.find_path("steps.mean"),
                    fresh_case->find_path("steps.mean"),
                    /*lower_better=*/true);
    chk.directional("timeout_rate", base_case.find("timeout_rate"),
                    fresh_case->find("timeout_rate"),
                    /*lower_better=*/true);
    const obs::json_value* base_values = base_case.find("values");
    const obs::json_value* fresh_values = fresh_case->find("values");
    if (base_values != nullptr && base_values->is_object()) {
      for (const auto& [key, member] : base_values->members()) {
        const obs::json_value* fresh_member =
            fresh_values != nullptr && fresh_values->is_object()
                ? fresh_values->find(key)
                : nullptr;
        if (key == "steps") {
          chk.exact("values.steps", &member, fresh_member);
        } else if (higher_better_key(key)) {
          chk.directional(key, &member, fresh_member,
                          /*lower_better=*/false);
        }
        // Everything else (raw wall-clock, parameters echoed into values)
        // is not comparable across hosts — ignored by design.
      }
    }
  }
  return report;
}

}  // namespace radiocast::campaign
