// Campaign runner — resumable sharded parameter sweeps.
//
// A campaign executes its manifest's grid as a flat list of SHARDS: each
// grid point's seed range [0, trials_per_point) is cut into contiguous
// slices of shard_size trials, numbered globally in (point, seed) order.
// Shard boundaries are a pure function of the manifest — never of the
// host's core count or of how often the campaign was interrupted — which
// is what makes artifacts comparable across machines and resumes.
//
// Each shard runs as ONE parallel_run_trials call (src/exec): the
// manifest's thread count parallelizes inside the shard, and the shard
// lifecycle hooks stream every trial record to the shard's NDJSON artifact
// (campaign/artifact.h) as sub-shards retire in seed order — trial records
// never accumulate in process memory. The artifact is written to a `.tmp`
// file and renamed into place only after its footer lands, then the
// checkpoint (campaign/checkpoint.h) is atomically rewritten. Kill the
// runner at ANY point and rerun: completed shards are skipped, the
// half-written `.tmp` of the interrupted shard is simply overwritten.
//
// `merge_campaign` folds the shard artifacts back — in (point, seed)
// order, exactly like the serial fold of parallel_run_trials — into one
// "radiocast.bench.v1" document, byte-identical (wall-clock keys aside)
// whether the campaign ran uninterrupted, was resumed five times, or ran
// with any thread count. See docs/CAMPAIGNS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/manifest.h"
#include "obs/json.h"

namespace radiocast::campaign {

/// One planned work unit: a contiguous trial slice of one grid point.
struct shard_plan {
  int shard = 0;        ///< campaign-global shard id (also the file number)
  int point = 0;        ///< index into manifest.grid
  int first_trial = 0;  ///< index of the first trial within its point
  int count = 0;        ///< trials in this shard
  std::uint64_t base_seed = 0;  ///< manifest.base_seed + first_trial
};

/// Deterministic shard plan of a manifest: every grid point's trials in
/// slices of shard_size (0 ⇒ one shard per point), in (point, seed) order.
std::vector<shard_plan> plan_shards(const manifest& m);

/// Artifact file name of a shard, e.g. "shard_0007.ndjson".
std::string shard_file_name(int shard);

struct campaign_options {
  std::string out_dir;  ///< artifact root: checkpoint.json + shards/
  /// Stop (cleanly, checkpointed) after executing this many shards in this
  /// invocation; −1 = run to completion. The CI interruption drill and the
  /// resume tests use this to cut a campaign mid-flight deterministically.
  int stop_after = -1;
  /// Discard any existing checkpoint and shard artifacts and start over.
  /// Without it, a checkpoint whose fingerprint does not match the
  /// manifest is a hard error — never a silent mix of incompatible shards.
  bool fresh = false;
  std::ostream* log = nullptr;  ///< optional progress lines, one per shard
};

struct campaign_result {
  bool ok = false;        ///< false ⇒ see error (nothing was corrupted)
  std::string error;
  int total_shards = 0;
  int skipped = 0;   ///< shards already completed by a previous invocation
  int executed = 0;  ///< shards run (and checkpointed) by this invocation
  bool finished = false;  ///< every shard of the campaign is now complete
};

/// Runs (or resumes) the campaign into opts.out_dir. Creates the directory
/// tree, skips checkpointed shards whose artifact files exist, executes
/// the rest in shard order, and checkpoints after every shard.
campaign_result run_campaign(const manifest& m, const campaign_options& opts);

/// Folds a finished campaign's shard artifacts into one
/// "radiocast.bench.v1" document (one case per grid point, trials in seed
/// order — the layout bench::reporter writes, so radiocast_inspect
/// print/validate/diff work unchanged). Returns std::nullopt with a
/// diagnostic when any shard is missing, incomplete, or inconsistent with
/// the manifest's plan.
std::optional<obs::json_value> merge_campaign(const manifest& m,
                                              const std::string& out_dir,
                                              std::string* error = nullptr);

}  // namespace radiocast::campaign
