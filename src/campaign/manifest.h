// Campaign manifests — the declarative input of the campaign runner.
//
// A campaign is a parameter sweep executed as sharded, resumable work
// units (docs/CAMPAIGNS.md). The manifest (schema "radiocast.campaign.v1")
// declares everything the runner needs to reproduce the sweep
// bit-identically on any host:
//
//   {
//     "schema": "radiocast.campaign.v1",
//     "name": "decay-vs-kp",
//     "base_seed": 1,            // trial t of every point runs seed base+t
//     "trials_per_point": 1000,  // seeded trials per grid point
//     "shard_size": 250,         // trials per shard artifact (work unit)
//     "threads": 0,              // worker threads (0 = RADIOCAST_THREADS)
//     "max_steps": 1000000,      // per-trial step cap
//     "grid": [
//       {"family": "complete-layered", "n": 256, "d": 8,
//        "protocol": "decay"},
//       {"family": "gnp", "n": 128, "p": 0.1, "graph_seed": 7,
//        "protocol": "kp", "known_d": 16}
//     ]
//   }
//
// Graph families are the deterministic generators of graph/generators.h;
// randomized families (gnp, random-tree) draw from util/rng seeded with
// the point's graph_seed, so the topology is part of the manifest, not of
// the host. Protocols resolve through core/runner.h's make_protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "obs/json.h"
#include "sim/protocol.h"

namespace radiocast::campaign {

/// Schema tag of the manifest document.
inline constexpr char kManifestSchema[] = "radiocast.campaign.v1";

/// One cell of the parameter grid: a (topology, protocol) pair.
struct grid_point {
  std::string family;             ///< generator name (see family_names())
  node_id n = 0;                  ///< node count
  int d = 0;                      ///< radius/depth parameter (layered, grid)
  double p = 0.0;                 ///< edge probability (gnp families)
  std::uint64_t graph_seed = 1;   ///< seed for randomized generators
  std::string protocol;           ///< name for make_protocol
  int known_d = -1;               ///< D parameter for D-aware protocols

  /// Canonical case name, e.g. "complete-layered/n=256/d=8/decay" — the
  /// key merged artifacts and regress gates match cases by.
  std::string case_name() const;

  /// Manifest-shaped JSON (round-trips through parse_manifest).
  obs::json_value to_json() const;
};

/// The whole campaign declaration.
struct manifest {
  std::string name;
  std::uint64_t base_seed = 1;
  int trials_per_point = 1;
  int shard_size = 0;  ///< 0 ⇒ one shard per point
  int threads = 0;     ///< 0 ⇒ the RADIOCAST_THREADS environment default
  std::int64_t max_steps = 1'000'000;
  std::vector<grid_point> grid;

  obs::json_value to_json() const;

  /// Stable 64-bit fingerprint of the manifest's canonical JSON form.
  /// Checkpoints record it so a resume against an edited manifest is
  /// rejected instead of silently mixing incompatible shards.
  std::uint64_t fingerprint() const;
};

/// Supported graph family names: "path", "cycle", "star", "complete",
/// "complete-layered", "layered-fat", "gnp", "random-tree".
const std::vector<std::string>& family_names();

/// Parses and validates a manifest document. Returns std::nullopt with a
/// diagnostic in *error (when provided) on schema violations: wrong
/// schema tag, unknown family or protocol, non-positive counts, an empty
/// grid, or a shard_size that does not divide the work sensibly.
std::optional<manifest> parse_manifest(const obs::json_value& doc,
                                       std::string* error = nullptr);

/// parse_manifest over a file's contents.
std::optional<manifest> load_manifest(const std::string& path,
                                      std::string* error = nullptr);

/// Builds the point's (finalized) topology. Deterministic: randomized
/// families seed a private rng from graph_seed.
graph build_graph(const grid_point& point);

/// Builds the point's protocol via make_protocol (r = n − 1).
std::unique_ptr<protocol> build_protocol(const grid_point& point);

}  // namespace radiocast::campaign
