#include "campaign/manifest.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/runner.h"
#include "graph/generators.h"
#include "util/assert.h"
#include "util/rng.h"

namespace radiocast::campaign {

namespace {

/// Families whose generator draws randomness (graph_seed is meaningful).
bool family_is_randomized(const std::string& family) {
  return family == "gnp" || family == "random-tree";
}

/// Families parameterized by the depth/radius knob d.
bool family_uses_d(const std::string& family) {
  return family == "complete-layered" || family == "layered-fat";
}

std::string format_p(double p) {
  std::ostringstream ss;
  ss << p;
  return ss.str();
}

}  // namespace

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> kFamilies = {
      "path",        "cycle",           "star",        "complete",
      "complete-layered", "layered-fat", "gnp",         "random-tree"};
  return kFamilies;
}

std::string grid_point::case_name() const {
  std::string out = family + "/n=" + std::to_string(n);
  if (family_uses_d(family)) out += "/d=" + std::to_string(d);
  if (family == "gnp") out += "/p=" + format_p(p);
  out += "/" + protocol;
  return out;
}

obs::json_value grid_point::to_json() const {
  obs::json_value v = obs::json_value::object();
  v.set("family", family);
  v.set("n", static_cast<std::int64_t>(n));
  if (family_uses_d(family)) v.set("d", d);
  if (family == "gnp") v.set("p", p);
  if (family_is_randomized(family)) {
    v.set("graph_seed", static_cast<std::int64_t>(graph_seed));
  }
  v.set("protocol", protocol);
  if (known_d > 0) v.set("known_d", known_d);
  return v;
}

obs::json_value manifest::to_json() const {
  obs::json_value doc = obs::json_value::object();
  doc.set("schema", kManifestSchema);
  doc.set("name", name);
  doc.set("base_seed", static_cast<std::int64_t>(base_seed));
  doc.set("trials_per_point", trials_per_point);
  doc.set("shard_size", shard_size);
  doc.set("threads", threads);
  doc.set("max_steps", max_steps);
  obs::json_value grid_json = obs::json_value::array();
  for (const grid_point& point : grid) grid_json.push_back(point.to_json());
  doc.set("grid", std::move(grid_json));
  return doc;
}

std::uint64_t manifest::fingerprint() const {
  // FNV-1a over the canonical serialization: any declarative change —
  // reordered grid included — changes the fingerprint.
  const std::string text = to_json().dump();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::optional<manifest> parse_manifest(const obs::json_value& doc,
                                       std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<manifest> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("manifest is not a JSON object");
  const obs::json_value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kManifestSchema) {
    return fail(std::string("manifest schema must be \"") + kManifestSchema +
                "\"");
  }
  manifest m;
  const obs::json_value* name = doc.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return fail("manifest needs a nonempty string \"name\"");
  }
  m.name = name->as_string();
  if (const obs::json_value* v = doc.find("base_seed")) {
    m.base_seed = static_cast<std::uint64_t>(v->as_int());
  }
  if (const obs::json_value* v = doc.find("trials_per_point")) {
    m.trials_per_point = static_cast<int>(v->as_int());
  }
  if (m.trials_per_point < 1) return fail("trials_per_point must be ≥ 1");
  if (const obs::json_value* v = doc.find("shard_size")) {
    m.shard_size = static_cast<int>(v->as_int());
  }
  if (m.shard_size < 0) return fail("shard_size must be ≥ 0");
  if (m.shard_size == 0) m.shard_size = m.trials_per_point;
  if (const obs::json_value* v = doc.find("threads")) {
    m.threads = static_cast<int>(v->as_int());
  }
  if (m.threads < 0) return fail("threads must be ≥ 0");
  if (const obs::json_value* v = doc.find("max_steps")) {
    m.max_steps = v->as_int();
  }
  if (m.max_steps < 1) return fail("max_steps must be ≥ 1");

  const obs::json_value* grid_json = doc.find("grid");
  if (grid_json == nullptr || !grid_json->is_array() ||
      grid_json->items().empty()) {
    return fail("manifest needs a nonempty \"grid\" array");
  }
  const std::vector<std::string> protocols = protocol_names();
  for (std::size_t i = 0; i < grid_json->items().size(); ++i) {
    const obs::json_value& pj = grid_json->items()[i];
    const std::string where = "grid[" + std::to_string(i) + "]";
    if (!pj.is_object()) return fail(where + " is not an object");
    grid_point point;
    const obs::json_value* family = pj.find("family");
    if (family == nullptr || !family->is_string()) {
      return fail(where + " needs a string \"family\"");
    }
    point.family = family->as_string();
    const std::vector<std::string>& families = family_names();
    if (std::find(families.begin(), families.end(), point.family) ==
        families.end()) {
      return fail(where + ": unknown family \"" + point.family + "\"");
    }
    const obs::json_value* n = pj.find("n");
    if (n == nullptr || !n->is_number() || n->as_int() < 2) {
      return fail(where + " needs integer \"n\" ≥ 2");
    }
    point.n = static_cast<node_id>(n->as_int());
    if (const obs::json_value* v = pj.find("d")) {
      point.d = static_cast<int>(v->as_int());
    }
    if (family_uses_d(point.family) &&
        (point.d < 1 || point.d >= point.n)) {
      return fail(where + ": family \"" + point.family +
                  "\" needs 1 ≤ d < n");
    }
    if (const obs::json_value* v = pj.find("p")) point.p = v->as_double();
    if (point.family == "gnp" && (point.p <= 0.0 || point.p > 1.0)) {
      return fail(where + ": gnp needs 0 < p ≤ 1");
    }
    if (const obs::json_value* v = pj.find("graph_seed")) {
      point.graph_seed = static_cast<std::uint64_t>(v->as_int());
    }
    const obs::json_value* proto = pj.find("protocol");
    if (proto == nullptr || !proto->is_string()) {
      return fail(where + " needs a string \"protocol\"");
    }
    point.protocol = proto->as_string();
    if (std::find(protocols.begin(), protocols.end(), point.protocol) ==
        protocols.end()) {
      return fail(where + ": unknown protocol \"" + point.protocol + "\"");
    }
    if (const obs::json_value* v = pj.find("known_d")) {
      point.known_d = static_cast<int>(v->as_int());
    }
    if (point.protocol == "kp" && point.known_d < 1) {
      return fail(where + ": protocol \"kp\" needs known_d ≥ 1");
    }
    m.grid.push_back(std::move(point));
  }
  return m;
}

std::optional<manifest> load_manifest(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parse_error;
  std::optional<obs::json_value> doc = obs::json_parse(ss.str(), &parse_error);
  if (!doc) {
    if (error != nullptr) *error = path + ": " + parse_error;
    return std::nullopt;
  }
  return parse_manifest(*doc, error);
}

graph build_graph(const grid_point& point) {
  if (point.family == "path") return make_path(point.n);
  if (point.family == "cycle") return make_cycle(point.n);
  if (point.family == "star") return make_star(point.n);
  if (point.family == "complete") return make_complete(point.n);
  if (point.family == "complete-layered") {
    return make_complete_layered_uniform(point.n, point.d);
  }
  if (point.family == "layered-fat") {
    return make_complete_layered_fat(point.n, point.d, point.d);
  }
  if (point.family == "gnp") {
    rng gen(point.graph_seed);
    return make_gnp_connected(point.n, point.p, gen);
  }
  if (point.family == "random-tree") {
    rng gen(point.graph_seed);
    return make_random_tree(point.n, gen);
  }
  RC_REQUIRE_MSG(false, "unknown graph family \"" + point.family + "\"");
}

std::unique_ptr<protocol> build_protocol(const grid_point& point) {
  return make_protocol(point.protocol, point.n - 1, point.known_d);
}

}  // namespace radiocast::campaign
