#include "campaign/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/assert.h"

namespace radiocast::campaign {

namespace {

std::int64_t now_unix_ms() {
  // Operator telemetry only: the timestamp records when the campaign last
  // made durable progress and never influences seeds, schedules, or
  // records (docs/CAMPAIGNS.md).
  const auto since_epoch =
      // radiocast-lint: allow(wall-clock) -- checkpoint freshness
      // timestamp: display-only metadata, never reaches results
      std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::milliseconds>(since_epoch)
      .count();
}

}  // namespace

bool checkpoint::is_completed(int shard) const {
  return std::binary_search(completed.begin(), completed.end(), shard);
}

void checkpoint::mark_completed(int shard) {
  const auto it = std::lower_bound(completed.begin(), completed.end(), shard);
  if (it != completed.end() && *it == shard) return;
  completed.insert(it, shard);
}

obs::json_value checkpoint::to_json() const {
  obs::json_value doc = obs::json_value::object();
  doc.set("schema", kCheckpointSchema);
  doc.set("campaign", campaign);
  doc.set("manifest_fingerprint",
          static_cast<std::int64_t>(manifest_fingerprint));
  doc.set("total_shards", total_shards);
  obs::json_value done = obs::json_value::array();
  for (const int shard : completed) done.push_back(shard);
  doc.set("completed", std::move(done));
  doc.set("updated_unix_ms", updated_unix_ms);
  return doc;
}

std::optional<checkpoint> parse_checkpoint(const obs::json_value& doc,
                                           std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<checkpoint> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const obs::json_value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kCheckpointSchema) {
    return fail(std::string("checkpoint schema must be \"") +
                kCheckpointSchema + "\"");
  }
  checkpoint cp;
  const obs::json_value* campaign = doc.find("campaign");
  if (campaign == nullptr || !campaign->is_string()) {
    return fail("checkpoint needs a string \"campaign\"");
  }
  cp.campaign = campaign->as_string();
  const obs::json_value* fp = doc.find("manifest_fingerprint");
  const obs::json_value* total = doc.find("total_shards");
  const obs::json_value* updated = doc.find("updated_unix_ms");
  if (fp == nullptr || !fp->is_number() || total == nullptr ||
      !total->is_number() || updated == nullptr || !updated->is_number()) {
    return fail("checkpoint is missing an integer field");
  }
  cp.manifest_fingerprint = static_cast<std::uint64_t>(fp->as_int());
  cp.total_shards = static_cast<int>(total->as_int());
  cp.updated_unix_ms = updated->as_int();
  const obs::json_value* done = doc.find("completed");
  if (done == nullptr || !done->is_array()) {
    return fail("checkpoint needs a \"completed\" array");
  }
  for (const obs::json_value& v : done->items()) {
    if (!v.is_number()) return fail("completed entries must be integers");
    cp.completed.push_back(static_cast<int>(v.as_int()));
  }
  if (!std::is_sorted(cp.completed.begin(), cp.completed.end())) {
    return fail("completed shard list is not sorted");
  }
  return cp;
}

std::optional<checkpoint> load_checkpoint(const std::string& path,
                                          std::string* error) {
  if (error != nullptr) error->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // no checkpoint yet: empty error
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string detail;
  std::optional<obs::json_value> doc = obs::json_parse(ss.str(), &detail);
  if (!doc) {
    if (error != nullptr) *error = path + ": " + detail;
    return std::nullopt;
  }
  std::optional<checkpoint> cp = parse_checkpoint(*doc, &detail);
  if (!cp && error != nullptr) *error = path + ": " + detail;
  return cp;
}

void save_checkpoint(const checkpoint& cp, const std::string& path) {
  checkpoint stamped = cp;
  stamped.updated_unix_ms = now_unix_ms();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    RC_CHECK_MSG(static_cast<bool>(out),
                 "cannot open checkpoint temp file " + tmp);
    stamped.to_json().write(out, 2);
    out << '\n';
    out.flush();
    RC_CHECK_MSG(static_cast<bool>(out),
                 "short write to checkpoint temp file " + tmp);
  }
  RC_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot rename " + tmp + " over " + path);
}

}  // namespace radiocast::campaign
