#include "core/round_robin.h"

namespace radiocast {

namespace {

constexpr message_kind kRoundRobinPayload = 1;

class round_robin_node final : public protocol_node {
 public:
  round_robin_node(node_id label, const protocol_params& params)
      : label_(label), modulus_(params.r + 1), informed_(label == 0) {}

  std::optional<message> on_step(const node_context& ctx) override {
    if (!informed_) return std::nullopt;
    if (ctx.step % modulus_ == label_) {
      return message{kRoundRobinPayload, label_, 0, 0, 0};
    }
    return std::nullopt;
  }

  void on_receive(const node_context&, const message&) override {
    informed_ = true;
  }

  bool informed() const override { return informed_; }

  void on_restart(const node_context&) override {
    informed_ = (label_ == 0);  // the only volatile state
  }

 private:
  node_id label_;
  std::int64_t modulus_;
  bool informed_;
};

}  // namespace

std::unique_ptr<protocol_node> round_robin_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<round_robin_node>(label, params);
}

}  // namespace radiocast
