#include "core/round_robin.h"

#include "sim/soa_engine.h"

namespace radiocast {

namespace {

constexpr message_kind kRoundRobinPayload = 1;

class round_robin_node final : public protocol_node {
 public:
  round_robin_node(node_id label, const protocol_params& params)
      : label_(label), modulus_(params.r + 1), informed_(label == 0) {}

  std::optional<message> on_step(const node_context& ctx) override {
    if (!informed_) return std::nullopt;
    if (ctx.step % modulus_ == label_) {
      return message{kRoundRobinPayload, label_, 0, 0, 0};
    }
    return std::nullopt;
  }

  void on_receive(const node_context&, const message&) override {
    informed_ = true;
  }

  bool informed() const override { return informed_; }

  void on_restart(const node_context&) override {
    informed_ = (label_ == 0);  // the only volatile state
  }

 private:
  node_id label_;
  std::int64_t modulus_;
  bool informed_;
};

// SoA mirror of round_robin_node (sim/soa_engine.h traits).
struct round_robin_soa_traits {
  std::int64_t modulus = 1;  // shared config: r + 1, set by the entry

  // Per-step cache (begin_step hoist): the schedule slot is the same for
  // every node, so the division happens once per step, not per node.
  std::int64_t step_slot = 0;

  struct state {
    node_id label = 0;
    bool informed = false;
  };

  void init(state* s, node_id label, const protocol_params&) const {
    s->label = label;
    s->informed = (label == 0);
  }

  void begin_step(std::int64_t step) { step_slot = step % modulus; }

  std::optional<message> on_step(state* s, const node_context&) const {
    if (!s->informed) return std::nullopt;
    if (step_slot == s->label) {
      return message{kRoundRobinPayload, s->label, 0, 0, 0};
    }
    return std::nullopt;
  }

  void on_receive(state* s, const node_context&, const message&) const {
    s->informed = true;
  }

  bool informed(const state& s) const { return s.informed; }
  bool halted(const state&) const { return false; }

  void on_restart(state* s, const node_context&) const {
    s->informed = (s->label == 0);  // the only volatile state
  }
};

run_result round_robin_soa_entry(const graph& g, const protocol&, node_id r,
                                 const run_options& opts) {
  round_robin_soa_traits traits;
  traits.modulus = r + 1;
  return run_broadcast_soa(g, traits, r, opts);
}

}  // namespace

std::unique_ptr<protocol_node> round_robin_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<round_robin_node>(label, params);
}

soa_entry round_robin_protocol::soa_runner() const {
  return &round_robin_soa_entry;
}

}  // namespace radiocast
