// Round-robin deterministic broadcasting.
//
// Every informed node transmits exactly when the global step number is
// congruent to its label modulo r+1, so no two nodes ever collide and the
// informed frontier advances at least one layer per round of r+1 steps:
// time ≤ (r+1)·D = O(nD). The paper interleaves this scheme with
// Select-and-Send to obtain O(n·min(D, log n)) (Section 4.2).
#pragma once

#include "sim/protocol.h"

namespace radiocast {

class round_robin_protocol final : public protocol {
 public:
  round_robin_protocol() = default;

  std::string name() const override { return "round-robin"; }
  bool deterministic() const override { return true; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const override;
  /// Struct-of-arrays step form (step_engine::soa) — deterministic, so the
  /// mirror is trivial: label + informed flag.
  soa_entry soa_runner() const override;
};

}  // namespace radiocast
