// Interleaved Round-Robin / Select-and-Send (paper, Section 4.2, remark).
//
// Even global steps run round-robin (O(nD) alone), odd steps run
// Select-and-Send (O(n log n) alone); the two streams never interact, so
// all nodes are informed after 2·min(T_rr, T_sas) + O(1) steps =
// O(n · min(D, log n)).
//
// The round-robin stream uses the node's combined informed state (a node
// woken through either stream joins the round-robin schedule), which can
// only speed it up; the Select-and-Send stream runs exactly as it would in
// isolation on its own step subsequence.
#pragma once

#include "sim/protocol.h"

namespace radiocast {

class interleaved_protocol final : public protocol {
 public:
  interleaved_protocol() = default;

  std::string name() const override { return "interleaved(rr+sas)"; }
  bool deterministic() const override { return true; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const override;
  /// Struct-of-arrays step form (step_engine::soa): POD per-node state,
  /// decisions and metrics writes bit-identical to the virtual node.
  soa_entry soa_runner() const override;
};

}  // namespace radiocast
