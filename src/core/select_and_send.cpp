#include "core/select_and_send.h"

#include <optional>

#include "core/echo.h"
#include "obs/metrics.h"

namespace radiocast {

namespace {

// Message kinds (see core/echo.h for the order/reply payload layout).
constexpr message_kind kAnnounce = 1;   // source's step-0 announcement
constexpr message_kind kPresence = 2;   // neighbor i replies in step 2i
constexpr message_kind kStopToken = 3;  // a = label receiving the token
constexpr message_kind kOrder = 4;      // echo order
constexpr message_kind kReply = 5;      // echo reply
constexpr message_kind kToken = 6;      // a = label receiving the token

constexpr selection_kinds kKinds{kOrder, kReply};

class sas_node final : public protocol_node {
 public:
  sas_node(node_id label, const protocol_params& params)
      : label_(label), r_(params.r) {
    if (label_ == 0) {
      informed_ = true;
      visited_ = true;
    }
  }

  std::optional<message> on_step(const node_context& ctx) override {
    // The source opens the algorithm.
    if (label_ == 0 && ctx.step == 0) {
      awaiting_presence_ = true;
      return message{kAnnounce, 0, 0, 0, 0};
    }
    // Scheduled duties (presence replies, echo replies — including helper
    // replies owed after this node stopped).
    if (auto due = pending_.take(ctx.step)) return due;
    if (driving_) return drive(ctx);
    return std::nullopt;
  }

  void on_receive(const node_context& ctx, const message& msg) override {
    informed_ = true;  // every message functionally carries the source word
    switch (msg.kind) {
      case kAnnounce:
        // Reserve slot 2·label for our presence reply.
        pending_.schedule(ctx.step + 2 * static_cast<std::int64_t>(label_),
                          message{kPresence, label_, 0, 0, 0});
        break;
      case kPresence:
        if (label_ == 0 && awaiting_presence_) {
          awaiting_presence_ = false;
          helper_ = msg.from;  // j: the source's known neighbor
          pending_.schedule(ctx.step + 1,
                            message{kStopToken, 0, msg.from, 0, 0});
        }
        break;
      case kStopToken:
        pending_.clear();  // cancels any outstanding presence reservation
        if (static_cast<node_id>(msg.a) == label_) take_token(ctx, msg.from);
        break;
      case kToken:
        if (static_cast<node_id>(msg.a) == label_) take_token(ctx, msg.from);
        break;
      case kOrder:
        if (driving_) break;  // impossible in a clean run; ignore defensively
        schedule_echo_replies(pending_, kKinds, msg, ctx.step, label_,
                              /*is_member=*/!visited_);
        break;
      case kReply:
        if (driving_ && driver_) driver_->on_receive(msg);
        break;
      default:
        break;
    }
  }

  bool informed() const override { return informed_; }
  bool halted() const override { return halted_; }

  void on_restart(const node_context&) override {
    // Amnesia reboot: every member below label_/r_ is volatile DFS state.
    // A rebooted token holder orphans the traversal — the run may stall,
    // which is exactly the brittleness the resilience bench measures.
    informed_ = visited_ = (label_ == 0);
    halted_ = false;
    driving_ = false;
    awaiting_presence_ = false;
    parent_ = -1;
    helper_ = -1;
    pending_.clear();
    driver_.reset();
  }

 private:
  void take_token(const node_context& ctx, node_id from) {
    if (!visited_) {
      visited_ = true;
      parent_ = from;
      helper_ = from;
      if (ctx.metrics != nullptr) {
        ctx.metrics->get_counter("sas.first_visits").add();
      }
    }
    if (ctx.metrics != nullptr) {
      // Phase marker: every DFS token hop (forward passes and returns).
      ctx.metrics->get_counter("sas.token_hops").add();
    }
    // (visited_ && token addressed to us) ⇒ a child returned the token:
    // resume the DFS with a fresh probe either way.
    driving_ = true;
    pending_.clear();
    driver_.emplace(kKinds, helper_, r_);
    driver_->set_metrics(ctx.metrics);
  }

  std::optional<message> drive(const node_context& ctx) {
    std::optional<message> out = driver_->on_step(ctx.step);
    if (!driver_->finished()) return out;
    driving_ = false;
    if (ctx.metrics != nullptr) {
      ctx.metrics->get_histogram("sas.segments_per_selection")
          .observe(driver_->segments_issued());
    }
    if (driver_->result() == selection_driver::status::selected) {
      // Pass the token forward; we resume when it comes back.
      const node_id next = driver_->selected();
      driver_.reset();
      if (ctx.metrics != nullptr) {
        ctx.metrics->get_counter("sas.selections").add();
      }
      return message{kToken, label_, next, 0, 0};
    }
    // S = ∅: the subtree below us is complete.
    driver_.reset();
    halted_ = true;
    if (ctx.metrics != nullptr) {
      ctx.metrics->get_counter("sas.subtrees_completed").add();
    }
    if (label_ == 0) return std::nullopt;  // the traversal is over
    return message{kToken, label_, parent_, 0, 0};
  }

  node_id label_;
  node_id r_;
  bool informed_ = false;
  bool visited_ = false;
  bool halted_ = false;
  bool driving_ = false;
  bool awaiting_presence_ = false;
  node_id parent_ = -1;
  node_id helper_ = -1;
  pending_tx pending_;
  std::optional<selection_driver> driver_;
};

}  // namespace

std::unique_ptr<protocol_node> select_and_send_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<sas_node>(label, params);
}

}  // namespace radiocast
