#include "core/select_and_send.h"

#include <optional>

#include "core/echo.h"
#include "core/select_and_send_soa.h"
#include "obs/metrics.h"
#include "sim/soa_engine.h"

namespace radiocast {

namespace {

// Message kinds, shared with the SoA mirror (core/select_and_send_soa.h)
// so the two forms cannot drift apart; see core/echo.h for the order/reply
// payload layout.
constexpr message_kind kAnnounce = sas_proto::kAnnounce;
constexpr message_kind kPresence = sas_proto::kPresence;
constexpr message_kind kStopToken = sas_proto::kStopToken;
constexpr message_kind kOrder = sas_proto::kOrder;
constexpr message_kind kReply = sas_proto::kReply;
constexpr message_kind kToken = sas_proto::kToken;

constexpr selection_kinds kKinds = sas_proto::kKinds;

class sas_node final : public protocol_node {
 public:
  sas_node(node_id label, const protocol_params& params)
      : label_(label), r_(params.r) {
    if (label_ == 0) {
      informed_ = true;
      visited_ = true;
    }
  }

  std::optional<message> on_step(const node_context& ctx) override {
    // The source opens the algorithm.
    if (label_ == 0 && ctx.step == 0) {
      awaiting_presence_ = true;
      return message{kAnnounce, 0, 0, 0, 0};
    }
    // Scheduled duties (presence replies, echo replies — including helper
    // replies owed after this node stopped).
    if (auto due = pending_.take(ctx.step)) return due;
    if (driving_) return drive(ctx);
    return std::nullopt;
  }

  void on_receive(const node_context& ctx, const message& msg) override {
    informed_ = true;  // every message functionally carries the source word
    switch (msg.kind) {
      case kAnnounce:
        // Reserve slot 2·label for our presence reply.
        pending_.schedule(ctx.step + 2 * static_cast<std::int64_t>(label_),
                          message{kPresence, label_, 0, 0, 0});
        break;
      case kPresence:
        if (label_ == 0 && awaiting_presence_) {
          awaiting_presence_ = false;
          helper_ = msg.from;  // j: the source's known neighbor
          pending_.schedule(ctx.step + 1,
                            message{kStopToken, 0, msg.from, 0, 0});
        }
        break;
      case kStopToken:
        pending_.clear();  // cancels any outstanding presence reservation
        if (static_cast<node_id>(msg.a) == label_) take_token(ctx, msg.from);
        break;
      case kToken:
        if (static_cast<node_id>(msg.a) == label_) take_token(ctx, msg.from);
        break;
      case kOrder:
        if (driving_) break;  // impossible in a clean run; ignore defensively
        schedule_echo_replies(pending_, kKinds, msg, ctx.step, label_,
                              /*is_member=*/!visited_);
        break;
      case kReply:
        if (driving_ && driver_) driver_->on_receive(msg);
        break;
      default:
        break;
    }
  }

  bool informed() const override { return informed_; }
  bool halted() const override { return halted_; }

  void on_restart(const node_context&) override {
    // Amnesia reboot: every member below label_/r_ is volatile DFS state.
    // A rebooted token holder orphans the traversal — the run may stall,
    // which is exactly the brittleness the resilience bench measures.
    informed_ = visited_ = (label_ == 0);
    halted_ = false;
    driving_ = false;
    awaiting_presence_ = false;
    parent_ = -1;
    helper_ = -1;
    pending_.clear();
    driver_.reset();
  }

 private:
  void take_token(const node_context& ctx, node_id from) {
    if (!visited_) {
      visited_ = true;
      parent_ = from;
      helper_ = from;
      if (ctx.metrics != nullptr) {
        ctx.metrics->get_counter("sas.first_visits").add();
      }
    }
    if (ctx.metrics != nullptr) {
      // Phase marker: every DFS token hop (forward passes and returns).
      ctx.metrics->get_counter("sas.token_hops").add();
    }
    // (visited_ && token addressed to us) ⇒ a child returned the token:
    // resume the DFS with a fresh probe either way.
    driving_ = true;
    pending_.clear();
    driver_.emplace(kKinds, helper_, r_);
    driver_->set_metrics(ctx.metrics);
  }

  std::optional<message> drive(const node_context& ctx) {
    std::optional<message> out = driver_->on_step(ctx.step);
    if (!driver_->finished()) return out;
    driving_ = false;
    if (ctx.metrics != nullptr) {
      ctx.metrics->get_histogram("sas.segments_per_selection")
          .observe(driver_->segments_issued());
    }
    if (driver_->result() == selection_driver::status::selected) {
      // Pass the token forward; we resume when it comes back.
      const node_id next = driver_->selected();
      driver_.reset();
      if (ctx.metrics != nullptr) {
        ctx.metrics->get_counter("sas.selections").add();
      }
      return message{kToken, label_, next, 0, 0};
    }
    // S = ∅: the subtree below us is complete.
    driver_.reset();
    halted_ = true;
    if (ctx.metrics != nullptr) {
      ctx.metrics->get_counter("sas.subtrees_completed").add();
    }
    if (label_ == 0) return std::nullopt;  // the traversal is over
    return message{kToken, label_, parent_, 0, 0};
  }

  node_id label_;
  node_id r_;
  bool informed_ = false;
  bool visited_ = false;
  bool halted_ = false;
  bool driving_ = false;
  bool awaiting_presence_ = false;
  node_id parent_ = -1;
  node_id helper_ = -1;
  pending_tx pending_;
  std::optional<selection_driver> driver_;
};

// SoA mirror of sas_node (sim/soa_engine.h traits). The state machine
// itself lives in core/select_and_send_soa.h — shared with the interleaved
// protocol's odd-step stream — so this traits struct is the thin adapter
// between the engine's hook signatures and the sas core. Every hook must
// stay behaviorally identical to the virtual node above; the three-way
// differential suite and the chaos engine-bit-identity invariant hold the
// pair together.
struct sas_soa_traits {
  node_id r_bound = 1;  // shared config: the label bound r, set by the entry

  struct state {
    sas_proto::sas_soa_state core;
  };

  void init(state* s, node_id label, const protocol_params&) const {
    sas_proto::sas_soa_init(&s->core, label);
  }

  std::optional<message> on_step(state* s, const node_context& ctx) const {
    return sas_proto::sas_soa_on_step(&s->core, ctx.step, r_bound,
                                      ctx.metrics);
  }

  void on_receive(state* s, const node_context& ctx, const message& m) const {
    sas_proto::sas_soa_on_receive(&s->core, ctx.step, r_bound, ctx.metrics,
                                  m);
  }

  bool informed(const state& s) const { return s.core.informed; }
  bool halted(const state& s) const { return s.core.halted; }

  void on_restart(state* s, const node_context&) const {
    sas_proto::sas_soa_restart(&s->core);
  }
};

run_result sas_soa_entry(const graph& g, const protocol&, node_id r,
                         const run_options& opts) {
  sas_soa_traits traits;
  traits.r_bound = r;
  return run_broadcast_soa(g, traits, r, opts);
}

}  // namespace

std::unique_ptr<protocol_node> select_and_send_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<sas_node>(label, params);
}

soa_entry select_and_send_protocol::soa_runner() const {
  return &sas_soa_entry;
}

}  // namespace radiocast
