// Linear-time DFS broadcasting under the KNOWN-NEIGHBORHOOD model
// ([2] Awerbuch / [3] Bar-Yehuda–Goldreich–Itai, discussed in the paper's
// §1.1: "a simple linear-time broadcasting algorithm based on DFS follows
// from [2]").
//
// Model extension: each node knows the labels of its neighbors a priori —
// strictly more knowledge than the paper's main model (own label + r), and
// exactly what makes Echo/Binary-Selection unnecessary. A token walks the
// graph in DFS order:
//   * on first receiving the token a node transmits one announcement; every
//     neighbor hears it (single transmitter) and marks the node visited, so
//     each node always knows which of its own neighbors remain unvisited;
//   * the holder then forwards the token to its lowest-labeled unvisited
//     neighbor, or back to its parent when none remain.
// Two steps per visit plus one per backtrack ⇒ O(n) total, collision-free.
//
// This is the natural "what neighborhood knowledge buys" baseline next to
// Select-and-Send's O(n log n) — the per-visit Θ(log n) selection cost is
// exactly the price of not knowing one's neighbors.
#pragma once

#include "graph/graph.h"
#include "sim/protocol.h"

namespace radiocast {

class dfs_known_protocol final : public protocol {
 public:
  /// The protocol hands each node its own adjacency list from `g` — the
  /// known-neighborhood assumption. `g` must outlive the protocol and any
  /// runs (the simulator's topology must be the same graph).
  explicit dfs_known_protocol(const graph& g);

  std::string name() const override { return "dfs-known-neighbors"; }
  bool deterministic() const override { return true; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const override;

 private:
  const graph& g_;
};

}  // namespace radiocast
