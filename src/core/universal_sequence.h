// Universal probability sequences (paper, Section 2, Lemma 1).
//
// An infinite sequence (p_i) of probabilities is *universal* for parameters
// r, D (powers of two) if:
//
//   U1. for every j = log(r/D)+1, …, J:  every window of
//       3·D·2ʲ/r consecutive positions contains the value 1/2ʲ;
//   U2. for every j = J+1, …, log r:  every window of
//       3·D·2ʲ/(r·2^{⌈log log r⌉+1}) consecutive positions contains 1/2ʲ,
//
// where J = ⌊log(r / (4 log r))⌋. (The conference/journal typesetting of the
// bound "⌊log r/4 log r⌋" collapses the fraction r/(4 log r); the counting
// argument in the proof of Lemma 1 — 2r/2^J ≈ 8 log r — pins this reading.)
//
// The constructed sequence is periodic with period < 3·D in the paper's
// regime (D > 32·r^(2/3)); it is built exactly as in the proof of Lemma 1:
// value 1/2ʲ is attached to every tree node at a prescribed level of a
// complete binary tree of depth log D, the values are pushed down to leaves
// in a balanced left-to-right fashion, and the leaf sequences are
// concatenated and repeated.
//
// Outside the paper's asymptotic regime (small r or D) some prescribed
// levels exceed the tree depth; we clamp them to the leaf level. This keeps
// the construction total; the U1/U2 window properties are only guaranteed —
// and only asserted by the tests — in the valid regime.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace radiocast {

class universal_sequence {
 public:
  /// Builds the sequence for r = 2^log_r, D = 2^log_d; requires
  /// 0 ≤ log_d ≤ log_r and log_r ≥ 1.
  universal_sequence(int log_r, int log_d);

  int log_r() const noexcept { return log_r_; }
  int log_d() const noexcept { return log_d_; }

  /// Length of the repeating block.
  std::int64_t period() const noexcept {
    return static_cast<std::int64_t>(exponents_.size());
  }

  /// Exponent j of p_i = 2^(−j), for 1-based position i (as in the paper).
  int exponent_at(std::int64_t i) const;

  /// p_i itself.
  double probability_at(std::int64_t i) const;

  /// Inclusive exponent range covered by condition U1 (lo > hi ⇒ empty).
  int u1_lo() const noexcept { return u1_lo_; }
  int u1_hi() const noexcept { return u1_hi_; }

  /// Inclusive exponent range covered by condition U2 (lo > hi ⇒ empty).
  int u2_lo() const noexcept { return u2_lo_; }
  int u2_hi() const noexcept { return u2_hi_; }

  /// The U1 window bound 3·D·2ʲ/r for exponent j (exact integer).
  std::int64_t u1_gap_bound(int j) const;

  /// The U2 window bound 3·D·2ʲ/(r·2^(⌈log log r⌉+1)) for exponent j.
  /// May round to ≥ 1.
  std::int64_t u2_gap_bound(int j) const;

  /// Largest cyclic gap between consecutive occurrences of exponent j in
  /// the periodic sequence; period()+1 if j never occurs.
  std::int64_t max_cyclic_gap(int j) const;

  /// ⌈log log r⌉ as used by U2.
  int log_log_r() const noexcept { return log_log_r_; }

 private:
  int log_r_;
  int log_d_;
  int log_log_r_;
  int u1_lo_, u1_hi_, u2_lo_, u2_hi_;
  std::vector<int> exponents_;  // one period, exponents j of 1/2ʲ
};

}  // namespace radiocast
