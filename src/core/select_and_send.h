// Algorithm Select-and-Send (paper, Section 4.2, Theorem 3).
//
// Deterministic O(n log n) broadcasting on arbitrary undirected networks:
// a token performs a DFS traversal; at each visited node the next unvisited
// neighbor is found with Procedure Echo and Algorithm Binary-Selection
// (core/echo.h). The initial move out of the source reserves time slot 2i
// for the potential neighbor with label i and picks the first responder.
//
// Roles a node can play over its lifetime:
//   * source: announces, collects the first presence reply, hands the token
//     to the lowest-labeled neighbor j, and uses j as its Echo helper;
//   * driver (token holder): runs a selection_driver; on success passes the
//     token forward, on an empty neighbor set returns it to its parent and
//     stops;
//   * responder: any node replies to echo orders while unvisited, and
//     replies as the helper in echo step 2 whenever an order names it —
//     even after it stopped (the helper reply is part of the *caller's*
//     procedure).
//
// Broadcasting time (all nodes informed) is reached strictly before full
// termination (token back at the source); run with
// stop_condition::all_halted to measure the full O(n log n) traversal.
#pragma once

#include "sim/protocol.h"

namespace radiocast {

class select_and_send_protocol final : public protocol {
 public:
  select_and_send_protocol() = default;

  std::string name() const override { return "select-and-send"; }
  bool deterministic() const override { return true; }
  std::unique_ptr<protocol_node> make_node(
      node_id label, const protocol_params& params) const override;
  /// Struct-of-arrays step form (step_engine::soa): POD per-node state,
  /// decisions and metrics writes bit-identical to the virtual node.
  soa_entry soa_runner() const override;
};

}  // namespace radiocast
