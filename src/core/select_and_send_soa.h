// POD mirror of the Select-and-Send node (core/select_and_send.cpp) for the
// SoA step engine, shared between two traits: select_and_send's own SoA
// form and the interleaved(rr+sas) form, which runs this exact state
// machine on its odd-step subsequence (with a null metrics registry,
// matching the virtual wrapper's sub-context). The message kinds live here
// so the virtual node and the SoA mirror cannot drift apart.
//
// Every function must stay BEHAVIORALLY IDENTICAL to sas_node — same
// emissions, same metrics writes, in the same order. The three-way
// differential suite and the chaos engine-bit-identity invariant enforce
// the pairing.
#pragma once

#include <cstdint>
#include <optional>

#include "core/echo_soa.h"
#include "obs/metrics.h"
#include "sim/message.h"

namespace radiocast::sas_proto {

// Message kinds (see core/echo.h for the order/reply payload layout).
constexpr message_kind kAnnounce = 1;   // source's step-0 announcement
constexpr message_kind kPresence = 2;   // neighbor i replies in step 2i
constexpr message_kind kStopToken = 3;  // a = label receiving the token
constexpr message_kind kOrder = 4;      // echo order
constexpr message_kind kReply = 5;      // echo reply
constexpr message_kind kToken = 6;      // a = label receiving the token

constexpr selection_kinds kKinds{kOrder, kReply};

/// Flat per-node Select-and-Send state (56 bytes): the sas_node members
/// with pending_tx/selection_driver replaced by their POD mirrors.
struct sas_soa_state {
  node_id label = -1;
  node_id parent = -1;
  node_id helper = -1;
  soa_pending pending;
  soa_selection sel;
  bool informed = false;
  bool visited = false;
  bool halted = false;
  bool driving = false;
  bool awaiting_presence = false;
};

inline void sas_soa_init(sas_soa_state* s, node_id label) {
  *s = sas_soa_state{};
  s->label = label;
  if (label == 0) {
    s->informed = true;
    s->visited = true;
  }
}

/// Mirror of sas_node::on_restart: back to the constructed state.
inline void sas_soa_restart(sas_soa_state* s) { sas_soa_init(s, s->label); }

/// Mirror of sas_node::take_token.
inline void sas_soa_take_token(sas_soa_state* s, node_id from, node_id r,
                               obs::metrics_registry* metrics) {
  if (!s->visited) {
    s->visited = true;
    s->parent = from;
    s->helper = from;
    if (metrics != nullptr) {
      metrics->get_counter("sas.first_visits").add();
    }
  }
  if (metrics != nullptr) {
    // Phase marker: every DFS token hop (forward passes and returns).
    metrics->get_counter("sas.token_hops").add();
  }
  // (visited && token addressed to us) ⇒ a child returned the token:
  // resume the DFS with a fresh probe either way.
  s->driving = true;
  s->pending.clear();
  sel_init(&s->sel, r);
}

/// Mirror of pending_tx::take + the original schedule sites: reconstructs
/// the due message from the structural kind and the node's state (the
/// contents are pure functions of both — see echo_soa.h).
inline std::optional<message> sas_soa_take_pending(sas_soa_state* s,
                                                   std::int64_t step) {
  switch (s->pending.take(step)) {
    case 1:
      if (s->pending.one_kind == kPresence) {
        return message{kPresence, s->label, 0, 0, 0};
      }
      // kStopToken: a = the selected helper's label (stored when the
      // source heard the first presence reply).
      return message{kStopToken, 0, s->helper, 0, 0};
    case 2:
      return message{kReply, s->label, 0, 0, 0};
    default:
      return std::nullopt;
  }
}

/// Mirror of sas_node::drive.
inline std::optional<message> sas_soa_drive(sas_soa_state* s,
                                            std::int64_t step, node_id r,
                                            obs::metrics_registry* metrics) {
  std::optional<message> out =
      sel_on_step(&s->sel, kKinds, s->helper, r, metrics);
  (void)step;
  if (!sel_finished(s->sel)) return out;
  s->driving = false;
  if (metrics != nullptr) {
    metrics->get_histogram("sas.segments_per_selection")
        .observe(s->sel.segments);
  }
  if (sel_selected(s->sel)) {
    // Pass the token forward; we resume when it comes back.
    const node_id next = s->sel.heard1;
    if (metrics != nullptr) {
      metrics->get_counter("sas.selections").add();
    }
    return message{kToken, s->label, next, 0, 0};
  }
  // S = ∅: the subtree below us is complete.
  s->halted = true;
  if (metrics != nullptr) {
    metrics->get_counter("sas.subtrees_completed").add();
  }
  if (s->label == 0) return std::nullopt;  // the traversal is over
  return message{kToken, s->label, s->parent, 0, 0};
}

/// Mirror of sas_node::on_step.
inline std::optional<message> sas_soa_on_step(sas_soa_state* s,
                                              std::int64_t step, node_id r,
                                              obs::metrics_registry* metrics) {
  // The source opens the algorithm.
  if (s->label == 0 && step == 0) {
    s->awaiting_presence = true;
    return message{kAnnounce, 0, 0, 0, 0};
  }
  // Scheduled duties (presence replies, echo replies — including helper
  // replies owed after this node stopped).
  if (auto due = sas_soa_take_pending(s, step)) return due;
  if (s->driving) return sas_soa_drive(s, step, r, metrics);
  return std::nullopt;
}

/// Mirror of sas_node::on_receive.
inline void sas_soa_on_receive(sas_soa_state* s, std::int64_t step, node_id r,
                               obs::metrics_registry* metrics,
                               const message& msg) {
  s->informed = true;  // every message functionally carries the source word
  switch (msg.kind) {
    case kAnnounce:
      // Reserve slot 2·label for our presence reply.
      s->pending.schedule_structural(
          step + 2 * static_cast<std::int64_t>(s->label), kPresence);
      break;
    case kPresence:
      if (s->label == 0 && s->awaiting_presence) {
        s->awaiting_presence = false;
        s->helper = msg.from;  // j: the source's known neighbor
        s->pending.schedule_structural(step + 1, kStopToken);
      }
      break;
    case kStopToken:
      s->pending.clear();  // cancels any outstanding presence reservation
      if (static_cast<node_id>(msg.a) == s->label) {
        sas_soa_take_token(s, msg.from, r, metrics);
      }
      break;
    case kToken:
      if (static_cast<node_id>(msg.a) == s->label) {
        sas_soa_take_token(s, msg.from, r, metrics);
      }
      break;
    case kOrder:
      if (s->driving) break;  // impossible in a clean run; ignore defensively
      soa_schedule_echo_replies(&s->pending, kKinds, msg, step, s->label,
                                /*is_member=*/!s->visited);
      break;
    case kReply:
      if (s->driving) sel_on_receive(&s->sel, kKinds, msg);
      break;
    default:
      break;
  }
}

}  // namespace radiocast::sas_proto
