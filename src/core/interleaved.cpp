#include "core/interleaved.h"

#include "core/select_and_send.h"

namespace radiocast {

namespace {

constexpr message_kind kRoundRobinPayload = 100;

class interleaved_node final : public protocol_node {
 public:
  interleaved_node(node_id label, const protocol_params& params)
      : label_(label),
        modulus_(params.r + 1),
        sas_(select_and_send_protocol().make_node(label, params)),
        informed_(label == 0) {}

  std::optional<message> on_step(const node_context& ctx) override {
    if (ctx.step % 2 == 0) {
      // Round-robin stream on virtual step ctx.step / 2.
      const std::int64_t vstep = ctx.step / 2;
      if (informed() && vstep % modulus_ == label_) {
        return message{kRoundRobinPayload, label_, 0, 0, 0, 0};
      }
      return std::nullopt;
    }
    const node_context sub{(ctx.step - 1) / 2, ctx.gen};
    return sas_->on_step(sub);
  }

  void on_receive(const node_context& ctx, const message& msg) override {
    informed_ = true;
    if (ctx.step % 2 == 1) {
      const node_context sub{(ctx.step - 1) / 2, ctx.gen};
      sas_->on_receive(sub, msg);
    }
    // Even-step (round-robin) receptions carry no protocol state beyond
    // the source word itself.
  }

  bool informed() const override { return informed_ || sas_->informed(); }
  bool halted() const override { return sas_->halted(); }

  void on_restart(const node_context& ctx) override {
    // Both interleaved streams lose their volatile state together.
    informed_ = (label_ == 0);
    sas_->on_restart(ctx);
  }

 private:
  node_id label_;
  std::int64_t modulus_;
  std::unique_ptr<protocol_node> sas_;
  bool informed_;
};

}  // namespace

std::unique_ptr<protocol_node> interleaved_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<interleaved_node>(label, params);
}

}  // namespace radiocast
