#include "core/interleaved.h"

#include "core/select_and_send.h"
#include "core/select_and_send_soa.h"
#include "sim/soa_engine.h"

namespace radiocast {

namespace {

constexpr message_kind kRoundRobinPayload = 100;

class interleaved_node final : public protocol_node {
 public:
  interleaved_node(node_id label, const protocol_params& params)
      : label_(label),
        modulus_(params.r + 1),
        sas_(select_and_send_protocol().make_node(label, params)),
        informed_(label == 0) {}

  std::optional<message> on_step(const node_context& ctx) override {
    if (ctx.step % 2 == 0) {
      // Round-robin stream on virtual step ctx.step / 2.
      const std::int64_t vstep = ctx.step / 2;
      if (informed() && vstep % modulus_ == label_) {
        return message{kRoundRobinPayload, label_, 0, 0, 0, 0};
      }
      return std::nullopt;
    }
    const node_context sub{(ctx.step - 1) / 2, ctx.gen};
    return sas_->on_step(sub);
  }

  void on_receive(const node_context& ctx, const message& msg) override {
    informed_ = true;
    if (ctx.step % 2 == 1) {
      const node_context sub{(ctx.step - 1) / 2, ctx.gen};
      sas_->on_receive(sub, msg);
    }
    // Even-step (round-robin) receptions carry no protocol state beyond
    // the source word itself.
  }

  bool informed() const override { return informed_ || sas_->informed(); }
  bool halted() const override { return sas_->halted(); }

  void on_restart(const node_context& ctx) override {
    // Both interleaved streams lose their volatile state together.
    informed_ = (label_ == 0);
    sas_->on_restart(ctx);
  }

 private:
  node_id label_;
  std::int64_t modulus_;
  std::unique_ptr<protocol_node> sas_;
  bool informed_;
};

// SoA mirror of interleaved_node (sim/soa_engine.h traits). The odd-step
// Select-and-Send stream reuses the shared sas_proto state machine
// (core/select_and_send_soa.h) with a null metrics registry, matching the
// virtual wrapper's sub-context. begin_step hoists the round-robin slot
// and virtual-substep arithmetic out of the per-node loop: they depend
// only on the global step, not on the node.
struct interleaved_soa_traits {
  node_id r_bound = 1;        // shared config: the label bound r
  std::int64_t modulus = 1;   // round-robin modulus, r + 1
  // Per-step hoists, recomputed by begin_step.
  bool even_step = false;
  std::int64_t rr_slot = 0;   // (step / 2) % modulus on even steps
  std::int64_t sub_step = 0;  // (step − 1) / 2, the sas virtual step

  struct state {
    sas_proto::sas_soa_state sas;
    bool rr_informed = false;
  };

  void begin_step(std::int64_t step) {
    even_step = (step % 2 == 0);
    rr_slot = (step / 2) % modulus;
    sub_step = (step - 1) / 2;
  }

  void init(state* s, node_id label, const protocol_params&) const {
    sas_proto::sas_soa_init(&s->sas, label);
    s->rr_informed = (label == 0);
  }

  std::optional<message> on_step(state* s, const node_context&) const {
    if (even_step) {
      // Round-robin stream on virtual step ctx.step / 2.
      if ((s->rr_informed || s->sas.informed) && rr_slot == s->sas.label) {
        return message{kRoundRobinPayload, s->sas.label, 0, 0, 0, 0};
      }
      return std::nullopt;
    }
    return sas_proto::sas_soa_on_step(&s->sas, sub_step, r_bound, nullptr);
  }

  void on_receive(state* s, const node_context&, const message& m) const {
    s->rr_informed = true;
    if (!even_step) {
      sas_proto::sas_soa_on_receive(&s->sas, sub_step, r_bound, nullptr, m);
    }
    // Even-step (round-robin) receptions carry no protocol state beyond
    // the source word itself.
  }

  bool informed(const state& s) const {
    return s.rr_informed || s.sas.informed;
  }
  bool halted(const state& s) const { return s.sas.halted; }

  void on_restart(state* s, const node_context&) const {
    // Both interleaved streams lose their volatile state together.
    sas_proto::sas_soa_restart(&s->sas);
    s->rr_informed = (s->sas.label == 0);
  }
};

run_result interleaved_soa_entry(const graph& g, const protocol&, node_id r,
                                 const run_options& opts) {
  interleaved_soa_traits traits;
  traits.r_bound = r;
  traits.modulus = static_cast<std::int64_t>(r) + 1;
  return run_broadcast_soa(g, traits, r, opts);
}

}  // namespace

std::unique_ptr<protocol_node> interleaved_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<interleaved_node>(label, params);
}

soa_entry interleaved_protocol::soa_runner() const {
  return &interleaved_soa_entry;
}

}  // namespace radiocast
