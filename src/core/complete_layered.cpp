#include "core/complete_layered.h"

#include <optional>

#include "core/echo.h"

namespace radiocast {

namespace {

constexpr message_kind kAnnounce = 1;    // source's step-0 announcement
constexpr message_kind kPresence = 2;    // L₁ member i replies in step 2i
constexpr message_kind kStopSelect = 3;  // a = v₁'s label
constexpr message_kind kOrder = 4;       // echo order (a=lo, b=hi, c=helper)
constexpr message_kind kReply = 5;       // echo reply
constexpr message_kind kSelect = 6;      // a = next chain head's label
constexpr message_kind kStopLayer = 7;   // b = layer ordered to stop
constexpr message_kind kStopAll = 8;     // terminal stop (k = D reached)

constexpr selection_kinds kKinds{kOrder, kReply};

class cl_node final : public protocol_node {
 public:
  cl_node(node_id label, const protocol_params& params)
      : label_(label), r_(params.r) {
    if (label_ == 0) {
      informed_ = true;
      layer_ = 0;
    }
  }

  std::optional<message> on_step(const node_context& ctx) override {
    std::optional<message> out;
    if (label_ == 0 && ctx.step == 0) {
      awaiting_presence_ = true;
      out = message{kAnnounce, 0, 0, 0, 0, 0};
    } else if (auto due = pending_.take(ctx.step)) {
      out = due;
    } else if (head_ && ctx.step >= drive_start_) {
      out = drive(ctx.step);
    }
    if (out) out->d = layer_;  // every message carries the sender's layer
    return out;
  }

  void on_receive(const node_context& ctx, const message& msg) override {
    if (!informed_) {
      informed_ = true;
      layer_ = static_cast<int>(msg.d) + 1;  // first contact fixes the layer
    }
    switch (msg.kind) {
      case kAnnounce:
        pending_.schedule(ctx.step + 2 * static_cast<std::int64_t>(label_),
                          message{kPresence, label_, 0, 0, 0, 0});
        break;
      case kPresence:
        if (label_ == 0 && awaiting_presence_) {
          awaiting_presence_ = false;
          pending_.schedule(ctx.step + 1,
                            message{kStopSelect, 0, msg.from, 0, 0, 0});
        }
        break;
      case kStopSelect:
        pending_.clear();  // cancel outstanding presence reservations
        if (static_cast<node_id>(msg.a) == label_) {
          become_head(msg.from, ctx.step + 1);
        }
        break;
      case kSelect:
        if (static_cast<node_id>(msg.a) == label_) {
          // Start after the selector's stop-layer step.
          become_head(msg.from, ctx.step + 2);
        }
        break;
      case kOrder:
        if (head_) break;  // a head never answers another head's order
        schedule_echo_replies(
            pending_, kKinds, msg, ctx.step, label_,
            /*is_member=*/layer_ == static_cast<int>(msg.d) + 1);
        break;
      case kReply:
        if (head_ && driver_) driver_->on_receive(msg);
        break;
      case kStopLayer:
        if (layer_ == static_cast<int>(msg.b)) halted_ = true;
        break;
      case kStopAll:
        halted_ = true;
        break;
      default:
        break;
    }
  }

  bool informed() const override { return informed_; }
  bool halted() const override { return halted_; }

  void on_restart(const node_context&) override {
    // Amnesia reboot: re-derive the constructed state (the source knows
    // its layer a priori; everyone else relearns it on first contact).
    informed_ = (label_ == 0);
    layer_ = (label_ == 0) ? 0 : -1;
    halted_ = false;
    head_ = false;
    awaiting_presence_ = false;
    helper_ = -1;
    drive_start_ = 0;
    pending_.clear();
    driver_.reset();
  }

 private:
  void become_head(node_id previous_head, std::int64_t start) {
    head_ = true;
    helper_ = previous_head;
    drive_start_ = start;
    pending_.clear();
    driver_.emplace(kKinds, helper_, r_);
  }

  std::optional<message> drive(std::int64_t step) {
    std::optional<message> out = driver_->on_step(step);
    if (!driver_->finished()) return out;
    head_ = false;
    if (driver_->result() == selection_driver::status::selected) {
      const node_id next = driver_->selected();
      driver_.reset();
      // Select now; order L_{k−1} to stop one step later.
      pending_.schedule(step + 1,
                        message{kStopLayer, label_, 0, layer_ - 1, 0, 0});
      return message{kSelect, label_, next, 0, 0, 0};
    }
    // No next layer: k = D. Stop the neighbors and ourselves.
    driver_.reset();
    halted_ = true;
    return message{kStopAll, label_, 0, 0, 0, 0};
  }

  node_id label_;
  node_id r_;
  bool informed_ = false;
  bool halted_ = false;
  bool head_ = false;
  bool awaiting_presence_ = false;
  int layer_ = -1;
  node_id helper_ = -1;
  std::int64_t drive_start_ = 0;
  pending_tx pending_;
  std::optional<selection_driver> driver_;
};

}  // namespace

std::unique_ptr<protocol_node> complete_layered_protocol::make_node(
    node_id label, const protocol_params& params) const {
  return std::make_unique<cl_node>(label, params);
}

}  // namespace radiocast
